// Ablation studies for the design choices called out in DESIGN.md:
//
//  (1) Appendix-A optimizations of Algorithm 2 — pair memoization and the
//      cross-round loss counter — measured individually and together.
//  (2) Group-size multiplier of Algorithm 2 (g = m * u_n for m in
//      {2, 4, 8}; the paper uses 4).
//  (3) Phase-2 solver choice — all-play-all vs 2-MaxFind vs the randomized
//      linear algorithm — on candidate sets of realistic sizes.
//  (4) Venetis-style replication tuning: uniform votes-per-match vs the
//      budget-tuned per-round schedule, under the probabilistic model.
//
// Flags: --trials (default 15), --n (default 3000), --u_n (default 20),
//        --seed, --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/venetis.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

struct FilterAblationRow {
  std::string label;
  bool memoize;
  bool loss_counter;
};

void RunFilterAblation(int64_t n, int64_t u_target, int64_t trials,
                       uint64_t seed, const FlagParser& flags) {
  const std::vector<FilterAblationRow> configs = {
      {"baseline (paper Algorithm 2)", false, false},
      {"+ memoization", true, false},
      {"+ loss counter", false, true},
      {"+ both (Appendix A)", true, true},
  };
  TablePrinter table({"variant", "paid comparisons", "issued", "rounds",
                      "|S|", "max kept"});
  for (const FilterAblationRow& config : configs) {
    double paid = 0.0;
    double issued = 0.0;
    double rounds = 0.0;
    double candidates = 0.0;
    int64_t kept = 0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed = seed + static_cast<uint64_t>(t);
      Result<Instance> instance = UniformInstance(n, trial_seed);
      CROWDMAX_CHECK(instance.ok());
      const double delta = instance->DeltaForU(u_target);
      const int64_t u_n = instance->CountWithin(delta);
      // Persistent ties make the memoization semantically transparent, so
      // all variants face the same worker behaviour.
      ThresholdComparator::Options worker;
      worker.model = ThresholdModel{delta, 0.0};
      worker.tie_policy = TiePolicy::kPersistentArbitrary;
      ThresholdComparator naive(&*instance, worker, trial_seed + 1);

      FilterOptions options;
      options.u_n = u_n;
      options.memoize = config.memoize;
      options.global_loss_counter = config.loss_counter;
      Result<FilterResult> result =
          FilterCandidates(instance->AllElements(), options, &naive);
      CROWDMAX_CHECK(result.ok());
      paid += static_cast<double>(result->paid_comparisons);
      issued += static_cast<double>(result->issued_comparisons);
      rounds += static_cast<double>(result->rounds);
      candidates += static_cast<double>(result->candidates.size());
      for (ElementId e : result->candidates) {
        if (e == instance->MaxElement()) {
          ++kept;
          break;
        }
      }
    }
    const double d = static_cast<double>(trials);
    table.AddRow({config.label, FormatDouble(paid / d, 0),
                  FormatDouble(issued / d, 0), FormatDouble(rounds / d, 1),
                  FormatDouble(candidates / d, 1),
                  FormatInt(kept) + "/" + FormatInt(trials)});
  }
  bench::EmitTable(table, flags,
                   "Ablation 1 (n=" + std::to_string(n) +
                       "): Appendix-A optimizations of Algorithm 2");
}

void RunGroupSizeAblation(int64_t n, int64_t u_target, int64_t trials,
                          uint64_t seed, const FlagParser& flags) {
  TablePrinter table({"g multiplier", "paid comparisons", "rounds", "|S|",
                      "max kept"});
  for (int64_t multiplier : {2, 4, 8}) {
    double paid = 0.0;
    double rounds = 0.0;
    double candidates = 0.0;
    int64_t kept = 0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed = seed + 100 + static_cast<uint64_t>(t);
      Result<Instance> instance = UniformInstance(n, trial_seed);
      CROWDMAX_CHECK(instance.ok());
      const double delta = instance->DeltaForU(u_target);
      ThresholdComparator naive(&*instance, ThresholdModel{delta, 0.0},
                                trial_seed + 1);
      FilterOptions options;
      options.u_n = instance->CountWithin(delta);
      options.group_size_multiplier = multiplier;
      Result<FilterResult> result =
          FilterCandidates(instance->AllElements(), options, &naive);
      CROWDMAX_CHECK(result.ok());
      paid += static_cast<double>(result->paid_comparisons);
      rounds += static_cast<double>(result->rounds);
      candidates += static_cast<double>(result->candidates.size());
      for (ElementId e : result->candidates) {
        if (e == instance->MaxElement()) {
          ++kept;
          break;
        }
      }
    }
    const double d = static_cast<double>(trials);
    table.AddRow({FormatInt(multiplier), FormatDouble(paid / d, 0),
                  FormatDouble(rounds / d, 1), FormatDouble(candidates / d, 1),
                  FormatInt(kept) + "/" + FormatInt(trials)});
  }
  bench::EmitTable(table, flags,
                   "Ablation 2 (n=" + std::to_string(n) +
                       "): group size g = multiplier * u_n (paper uses 4)");
}

void RunPhase2Ablation(int64_t trials, uint64_t seed,
                       const FlagParser& flags) {
  TablePrinter table({"|S|", "all-play-all", "2-MaxFind", "randomized"});
  for (int64_t s : {9, 19, 39, 99, 199}) {
    double apa = 0.0;
    double tmf = 0.0;
    double rnd = 0.0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed =
          seed + 200 + static_cast<uint64_t>(s) * 11 + static_cast<uint64_t>(t);
      Result<Instance> instance = UniformInstance(s, trial_seed);
      CROWDMAX_CHECK(instance.ok());
      const double delta = instance->DeltaForU(std::max<int64_t>(2, s / 5));
      ThresholdComparator expert_a(&*instance, ThresholdModel{delta, 0.0},
                                   trial_seed + 1);
      ThresholdComparator expert_b(&*instance, ThresholdModel{delta, 0.0},
                                   trial_seed + 2);
      ThresholdComparator expert_c(&*instance, ThresholdModel{delta, 0.0},
                                   trial_seed + 3);

      Result<MaxFindResult> r_apa =
          AllPlayAllMax(instance->AllElements(), &expert_a);
      Result<MaxFindResult> r_tmf =
          TwoMaxFind(instance->AllElements(), &expert_b);
      RandomizedMaxFindOptions rnd_options;
      rnd_options.seed = trial_seed + 4;
      Result<MaxFindResult> r_rnd =
          RandomizedMaxFind(instance->AllElements(), &expert_c, rnd_options);
      CROWDMAX_CHECK(r_apa.ok() && r_tmf.ok() && r_rnd.ok());
      apa += static_cast<double>(r_apa->paid_comparisons);
      tmf += static_cast<double>(r_tmf->paid_comparisons);
      rnd += static_cast<double>(r_rnd->paid_comparisons);
    }
    const double d = static_cast<double>(trials);
    table.AddRow({FormatInt(s), FormatDouble(apa / d, 0),
                  FormatDouble(tmf / d, 0), FormatDouble(rnd / d, 0)});
  }
  bench::EmitTable(
      table, flags,
      "Ablation 3: expert comparisons by phase-2 solver (Section 4.1.2 — "
      "the randomized linear algorithm's constants dominate at these sizes)");
}

void RunVenetisTuningAblation(uint64_t seed, const FlagParser& flags) {
  // Replication tuning for the Venetis ladder (the baseline's core idea:
  // allocate a vote budget across rounds) under a constant per-vote error.
  constexpr int64_t kN = 64;
  constexpr double kError = 0.25;
  constexpr int64_t kTrialsPerBudget = 400;

  TablePrinter table({"budget", "uniform votes/match", "uniform hit rate",
                      "tuned schedule", "tuned predicted", "tuned hit rate"});
  for (int64_t uniform_k : {1, 3, 5, 7}) {
    const int64_t budget = uniform_k * (kN - 1);
    Result<VenetisTuning> tuning = TuneVenetisSchedule(kN, budget, kError);
    CROWDMAX_CHECK(tuning.ok());

    int uniform_hits = 0;
    int tuned_hits = 0;
    for (int64_t t = 0; t < kTrialsPerBudget; ++t) {
      const uint64_t trial_seed =
          seed + static_cast<uint64_t>(uniform_k) * 10007 +
          static_cast<uint64_t>(t);
      Result<Instance> instance = UniformInstance(kN, trial_seed);
      CROWDMAX_CHECK(instance.ok());
      ThresholdComparator worker_a(&*instance, ThresholdModel{0.0, kError},
                                   trial_seed + 1);
      ThresholdComparator worker_b(&*instance, ThresholdModel{0.0, kError},
                                   trial_seed + 2);
      VenetisOptions uniform;
      uniform.votes_per_match = uniform_k;
      VenetisOptions tuned;
      tuned.votes_schedule = tuning->schedule;
      Result<MaxFindResult> u =
          VenetisLadderMax(instance->AllElements(), &worker_a, uniform);
      Result<MaxFindResult> v =
          VenetisLadderMax(instance->AllElements(), &worker_b, tuned);
      CROWDMAX_CHECK(u.ok() && v.ok());
      if (u->best == instance->MaxElement()) ++uniform_hits;
      if (v->best == instance->MaxElement()) ++tuned_hits;
    }
    std::string schedule;
    for (int64_t votes : tuning->schedule) {
      if (!schedule.empty()) schedule += "/";
      schedule += FormatInt(votes);
    }
    table.AddRow(
        {FormatInt(budget), FormatInt(uniform_k),
         FormatDouble(static_cast<double>(uniform_hits) / kTrialsPerBudget, 3),
         schedule, FormatDouble(tuning->predicted_max_survival, 3),
         FormatDouble(static_cast<double>(tuned_hits) / kTrialsPerBudget,
                      3)});
  }
  bench::EmitTable(
      table, flags,
      "Ablation 4 (n=64, per-vote error 0.25): uniform vs budget-tuned "
      "replication for the Venetis ladder (probabilistic regime)");
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 15);
  const int64_t n = flags.GetInt("n", 3000);
  const int64_t u_target = flags.GetInt("u_n", 20);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Ablations", "design choices of DESIGN.md, measured");
  RunFilterAblation(n, u_target, trials, seed, flags);
  RunGroupSizeAblation(n, u_target, trials, seed, flags);
  RunPhase2Ablation(trials, seed, flags);
  RunVenetisTuningAblation(seed, flags);
  return 0;
}
