// Reproduces Figure 2: majority-vote accuracy as a function of the number
// of workers, bucketed by the relative difference of the compared pair, for
// the DOTS dataset (2a, probabilistic regime — accuracy converges to 1) and
// the CARS dataset (2b, threshold regime — accuracy plateaus at 0.6-0.7 for
// differences up to 20%).
//
// Flags: --pairs_per_bucket (default 60), --trials_per_pair (default 40),
//        --seed, --csv.

#include <array>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/cars.h"
#include "datasets/dots.h"

namespace crowdmax {
namespace {

constexpr std::array<int, 11> kWorkerCounts = {1, 3, 5, 7, 9, 11, 13,
                                               15, 17, 19, 21};

struct Bucket {
  double lo;  // Exclusive (inclusive for the first bucket).
  double hi;  // Inclusive; +inf for the last.
  std::string label;
};

// One (a, b) pair with its bucket index.
struct BucketedPair {
  ElementId a;
  ElementId b;
  size_t bucket;
};

// Collects up to `per_bucket` pairs per bucket, scanning all pairs of the
// instance in a seeded random order.
std::vector<BucketedPair> CollectPairs(const Instance& instance,
                                       const std::vector<Bucket>& buckets,
                                       int64_t per_bucket, uint64_t seed) {
  std::vector<std::pair<ElementId, ElementId>> all;
  for (ElementId a = 0; a < instance.size(); ++a) {
    for (ElementId b = a + 1; b < instance.size(); ++b) all.push_back({a, b});
  }
  Rng rng(seed);
  rng.Shuffle(&all);

  std::vector<int64_t> counts(buckets.size(), 0);
  std::vector<BucketedPair> out;
  for (const auto& [a, b] : all) {
    const double rel = instance.RelativeDifference(a, b);
    for (size_t k = 0; k < buckets.size(); ++k) {
      const bool in_bucket = (k == 0 ? rel >= buckets[k].lo
                                     : rel > buckets[k].lo) &&
                             rel <= buckets[k].hi;
      if (in_bucket && counts[k] < per_bucket) {
        out.push_back({a, b, k});
        ++counts[k];
      }
    }
  }
  return out;
}

// Runs the accuracy-vs-workers experiment for one dataset/worker-model and
// prints one table (one row per worker count, one column per bucket).
void RunDataset(const std::string& name, const Instance& instance,
                Comparator* worker, const std::vector<Bucket>& buckets,
                int64_t per_bucket, int64_t trials_per_pair,
                const FlagParser& flags) {
  const std::vector<BucketedPair> pairs =
      CollectPairs(instance, buckets, per_bucket, /*seed=*/17);

  std::vector<std::string> headers = {"#workers"};
  for (const Bucket& bucket : buckets) headers.push_back(bucket.label);
  TablePrinter table(headers);

  for (int k : kWorkerCounts) {
    std::vector<int64_t> correct(buckets.size(), 0);
    std::vector<int64_t> total(buckets.size(), 0);
    for (const BucketedPair& pair : pairs) {
      const ElementId truth = instance.value(pair.a) >= instance.value(pair.b)
                                  ? pair.a
                                  : pair.b;
      for (int64_t t = 0; t < trials_per_pair; ++t) {
        int wins_a = 0;
        for (int v = 0; v < k; ++v) {
          if (worker->Compare(pair.a, pair.b) == pair.a) ++wins_a;
        }
        // Majority with k odd is always decided.
        const ElementId majority = 2 * wins_a > k ? pair.a : pair.b;
        ++total[pair.bucket];
        if (majority == truth) ++correct[pair.bucket];
      }
    }
    std::vector<std::string> row = {FormatInt(k)};
    for (size_t j = 0; j < buckets.size(); ++j) {
      row.push_back(total[j] == 0
                        ? "n/a"
                        : FormatDouble(static_cast<double>(correct[j]) /
                                           static_cast<double>(total[j]),
                                       3));
    }
    table.AddRow(std::move(row));
  }
  bench::EmitTable(table, flags,
                   name + ": majority-vote accuracy vs number of workers, "
                          "by relative-difference bucket");
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t per_bucket = flags.GetInt("pairs_per_bucket", 200);
  const int64_t trials = flags.GetInt("trials_per_pair", 40);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Figure 2",
                     "worker accuracy vs crowd size (DOTS and CARS)");

  // Figure 2(a): DOTS, probabilistic model, buckets [0,.1],(.1,.2],(.2,.3],
  // (.3,inf).
  {
    DotsDataset dots = DotsDataset::Standard();
    Instance instance = dots.ToInstance();
    RelativeErrorComparator worker(&instance, DotsWorkerModel(), seed);
    std::vector<Bucket> buckets = {{0.0, 0.1, "[0,0.1]"},
                                   {0.1, 0.2, "(0.1,0.2]"},
                                   {0.2, 0.3, "(0.2,0.3]"},
                                   {0.3, 1e9, "(0.3,inf)"}};
    RunDataset("DOTS (Figure 2a)", instance, &worker, buckets, per_bucket,
               trials, flags);
    std::cout << "\nExpected shape: every bucket climbs toward accuracy 1 as "
                 "workers are added\n(wisdom-of-crowds regime).\n";
  }

  // Figure 2(b): CARS, persistent-bias model, buckets [0,.1],(.1,.2],
  // (.2,.5],(.5,inf).
  {
    CarsDataset cars = CarsDataset::Standard(seed + 1);
    Instance instance = cars.ToInstance();
    PersistentBiasComparator worker(&instance, CarsWorkerModel(), seed + 2);
    std::vector<Bucket> buckets = {{0.0, 0.1, "[0,0.1]"},
                                   {0.1, 0.2, "(0.1,0.2]"},
                                   {0.2, 0.5, "(0.2,0.5]"},
                                   {0.5, 1e9, "(0.5,inf)"}};
    RunDataset("CARS (Figure 2b)", instance, &worker, buckets, per_bucket,
               trials, flags);
    std::cout << "\nExpected shape: the [0,0.1] and (0.1,0.2] buckets plateau "
                 "near 0.6 / 0.7 no matter\nhow many workers vote; only the "
                 "easy buckets converge to 1 (expertise barrier).\n";
  }
  return 0;
}
