// Reproduces Figure 5 (and its worst-case companion Figure 9 is in
// bench_fig9_worstcase_cost): average monetary cost C(n) as a function of
// n, with c_n = 1 and c_e in {10, 20, 50}, for Algorithm 1,
// 2-MaxFind-naive and 2-MaxFind-expert, at (u_n, u_e) = (10, 5) and
// (50, 10) — six panels.
//
// Flags: --trials (default 15), --seed, --csv.

#include <cstdint>
#include <iostream>
#include <vector>

#include "baselines/single_class.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "core/cost.h"
#include "core/expert_max.h"
#include "core/worker_model.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {1000, 2000, 3000, 4000, 5000};
constexpr double kExpertCosts[] = {10.0, 20.0, 50.0};

struct Config {
  int64_t u_n;
  int64_t u_e;
};

struct TrialCosts {
  // Paid comparison counts per algorithm; costs derive from them for every
  // c_e without re-running.
  double alg1_naive = 0.0;
  double alg1_expert = 0.0;
  double naive_only = 0.0;
  double expert_only = 0.0;
};

TrialCosts MeasureAverages(const Config& config, int64_t n, int64_t trials,
                           uint64_t seed) {
  TrialCosts sums;
  for (int64_t t = 0; t < trials; ++t) {
    const uint64_t trial_seed =
        seed + static_cast<uint64_t>(n) * 313 + static_cast<uint64_t>(t);
    bench::TwoClassSetup setup =
        bench::MakeTwoClassSetup(n, config.u_n, config.u_e, trial_seed);
    ThresholdComparator naive(&setup.instance,
                              ThresholdModel{setup.delta_n, 0.0},
                              trial_seed * 7 + 1);
    ThresholdComparator expert(&setup.instance,
                               ThresholdModel{setup.delta_e, 0.0},
                               trial_seed * 7 + 2);

    ExpertMaxOptions options;
    options.filter.u_n = setup.u_n;
    Result<ExpertMaxResult> alg1 = FindMaxWithExperts(
        setup.instance.AllElements(), &naive, &expert, options);
    Result<SingleClassResult> naive_only =
        TwoMaxFindNaiveOnly(setup.instance.AllElements(), &naive);
    Result<SingleClassResult> expert_only =
        TwoMaxFindExpertOnly(setup.instance.AllElements(), &expert);
    CROWDMAX_CHECK(alg1.ok() && naive_only.ok() && expert_only.ok());

    sums.alg1_naive += static_cast<double>(alg1->paid.naive);
    sums.alg1_expert += static_cast<double>(alg1->paid.expert);
    sums.naive_only += static_cast<double>(naive_only->paid_comparisons);
    sums.expert_only += static_cast<double>(expert_only->paid_comparisons);
  }
  const double d = static_cast<double>(trials);
  sums.alg1_naive /= d;
  sums.alg1_expert /= d;
  sums.naive_only /= d;
  sums.expert_only /= d;
  return sums;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 15);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Figure 5",
                     "average cost C(n) vs n, c_n=1, c_e in {10,20,50}");

  for (const auto& config :
       {crowdmax::Config{10, 5}, crowdmax::Config{50, 10}}) {
    // Measure once per (n); derive all three panels per config.
    std::vector<TrialCosts> rows;
    for (int64_t n : kSizes) {
      rows.push_back(MeasureAverages(config, n, trials,
                                     seed + static_cast<uint64_t>(config.u_n)));
    }
    for (double c_e : kExpertCosts) {
      CostModel model{1.0, c_e};
      TablePrinter table(
          {"n", "2-MaxFind-expert", "Alg 1", "2-MaxFind-naive"});
      for (size_t i = 0; i < rows.size(); ++i) {
        const TrialCosts& r = rows[i];
        table.AddRow(
            {FormatInt(kSizes[i]),
             FormatDouble(r.expert_only * model.expert_cost, 0),
             FormatDouble(r.alg1_naive * model.naive_cost +
                              r.alg1_expert * model.expert_cost,
                          0),
             FormatDouble(r.naive_only * model.naive_cost, 0)});
      }
      bench::EmitTable(table, flags,
                       "Figure 5 panel (u_n=" + std::to_string(config.u_n) +
                           ", u_e=" + std::to_string(config.u_e) +
                           ", c_e=" + FormatDouble(c_e, 0) +
                           "): average cost C(n)");
    }
  }
  std::cout << "\nExpected shape: 2-MaxFind-naive is cheapest (but "
               "inaccurate, see Figure 3); at low\nc_e/c_n ratios "
               "2-MaxFind-expert undercuts Alg 1, and as the ratio grows "
               "past ~10 the\nordering flips and Alg 1's savings widen.\n";
  return 0;
}
