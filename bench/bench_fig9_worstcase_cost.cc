// Reproduces Figure 9 (Appendix C): worst-case cost C(n) as a function of
// n, with c_n = 1 and c_e in {10, 20, 50}. As in the paper, Algorithm 1's
// worst case uses the theoretical upper bounds (4*n*u_n naive comparisons
// and 2*(2*u_n - 1)^{3/2} expert comparisons), while the 2-MaxFind worst
// cases are measured on adversarial instances (all elements mutually
// indistinguishable and the pivot forced to lose).
//
// Flags: --seed, --csv.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/cost.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {1000, 2000, 3000, 4000, 5000};
constexpr double kExpertCosts[] = {10.0, 20.0, 50.0};

struct Config {
  int64_t u_n;
  int64_t u_e;
};

int64_t TwoMaxFindAdversarialComparisons(int64_t n, uint64_t seed) {
  Result<Instance> packed = PackedInstance(n, seed);
  CROWDMAX_CHECK(packed.ok());
  AdversarialComparator adversary(&*packed, /*delta=*/1.0,
                                  AdversarialPolicy::kFirstLoses);
  Result<MaxFindResult> result =
      TwoMaxFind(packed->AllElements(), &adversary);
  CROWDMAX_CHECK(result.ok());
  return result->paid_comparisons;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Figure 9", "worst-case cost C(n) vs n");

  // The adversarial 2-MaxFind count depends only on n; measure once.
  std::vector<int64_t> wc_2mf;
  for (int64_t n : kSizes) {
    wc_2mf.push_back(
        TwoMaxFindAdversarialComparisons(n, seed + static_cast<uint64_t>(n)));
  }

  for (const auto& config : {Config{10, 5}, Config{50, 10}}) {
    for (double c_e : kExpertCosts) {
      CostModel model{1.0, c_e};
      TablePrinter table(
          {"n", "2-MaxFind-expert", "Alg 1", "2-MaxFind-naive"});
      for (size_t ni = 0; ni < std::size(kSizes); ++ni) {
        const int64_t n = kSizes[ni];
        const int64_t alg1_naive = FilterComparisonUpperBound(n, config.u_n);
        const int64_t alg1_expert =
            TwoMaxFindComparisonUpperBound(2 * config.u_n - 1);
        table.AddRow(
            {FormatInt(n),
             FormatDouble(static_cast<double>(wc_2mf[ni]) * model.expert_cost,
                          0),
             FormatDouble(static_cast<double>(alg1_naive) * model.naive_cost +
                              static_cast<double>(alg1_expert) *
                                  model.expert_cost,
                          0),
             FormatDouble(static_cast<double>(wc_2mf[ni]) * model.naive_cost,
                          0)});
      }
      bench::EmitTable(table, flags,
                       "Figure 9 panel (u_n=" + std::to_string(config.u_n) +
                           ", u_e=" + std::to_string(config.u_e) +
                           ", c_e=" + FormatDouble(c_e, 0) +
                           "): worst-case cost C(n)");
    }
  }
  std::cout << "\nExpected shape: 2-MaxFind-expert's worst case grows like "
               "c_e * n^1.5 and dominates\neverything; Alg 1's worst case is "
               "linear in n (4*n*u_n naive work plus a constant\nexpert "
               "term), so the gap widens with n and with c_e.\n";
  return 0;
}
