// Reproduces Figure 10 (Appendix C): worst-case cost of Algorithm 1 as a
// function of n when u_n is mis-estimated by a factor in {0.2, 0.5, 0.8, 1,
// 1.2, 2}, with c_n = 1 and c_e in {10, 20, 50}. Worst-case counts follow
// the theory, as in the paper: an assumed u' = f*u_n costs at most 4*n*u'
// naive and 2*(2*u' - 1)^{3/2} expert comparisons.
//
// Flags: --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/cost.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {1000, 2000, 3000, 4000, 5000};
constexpr double kFactors[] = {0.2, 0.5, 0.8, 1.0, 1.2, 2.0};
constexpr double kExpertCosts[] = {10.0, 20.0, 50.0};

struct Config {
  int64_t u_n;
  int64_t u_e;
};

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);

  bench::PrintHeader("Figure 10",
                     "worst-case cost under mis-estimated u_n");

  for (const auto& config : {Config{10, 5}, Config{50, 10}}) {
    for (double c_e : kExpertCosts) {
      CostModel model{1.0, c_e};
      std::vector<std::string> headers = {"n"};
      for (double f : kFactors) headers.push_back(FormatDouble(f, 1) + "*un");
      TablePrinter table(headers);
      for (int64_t n : kSizes) {
        std::vector<std::string> row = {FormatInt(n)};
        for (double f : kFactors) {
          const int64_t assumed_u = std::max<int64_t>(
              1, static_cast<int64_t>(f * static_cast<double>(config.u_n)));
          const double cost =
              static_cast<double>(FilterComparisonUpperBound(n, assumed_u)) *
                  model.naive_cost +
              static_cast<double>(
                  TwoMaxFindComparisonUpperBound(2 * assumed_u - 1)) *
                  model.expert_cost;
          row.push_back(FormatDouble(cost, 0));
        }
        table.AddRow(std::move(row));
      }
      bench::EmitTable(table, flags,
                       "Figure 10 panel (u_n=" + std::to_string(config.u_n) +
                           ", u_e=" + std::to_string(config.u_e) +
                           ", c_e=" + FormatDouble(c_e, 0) +
                           "): worst-case cost vs estimation factor");
    }
  }
  std::cout << "\nExpected shape: worst-case cost scales linearly with the "
               "estimation factor (the\n4*n*u' naive term dominates).\n";
  return 0;
}
