// Google-benchmark microbenchmarks for the core primitives: comparator
// throughput, all-play-all tournaments, Algorithm 2, 2-MaxFind, and the
// full two-phase pipeline. These quantify the simulator's raw speed (the
// paper's cost unit is worker comparisons, not CPU time, but a fast
// simulator is what makes the parameter sweeps in the other benches cheap).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/async_executor.h"
#include "core/batched.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"
#include "core/round_engine.h"
#include "core/tournament.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

// --threads=N (stripped from argv in main below) overrides the thread
// count of every BM_Parallel* benchmark; 0 keeps the per-benchmark Args.
int64_t g_threads_override = 0;

// Thread count for a parallel benchmark: the --threads override if given,
// else the benchmark's registered argument.
int64_t BenchThreads(const benchmark::State& state, int arg_index) {
  return g_threads_override > 0 ? g_threads_override
                                : state.range(arg_index);
}

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

void BM_ThresholdCompare(benchmark::State& state) {
  Instance instance = MakeInstance(1024, 1);
  ThresholdComparator cmp(&instance, ThresholdModel{0.01, 0.05}, 2);
  ElementId a = 0;
  for (auto _ : state) {
    const ElementId winner = cmp.Compare(a, (a + 1) & 1023);
    benchmark::DoNotOptimize(winner);
    a = (a + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThresholdCompare);

void BM_OracleCompare(benchmark::State& state) {
  Instance instance = MakeInstance(1024, 3);
  OracleComparator cmp(&instance);
  ElementId a = 0;
  for (auto _ : state) {
    const ElementId winner = cmp.Compare(a, (a + 1) & 1023);
    benchmark::DoNotOptimize(winner);
    a = (a + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OracleCompare);

void BM_MemoizedCompare(benchmark::State& state) {
  Instance instance = MakeInstance(1024, 5);
  OracleComparator oracle(&instance);
  MemoizingComparator memo(&oracle);
  ElementId a = 0;
  for (auto _ : state) {
    const ElementId winner = memo.Compare(a, (a + 1) & 1023);
    benchmark::DoNotOptimize(winner);
    a = (a + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoizedCompare);

void BM_AllPlayAll(benchmark::State& state) {
  const int64_t k = state.range(0);
  Instance instance = MakeInstance(k, 7);
  ThresholdComparator cmp(&instance, ThresholdModel{0.01, 0.0}, 8);
  const std::vector<ElementId> elements = instance.AllElements();
  for (auto _ : state) {
    TournamentResult result = AllPlayAll(elements, &cmp);
    benchmark::DoNotOptimize(result.wins.data());
  }
  state.SetItemsProcessed(state.iterations() * k * (k - 1) / 2);
}
BENCHMARK(BM_AllPlayAll)->Arg(16)->Arg(64)->Arg(256);

void BM_FilterPhase(benchmark::State& state) {
  const int64_t n = state.range(0);
  Instance instance = MakeInstance(n, 9);
  const double delta = instance.DeltaForU(10);
  FilterOptions options;
  options.u_n = instance.CountWithin(delta);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdComparator cmp(&instance, ThresholdModel{delta, 0.0},
                            state.iterations());
    state.ResumeTiming();
    Result<FilterResult> result =
        FilterCandidates(instance.AllElements(), options, &cmp);
    CROWDMAX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->candidates.data());
  }
}
BENCHMARK(BM_FilterPhase)->Arg(1000)->Arg(4000);

// Parallel filter phase: Args are {n, threads}. The paper's cost metric is
// worker comparisons (identical across thread counts by construction);
// this measures the simulator's wall-clock scaling. Sized at n >= 10^5 so
// each round has enough groups to occupy the pool.
void BM_ParallelFilterPhase(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t threads = BenchThreads(state, 1);
  Instance instance = MakeInstance(n, 15);
  const double delta = instance.DeltaForU(10);
  FilterOptions options;
  options.u_n = instance.CountWithin(delta);
  options.threads = threads;
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdComparator cmp(&instance, ThresholdModel{delta, 0.0},
                            state.iterations());
    state.ResumeTiming();
    Result<FilterResult> result =
        FilterCandidates(instance.AllElements(), options, &cmp);
    CROWDMAX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->candidates.data());
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelFilterPhase)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Unit(benchmark::kMillisecond);

// Parallel batched comparisons: Args are {num_tasks, threads}.
void BM_ParallelBatchExecutor(benchmark::State& state) {
  const int64_t num_tasks = state.range(0);
  const int64_t threads = BenchThreads(state, 1);
  Instance instance = MakeInstance(1024, 17);
  ThresholdComparator cmp(&instance, ThresholdModel{0.01, 0.0}, 19);
  Result<std::unique_ptr<ParallelBatchExecutor>> executor =
      ParallelBatchExecutor::Create(&cmp, threads, /*seed=*/21);
  CROWDMAX_CHECK(executor.ok());
  std::vector<ComparisonPair> tasks;
  tasks.reserve(static_cast<size_t>(num_tasks));
  for (int64_t i = 0; i < num_tasks; ++i) {
    const ElementId a = static_cast<ElementId>(i & 1023);
    const ElementId b = static_cast<ElementId>((i + 7) & 1023);
    tasks.emplace_back(a, b == a ? ((a + 1) & 1023) : b);
  }
  for (auto _ : state) {
    std::vector<ElementId> winners = (*executor)->ExecuteBatch(tasks);
    benchmark::DoNotOptimize(winners.data());
  }
  state.SetItemsProcessed(state.iterations() * num_tasks);
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelBatchExecutor)
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 8});

void BM_TwoMaxFind(benchmark::State& state) {
  const int64_t n = state.range(0);
  Instance instance = MakeInstance(n, 11);
  const double delta = instance.DeltaForU(5);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdComparator cmp(&instance, ThresholdModel{delta, 0.0},
                            state.iterations());
    state.ResumeTiming();
    Result<MaxFindResult> result = TwoMaxFind(instance.AllElements(), &cmp);
    CROWDMAX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->best);
  }
}
BENCHMARK(BM_TwoMaxFind)->Arg(100)->Arg(1000);

void BM_ExpertMaxEndToEnd(benchmark::State& state) {
  const int64_t n = state.range(0);
  Instance instance = MakeInstance(n, 13);
  const double delta_n = instance.DeltaForU(10);
  const double delta_e = instance.DeltaForU(3);
  ExpertMaxOptions options;
  options.filter.u_n = instance.CountWithin(delta_n);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdComparator naive(&instance, ThresholdModel{delta_n, 0.0},
                              state.iterations() * 2);
    ThresholdComparator expert(&instance, ThresholdModel{delta_e, 0.0},
                               state.iterations() * 2 + 1);
    state.ResumeTiming();
    Result<ExpertMaxResult> result =
        FindMaxWithExperts(instance.AllElements(), &naive, &expert, options);
    CROWDMAX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->best);
  }
}
BENCHMARK(BM_ExpertMaxEndToEnd)->Arg(1000)->Arg(5000);

// ---------------------------------------------------------------------------
// Round-latency report v2 (--pipeline / --pipeline_json=FILE /
// --pipeline_smoke): wall clock per logical step over a latency-simulating
// platform, the synchronous executor drive against the pipelined drive,
// for every Phase-2 source the engine can overlap — the filter's disjoint
// groups, the speculating 2-MaxFind, the chunked expert tournament and the
// grouped randomized max-finder. Everything but the wall clock and the
// speculation counters is bit-identical across a source's rows (checked);
// what the table shows is purely how much crowd round-trip the pipeline
// hides and what speculation paid for it. The machine-readable twin goes
// to BENCH_pipeline.json.

struct PipelineLatencyRow {
  std::string source;
  std::string mode;
  int64_t depth = 0;
  double wall_ms = 0.0;
  int64_t logical_steps = 0;
  double ms_per_step = 0.0;
  int64_t paid = 0;
  int64_t wasted = 0;
  int64_t spec_hits = 0;
  int64_t spec_mispredicts = 0;
  double hit_rate = 0.0;
  double wasted_fraction = 0.0;
  int64_t overlapped_rounds = 0;
  int64_t max_in_flight = 0;
  double speedup = 1.0;
};

// What a source run must reproduce identically at every depth: the
// algorithm's output, its non-speculative spend, and its logical steps.
struct PipelineRunSignature {
  std::vector<int64_t> output;
  int64_t paid_sync = 0;  // engine paid minus speculation_wasted
  int64_t logical_steps = 0;
};

struct PipelineSourceSpec {
  std::string name;
  // Drives the source on `engine` and returns its identity signature.
  std::function<PipelineRunSignature(RoundEngine*)> run;
};

void RunPipelineLatencyReport(const std::string& json_path, bool smoke) {
  const int64_t filter_n = smoke ? 120 : 600;
  const int64_t filter_u = smoke ? 4 : 8;
  const int64_t twomax_n = smoke ? 60 : 400;
  const int64_t tourney_n = smoke ? 40 : 120;
  const int64_t tourney_chunk = smoke ? 60 : 300;
  const int64_t random_n = smoke ? 60 : 120;

  PlatformOptions platform_options;
  platform_options.num_workers = 32;
  platform_options.spammer_fraction = 0.0;
  platform_options.honest_slip_probability = 0.0;
  platform_options.gold_task_probability = 0.0;
  platform_options.seed = 27;
  platform_options.latency.base_micros = smoke ? 200 : 1500;
  platform_options.latency.per_task_micros = smoke ? 1 : 5;
  platform_options.latency.jitter_micros = smoke ? 40 : 300;
  platform_options.latency.seed = 29;

  // Group-granular rounds on BOTH sides of every source: the synchronous
  // baseline pays one round trip per group/chunk too, so the comparison
  // isolates overlap (not batch-size effects) and the drives stay
  // bit-identical.
  Instance filter_instance = MakeInstance(filter_n, 23);
  FilterOptions filter_options;
  filter_options.u_n = filter_u;
  filter_options.memoize = true;
  filter_options.pipeline_groups = true;

  Instance twomax_instance = MakeInstance(twomax_n, 31);
  // Prior-strength ordering (decreasing true value): the speculated pivot
  // — the lowest-indexed sample member — is the sample's true maximum, so
  // the predictions hit and the bench shows the hit path's latency win.
  std::vector<ElementId> twomax_items = twomax_instance.AllElements();
  std::sort(twomax_items.begin(), twomax_items.end(),
            [&](ElementId a, ElementId b) {
              return twomax_instance.value(a) > twomax_instance.value(b);
            });

  Instance tourney_instance = MakeInstance(tourney_n, 37);
  Instance random_instance = MakeInstance(random_n, 41);
  RandomizedMaxFindOptions random_options;
  random_options.seed = 5;
  random_options.group_size_override = 12;
  random_options.pipeline_groups = true;

  const std::vector<PipelineSourceSpec> sources = {
      {"filter",
       [&](RoundEngine* engine) {
         Result<FilterEngineRun> run = RunFilterOnEngine(
             filter_instance.AllElements(), filter_options, engine);
         CROWDMAX_CHECK(run.ok() && !run->partial);
         PipelineRunSignature sig;
         sig.output.assign(run->filter.candidates.begin(),
                           run->filter.candidates.end());
         return sig;
       }},
      {"twomax_speculate",
       [&](RoundEngine* engine) {
         TwoMaxFindEngineOptions options;
         options.speculate = true;  // sync drives ignore speculation
         Result<MaxFindEngineRun> run =
             RunTwoMaxFindOnEngine(twomax_items, engine, options);
         CROWDMAX_CHECK(run.ok() && !run->partial);
         PipelineRunSignature sig;
         sig.output = {run->maxfind.best, run->maxfind.rounds,
                       run->maxfind.paid_comparisons};
         return sig;
       }},
      {"tournament_chunked",
       [&](RoundEngine* engine) {
         TournamentEngineOptions options;
         options.chunk_pairs = tourney_chunk;
         Result<TournamentEngineRun> run = RunTournamentOnEngine(
             tourney_instance.AllElements(), engine, "all_play_all", options);
         CROWDMAX_CHECK(run.ok() && run->unresolved == 0);
         PipelineRunSignature sig;
         sig.output = run->tournament.wins;
         return sig;
       }},
      {"randomized_grouped",
       [&](RoundEngine* engine) {
         Result<MaxFindEngineRun> run = RunRandomizedMaxFindOnEngine(
             random_instance.AllElements(), engine, random_options);
         CROWDMAX_CHECK(run.ok() && !run->partial);
         PipelineRunSignature sig;
         sig.output = {run->maxfind.best, run->maxfind.rounds,
                       run->maxfind.paid_comparisons};
         return sig;
       }},
  };

  // One run per row, each over its own fresh platform so the latency and
  // answer streams replay identically; only the drive differs.
  auto run_row = [&](const PipelineSourceSpec& spec,
                     const Instance* instance, int64_t depth) {
    OracleComparator crowd(instance);
    auto platform =
        CrowdPlatform::Create(&crowd, instance, {}, platform_options);
    CROWDMAX_CHECK(platform.ok());
    auto executor =
        PlatformBatchExecutor::Create(platform->get(), /*votes_per_task=*/1);
    CROWDMAX_CHECK(executor.ok());

    PipelineLatencyRow row;
    row.source = spec.name;
    row.mode = depth == 0 ? "serial" : "pipelined";
    row.depth = depth;
    std::unique_ptr<AsyncBatchAdapter> async;
    if (depth > 0) {
      async = std::make_unique<AsyncBatchAdapter>(executor->get());
    }
    Result<std::unique_ptr<RoundEngine>> engine =
        depth == 0 ? RoundEngine::CreateBatched(executor->get())
                   : RoundEngine::CreatePipelined(async.get(), depth);
    CROWDMAX_CHECK(engine.ok());

    const auto start = std::chrono::steady_clock::now();
    PipelineRunSignature sig = spec.run(engine->get());
    const auto stop = std::chrono::steady_clock::now();

    row.wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            stop - start)
            .count();
    row.logical_steps = (*engine)->logical_steps();
    row.ms_per_step =
        row.logical_steps > 0 ? row.wall_ms / row.logical_steps : 0.0;
    row.paid = (*engine)->paid();
    row.wasted = (*engine)->speculation_wasted();
    row.spec_hits = (*engine)->speculation_hits();
    row.spec_mispredicts = (*engine)->speculation_mispredicts();
    const int64_t resolved = row.spec_hits + row.spec_mispredicts;
    row.hit_rate = resolved > 0
                       ? static_cast<double>(row.spec_hits) / resolved
                       : 0.0;
    row.wasted_fraction =
        row.paid > 0 ? static_cast<double>(row.wasted) / row.paid : 0.0;
    row.overlapped_rounds = (*engine)->overlapped_rounds();
    row.max_in_flight = (*engine)->max_in_flight_observed();
    sig.paid_sync = row.paid - row.wasted;
    sig.logical_steps = row.logical_steps;
    return std::make_pair(row, sig);
  };

  const Instance* instances_per_source[] = {&filter_instance,
                                            &twomax_instance,
                                            &tourney_instance,
                                            &random_instance};

  std::cout << "\n[pipeline] round-latency v2: adaptive sources over "
            << "platform latency base="
            << platform_options.latency.base_micros
            << "us jitter=" << platform_options.latency.jitter_micros
            << "us\n";

  std::vector<PipelineLatencyRow> rows;
  const std::vector<int64_t> depths =
      smoke ? std::vector<int64_t>{0, 8} : std::vector<int64_t>{0, 1, 8};
  for (size_t s = 0; s < sources.size(); ++s) {
    PipelineRunSignature reference;
    double serial_wall = 0.0;
    for (const int64_t depth : depths) {
      auto [row, sig] = run_row(sources[s], instances_per_source[s], depth);
      if (depth == 0) {
        reference = sig;
        serial_wall = row.wall_ms;
      } else {
        // Bit-identity across depths: same output, same non-speculative
        // spend, same logical steps. Only wall clock and the speculation
        // counters may differ.
        CROWDMAX_CHECK(sig.output == reference.output);
        CROWDMAX_CHECK(sig.paid_sync == reference.paid_sync);
        CROWDMAX_CHECK(sig.logical_steps == reference.logical_steps);
      }
      row.speedup = depth == 0 ? 1.0 : serial_wall / row.wall_ms;
      rows.push_back(row);
    }
  }

  TablePrinter table({"source", "mode", "depth", "wall_ms", "steps",
                      "ms_per_step", "paid", "wasted", "hits", "mispredicts",
                      "hit_rate", "wasted_frac", "overlapped", "speedup"});
  for (const PipelineLatencyRow& row : rows) {
    table.AddRow({row.source, row.mode, FormatInt(row.depth),
                  FormatDouble(row.wall_ms, 2), FormatInt(row.logical_steps),
                  FormatDouble(row.ms_per_step, 3), FormatInt(row.paid),
                  FormatInt(row.wasted), FormatInt(row.spec_hits),
                  FormatInt(row.spec_mispredicts),
                  FormatDouble(row.hit_rate, 2),
                  FormatDouble(row.wasted_fraction, 3),
                  FormatInt(row.overlapped_rounds),
                  FormatDouble(row.speedup, 2)});
  }
  table.Print(std::cout);

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "pipeline: cannot open " << json_path << "\n";
    return;
  }
  json << "{\"bench\": \"pipeline_round_latency\", \"version\": 2"
       << ", \"latency_base_micros\": " << platform_options.latency.base_micros
       << ", \"latency_jitter_micros\": "
       << platform_options.latency.jitter_micros << ", \"rows\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const PipelineLatencyRow& row = rows[i];
    json << (i == 0 ? "" : ", ") << "{\"source\": \"" << row.source
         << "\", \"mode\": \"" << row.mode
         << "\", \"depth\": " << row.depth << ", \"wall_ms\": " << row.wall_ms
         << ", \"logical_steps\": " << row.logical_steps
         << ", \"ms_per_step\": " << row.ms_per_step
         << ", \"paid\": " << row.paid << ", \"wasted\": " << row.wasted
         << ", \"spec_hits\": " << row.spec_hits
         << ", \"spec_mispredicts\": " << row.spec_mispredicts
         << ", \"hit_rate\": " << row.hit_rate
         << ", \"wasted_fraction\": " << row.wasted_fraction
         << ", \"overlapped_rounds\": " << row.overlapped_rounds
         << ", \"max_in_flight\": " << row.max_in_flight
         << ", \"speedup\": " << row.speedup << "}";
  }
  json << "]}\n";
  std::cout << "[pipeline] wrote " << json_path << "\n";
}

}  // namespace
}  // namespace crowdmax

// Custom main: google-benchmark rejects unknown flags, so --threads=N and
// --metrics are stripped from argv first; --threads=N is applied to every
// BM_Parallel* benchmark and --metrics turns the global metrics registry
// on, to measure the instrumented path against the (default) disabled one.
// --pipeline (or --pipeline_json=FILE) additionally runs the round-latency
// report above and writes its machine-readable twin; --pipeline_smoke runs
// the same report at smoke sizes/latencies (for the ctest registration,
// which exists to keep the report's bit-identity CHECKs exercised).
int main(int argc, char** argv) {
  std::string pipeline_json;
  bool pipeline_smoke = false;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      crowdmax::g_threads_override = std::strtoll(argv[i] + 10, nullptr, 10);
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0 ||
        std::strcmp(argv[i], "--metrics=true") == 0) {
      crowdmax::SetMetricsEnabled(true);
      continue;
    }
    if (std::strcmp(argv[i], "--pipeline") == 0) {
      pipeline_json = "BENCH_pipeline.json";
      continue;
    }
    if (std::strncmp(argv[i], "--pipeline_json=", 16) == 0) {
      pipeline_json = argv[i] + 16;
      continue;
    }
    if (std::strcmp(argv[i], "--pipeline_smoke") == 0) {
      pipeline_json = "BENCH_pipeline_smoke.json";
      pipeline_smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!pipeline_json.empty()) {
    crowdmax::RunPipelineLatencyReport(pipeline_json, pipeline_smoke);
  }
  return 0;
}
