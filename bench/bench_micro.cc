// Google-benchmark microbenchmarks for the core primitives: comparator
// throughput, all-play-all tournaments, Algorithm 2, 2-MaxFind, and the
// full two-phase pipeline. These quantify the simulator's raw speed (the
// paper's cost unit is worker comparisons, not CPU time, but a fast
// simulator is what makes the parameter sweeps in the other benches cheap).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/batched.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"
#include "core/tournament.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

// --threads=N (stripped from argv in main below) overrides the thread
// count of every BM_Parallel* benchmark; 0 keeps the per-benchmark Args.
int64_t g_threads_override = 0;

// Thread count for a parallel benchmark: the --threads override if given,
// else the benchmark's registered argument.
int64_t BenchThreads(const benchmark::State& state, int arg_index) {
  return g_threads_override > 0 ? g_threads_override
                                : state.range(arg_index);
}

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

void BM_ThresholdCompare(benchmark::State& state) {
  Instance instance = MakeInstance(1024, 1);
  ThresholdComparator cmp(&instance, ThresholdModel{0.01, 0.05}, 2);
  ElementId a = 0;
  for (auto _ : state) {
    const ElementId winner = cmp.Compare(a, (a + 1) & 1023);
    benchmark::DoNotOptimize(winner);
    a = (a + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThresholdCompare);

void BM_OracleCompare(benchmark::State& state) {
  Instance instance = MakeInstance(1024, 3);
  OracleComparator cmp(&instance);
  ElementId a = 0;
  for (auto _ : state) {
    const ElementId winner = cmp.Compare(a, (a + 1) & 1023);
    benchmark::DoNotOptimize(winner);
    a = (a + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OracleCompare);

void BM_MemoizedCompare(benchmark::State& state) {
  Instance instance = MakeInstance(1024, 5);
  OracleComparator oracle(&instance);
  MemoizingComparator memo(&oracle);
  ElementId a = 0;
  for (auto _ : state) {
    const ElementId winner = memo.Compare(a, (a + 1) & 1023);
    benchmark::DoNotOptimize(winner);
    a = (a + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoizedCompare);

void BM_AllPlayAll(benchmark::State& state) {
  const int64_t k = state.range(0);
  Instance instance = MakeInstance(k, 7);
  ThresholdComparator cmp(&instance, ThresholdModel{0.01, 0.0}, 8);
  const std::vector<ElementId> elements = instance.AllElements();
  for (auto _ : state) {
    TournamentResult result = AllPlayAll(elements, &cmp);
    benchmark::DoNotOptimize(result.wins.data());
  }
  state.SetItemsProcessed(state.iterations() * k * (k - 1) / 2);
}
BENCHMARK(BM_AllPlayAll)->Arg(16)->Arg(64)->Arg(256);

void BM_FilterPhase(benchmark::State& state) {
  const int64_t n = state.range(0);
  Instance instance = MakeInstance(n, 9);
  const double delta = instance.DeltaForU(10);
  FilterOptions options;
  options.u_n = instance.CountWithin(delta);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdComparator cmp(&instance, ThresholdModel{delta, 0.0},
                            state.iterations());
    state.ResumeTiming();
    Result<FilterResult> result =
        FilterCandidates(instance.AllElements(), options, &cmp);
    CROWDMAX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->candidates.data());
  }
}
BENCHMARK(BM_FilterPhase)->Arg(1000)->Arg(4000);

// Parallel filter phase: Args are {n, threads}. The paper's cost metric is
// worker comparisons (identical across thread counts by construction);
// this measures the simulator's wall-clock scaling. Sized at n >= 10^5 so
// each round has enough groups to occupy the pool.
void BM_ParallelFilterPhase(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t threads = BenchThreads(state, 1);
  Instance instance = MakeInstance(n, 15);
  const double delta = instance.DeltaForU(10);
  FilterOptions options;
  options.u_n = instance.CountWithin(delta);
  options.threads = threads;
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdComparator cmp(&instance, ThresholdModel{delta, 0.0},
                            state.iterations());
    state.ResumeTiming();
    Result<FilterResult> result =
        FilterCandidates(instance.AllElements(), options, &cmp);
    CROWDMAX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->candidates.data());
  }
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelFilterPhase)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Unit(benchmark::kMillisecond);

// Parallel batched comparisons: Args are {num_tasks, threads}.
void BM_ParallelBatchExecutor(benchmark::State& state) {
  const int64_t num_tasks = state.range(0);
  const int64_t threads = BenchThreads(state, 1);
  Instance instance = MakeInstance(1024, 17);
  ThresholdComparator cmp(&instance, ThresholdModel{0.01, 0.0}, 19);
  Result<std::unique_ptr<ParallelBatchExecutor>> executor =
      ParallelBatchExecutor::Create(&cmp, threads, /*seed=*/21);
  CROWDMAX_CHECK(executor.ok());
  std::vector<ComparisonPair> tasks;
  tasks.reserve(static_cast<size_t>(num_tasks));
  for (int64_t i = 0; i < num_tasks; ++i) {
    const ElementId a = static_cast<ElementId>(i & 1023);
    const ElementId b = static_cast<ElementId>((i + 7) & 1023);
    tasks.emplace_back(a, b == a ? ((a + 1) & 1023) : b);
  }
  for (auto _ : state) {
    std::vector<ElementId> winners = (*executor)->ExecuteBatch(tasks);
    benchmark::DoNotOptimize(winners.data());
  }
  state.SetItemsProcessed(state.iterations() * num_tasks);
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelBatchExecutor)
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 8});

void BM_TwoMaxFind(benchmark::State& state) {
  const int64_t n = state.range(0);
  Instance instance = MakeInstance(n, 11);
  const double delta = instance.DeltaForU(5);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdComparator cmp(&instance, ThresholdModel{delta, 0.0},
                            state.iterations());
    state.ResumeTiming();
    Result<MaxFindResult> result = TwoMaxFind(instance.AllElements(), &cmp);
    CROWDMAX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->best);
  }
}
BENCHMARK(BM_TwoMaxFind)->Arg(100)->Arg(1000);

void BM_ExpertMaxEndToEnd(benchmark::State& state) {
  const int64_t n = state.range(0);
  Instance instance = MakeInstance(n, 13);
  const double delta_n = instance.DeltaForU(10);
  const double delta_e = instance.DeltaForU(3);
  ExpertMaxOptions options;
  options.filter.u_n = instance.CountWithin(delta_n);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdComparator naive(&instance, ThresholdModel{delta_n, 0.0},
                              state.iterations() * 2);
    ThresholdComparator expert(&instance, ThresholdModel{delta_e, 0.0},
                               state.iterations() * 2 + 1);
    state.ResumeTiming();
    Result<ExpertMaxResult> result =
        FindMaxWithExperts(instance.AllElements(), &naive, &expert, options);
    CROWDMAX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->best);
  }
}
BENCHMARK(BM_ExpertMaxEndToEnd)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace crowdmax

// Custom main: google-benchmark rejects unknown flags, so --threads=N and
// --metrics are stripped from argv first; --threads=N is applied to every
// BM_Parallel* benchmark and --metrics turns the global metrics registry
// on, to measure the instrumented path against the (default) disabled one.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      crowdmax::g_threads_override = std::strtoll(argv[i] + 10, nullptr, 10);
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0 ||
        std::strcmp(argv[i], "--metrics=true") == 0) {
      crowdmax::SetMetricsEnabled(true);
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
