// Empirical companion to the lower bounds of Section 4.3:
//
//  (1) Corollary 1: any naive-only algorithm returning a guaranteed
//      candidate set of size <= n/2 needs >= n*u_n/4 comparisons. We show
//      Algorithm 2's measured comparison count sits between the lower
//      bound and its 4*n*u_n upper bound — optimal within a constant
//      factor (~16 between the two bounds).
//
//  (2) Lemma 7's adversarial instance: a filter that grants some element
//      fewer than u_n comparisons cannot certify that it is not the
//      maximum. We run a cheap local-probe filter (each element plays only
//      u_n/2 neighbours and must win a majority) on the Lemma 7 instance,
//      whose construction packs u_n - 1 indistinguishable decoys right
//      next to the planted maximum: the cheap filter discards the true
//      maximum in most runs, while Algorithm 2 never does.
//
// Flags: --trials (default 20), --seed, --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/filter_phase.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {500, 1000, 2000, 4000};

// A deliberately under-sampling naive-only filter: each element plays only
// u_n/2 neighbouring elements (the next ids, wrapping) and survives on a
// strict majority of wins. Cheap — fewer than u_n comparisons per element —
// and therefore, per Lemma 7, unsound: the adversary places the
// indistinguishable decoy block exactly where the probes land.
std::vector<ElementId> LocalProbeFilter(const Instance& instance,
                                        int64_t u_n, Comparator* naive) {
  const int64_t probes = std::max<int64_t>(1, u_n / 2);
  const int64_t n = instance.size();
  std::vector<ElementId> survivors;
  for (ElementId e = 0; e < n; ++e) {
    int64_t wins = 0;
    for (int64_t p = 1; p <= probes; ++p) {
      const ElementId other = static_cast<ElementId>((e + p) % n);
      if (naive->Compare(e, other) == e) ++wins;
    }
    if (2 * wins > probes) survivors.push_back(e);
  }
  return survivors;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 20);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Section 4.3", "lower bounds, empirically");

  // Part 1: Algorithm 2's cost between the Omega(n*u_n/4) lower bound and
  // the 4*n*u_n upper bound.
  TablePrinter bounds({"n", "u_n", "lower bound n*u/4", "Alg 2 measured",
                       "upper bound 4*n*u", "measured/lower"});
  for (int64_t n : kSizes) {
    const int64_t u_target = 10;
    double measured_sum = 0.0;
    int64_t realized_u = 0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed =
          seed + static_cast<uint64_t>(n) * 37 + static_cast<uint64_t>(t);
      Result<Instance> instance = UniformInstance(n, trial_seed);
      CROWDMAX_CHECK(instance.ok());
      const double delta = instance->DeltaForU(u_target);
      realized_u = instance->CountWithin(delta);
      ThresholdComparator naive(&*instance, ThresholdModel{delta, 0.0},
                                trial_seed + 1);
      FilterOptions options;
      options.u_n = realized_u;
      Result<FilterResult> result =
          FilterCandidates(instance->AllElements(), options, &naive);
      CROWDMAX_CHECK(result.ok());
      measured_sum += static_cast<double>(result->paid_comparisons);
    }
    const double measured = measured_sum / static_cast<double>(trials);
    const double lower =
        static_cast<double>(n) * static_cast<double>(realized_u) / 4.0;
    bounds.AddRow({FormatInt(n), FormatInt(realized_u), FormatDouble(lower, 0),
                   FormatDouble(measured, 0),
                   FormatInt(FilterComparisonUpperBound(n, realized_u)),
                   FormatDouble(measured / lower, 2)});
  }
  bench::EmitTable(bounds, flags,
                   "Corollary 1: Algorithm 2 within a constant factor of "
                   "the naive-comparison lower bound");

  // Part 2: the Lemma 7 instance defeats an under-sampling filter.
  int64_t sparse_dropped_max = 0;
  int64_t alg2_dropped_max = 0;
  const int64_t n = 1000;
  const int64_t u_n = 20;
  for (int64_t t = 0; t < trials; ++t) {
    const uint64_t trial_seed = seed + 5000 + static_cast<uint64_t>(t);
    Result<Lemma7Instance> built = MakeLemma7Instance(n, u_n, /*delta_n=*/1.0);
    CROWDMAX_CHECK(built.ok());
    const Instance& instance = built->instance;

    ThresholdComparator naive_a(&instance, ThresholdModel{1.0, 0.0},
                                trial_seed + 1);
    ThresholdComparator naive_b(&instance, ThresholdModel{1.0, 0.0},
                                trial_seed + 2);

    const std::vector<ElementId> sparse =
        LocalProbeFilter(instance, u_n, &naive_a);
    if (std::find(sparse.begin(), sparse.end(), built->claimed_max) ==
        sparse.end()) {
      ++sparse_dropped_max;
    }

    FilterOptions options;
    options.u_n = u_n;
    Result<FilterResult> alg2 =
        FilterCandidates(instance.AllElements(), options, &naive_b);
    CROWDMAX_CHECK(alg2.ok());
    if (std::find(alg2->candidates.begin(), alg2->candidates.end(),
                  built->claimed_max) == alg2->candidates.end()) {
      ++alg2_dropped_max;
    }
  }
  TablePrinter lemma7({"filter", "naive comparisons per element",
                       "runs dropping the true max"});
  lemma7.AddRow({"local probes (< u_n per element)",
                 FormatInt(std::max<int64_t>(1, u_n / 2)),
                 FormatInt(sparse_dropped_max) + "/" + FormatInt(trials)});
  lemma7.AddRow({"Algorithm 2 (>= u_n per survivor)", ">= " + FormatInt(u_n),
                 FormatInt(alg2_dropped_max) + "/" + FormatInt(trials)});
  bench::EmitTable(lemma7, flags,
                   "Lemma 7 instance (planted max behind a wall of "
                   "indistinguishable decoys)");
  std::cout << "\nExpected shape: the cheap filter drops the planted "
               "maximum in a large fraction of\nruns — any element with "
               "fewer than u_n comparisons could be the maximum — while\n"
               "Algorithm 2 never does.\n";
  return 0;
}
