// Service-scale bench: thousands of concurrent MAX / TOP-K / ABOVE
// queries multiplexed over one QueryService, reporting per-query latency
// percentiles (p50/p95/p99) and the total crowd spend of the run.
//
// The paper benches one query at a time; a deployment's figure of merit is
// the latency distribution under multi-tenant contention — the fair-share
// scheduler serializes crowd batch slots, so p99 reflects queueing, not
// just algorithm depth. The machine-readable twin goes to
// BENCH_service.json (override with --out).
//
// Flags:
//   --queries=N    total queries (default 1200; the committed artifact)
//   --threads=T    pool threads driving queries (default 8)
//   --capacity=C   concurrent crowd batch slots (default 8)
//   --smoke        64-query CI smoke run (skips the JSON artifact)
//   --out=PATH     JSON artifact path (default BENCH_service.json)
//   --repro=ID     replay query ID of the workload standalone through
//                  QueryService::ExecuteAlone (same hermetic seed, no
//                  contention) and print its outcome — the debugging path
//                  for a query that failed or was shed in the full run

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table.h"
#include "query/service.h"

namespace crowdmax {
namespace {

int64_t Percentile(std::vector<int64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 1;
  }
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t queries =
      smoke ? 64 : flags.GetBoundedInt("queries", 1200, 1, 1000000);
  const int64_t threads = flags.GetBoundedInt("threads", 8, 1, 64);
  const int64_t capacity = flags.GetBoundedInt("capacity", 8, 1, 256);
  const std::string out_path =
      flags.GetString("out", "BENCH_service.json");

  bench::PrintHeader(
      "BENCH_service",
      "multi-tenant query service: latency percentiles + crowd spend");

  // Four shards of the paper's standard simulation input.
  std::vector<bench::TwoClassSetup> setups;
  for (int64_t s = 0; s < 4; ++s) {
    setups.push_back(bench::MakeTwoClassSetup(
        80 + 20 * s, 4, 1, 100 + static_cast<uint64_t>(s)));
  }
  QueryServiceOptions options;
  for (const bench::TwoClassSetup& setup : setups) {
    options.shards.push_back(
        {&setup.instance, setup.delta_n, setup.delta_e});
  }
  options.threads = threads;
  options.capacity = capacity;

  // The workload: a deterministic mix of kinds, u_n values and budgets; a
  // slice of the specs carries an unmeetable budget to exercise typed
  // admission rejections at scale.
  std::vector<QuerySpec> specs;
  specs.reserve(static_cast<size_t>(queries));
  for (int64_t i = 0; i < queries; ++i) {
    QuerySpec spec;
    spec.tenant = "tenant" + std::to_string(i);
    spec.shard = i % static_cast<int64_t>(options.shards.size());
    spec.seed = 10000 + static_cast<uint64_t>(i) * 61;
    spec.prices = CostModel{1.0, 40.0};
    switch (i % 5) {
      case 0:
      case 3:
        spec.kind = QueryKind::kMax;
        spec.u_n = 2 + i % 4;
        break;
      case 1:
        spec.kind = QueryKind::kTopK;
        spec.u_n = 2;
        spec.k = 1 + i % 3;
        break;
      case 2:
        spec.kind = QueryKind::kAbove;
        spec.anchor = i % 11;
        spec.above.votes_per_item = 3;
        break;
      default:
        spec.kind = QueryKind::kMax;
        spec.u_n = 3;
        if (i % 25 == 4) spec.budget = 1.0;  // Typed rejection slice.
        break;
    }
    specs.push_back(spec);
  }

  // --repro=ID: the per-query determinism contract makes any query of the
  // workload reproducible in isolation — ExecuteAlone rebuilds the tenant's
  // hermetically seeded stack and replays it without the service around it.
  const int64_t repro = flags.GetInt("repro", -1);
  if (repro >= 0) {
    if (repro >= queries) {
      std::cerr << "--repro=" << repro << " out of range (workload has "
                << queries << " queries)\n";
      return 1;
    }
    const QuerySpec& spec = specs[static_cast<size_t>(repro)];
    Result<QueryOutcome> outcome = QueryService::ExecuteAlone(options, spec);
    if (!outcome.ok()) {
      std::cerr << "repro failed to execute: " << outcome.status().ToString()
                << "\n";
      return 1;
    }
    std::cout << "repro query " << repro << " (tenant=" << spec.tenant
              << ", kind=" << QueryKindName(spec.kind)
              << ", shard=" << spec.shard << ", seed=" << spec.seed << ")\n"
              << "  status:       " << outcome->status.ToString() << "\n"
              << "  admitted:     " << (outcome->admitted ? "yes" : "no")
              << "\n"
              << "  best:         " << outcome->best << "\n"
              << "  paid:         naive=" << outcome->paid.naive
              << " expert=" << outcome->paid.expert << "\n"
              << "  cost:         " << outcome->cost << "\n"
              << "  steps:        naive=" << outcome->naive_steps
              << " expert=" << outcome->expert_steps << "\n"
              << "  cache_hits:   " << outcome->cache_hits << "\n"
              << "  partial:      " << (outcome->partial ? "yes" : "no")
              << (outcome->partial
                      ? " (" + outcome->fault_status.ToString() + ")"
                      : "")
              << "\n";
    return 0;
  }

  Result<QueryService> service = QueryService::Create(options);
  CROWDMAX_CHECK(service.ok());
  Result<ServiceRunResult> run = service->Run(specs);
  CROWDMAX_CHECK(run.ok());

  std::vector<int64_t> latencies;
  latencies.reserve(run->outcomes.size());
  for (const QueryOutcome& outcome : run->outcomes) {
    if (outcome.admitted) latencies.push_back(outcome.latency_micros);
  }
  std::sort(latencies.begin(), latencies.end());
  const int64_t p50 = Percentile(latencies, 0.50);
  const int64_t p95 = Percentile(latencies, 0.95);
  const int64_t p99 = Percentile(latencies, 0.99);
  const ServiceReport& report = run->report;

  TablePrinter table({"queries", "admitted", "rejected", "p50_us", "p95_us",
                      "p99_us", "paid_naive", "paid_expert", "spend"});
  table.AddRow({std::to_string(report.queries),
                std::to_string(report.admitted),
                std::to_string(report.rejected_budget +
                               report.rejected_deadline +
                               report.rejected_invalid),
                std::to_string(p50), std::to_string(p95),
                std::to_string(p99), std::to_string(report.paid.naive),
                std::to_string(report.paid.expert),
                std::to_string(report.spend)});
  bench::EmitTable(table, flags, "Service run (threads=" +
                                     std::to_string(threads) + ", capacity=" +
                                     std::to_string(capacity) + ")");

  if (smoke) {
    // CI smoke contract: every admitted query completed or failed typed,
    // and the rejection slice produced typed budget rejections.
    CROWDMAX_CHECK(report.completed == report.admitted);
    CROWDMAX_CHECK(report.rejected_budget > 0);
    std::cout << "\nsmoke: OK (" << report.completed << " completed, "
              << report.rejected_budget << " typed budget rejections)\n";
    return 0;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\"bench\": \"service_latency\", \"queries\": " << report.queries
      << ", \"threads\": " << threads << ", \"capacity\": " << capacity
      << ", \"admitted\": " << report.admitted
      << ", \"rejected_budget\": " << report.rejected_budget
      << ", \"rejected_deadline\": " << report.rejected_deadline
      << ", \"rejected_invalid\": " << report.rejected_invalid
      << ", \"completed\": " << report.completed
      << ", \"p50_micros\": " << p50 << ", \"p95_micros\": " << p95
      << ", \"p99_micros\": " << p99
      << ", \"paid_naive\": " << report.paid.naive
      << ", \"paid_expert\": " << report.paid.expert
      << ", \"total_spend\": " << report.spend
      << ", \"cache_hits\": " << report.cache_hits
      << ", \"logical_steps\": " << report.logical_steps
      << ", \"scheduler_grants\": " << report.scheduler_grants
      << ", \"max_grants_behind\": " << report.max_grants_behind << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) { return crowdmax::Main(argc, argv); }
