// Reproduces Table 2 and the surrounding CARS experiment (Section 5.3):
// two runs of Algorithm 1 on 50 cars over the simulated platform, with
// "experts" simulated as majority-of-7 naive votes. The paper's findings:
// the most expensive car always reaches the final round, but the simulated
// experts cannot identify it (in contrast to DOTS), some cars far from the
// top-10 reach the final round, and naive-only 2-MaxFind never returned the
// true maximum in 14 runs. A truly informed expert is required.
//
// Flags: --u_n (default 5, the paper's choice), --seed, --runs_2mf
//        (default 14), --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/single_class.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "core/batched.h"
#include "core/filter_phase.h"
#include "core/round_engine.h"
#include "core/tournament.h"
#include "core/worker_model.h"
#include "datasets/cars.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

// Cross-phase dedup measurement (DESIGN.md §11). CARS's final round also
// buys its "expert" answers from the same naive crowd (majority of 7), so
// both phases share one worker class and one SharedPairCache class: every
// survivor pair the filter already resolved is served from phase-1
// evidence instead of being re-bought at the 7-vote rate.
struct DedupOutcome {
  std::vector<ElementId> candidates;
  int64_t expert_issued = 0;
  int64_t expert_paid = 0;
  int64_t expert_hits = 0;
  ElementId pick = -1;
};

DedupOutcome RunTwoPhase(const Instance& instance, int64_t u_n, uint64_t seed,
                         bool share_evidence) {
  PersistentBiasComparator crowd_model(&instance, CarsWorkerModel(), seed);
  PlatformOptions platform_options;
  platform_options.num_workers = 50;
  platform_options.spammer_fraction = 0.08;
  platform_options.seed = seed + 1;
  auto platform =
      CrowdPlatform::Create(&crowd_model, &instance, {}, platform_options);
  CROWDMAX_CHECK(platform.ok());
  auto naive = PlatformBatchExecutor::Create(platform->get(), /*votes=*/3);
  auto expert = PlatformBatchExecutor::Create(platform->get(), /*votes=*/7);
  CROWDMAX_CHECK(naive.ok() && expert.ok());

  SharedPairCache cache;
  FilterOptions filter;
  filter.u_n = u_n;
  filter.memoize = true;
  if (share_evidence) {
    filter.shared_cache = &cache;
    filter.cache_class = 0;  // One class: both phases buy from this crowd.
  }
  Result<BatchedFilterResult> phase1 =
      BatchedFilterCandidates(instance.AllElements(), filter, naive->get());
  CROWDMAX_CHECK(phase1.ok());

  Result<std::unique_ptr<RoundEngine>> finals_engine =
      RoundEngine::CreateBatched(expert->get(),
                                 share_evidence ? &cache : nullptr,
                                 /*cache_class=*/0);
  CROWDMAX_CHECK(finals_engine.ok());
  Result<TournamentEngineRun> finals = RunTournamentOnEngine(
      phase1->filter.candidates, finals_engine->get());
  CROWDMAX_CHECK(finals.ok());

  DedupOutcome outcome;
  outcome.candidates = phase1->filter.candidates;
  outcome.expert_issued = (*finals_engine)->issued();
  outcome.expert_paid = (*finals_engine)->paid();
  outcome.expert_hits = (*finals_engine)->cache_hits();
  outcome.pick = outcome.candidates[IndexOfMostWins(finals->tournament)];
  return outcome;
}

void ReportCrossPhaseDedup(const Instance& instance, int64_t u_n,
                           uint64_t seed) {
  const DedupOutcome baseline = RunTwoPhase(instance, u_n, seed, false);
  const DedupOutcome dedup = RunTwoPhase(instance, u_n, seed, true);
  CROWDMAX_CHECK(baseline.candidates == dedup.candidates);
  const double saved =
      baseline.expert_paid > 0
          ? 100.0 * static_cast<double>(baseline.expert_paid -
                                        dedup.expert_paid) /
                static_cast<double>(baseline.expert_paid)
          : 0.0;
  std::cout << "\n[cross-phase dedup] simulated-expert regime (one worker "
               "class), final round over "
            << baseline.candidates.size() << " survivors:\n"
            << "  baseline expert comparisons: " << baseline.expert_paid
            << "\n  with shared pair cache:      " << dedup.expert_paid
            << " paid, " << dedup.expert_hits << " of " << dedup.expert_issued
            << " served from phase-1 evidence (" << FormatDouble(saved, 1)
            << "% expert spend saved)\n"
            << "  final pick: baseline=" << baseline.pick
            << " dedup=" << dedup.pick
            << " true max=" << instance.MaxElement() << "\n";
}

struct ExperimentOutcome {
  std::map<ElementId, int64_t> final_positions;
  std::vector<ElementId> candidates;
  ElementId simulated_expert_pick = -1;
  ElementId true_expert_pick = -1;
};

ExperimentOutcome RunExperiment(const Instance& instance, int64_t u_n,
                                uint64_t seed) {
  PersistentBiasComparator crowd_model(&instance, CarsWorkerModel(), seed);

  PlatformOptions platform_options;
  platform_options.num_workers = 50;
  platform_options.spammer_fraction = 0.08;
  platform_options.seed = seed + 1;
  std::vector<ComparisonTask> gold_tasks;
  for (ElementId a = 0; a + 25 < instance.size(); ++a) {
    gold_tasks.push_back({a, static_cast<ElementId>(a + 25)});
  }
  auto platform = CrowdPlatform::Create(&crowd_model, &instance, gold_tasks,
                                        platform_options);
  CROWDMAX_CHECK(platform.ok());

  // Majority-of-3 naive votes in phase 1 (damps per-query slips), 7-vote
  // "simulated experts" in the final round, as in the paper's protocol.
  PlatformComparator naive(platform->get(), /*votes_per_task=*/3);
  PlatformComparator simulated_expert(platform->get(), /*votes_per_task=*/7);

  FilterOptions filter;
  filter.u_n = u_n;
  Result<FilterResult> phase1 =
      FilterCandidates(instance.AllElements(), filter, &naive);
  CROWDMAX_CHECK(phase1.ok());

  const TournamentResult finals =
      AllPlayAll(phase1->candidates, &simulated_expert);
  const std::vector<ElementId> ranked =
      OrderByWins(phase1->candidates, finals);

  ExperimentOutcome outcome;
  outcome.candidates = phase1->candidates;
  for (size_t pos = 0; pos < ranked.size(); ++pos) {
    outcome.final_positions[ranked[pos]] = static_cast<int64_t>(pos) + 1;
  }
  outcome.simulated_expert_pick = ranked[0];

  // What a true expert (a car-pricing professional: resolves every >= $500
  // gap) would return on the same candidate set.
  ThresholdComparator true_expert(&instance, ThresholdModel{400.0, 0.0},
                                  seed + 2);
  Result<MaxFindResult> expert_run =
      TwoMaxFind(phase1->candidates, &true_expert);
  CROWDMAX_CHECK(expert_run.ok());
  outcome.true_expert_pick = expert_run->best;
  return outcome;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t u_n = flags.GetInt("u_n", 5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int64_t runs_2mf = flags.GetInt("runs_2mf", 14);

  bench::PrintHeader("Table 2",
                     "CARS on the simulated platform: final-round ranking");

  CarsDataset catalog = CarsDataset::Standard(seed);
  Result<CarsDataset> sampled = catalog.Sample(50, seed + 1);
  CROWDMAX_CHECK(sampled.ok());
  Instance instance = sampled->ToInstance();

  const ExperimentOutcome exp1 = RunExperiment(instance, u_n, seed + 10);
  const ExperimentOutcome exp2 = RunExperiment(instance, u_n, seed + 20);

  // Rows: the true top-19 cars by price, as in Table 2.
  std::vector<ElementId> by_rank = instance.AllElements();
  std::sort(by_rank.begin(), by_rank.end(), [&](ElementId a, ElementId b) {
    return instance.value(a) > instance.value(b);
  });

  TablePrinter table({"car", "price", "Exp. 1", "Exp. 2"});
  for (size_t i = 0; i < 19 && i < by_rank.size(); ++i) {
    const ElementId e = by_rank[i];
    const Car& car = sampled->cars()[static_cast<size_t>(e)];
    auto fmt = [&](const ExperimentOutcome& exp) -> std::string {
      auto it = exp.final_positions.find(e);
      return it == exp.final_positions.end() ? "-" : FormatInt(it->second);
    };
    std::string price = "$";
    price += FormatInt(static_cast<int64_t>(car.price));
    table.AddRow({std::to_string(car.year) + " " + car.make + " " + car.model,
                  std::move(price), fmt(exp1), fmt(exp2)});
  }
  bench::EmitTable(table, flags,
                   "Final-round position of the true top-19 cars ('-' = "
                   "eliminated in phase 1)");

  const ElementId best = instance.MaxElement();
  auto report = [&](const char* name, const ExperimentOutcome& exp) {
    std::cout << name << ": top car reached final round = "
              << (exp.final_positions.count(best) ? "yes" : "NO")
              << "; simulated experts picked the top car = "
              << (exp.simulated_expert_pick == best ? "yes" : "NO")
              << "; a true expert on the same candidates picks it = "
              << (exp.true_expert_pick == best ? "yes" : "NO") << "\n";
  };
  std::cout << "\n";
  report("Exp. 1", exp1);
  report("Exp. 2", exp2);
  std::cout << "Paper: the top car always reached the final round, but "
               "simulated experts (7 naive\nvotes) failed to identify it — "
               "real expertise is required in the CARS regime.\n";

  ReportCrossPhaseDedup(instance, u_n, seed + 10);

  // Companion statistic: naive-only 2-MaxFind, 14 runs; paper reports the
  // true maximum was returned in none of them.
  int correct = 0;
  std::map<int64_t, int> returned_rank_histogram;
  for (int64_t r = 0; r < runs_2mf; ++r) {
    PersistentBiasComparator crowd_model(&instance, CarsWorkerModel(),
                                         seed + 100 + static_cast<uint64_t>(r));
    PlatformOptions platform_options;
    platform_options.num_workers = 50;
    platform_options.spammer_fraction = 0.08;
    platform_options.seed = seed + 200 + static_cast<uint64_t>(r);
    auto platform =
        CrowdPlatform::Create(&crowd_model, &instance, {}, platform_options);
    CROWDMAX_CHECK(platform.ok());
    // Each 2-MaxFind comparison aggregates 7 worker answers — still not
    // enough in the CARS regime, where the crowd's bias is persistent.
    PlatformComparator naive(platform->get(), 7);
    Result<SingleClassResult> result =
        TwoMaxFindNaiveOnly(instance.AllElements(), &naive);
    CROWDMAX_CHECK(result.ok());
    if (result->best == instance.MaxElement()) ++correct;
    ++returned_rank_histogram[instance.Rank(result->best)];
  }
  std::cout << "\nNaive-only 2-MaxFind: " << correct << "/" << runs_2mf
            << " runs returned the most expensive car (paper: 0/14).\n"
            << "Rank histogram of returned cars:";
  for (const auto& [rank, count] : returned_rank_histogram) {
    std::cout << " rank" << rank << "x" << count;
  }
  std::cout << "\n";
  return 0;
}
