// Fault sweep: Algorithm 1 (batched) over ResilientBatchExecutor on a
// faulty DOTS platform, sweeping the abandonment rate while churn rides
// along. For each fault level the bench reports whether the true maximum
// was found, the extra logical steps recovery cost, the votes lost, and
// the rest of the FaultReport — the robustness counterpart of the Table 1
// bench, with EXPERIMENTS.md recording the measured rows.
//
// Flags: --fault_abandon_p (default sweeps {0, 0.05, 0.1, 0.2, 0.3};
//        setting the flag pins a single value), --fault_churn_p (default
//        0.05), --fault_seed (default 1), --max_retries (default 6),
//        --min_votes (default 2), --n (default 30), --u_n (default 5),
//        --seeds (default 3 fault seeds per level), --csv.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/async_executor.h"
#include "core/batched.h"
#include "core/resilient.h"
#include "core/worker_model.h"
#include "datasets/dots.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

struct SweepRow {
  double abandon_p = 0.0;
  uint64_t fault_seed = 0;
  bool found_max = false;
  bool partial = false;
  int64_t naive_steps = 0;
  int64_t expert_steps = 0;
  FaultReport naive_faults;
  FaultReport expert_faults;
  PlatformFaultStats platform_stats;
};

SweepRow RunOnce(const Instance& instance, double abandon_p, double churn_p,
                 uint64_t fault_seed, int64_t max_retries, int64_t min_votes,
                 int64_t u_n) {
  RelativeErrorComparator crowd(&instance, DotsWorkerModel(),
                                fault_seed * 101 + 3);
  // Per-run trace: every comparison this run dispatches lands in exactly
  // one (phase, round, class, disposition) cell, reconciled against the
  // executor and platform tallies by the auditor below. Shadows the
  // session-wide trace (if any) for the duration of the run.
  AlgoTrace trace;
  ScopedTrace scoped_trace(&trace);

  FaultOptions fault;
  fault.abandon_probability = abandon_p;
  fault.churn_probability = churn_p;
  fault.min_quorum = min_votes;
  fault.seed = fault_seed;

  PlatformOptions options;
  options.num_workers = 40;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  options.seed = fault_seed * 31 + 7;
  options.fault = fault;

  auto platform = CrowdPlatform::Create(&crowd, &instance, {}, options);
  CROWDMAX_CHECK(platform.ok());

  auto naive_executor =
      PlatformBatchExecutor::Create(platform->get(), /*votes=*/3);
  auto expert_executor =
      PlatformBatchExecutor::Create(platform->get(), /*votes=*/7);
  CROWDMAX_CHECK(naive_executor.ok() && expert_executor.ok());

  ResilientOptions resilient_options;
  resilient_options.max_retries = max_retries;
  resilient_options.min_votes = min_votes;
  auto naive = ResilientBatchExecutor::Create(naive_executor->get(),
                                              resilient_options);
  auto expert = ResilientBatchExecutor::Create(expert_executor->get(),
                                               resilient_options);
  CROWDMAX_CHECK(naive.ok() && expert.ok());

  ExpertMaxOptions algo;
  algo.filter.u_n = u_n;
  Result<BatchedExpertMaxResult> result = BatchedFindMaxWithExperts(
      instance.AllElements(), naive->get(), expert->get(), algo);
  CROWDMAX_CHECK(result.ok());

  // End-of-run reconciliation: the four tallies (per-phase paid stats,
  // resilient executor counters, platform fault stats, trace cells) must
  // agree, and every cell must satisfy
  // dispatched = answered + no_quorum + dropped.
  MetricsAuditor auditor(&trace);
  auditor.ExpectPaidStats(result->result.paid);
  auditor.ExpectDispatchedTotal((*naive)->comparisons() +
                                (*expert)->comparisons());
  auditor.ExpectTaskFaults((*platform)->fault_stats().dropped_tasks,
                           (*platform)->fault_stats().no_quorum_tasks);
  const Status audit = auditor.Check();
  if (!audit.ok()) std::cerr << audit.ToString() << "\n";
  CROWDMAX_CHECK(audit.ok());

  SweepRow row;
  row.abandon_p = abandon_p;
  row.fault_seed = fault_seed;
  row.found_max = result->result.best == instance.MaxElement();
  row.partial = result->partial;
  row.naive_steps = result->naive_steps;
  row.expert_steps = result->expert_steps;
  row.naive_faults = result->naive_faults;
  row.expert_faults = result->expert_faults;
  row.platform_stats = (*platform)->fault_stats();
  return row;
}

// Thread-count audit: the injected-fault pipeline
// Resilient(FaultInjecting(Parallel)) replayed at `threads`, with the
// auditor reconciling trace, executor and injector tallies. Returns the
// trace summary so callers can also assert bit-identical traces across
// thread counts.
std::string AuditInjectedPipeline(const Instance& instance, int64_t threads,
                                  uint64_t seed, int64_t u_n) {
  RelativeErrorComparator crowd(&instance, DotsWorkerModel(), seed * 59 + 11);
  auto pool = ParallelBatchExecutor::Create(&crowd, threads, seed * 17 + 1);
  CROWDMAX_CHECK(pool.ok());

  InjectedFaultOptions inject;
  inject.drop_probability = 0.1;
  inject.no_quorum_probability = 0.1;
  inject.partial_votes = 1;
  inject.seed = seed;
  auto injector = FaultInjectingBatchExecutor::Create(pool->get(), inject);
  CROWDMAX_CHECK(injector.ok());

  ResilientOptions recovery;
  recovery.max_retries = 6;
  recovery.min_votes = 2;
  recovery.fallback = SmallerIdFallback;
  auto resilient = ResilientBatchExecutor::Create(injector->get(), recovery);
  CROWDMAX_CHECK(resilient.ok());

  AlgoTrace trace;
  ScopedTrace scoped_trace(&trace);
  FilterOptions filter;
  filter.u_n = u_n;
  auto filtered =
      BatchedFilterCandidates(instance.AllElements(), filter, resilient->get());
  CROWDMAX_CHECK(filtered.ok());

  MetricsAuditor auditor(&trace);
  auditor.ExpectDispatched(TraceWorkerClass::kNaive,
                           (*resilient)->comparisons());
  auditor.ExpectDispatchedTotal((*injector)->comparisons());
  // The inner pool never saw the injected drops; adding them back must
  // reconcile with the same trace total.
  auditor.ExpectDispatchedTotal((*pool)->comparisons() +
                                (*injector)->injected_drops());
  auditor.ExpectTaskFaults((*injector)->injected_drops(),
                           (*injector)->injected_no_quorums());
  const Status audit = auditor.Check();
  if (!audit.ok()) std::cerr << audit.ToString() << "\n";
  CROWDMAX_CHECK(audit.ok());
  return trace.Summary();
}

// A fresh faulty-platform stack (crowd -> platform -> per-class platform
// executors -> resilient decorators), so each audited run owns its
// counters.
struct FaultyStack {
  std::unique_ptr<RelativeErrorComparator> crowd;
  std::unique_ptr<CrowdPlatform> platform;
  std::unique_ptr<PlatformBatchExecutor> naive_platform;
  std::unique_ptr<PlatformBatchExecutor> expert_platform;
  std::unique_ptr<ResilientBatchExecutor> naive;
  std::unique_ptr<ResilientBatchExecutor> expert;
};

FaultyStack MakeFaultyStack(const Instance& instance, double abandon_p,
                            double churn_p, uint64_t fault_seed,
                            int64_t max_retries, int64_t min_votes) {
  FaultyStack stack;
  stack.crowd = std::make_unique<RelativeErrorComparator>(
      &instance, DotsWorkerModel(), fault_seed * 101 + 3);

  FaultOptions fault;
  fault.abandon_probability = abandon_p;
  fault.churn_probability = churn_p;
  fault.min_quorum = min_votes;
  fault.seed = fault_seed;

  PlatformOptions options;
  options.num_workers = 40;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  options.seed = fault_seed * 31 + 7;
  options.fault = fault;

  auto platform =
      CrowdPlatform::Create(stack.crowd.get(), &instance, {}, options);
  CROWDMAX_CHECK(platform.ok());
  stack.platform = std::move(platform).value();

  auto naive_platform =
      PlatformBatchExecutor::Create(stack.platform.get(), /*votes=*/3);
  auto expert_platform =
      PlatformBatchExecutor::Create(stack.platform.get(), /*votes=*/7);
  CROWDMAX_CHECK(naive_platform.ok() && expert_platform.ok());
  stack.naive_platform = std::move(naive_platform).value();
  stack.expert_platform = std::move(expert_platform).value();

  ResilientOptions resilient_options;
  resilient_options.max_retries = max_retries;
  resilient_options.min_votes = min_votes;
  auto naive = ResilientBatchExecutor::Create(stack.naive_platform.get(),
                                              resilient_options);
  auto expert = ResilientBatchExecutor::Create(stack.expert_platform.get(),
                                               resilient_options);
  CROWDMAX_CHECK(naive.ok() && expert.ok());
  stack.naive = std::move(naive).value();
  stack.expert = std::move(expert).value();
  return stack;
}

// The engine-executed strategies that joined the batched surface with the
// RoundEngine refactor — top-k and the multilevel cascade — must reconcile
// under the auditor on the faulty platform exactly like Algorithm 1 above.
void AuditEngineExecutedStrategies(const Instance& instance, double abandon_p,
                                   double churn_p, uint64_t fault_seed,
                                   int64_t max_retries, int64_t min_votes,
                                   int64_t u_n) {
  {
    FaultyStack stack = MakeFaultyStack(instance, abandon_p, churn_p,
                                        fault_seed, max_retries, min_votes);
    AlgoTrace trace;
    ScopedTrace scoped_trace(&trace);
    TopKOptions topk;
    topk.k = 3;
    topk.filter.u_n = u_n;
    Result<BatchedTopKResult> result = BatchedFindTopKWithExperts(
        instance.AllElements(), stack.naive.get(), stack.expert.get(), topk);
    CROWDMAX_CHECK(result.ok());

    MetricsAuditor auditor(&trace);
    auditor.ExpectPaidStats(result->result.paid);
    auditor.ExpectDispatchedTotal(stack.naive->comparisons() +
                                  stack.expert->comparisons());
    auditor.ExpectTaskFaults(stack.platform->fault_stats().dropped_tasks,
                             stack.platform->fault_stats().no_quorum_tasks);
    const Status audit = auditor.Check();
    if (!audit.ok()) std::cerr << "topk: " << audit.ToString() << "\n";
    CROWDMAX_CHECK(audit.ok());
  }
  {
    FaultyStack stack = MakeFaultyStack(instance, abandon_p, churn_p,
                                        fault_seed, max_retries, min_votes);
    AlgoTrace trace;
    ScopedTrace scoped_trace(&trace);
    std::vector<BatchedWorkerClassSpec> classes = {
        {stack.naive.get(), u_n, 1.0}, {stack.expert.get(), 1, 40.0}};
    Result<BatchedMultilevelResult> result = BatchedFindMaxMultilevel(
        instance.AllElements(), classes, MultilevelOptions{});
    CROWDMAX_CHECK(result.ok());

    MetricsAuditor auditor(&trace);
    auditor.ExpectDispatched(TraceWorkerClass::kNaive,
                             result->result.paid_per_class[0]);
    auditor.ExpectDispatched(TraceWorkerClass::kExpert,
                             result->result.paid_per_class[1]);
    auditor.ExpectDispatchedTotal(stack.naive->comparisons() +
                                  stack.expert->comparisons());
    auditor.ExpectTaskFaults(stack.platform->fault_stats().dropped_tasks,
                             stack.platform->fault_stats().no_quorum_tasks);
    const Status audit = auditor.Check();
    if (!audit.ok()) std::cerr << "multilevel: " << audit.ToString() << "\n";
    CROWDMAX_CHECK(audit.ok());
  }
}

// Pipelining on, faults on: the depth-8 pipelined filter over the faulty
// (and latency-simulating) platform must reconcile under the auditor and
// replay the synchronous drive's trace byte for byte — recovery actions,
// fault tallies and all. Returns the trace summary of one run.
std::string AuditPipelinedFaultyPlatform(const Instance& instance,
                                         double abandon_p, double churn_p,
                                         uint64_t fault_seed,
                                         int64_t max_retries,
                                         int64_t min_votes, int64_t u_n,
                                         bool pipelined) {
  FaultyStack stack = MakeFaultyStack(instance, abandon_p, churn_p, fault_seed,
                                      max_retries, min_votes);
  AlgoTrace trace;
  ScopedTrace scoped_trace(&trace);
  FilterOptions filter;
  filter.u_n = u_n;
  filter.memoize = true;
  filter.pipeline_groups = true;
  Result<BatchedFilterResult> result = [&] {
    if (pipelined) {
      AsyncBatchAdapter async(stack.naive.get());
      BatchedPipelineOptions pipeline;
      pipeline.max_in_flight = 8;
      return PipelinedFilterCandidates(instance.AllElements(), filter, &async,
                                       pipeline);
    }
    return BatchedFilterCandidates(instance.AllElements(), filter,
                                   stack.naive.get());
  }();
  CROWDMAX_CHECK(result.ok());

  MetricsAuditor auditor(&trace);
  auditor.ExpectDispatched(TraceWorkerClass::kNaive,
                           stack.naive->comparisons());
  auditor.ExpectTaskFaults(stack.platform->fault_stats().dropped_tasks,
                           stack.platform->fault_stats().no_quorum_tasks);
  const Status audit = auditor.Check();
  if (!audit.ok()) std::cerr << "pipelined: " << audit.ToString() << "\n";
  CROWDMAX_CHECK(audit.ok());
  return trace.Summary();
}

int Main(int argc, char** argv) {
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const double churn_p = flags.GetDouble("fault_churn_p", 0.05);
  const int64_t max_retries = flags.GetBoundedInt("max_retries", 6, 0, 64);
  const int64_t min_votes = flags.GetBoundedInt("min_votes", 2, 1, 64);
  const int64_t n = flags.GetBoundedInt("n", 30, 5, 2000);
  const int64_t u_n = flags.GetBoundedInt("u_n", 5, 1, 100);
  const int64_t seeds = flags.GetBoundedInt("seeds", 3, 1, 64);
  const uint64_t first_seed =
      static_cast<uint64_t>(flags.GetInt("fault_seed", 1));

  std::vector<double> abandon_levels = {0.0, 0.05, 0.1, 0.2, 0.3};
  const double pinned = flags.GetDouble("fault_abandon_p", -1.0);
  if (pinned >= 0.0) abandon_levels = {pinned};

  bench::PrintHeader(
      "Fault sweep",
      "Algorithm 1 over ResilientBatchExecutor on a faulty DOTS platform");
  std::cout << "churn_p=" << churn_p << " max_retries=" << max_retries
            << " min_votes=" << min_votes << " n=" << n << " u_n=" << u_n
            << " seeds=" << seeds << "\n";

  DotsDataset dots = DotsDataset::Standard();
  Result<DotsDataset> sampled = dots.Sample(n, /*seed=*/123);
  CROWDMAX_CHECK(sampled.ok());
  const Instance instance = sampled->ToInstance();

  TablePrinter table({"abandon_p", "hit_rate", "partial", "steps",
                      "steps_added", "votes_lost", "retried", "relaxed",
                      "degraded", "churned"});
  for (double abandon_p : abandon_levels) {
    int64_t hits = 0;
    int64_t partials = 0;
    int64_t steps = 0;
    int64_t steps_added = 0;
    int64_t votes_lost = 0;
    int64_t retried = 0;
    int64_t relaxed = 0;
    int64_t degraded = 0;
    int64_t churned = 0;
    SweepRow last_row;
    for (int64_t s = 0; s < seeds; ++s) {
      const SweepRow row = RunOnce(instance, abandon_p, churn_p,
                                   first_seed + static_cast<uint64_t>(s),
                                   max_retries, min_votes, u_n);
      hits += row.found_max ? 1 : 0;
      partials += row.partial ? 1 : 0;
      steps += row.naive_steps + row.expert_steps;
      steps_added +=
          row.naive_faults.steps_added + row.expert_faults.steps_added;
      votes_lost +=
          row.naive_faults.votes_lost + row.expert_faults.votes_lost;
      retried +=
          row.naive_faults.retried_tasks + row.expert_faults.retried_tasks;
      relaxed += row.naive_faults.relaxed_accepts +
                 row.expert_faults.relaxed_accepts;
      degraded +=
          row.naive_faults.degraded_tasks + row.expert_faults.degraded_tasks;
      churned += row.platform_stats.churned_workers;
      last_row = row;
    }
    table.AddRow({FormatDouble(abandon_p, 2),
                  FormatDouble(static_cast<double>(hits) /
                                   static_cast<double>(seeds),
                               2),
                  FormatInt(partials), FormatInt(steps),
                  FormatInt(steps_added), FormatInt(votes_lost),
                  FormatInt(retried), FormatInt(relaxed),
                  FormatInt(degraded), FormatInt(churned)});
    std::cout << "abandon_p=" << FormatDouble(abandon_p, 2)
              << " last naive report: " << last_row.naive_faults.ToString()
              << "\n"
              << "            last expert report: "
              << last_row.expert_faults.ToString() << "\n";
  }
  bench::EmitTable(table, flags,
                   "Recovery cost and accuracy vs abandonment rate "
                   "(averaged over fault seeds)");

  // Accounting audit at thread counts 1 and 8: the injected-fault pipeline
  // must reconcile (auditor aborts on mismatch) and produce bit-identical
  // traces at both thread counts.
  const std::string serial_summary =
      AuditInjectedPipeline(instance, /*threads=*/1, first_seed, u_n);
  const std::string parallel_summary =
      AuditInjectedPipeline(instance, /*threads=*/8, first_seed, u_n);
  CROWDMAX_CHECK(serial_summary == parallel_summary);
  std::cout << "\nmetrics audit: reconciled at threads 1 and 8 "
               "(traces bit-identical)\n";

  // Same reconciliation for the engine-executed top-k and multilevel
  // strategies, under a moderate fault level.
  AuditEngineExecutedStrategies(instance, /*abandon_p=*/0.1, churn_p,
                                first_seed, max_retries, min_votes, u_n);
  std::cout << "metrics audit: engine-executed top-k and multilevel "
               "reconciled on the faulty platform\n";

  // Pipelining on: the depth-8 pipelined filter reconciles on the faulty
  // platform and replays the synchronous drive's trace bit for bit.
  const std::string sync_summary = AuditPipelinedFaultyPlatform(
      instance, /*abandon_p=*/0.1, churn_p, first_seed, max_retries,
      min_votes, u_n, /*pipelined=*/false);
  const std::string piped_summary = AuditPipelinedFaultyPlatform(
      instance, /*abandon_p=*/0.1, churn_p, first_seed, max_retries,
      min_votes, u_n, /*pipelined=*/true);
  CROWDMAX_CHECK(sync_summary == piped_summary);
  std::cout << "metrics audit: pipelined faulty-platform filter reconciled "
               "(trace bit-identical to the synchronous drive)\n";
  return 0;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) { return crowdmax::Main(argc, argv); }
