// Reproduces the search-result evaluation experiment (Section 5.3): two
// literature queries, 50 results each sampled from the top-100, Algorithm 1
// with CrowdFlower-style naive workers and researcher experts, for
// u_n(50) in {6, 8, 10}; plus four naive-only 2-MaxFind runs. The paper
// reports that the best result was always promoted to round 2 (and the
// experts identified it), while the naive-only approach succeeded in only
// one of four runs.
//
// Flags: --seed, --runs_2mf (default 4 runs total, 2 per query), --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/single_class.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "core/expert_max.h"
#include "core/worker_model.h"
#include "datasets/search.h"

namespace crowdmax {
namespace {

constexpr const char* kQueries[] = {"asymmetric tsp best approximation",
                                    "steiner tree best approximation"};
constexpr int64_t kUValues[] = {6, 8, 10};

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int64_t runs_per_query =
      std::max<int64_t>(1, flags.GetInt("runs_2mf", 4) / 2);

  bench::PrintHeader("Section 5.3",
                     "evaluation of search results (two literature queries)");

  TablePrinter table({"query", "u_n(50)", "best promoted to round 2",
                      "experts identified best"});
  int64_t query_index = 0;
  for (const char* query : kQueries) {
    Result<SearchQueryDataset> dataset = SearchQueryDataset::Generate(
        query, {}, seed + static_cast<uint64_t>(query_index) * 97);
    CROWDMAX_CHECK(dataset.ok());
    Instance instance = dataset->ToInstance();
    const double naive_delta = dataset->SuggestedNaiveDelta();
    const ElementId best = instance.MaxElement();

    for (int64_t u_n : kUValues) {
      ThresholdComparator naive(
          &instance, SearchNaiveWorkerModel(naive_delta),
          seed + static_cast<uint64_t>(100 * query_index + u_n));
      ThresholdComparator expert(
          &instance, SearchExpertWorkerModel(),
          seed + static_cast<uint64_t>(200 * query_index + u_n));
      ExpertMaxOptions options;
      options.filter.u_n = u_n;
      Result<ExpertMaxResult> result = FindMaxWithExperts(
          instance.AllElements(), &naive, &expert, options);
      CROWDMAX_CHECK(result.ok());
      const bool promoted =
          std::find(result->candidates.begin(), result->candidates.end(),
                    best) != result->candidates.end();
      table.AddRow({query, FormatInt(u_n), promoted ? "yes" : "NO",
                    result->best == best ? "yes" : "NO"});
    }
    ++query_index;
  }
  bench::EmitTable(table, flags,
                   "Algorithm 1 on search-result evaluation (paper: best "
                   "promoted and identified in all runs)");

  // Naive-only 2-MaxFind runs (the paper: 1 success out of 4 runs).
  TablePrinter naive_table({"query", "run", "naive-only found the best"});
  int64_t successes = 0;
  int64_t total = 0;
  query_index = 0;
  for (const char* query : kQueries) {
    Result<SearchQueryDataset> dataset = SearchQueryDataset::Generate(
        query, {}, seed + static_cast<uint64_t>(query_index) * 97);
    CROWDMAX_CHECK(dataset.ok());
    Instance instance = dataset->ToInstance();
    const double naive_delta = dataset->SuggestedNaiveDelta();
    for (int64_t run = 0; run < runs_per_query; ++run) {
      ThresholdComparator naive(
          &instance, SearchNaiveWorkerModel(naive_delta),
          seed + static_cast<uint64_t>(1000 + 10 * query_index + run));
      Result<SingleClassResult> result =
          TwoMaxFindNaiveOnly(instance.AllElements(), &naive);
      CROWDMAX_CHECK(result.ok());
      const bool hit = result->best == instance.MaxElement();
      naive_table.AddRow(
          {query, FormatInt(run + 1), hit ? "yes" : "NO"});
      successes += hit ? 1 : 0;
      ++total;
    }
    ++query_index;
  }
  bench::EmitTable(naive_table, flags,
                   "Naive-only 2-MaxFind runs (paper: 1 success out of 4)");
  std::cout << "\nNaive-only successes: " << successes << "/" << total
            << ". The naive-only approach is not reliable for this task; "
               "expert judges are.\n";
  return 0;
}
