// Evaluates Algorithm 4 (Section 4.4): how often the u_n estimate derived
// from a gold training set upper-bounds the true u_n of the target dataset,
// how tight it is, and how the p_err estimation feeding it behaves.
//
// Flags: --trials (default 40), --seed, --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/estimate.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

constexpr int64_t kTrueUs[] = {5, 10, 20, 40};

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 40);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Algorithm 4",
                     "u_n estimation from gold data: coverage and tightness");

  TablePrinter table({"true u_n", "P(estimate >= true)", "mean estimate",
                      "mean estimate/true", "mean estimated p_err"});
  for (int64_t true_u : kTrueUs) {
    int64_t covered = 0;
    double estimate_sum = 0.0;
    double ratio_sum = 0.0;
    double perr_sum = 0.0;
    int64_t perr_count = 0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed = seed + static_cast<uint64_t>(true_u) * 101 +
                                  static_cast<uint64_t>(t);
      // Training set mirrors the target statistically (Assumption 1): same
      // distribution, same size.
      Result<Instance> training = UniformInstance(500, trial_seed);
      CROWDMAX_CHECK(training.ok());
      const double delta = training->DeltaForU(true_u);
      const int64_t realized_u = training->CountWithin(delta);
      ThresholdComparator worker(&*training, ThresholdModel{delta, 0.0},
                                 trial_seed + 1);

      // Step 1: estimate p_err from repeated votes on pairs near the top.
      std::vector<std::pair<ElementId, ElementId>> pairs;
      std::vector<ElementId> by_rank = training->AllElements();
      std::sort(by_rank.begin(), by_rank.end(),
                [&](ElementId a, ElementId b) {
                  return training->value(a) > training->value(b);
                });
      const int64_t top = std::min<int64_t>(30, training->size());
      for (int64_t a = 0; a < top; ++a) {
        for (int64_t b = a + 1; b < top; ++b) {
          pairs.push_back({by_rank[static_cast<size_t>(a)],
                           by_rank[static_cast<size_t>(b)]});
        }
      }
      Result<PerrEstimate> p_err = EstimatePerr(*training, pairs, 9, &worker);
      double p_err_value = 0.5;  // Model default when no hard pair observed.
      if (p_err.ok()) {
        p_err_value = p_err->p_err;
        perr_sum += p_err->p_err;
        ++perr_count;
      }

      // Step 2: Algorithm 4 proper.
      UnEstimateOptions options;
      options.p_err = p_err_value;
      Result<UnEstimate> estimate =
          EstimateUn(training->AllElements(), training->MaxElement(),
                     /*target_n=*/500, &worker, options);
      CROWDMAX_CHECK(estimate.ok());
      if (estimate->u_n >= realized_u) ++covered;
      estimate_sum += static_cast<double>(estimate->u_n);
      ratio_sum += static_cast<double>(estimate->u_n) /
                   static_cast<double>(realized_u);
    }
    const double d = static_cast<double>(trials);
    table.AddRow({FormatInt(true_u),
                  FormatDouble(static_cast<double>(covered) / d, 3),
                  FormatDouble(estimate_sum / d, 1),
                  FormatDouble(ratio_sum / d, 2),
                  perr_count > 0
                      ? FormatDouble(perr_sum / static_cast<double>(perr_count),
                                     3)
                      : "n/a"});
  }
  bench::EmitTable(table, flags,
                   "Coverage (estimate upper-bounds truth, the paper's "
                   "w.h.p. claim) and tightness");
  std::cout << "\nExpected shape: coverage ~1.0 across the board; the "
               "estimate overshoots by a small\nconstant factor (the price "
               "of a one-sided bound), and p_err is recovered near the\n"
               "fair-coin value 0.5 used by the threshold model "
               "simulation.\n";
  return 0;
}
