// Reproduces Figure 7: average cost C(n) of Algorithm 1 when u_n is
// mis-estimated by a factor in {0.2, 0.5, 0.8, 1, 1.2, 2}, with c_n = 1 and
// c_e in {10, 20, 50} — six panels over the two (u_n, u_e) configurations.
// The paper's observation: cost scales smoothly (roughly linearly) with the
// estimation factor.
//
// Flags: --trials (default 15), --seed, --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/cost.h"
#include "core/expert_max.h"
#include "core/worker_model.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {1000, 2000, 3000, 4000, 5000};
constexpr double kFactors[] = {0.2, 0.5, 0.8, 1.0, 1.2, 2.0};
constexpr double kExpertCosts[] = {10.0, 20.0, 50.0};

struct Config {
  int64_t u_n;
  int64_t u_e;
};

struct PairCounts {
  double naive = 0.0;
  double expert = 0.0;
};

void RunConfig(const Config& config, int64_t trials, uint64_t seed,
               const FlagParser& flags) {
  // counts[size_index][factor_index] = average paid comparisons.
  std::vector<std::vector<PairCounts>> counts(
      std::size(kSizes), std::vector<PairCounts>(std::size(kFactors)));

  for (size_t ni = 0; ni < std::size(kSizes); ++ni) {
    const int64_t n = kSizes[ni];
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed =
          seed + static_cast<uint64_t>(n) * 733 + static_cast<uint64_t>(t);
      bench::TwoClassSetup setup =
          bench::MakeTwoClassSetup(n, config.u_n, config.u_e, trial_seed);
      for (size_t fi = 0; fi < std::size(kFactors); ++fi) {
        const int64_t assumed_u = std::max<int64_t>(
            1, static_cast<int64_t>(kFactors[fi] *
                                    static_cast<double>(setup.u_n)));
        ThresholdComparator naive(&setup.instance,
                                  ThresholdModel{setup.delta_n, 0.0},
                                  trial_seed * 17 + fi);
        ThresholdComparator expert(&setup.instance,
                                   ThresholdModel{setup.delta_e, 0.0},
                                   trial_seed * 19 + fi);
        ExpertMaxOptions options;
        options.filter.u_n = assumed_u;
        Result<ExpertMaxResult> result = FindMaxWithExperts(
            setup.instance.AllElements(), &naive, &expert, options);
        CROWDMAX_CHECK(result.ok());
        counts[ni][fi].naive += static_cast<double>(result->paid.naive);
        counts[ni][fi].expert += static_cast<double>(result->paid.expert);
      }
    }
    for (PairCounts& c : counts[ni]) {
      c.naive /= static_cast<double>(trials);
      c.expert /= static_cast<double>(trials);
    }
  }

  for (double c_e : kExpertCosts) {
    CostModel model{1.0, c_e};
    std::vector<std::string> headers = {"n"};
    for (double f : kFactors) headers.push_back(FormatDouble(f, 1) + "*un");
    TablePrinter table(headers);
    for (size_t ni = 0; ni < std::size(kSizes); ++ni) {
      std::vector<std::string> row = {FormatInt(kSizes[ni])};
      for (size_t fi = 0; fi < std::size(kFactors); ++fi) {
        row.push_back(FormatDouble(
            counts[ni][fi].naive * model.naive_cost +
                counts[ni][fi].expert * model.expert_cost,
            0));
      }
      table.AddRow(std::move(row));
    }
    bench::EmitTable(table, flags,
                     "Figure 7 panel (u_n=" + std::to_string(config.u_n) +
                         ", u_e=" + std::to_string(config.u_e) +
                         ", c_e=" + FormatDouble(c_e, 0) +
                         "): average cost vs estimation factor");
  }
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 15);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Figure 7", "average cost under mis-estimated u_n");
  RunConfig({10, 5}, trials, seed, flags);
  RunConfig({50, 10}, trials, seed + 1, flags);
  std::cout << "\nExpected shape: cost grows smoothly and roughly linearly "
               "in the estimation factor\n(a factor-2 overestimate about "
               "doubles the cost).\n";
  return 0;
}
