// Reproduces Figure 3: average true rank of the returned element as a
// function of the dataset size n, for Algorithm 1, 2-MaxFind-naive and
// 2-MaxFind-expert, at (u_n, u_e) = (10, 5) and (50, 10).
//
// Expected shape (paper): 2-MaxFind-expert is best, Algorithm 1 follows
// closely, 2-MaxFind-naive returns much lower-ranked elements, and the gap
// widens as u_n grows.
//
// Flags: --trials (default 25), --seed, --csv.

#include <cstdint>
#include <iostream>
#include <vector>

#include "baselines/single_class.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "core/expert_max.h"
#include "core/worker_model.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {1000, 2000, 3000, 4000, 5000};

struct Config {
  int64_t u_n;
  int64_t u_e;
};

void RunConfig(const Config& config, int64_t trials, uint64_t seed,
               const FlagParser& flags) {
  TablePrinter table({"n", "Alg 1", "2-MaxFind-naive", "2-MaxFind-expert"});
  for (int64_t n : kSizes) {
    double rank_alg1 = 0.0;
    double rank_naive = 0.0;
    double rank_expert = 0.0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed =
          seed + static_cast<uint64_t>(n) * 131 + static_cast<uint64_t>(t);
      bench::TwoClassSetup setup =
          bench::MakeTwoClassSetup(n, config.u_n, config.u_e, trial_seed);

      ThresholdComparator naive(&setup.instance,
                                ThresholdModel{setup.delta_n, 0.0},
                                trial_seed * 3 + 1);
      ThresholdComparator expert(&setup.instance,
                                 ThresholdModel{setup.delta_e, 0.0},
                                 trial_seed * 3 + 2);

      ExpertMaxOptions options;
      options.filter.u_n = setup.u_n;
      Result<ExpertMaxResult> alg1 = FindMaxWithExperts(
          setup.instance.AllElements(), &naive, &expert, options);
      Result<SingleClassResult> naive_only =
          TwoMaxFindNaiveOnly(setup.instance.AllElements(), &naive);
      Result<SingleClassResult> expert_only =
          TwoMaxFindExpertOnly(setup.instance.AllElements(), &expert);
      CROWDMAX_CHECK(alg1.ok() && naive_only.ok() && expert_only.ok());

      rank_alg1 += static_cast<double>(setup.instance.Rank(alg1->best));
      rank_naive += static_cast<double>(setup.instance.Rank(naive_only->best));
      rank_expert +=
          static_cast<double>(setup.instance.Rank(expert_only->best));
    }
    const double d = static_cast<double>(trials);
    table.AddRow({FormatInt(n), FormatDouble(rank_alg1 / d, 2),
                  FormatDouble(rank_naive / d, 2),
                  FormatDouble(rank_expert / d, 2)});
  }
  bench::EmitTable(
      table, flags,
      "Figure 3 (u_n=" + std::to_string(config.u_n) +
          ", u_e=" + std::to_string(config.u_e) +
          "): average true rank of the returned element (1 = perfect)");
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 25);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Figure 3", "accuracy (average true rank) vs n");
  RunConfig({10, 5}, trials, seed, flags);
  RunConfig({50, 10}, trials, seed + 1, flags);
  std::cout << "\nExpected shape: expert-only best, Alg 1 close behind, "
               "naive-only much worse and\ndegrading with larger u_n.\n";
  return 0;
}
