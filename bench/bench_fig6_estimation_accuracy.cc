// Reproduces Figure 6 and the Section 5.2 survival statistics: accuracy
// (average true rank) of Algorithm 1 when u_n is mis-estimated by a factor
// in {0.2, 0.5, 0.8, 1, 1.2, 2}, plus the fraction of runs in which the
// true maximum survives phase 1 (the paper reports ~99% at factor 0.8,
// ~82% at 0.5, ~38% at 0.2).
//
// Flags: --trials (default 30), --seed, --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/expert_max.h"
#include "core/worker_model.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {1000, 2000, 3000, 4000, 5000};
constexpr double kFactors[] = {0.2, 0.5, 0.8, 1.0, 1.2, 2.0};

struct Config {
  int64_t u_n;
  int64_t u_e;
};

void RunConfig(const Config& config, int64_t trials, uint64_t seed,
               const FlagParser& flags) {
  std::vector<std::string> headers = {"n"};
  for (double f : kFactors) headers.push_back(FormatDouble(f, 1) + "*un");
  TablePrinter rank_table(headers);
  // Survival of the true maximum through phase 1, pooled over all n.
  std::vector<int64_t> survived(std::size(kFactors), 0);
  int64_t total_runs = 0;

  for (int64_t n : kSizes) {
    std::vector<double> rank_sums(std::size(kFactors), 0.0);
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed =
          seed + static_cast<uint64_t>(n) * 557 + static_cast<uint64_t>(t);
      bench::TwoClassSetup setup =
          bench::MakeTwoClassSetup(n, config.u_n, config.u_e, trial_seed);
      ++total_runs;
      for (size_t fi = 0; fi < std::size(kFactors); ++fi) {
        const int64_t assumed_u = std::max<int64_t>(
            1, static_cast<int64_t>(kFactors[fi] *
                                    static_cast<double>(setup.u_n)));
        ThresholdComparator naive(&setup.instance,
                                  ThresholdModel{setup.delta_n, 0.0},
                                  trial_seed * 11 + fi);
        ThresholdComparator expert(&setup.instance,
                                   ThresholdModel{setup.delta_e, 0.0},
                                   trial_seed * 13 + fi);
        ExpertMaxOptions options;
        options.filter.u_n = assumed_u;
        Result<ExpertMaxResult> result = FindMaxWithExperts(
            setup.instance.AllElements(), &naive, &expert, options);
        CROWDMAX_CHECK(result.ok());
        rank_sums[fi] += static_cast<double>(setup.instance.Rank(result->best));
        if (std::find(result->candidates.begin(), result->candidates.end(),
                      setup.instance.MaxElement()) !=
            result->candidates.end()) {
          ++survived[fi];
        }
      }
    }
    std::vector<std::string> row = {FormatInt(n)};
    for (double sum : rank_sums) {
      row.push_back(FormatDouble(sum / static_cast<double>(trials), 2));
    }
    rank_table.AddRow(std::move(row));
  }

  bench::EmitTable(rank_table, flags,
                   "Figure 6 (u_n=" + std::to_string(config.u_n) +
                       ", u_e=" + std::to_string(config.u_e) +
                       "): average true rank vs estimation factor");

  TablePrinter survival({"estimation factor", "P(max survives phase 1)"});
  for (size_t fi = 0; fi < std::size(kFactors); ++fi) {
    survival.AddRow({FormatDouble(kFactors[fi], 1),
                     FormatDouble(static_cast<double>(survived[fi]) /
                                      static_cast<double>(total_runs),
                                  3)});
  }
  bench::EmitTable(survival, flags,
                   "Section 5.2 statistic (u_n=" + std::to_string(config.u_n) +
                       "): survival of the true maximum through phase 1 "
                       "(paper: ~0.99 at 0.8, ~0.82 at 0.5, ~0.38 at 0.2)");
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 30);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Figure 6 + Section 5.2",
                     "accuracy under mis-estimated u_n");
  RunConfig({10, 5}, trials, seed, flags);
  RunConfig({50, 10}, trials, seed + 1, flags);
  std::cout << "\nExpected shape: overestimates are harmless for accuracy; "
               "underestimates degrade it\ngradually (factor 0.8 nearly "
               "harmless, 0.2 clearly worse).\n";
  return 0;
}
