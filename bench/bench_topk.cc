// Benchmarks the top-k extension: accuracy (how many of the true top-k are
// returned, and positional value error) and cost vs the expert-only
// alternative (one expert all-play-all over the entire input), across k.
//
// Flags: --n (default 2000), --trials (default 15), --seed, --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <set>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/cost.h"
#include "core/topk.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

constexpr int64_t kKs[] = {1, 3, 5, 10, 20};

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t n = flags.GetInt("n", 2000);
  const int64_t trials = flags.GetInt("trials", 15);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Top-k extension",
                     "two-phase approximate top-k selection");

  CostModel prices{1.0, 25.0};
  TablePrinter table({"k", "true top-k recalled", "mean positional rank",
                      "naive cmp", "expert cmp", "cost",
                      "expert-only full tournament cost"});
  for (int64_t k : kKs) {
    double recalled = 0.0;
    double mean_rank = 0.0;
    double naive_cmp = 0.0;
    double expert_cmp = 0.0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed =
          seed + static_cast<uint64_t>(k) * 211 + static_cast<uint64_t>(t);
      Result<Instance> instance = UniformInstance(n, trial_seed);
      CROWDMAX_CHECK(instance.ok());
      const double delta_n = instance->DeltaForU(8);
      const double delta_e = instance->DeltaForU(2);

      std::vector<ElementId> by_rank = instance->AllElements();
      std::sort(by_rank.begin(), by_rank.end(),
                [&](ElementId a, ElementId b) {
                  return instance->value(a) > instance->value(b);
                });
      int64_t blind_spot = 1;
      for (int64_t j = 0; j < k; ++j) {
        blind_spot = std::max(
            blind_spot,
            instance->CountWithinOf(by_rank[static_cast<size_t>(j)],
                                    delta_n));
      }

      ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0},
                                trial_seed + 1);
      ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                                 trial_seed + 2);
      TopKOptions options;
      options.k = k;
      options.filter.u_n = blind_spot;
      Result<TopKResult> result = FindTopKWithExperts(
          instance->AllElements(), &naive, &expert, options);
      CROWDMAX_CHECK(result.ok());

      std::set<ElementId> truth(by_rank.begin(),
                                by_rank.begin() + static_cast<size_t>(k));
      int64_t hits = 0;
      double rank_sum = 0.0;
      for (ElementId e : result->top) {
        if (truth.count(e) > 0) ++hits;
        rank_sum += static_cast<double>(instance->Rank(e));
      }
      recalled += static_cast<double>(hits) / static_cast<double>(k);
      mean_rank += rank_sum / static_cast<double>(k);
      naive_cmp += static_cast<double>(result->paid.naive);
      expert_cmp += static_cast<double>(result->paid.expert);
    }
    const double d = static_cast<double>(trials);
    const double full_tournament_cost =
        prices.expert_cost * static_cast<double>(n) *
        static_cast<double>(n - 1) / 2.0;
    table.AddRow({FormatInt(k), FormatDouble(recalled / d, 3),
                  FormatDouble(mean_rank / d, 2),
                  FormatDouble(naive_cmp / d, 0),
                  FormatDouble(expert_cmp / d, 0),
                  FormatDouble(prices.Cost(
                                   static_cast<int64_t>(naive_cmp / d),
                                   static_cast<int64_t>(expert_cmp / d)),
                               0),
                  FormatDouble(full_tournament_cost, 0)});
  }
  bench::EmitTable(table, flags,
                   "Two-phase top-k (n=" + std::to_string(n) +
                       ", c_n=1, c_e=25) vs an expert-only all-play-all "
                       "over the full input");
  std::cout << "\nExpected shape: mean positional rank ~(k+1)/2 (the "
               "value-based 2*delta_e guarantee);\nexact-identity recall is "
               "limited by the expert blind spot for tiny k and approaches\n"
               "1 as k grows; cost grows mildly with k and stays orders of "
               "magnitude below the\nexpert-only full tournament.\n";
  return 0;
}
