// Cross-baseline summary: every max-finder in the library, run under the
// two worker regimes of Section 3 —
//   probabilistic (DOTS-like, constant per-vote error 0.25): replication
//     and adaptivity help, naive-only schemes can succeed;
//   threshold (CARS-like, ~8 elements indistinguishable from the max):
//     every naive-only scheme plateaus; only the expert-aware two-phase
//     algorithm reliably returns the maximum.
//
// Flags: --n (default 64), --trials (default 200), --seed, --csv.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/adaptive.h"
#include "baselines/marcus.h"
#include "baselines/single_class.h"
#include "baselines/venetis.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "core/expert_max.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

struct RegimeTally {
  int64_t hits = 0;
  double comparisons = 0.0;
};

enum class Regime { kProbabilistic, kThreshold };

// Builds the naive worker for the trial's instance under the regime.
ThresholdComparator MakeNaive(const Instance& instance, Regime regime,
                              uint64_t seed) {
  if (regime == Regime::kProbabilistic) {
    return ThresholdComparator(&instance, ThresholdModel{0.0, 0.25}, seed);
  }
  const double delta = instance.DeltaForU(8);
  return ThresholdComparator(&instance, ThresholdModel{delta, 0.0}, seed);
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t n = flags.GetInt("n", 64);
  const int64_t trials = flags.GetInt("trials", 200);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Baseline summary",
                     "all max-finders under the two error regimes");

  const std::vector<std::string> algorithms = {
      "Venetis ladder (3 votes)", "Venetis tuned (same budget)",
      "Marcus tournament (g=5)",  "adaptive Elo (same budget)",
      "2-MaxFind naive-only",     "Algorithm 1 (naive+expert)"};
  // tallies[algorithm][regime].
  std::vector<std::vector<RegimeTally>> tallies(
      algorithms.size(), std::vector<RegimeTally>(2));

  const int64_t budget = 3 * (n - 1);
  Result<VenetisTuning> tuning = TuneVenetisSchedule(n, budget, 0.25);
  CROWDMAX_CHECK(tuning.ok());

  for (int regime_index = 0; regime_index < 2; ++regime_index) {
    const Regime regime = regime_index == 0 ? Regime::kProbabilistic
                                            : Regime::kThreshold;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed = seed +
                                  static_cast<uint64_t>(regime_index) * 50021 +
                                  static_cast<uint64_t>(t) * 13;
      Result<Instance> instance = UniformInstance(n, trial_seed);
      CROWDMAX_CHECK(instance.ok());
      const ElementId truth = instance->MaxElement();

      auto record = [&](size_t algo, const Result<MaxFindResult>& r) {
        CROWDMAX_CHECK(r.ok());
        RegimeTally& tally = tallies[algo][static_cast<size_t>(regime_index)];
        if (r->best == truth) ++tally.hits;
        tally.comparisons += static_cast<double>(r->paid_comparisons);
      };

      {
        ThresholdComparator w = MakeNaive(*instance, regime, trial_seed + 1);
        VenetisOptions options;
        options.votes_per_match = 3;
        record(0, VenetisLadderMax(instance->AllElements(), &w, options));
      }
      {
        ThresholdComparator w = MakeNaive(*instance, regime, trial_seed + 2);
        VenetisOptions options;
        options.votes_schedule = tuning->schedule;
        record(1, VenetisLadderMax(instance->AllElements(), &w, options));
      }
      {
        ThresholdComparator w = MakeNaive(*instance, regime, trial_seed + 3);
        record(2, MarcusTournamentMax(instance->AllElements(), &w, {}));
      }
      {
        ThresholdComparator w = MakeNaive(*instance, regime, trial_seed + 4);
        AdaptiveMaxOptions options;
        options.budget = budget;
        options.seed = trial_seed + 5;
        record(3, AdaptiveEloMax(instance->AllElements(), &w, options));
      }
      {
        ThresholdComparator w = MakeNaive(*instance, regime, trial_seed + 6);
        record(4, TwoMaxFind(instance->AllElements(), &w));
      }
      {
        ThresholdComparator naive =
            MakeNaive(*instance, regime, trial_seed + 7);
        ThresholdComparator expert(&*instance,
                                   ThresholdModel{instance->DeltaForU(1), 0.0},
                                   trial_seed + 8);
        ExpertMaxOptions options;
        options.filter.u_n =
            regime == Regime::kThreshold
                ? instance->CountWithin(instance->DeltaForU(8))
                : 8;
        Result<ExpertMaxResult> run = FindMaxWithExperts(
            instance->AllElements(), &naive, &expert, options);
        CROWDMAX_CHECK(run.ok());
        RegimeTally& tally = tallies[5][static_cast<size_t>(regime_index)];
        if (run->best == truth) ++tally.hits;
        tally.comparisons +=
            static_cast<double>(run->paid.naive + run->paid.expert);
      }
    }
  }

  TablePrinter table({"algorithm", "P(exact max) probabilistic",
                      "P(exact max) threshold", "avg comparisons"});
  for (size_t a = 0; a < algorithms.size(); ++a) {
    const double d = static_cast<double>(trials);
    table.AddRow(
        {algorithms[a],
         FormatDouble(static_cast<double>(tallies[a][0].hits) / d, 3),
         FormatDouble(static_cast<double>(tallies[a][1].hits) / d, 3),
         FormatDouble((tallies[a][0].comparisons + tallies[a][1].comparisons) /
                          (2.0 * d),
                      0)});
  }
  bench::EmitTable(table, flags,
                   "Exact-max hit rates (n=" + std::to_string(n) +
                       "): probabilistic regime (per-vote error 0.25) vs "
                       "threshold regime (u_n=8)");
  std::cout << "\nExpected shape: naive-only schemes do respectably in the "
               "probabilistic regime and\nplateau in the threshold regime; "
               "Algorithm 1 with a true expert dominates the\nthreshold "
               "column — the paper's thesis in one table.\n";
  return 0;
}
