// Hot-path throughput of the simulated crowd: comparisons/sec of the
// batch-at-once vote generation path (VoteBatchComparator::GenerateVotes,
// DESIGN.md §14) against the per-virtual-call paths it replaces, for every
// worker model. The workload is miss-dominated — millions of mostly
// distinct random pairs — so the numbers measure vote generation itself,
// not cache hits.
//
// Rows per model:
//   legacy    per-virtual-call Compare through MemoizingComparator — one
//             virtual dispatch plus one unordered_map probe per
//             comparison (the pre-batch hot path).
//   percall   per-virtual-call Compare on the bare model.
//   batch     GenerateVotes in chunks (struct-of-arrays, branch-free
//             draws, PairTable sticky state).
//   par=T     ParallelBatchExecutor at T threads (forked models, batch
//             path inside each chunk).
//
// Self-checking in every mode: the batch row must produce bit-identical
// votes to an identically seeded per-call run — the determinism contract
// the unit suites pin, re-verified on the bench workload. The full run
// writes BENCH_hotpath.json; the headline is batch vs legacy on the
// threshold model (target: >= 5x).
//
// Flags:
//   --smoke      small self-checking CI run (skips the JSON artifact)
//   --pairs=N    pairs per row (default 2000000)
//   --out=PATH   JSON artifact path (default BENCH_hotpath.json)

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/async_executor.h"
#include "core/batched.h"
#include "core/comparator.h"
#include "core/pair_key.h"
#include "core/round_engine.h"
#include "core/worker_model.h"

namespace crowdmax {
namespace {

constexpr int64_t kChunk = 4096;

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// One measured configuration: name + a runner that answers all `pairs`
// with a fresh, identically seeded comparator stack and returns the votes.
struct Row {
  std::string name;
  double seconds = 0.0;
  double comparisons_per_sec = 0.0;
  double speedup_vs_legacy = 0.0;
};

struct ModelReport {
  std::string model;
  std::vector<Row> rows;
};

using ModelFactory = std::function<std::unique_ptr<Comparator>(uint64_t)>;

std::vector<ComparisonPair> RandomPairs(int64_t n_elements, int64_t count,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<ComparisonPair> pairs;
  pairs.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    ElementId a =
        static_cast<ElementId>(rng.NextBounded(static_cast<uint64_t>(n_elements)));
    ElementId b =
        static_cast<ElementId>(rng.NextBounded(static_cast<uint64_t>(n_elements)));
    if (a == b) b = static_cast<ElementId>((a + 1) % n_elements);
    pairs.emplace_back(a, b);
  }
  return pairs;
}

// Streams a pre-deduplicated pair list through a RoundEngine in
// fixed-size rounds, collecting votes in stream order. The chunks are
// pair-disjoint by construction, so overlapping them in a pipelined
// engine is legal (CanPipelineNextRound).
class PairStreamSource : public RoundSource {
 public:
  PairStreamSource(const std::vector<ComparisonPair>* pairs, int64_t chunk,
                   std::vector<ElementId>* votes)
      : pairs_(pairs), chunk_(static_cast<size_t>(chunk)), votes_(votes) {}

  Result<bool> NextRound(EngineRound* round) override {
    if (next_emit_ >= pairs_->size()) return false;
    const size_t count = std::min(chunk_, pairs_->size() - next_emit_);
    RoundUnit unit;
    unit.pairs.assign(pairs_->begin() + static_cast<ptrdiff_t>(next_emit_),
                      pairs_->begin() +
                          static_cast<ptrdiff_t>(next_emit_ + count));
    round->units.push_back(std::move(unit));
    next_emit_ += count;
    return true;
  }

  Status ConsumeOutcome(const EngineRound& round,
                        const RoundOutcome& outcome) override {
    for (ElementId winner : outcome.winners[0]) {
      (*votes_)[next_consume_++] = winner;
    }
    (void)round;
    return Status::OK();
  }

  bool CanPipelineNextRound() const override { return true; }

 private:
  const std::vector<ComparisonPair>* pairs_;
  const size_t chunk_;
  std::vector<ElementId>* votes_;
  size_t next_emit_ = 0;
  size_t next_consume_ = 0;
};

Row Measure(const std::string& name,
            const std::vector<ComparisonPair>& pairs,
            const std::function<void(std::vector<ElementId>*)>& run) {
  std::vector<ElementId> votes(pairs.size(), -1);
  const auto begin = std::chrono::steady_clock::now();
  run(&votes);
  const auto end = std::chrono::steady_clock::now();
  Row row;
  row.name = name;
  row.seconds = Seconds(begin, end);
  row.comparisons_per_sec =
      row.seconds > 0.0 ? static_cast<double>(pairs.size()) / row.seconds : 0.0;
  return row;
}

ModelReport BenchModel(const std::string& model_name,
                       const ModelFactory& make,
                       const std::vector<ComparisonPair>& pairs,
                       uint64_t seed) {
  ModelReport report;
  report.model = model_name;

  // legacy: virtual Compare through the unordered_map memo decorator.
  report.rows.push_back(Measure("legacy", pairs, [&](std::vector<ElementId>* out) {
    std::unique_ptr<Comparator> model = make(seed);
    MemoizingComparator memo(model.get());
    for (size_t i = 0; i < pairs.size(); ++i) {
      (*out)[i] = memo.Compare(pairs[i].first, pairs[i].second);
    }
  }));

  // percall: virtual Compare on the bare model.
  std::vector<ElementId> percall_votes;
  report.rows.push_back(Measure("percall", pairs, [&](std::vector<ElementId>* out) {
    std::unique_ptr<Comparator> model = make(seed);
    for (size_t i = 0; i < pairs.size(); ++i) {
      (*out)[i] = model->Compare(pairs[i].first, pairs[i].second);
    }
    percall_votes = *out;
  }));

  // batch: GenerateVotes in engine-round-sized chunks. Self-check: the
  // votes must be bit-identical to the per-call run above (same seed).
  report.rows.push_back(Measure("batch", pairs, [&](std::vector<ElementId>* out) {
    std::unique_ptr<Comparator> model = make(seed);
    VoteBatchComparator* batch = model->AsVoteBatch();
    CROWDMAX_CHECK(batch != nullptr);
    const std::span<const ComparisonPair> all(pairs);
    const std::span<ElementId> votes(*out);
    for (size_t begin = 0; begin < pairs.size(); begin += kChunk) {
      const size_t count = std::min<size_t>(kChunk, pairs.size() - begin);
      const int64_t produced = batch->GenerateVotes(
          all.subspan(begin, count), votes.subspan(begin, count));
      CROWDMAX_CHECK(produced == static_cast<int64_t>(count));
    }
    CROWDMAX_CHECK(*out == percall_votes);
  }));

  // engine=d8: the batch path driven through the pipelined RoundEngine at
  // depth 8 (round submission, in-flight cache reservation, engine-owned
  // scratch reuse all on the measured path). The engine's pipelining
  // contract requires in-flight rounds to be pair-disjoint, so the stream
  // is deduplicated first and throughput is per executed pair. Self-check:
  // every vote names one of its pair's endpoints and the engine paid for
  // exactly the deduplicated stream.
  {
    std::vector<ComparisonPair> unique_pairs;
    unique_pairs.reserve(pairs.size());
    std::unordered_set<uint64_t> seen;
    seen.reserve(pairs.size() * 2);
    for (const ComparisonPair& pair : pairs) {
      if (seen.insert(PackPairKey(pair.first, pair.second)).second) {
        unique_pairs.push_back(pair);
      }
    }
    report.rows.push_back(Measure(
        "engine=d8", unique_pairs, [&](std::vector<ElementId>* out) {
          std::unique_ptr<Comparator> model = make(seed);
          ComparatorBatchExecutor executor(model.get());
          AsyncBatchAdapter async(&executor);
          Result<std::unique_ptr<RoundEngine>> engine =
              RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
          CROWDMAX_CHECK(engine.ok());
          PairStreamSource source(&unique_pairs, kChunk, out);
          Result<DriveResult> drive = (*engine)->Drive(&source);
          CROWDMAX_CHECK(drive.ok());
          CROWDMAX_CHECK((*engine)->paid() ==
                         static_cast<int64_t>(unique_pairs.size()));
          for (size_t i = 0; i < unique_pairs.size(); ++i) {
            CROWDMAX_CHECK((*out)[i] == unique_pairs[i].first ||
                           (*out)[i] == unique_pairs[i].second);
          }
        }));
  }

  // par=T: the parallel executor's forked batch path. Forks draw from
  // their own streams, so no vote equality with the serial rows — the
  // self-check is the vote validity contract.
  for (int64_t threads : {int64_t{1}, int64_t{8}}) {
    report.rows.push_back(Measure(
        "par=" + std::to_string(threads), pairs,
        [&](std::vector<ElementId>* out) {
          std::unique_ptr<Comparator> model = make(seed);
          Result<std::unique_ptr<ParallelBatchExecutor>> executor =
              ParallelBatchExecutor::Create(model.get(), threads,
                                            /*seed=*/seed + 17,
                                            /*chunk_size=*/kChunk);
          CROWDMAX_CHECK(executor.ok());
          *out = (*executor)->ExecuteBatch(pairs);
          CROWDMAX_CHECK(out->size() == pairs.size());
        }));
  }

  const double legacy_cps = report.rows[0].comparisons_per_sec;
  for (Row& row : report.rows) {
    row.speedup_vs_legacy =
        legacy_cps > 0.0 ? row.comparisons_per_sec / legacy_cps : 0.0;
  }
  return report;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 1;
  }
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t n_pairs =
      smoke ? 100000 : flags.GetBoundedInt("pairs", 2000000, 1, 100000000);
  const std::string out_path = flags.GetString("out", "BENCH_hotpath.json");

  bench::PrintHeader("BENCH_hotpath",
                     "batch vote generation throughput (comparisons/sec)");

  // Miss-dominated workload: n large enough that the pair stream is
  // mostly distinct, with a threshold placed so both regimes (decided and
  // coin-flip pairs) occur.
  const int64_t n_elements = 4096;
  bench::TwoClassSetup setup =
      bench::MakeTwoClassSetup(n_elements, /*u_n_target=*/64,
                               /*u_e_target=*/8, /*seed=*/2024);
  const Instance* instance = &setup.instance;
  const std::vector<ComparisonPair> pairs =
      RandomPairs(n_elements, n_pairs, /*seed=*/7);

  std::vector<std::pair<std::string, ModelFactory>> models;
  models.emplace_back("threshold", [&](uint64_t seed) -> std::unique_ptr<Comparator> {
    ThresholdComparator::Options options;
    options.model = ThresholdModel{setup.delta_n, 0.15};
    return std::make_unique<ThresholdComparator>(instance, options, seed);
  });
  models.emplace_back("relative_error", [&](uint64_t seed) -> std::unique_ptr<Comparator> {
    return std::make_unique<RelativeErrorComparator>(
        instance, RelativeErrorComparator::Options{}, seed);
  });
  models.emplace_back("distance_decay", [&](uint64_t seed) -> std::unique_ptr<Comparator> {
    DistanceDecayComparator::Options options;
    options.delta = setup.delta_n;
    options.epsilon_at_threshold = 0.25;
    options.decay = 3.0 / setup.delta_n;
    return std::make_unique<DistanceDecayComparator>(instance, options, seed);
  });
  models.emplace_back("persistent_bias", [&](uint64_t seed) -> std::unique_ptr<Comparator> {
    PersistentBiasComparator::Options options;
    options.buckets = {{0.10, 0.60}, {0.20, 0.70}};
    options.individual_noise = 0.28;
    options.above_threshold_error = 0.15;
    return std::make_unique<PersistentBiasComparator>(instance, options, seed);
  });

  std::vector<ModelReport> reports;
  for (const auto& [name, factory] : models) {
    reports.push_back(BenchModel(name, factory, pairs, /*seed=*/90210));
  }

  TablePrinter table({"model", "path", "Mcmp/s", "speedup_vs_legacy"});
  for (const ModelReport& report : reports) {
    for (const Row& row : report.rows) {
      table.AddRow({report.model, row.name,
                    FormatDouble(row.comparisons_per_sec / 1e6, 2),
                    FormatDouble(row.speedup_vs_legacy, 2)});
    }
  }
  bench::EmitTable(table, flags, "Vote-generation throughput (" +
                                     std::to_string(n_pairs) + " pairs/row)");

  // Headline: the threshold model's serial batch path must beat the
  // per-virtual-call legacy path by the committed factor.
  const ModelReport& threshold = reports[0];
  const double headline = threshold.rows[2].speedup_vs_legacy;
  std::cout << "\nheadline: threshold batch vs legacy = " << headline
            << "x\n";

  if (smoke) {
    // CI smoke contract: every batch row re-verified bit-identical to its
    // per-call twin (checked inside BenchModel), and the batch path is
    // not slower than legacy even at smoke scale.
    CROWDMAX_CHECK(headline > 1.0);
    std::cout << "smoke: OK (batch bit-identical to per-call for "
              << reports.size() << " models, headline " << headline
              << "x)\n";
    return 0;
  }

  std::ofstream out(out_path);
  CROWDMAX_CHECK(out.good());
  out << "{\n  \"bench\": \"hotpath\",\n  \"pairs_per_row\": " << n_pairs
      << ",\n  \"n_elements\": " << n_elements << ",\n  \"models\": [\n";
  for (size_t m = 0; m < reports.size(); ++m) {
    out << "    {\"model\": \"" << reports[m].model << "\", \"rows\": [\n";
    for (size_t r = 0; r < reports[m].rows.size(); ++r) {
      const Row& row = reports[m].rows[r];
      out << "      {\"path\": \"" << row.name << "\", \"seconds\": "
          << row.seconds << ", \"comparisons_per_sec\": "
          << row.comparisons_per_sec << ", \"speedup_vs_legacy\": "
          << row.speedup_vs_legacy << "}"
          << (r + 1 < reports[m].rows.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (m + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"headline_threshold_batch_vs_legacy\": " << headline
      << "\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) { return crowdmax::Main(argc, argv); }
