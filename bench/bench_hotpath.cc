// Hot-path throughput of the simulated crowd: comparisons/sec of the
// batch-at-once vote generation path (VoteBatchComparator::GenerateVotes,
// DESIGN.md §14) against the per-virtual-call paths it replaces, for every
// worker model. The workload is miss-dominated — millions of mostly
// distinct random pairs — so the numbers measure vote generation itself,
// not cache hits.
//
// Rows per model:
//   legacy       per-virtual-call Compare through MemoizingComparator —
//                one virtual dispatch plus one unordered_map probe per
//                comparison (the pre-batch hot path).
//   percall      per-virtual-call Compare on the bare model.
//   batch        GenerateVotes in chunks with bulk draws off — the scalar
//                per-row float-compare loop (struct-of-arrays precompute,
//                one NextDouble per open row).
//   bulk-scalar  GenerateVotes with the bulk draw layer (DESIGN.md §16)
//                pinned to the scalar kernels: block-generated raw draws,
//                integer-threshold compares, no SIMD.
//   bulk         GenerateVotes on the default path: bulk draw layer on
//                the best available backend (AVX2 when built with
//                CROWDMAX_SIMD on a capable CPU).
//   engine=d8    the batch path driven through the pipelined RoundEngine
//                at depth 8, with a per-stage split: time inside
//                GenerateVotes (votegen) vs everything else the engine
//                and executor stack add (dispatch).
//   par=T        ParallelBatchExecutor at T threads (forked models, batch
//                path inside each chunk).
//
// Self-checking in every mode: the batch, bulk-scalar and bulk rows must
// each produce bit-identical votes to an identically seeded per-call run —
// the determinism contract the unit suites pin, re-verified on the bench
// workload for both draw kernels. The full run writes BENCH_hotpath.json;
// the headline is batch vs legacy on the threshold model plus the bulk vs
// batch ratio (target: >= 2x).
//
// Flags:
//   --smoke            small self-checking CI run (skips the JSON artifact)
//   --pairs=N          pairs per row (default 2000000)
//   --out=PATH         JSON artifact path (default BENCH_hotpath.json)
//   --check            regression mode: measure, compare against the
//                      committed baseline JSON, exit nonzero when a serial
//                      row drops below tolerance * committed. Gated on the
//                      CROWDMAX_BENCH_CHECK environment variable so the CI
//                      entry is opt-in: without it the check is skipped
//                      before measuring.
//   --baseline=PATH    committed JSON to compare against (default
//                      BENCH_hotpath.json)
//   --check_tolerance=F fraction of the committed throughput a row must
//                      keep (default 0.6)

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/async_executor.h"
#include "core/batched.h"
#include "core/comparator.h"
#include "core/pair_key.h"
#include "core/round_engine.h"
#include "core/worker_model.h"

namespace crowdmax {
namespace {

constexpr int64_t kChunk = 4096;

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// One measured configuration: name + a runner that answers all `pairs`
// with a fresh, identically seeded comparator stack and returns the votes.
struct Row {
  std::string name;
  double seconds = 0.0;
  double comparisons_per_sec = 0.0;
  double speedup_vs_legacy = 0.0;
  // engine rows only: wall time inside GenerateVotes vs everything the
  // engine/executor stack adds around it. Negative means "not split".
  double votegen_seconds = -1.0;
  double dispatch_seconds = -1.0;
};

struct ModelReport {
  std::string model;
  std::vector<Row> rows;
};

using ModelFactory = std::function<std::unique_ptr<Comparator>(uint64_t)>;

std::vector<ComparisonPair> RandomPairs(int64_t n_elements, int64_t count,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<ComparisonPair> pairs;
  pairs.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    ElementId a =
        static_cast<ElementId>(rng.NextBounded(static_cast<uint64_t>(n_elements)));
    ElementId b =
        static_cast<ElementId>(rng.NextBounded(static_cast<uint64_t>(n_elements)));
    if (a == b) b = static_cast<ElementId>((a + 1) % n_elements);
    pairs.emplace_back(a, b);
  }
  return pairs;
}

// Streams a pre-deduplicated pair list through a RoundEngine in
// fixed-size rounds, collecting votes in stream order. The chunks are
// pair-disjoint by construction, so overlapping them in a pipelined
// engine is legal (CanPipelineNextRound).
class PairStreamSource : public RoundSource {
 public:
  PairStreamSource(const std::vector<ComparisonPair>* pairs, int64_t chunk,
                   std::vector<ElementId>* votes)
      : pairs_(pairs), chunk_(static_cast<size_t>(chunk)), votes_(votes) {}

  Result<bool> NextRound(EngineRound* round) override {
    if (next_emit_ >= pairs_->size()) return false;
    const size_t count = std::min(chunk_, pairs_->size() - next_emit_);
    RoundUnit unit;
    unit.pairs.assign(pairs_->begin() + static_cast<ptrdiff_t>(next_emit_),
                      pairs_->begin() +
                          static_cast<ptrdiff_t>(next_emit_ + count));
    round->units.push_back(std::move(unit));
    next_emit_ += count;
    return true;
  }

  Status ConsumeOutcome(const EngineRound& round,
                        const RoundOutcome& outcome) override {
    for (ElementId winner : outcome.winners[0]) {
      (*votes_)[next_consume_++] = winner;
    }
    (void)round;
    return Status::OK();
  }

  bool CanPipelineNextRound() const override { return true; }

 private:
  const std::vector<ComparisonPair>* pairs_;
  const size_t chunk_;
  std::vector<ElementId>* votes_;
  size_t next_emit_ = 0;
  size_t next_consume_ = 0;
};

// Forwarding decorator that accumulates the wall time spent inside the
// wrapped model's vote generation. Splits the engine=d8 row into model
// time (votegen) and everything the dispatch stack adds around it — round
// assembly, in-flight cache reservation, pipeline bookkeeping — the
// baseline for the engine-overhead item on the roadmap. Counter and
// checkpoint state stay on the inner comparator; the executor keeps its
// own task counts, so the engine's paid() accounting is unaffected.
class TimingComparator : public Comparator, public VoteBatchComparator {
 public:
  explicit TimingComparator(Comparator* inner)
      : inner_(inner), inner_batch_(inner->AsVoteBatch()) {}

  ElementId Compare(ElementId a, ElementId b) override {
    const auto begin = std::chrono::steady_clock::now();
    const ElementId winner = inner_->Compare(a, b);
    votegen_seconds_ += Seconds(begin, std::chrono::steady_clock::now());
    return winner;
  }

  VoteBatchComparator* AsVoteBatch() override {
    return inner_batch_ != nullptr ? this : nullptr;
  }

  int64_t GenerateVotes(std::span<const ComparisonPair> pairs,
                        std::span<ElementId> out) override {
    const auto begin = std::chrono::steady_clock::now();
    const int64_t produced = inner_batch_->GenerateVotes(pairs, out);
    votegen_seconds_ += Seconds(begin, std::chrono::steady_clock::now());
    return produced;
  }

  double votegen_seconds() const { return votegen_seconds_; }

 private:
  ElementId DoCompare(ElementId a, ElementId b) override {
    return inner_->Compare(a, b);
  }

  Comparator* inner_;
  VoteBatchComparator* inner_batch_;
  double votegen_seconds_ = 0.0;
};

Row Measure(const std::string& name,
            const std::vector<ComparisonPair>& pairs,
            const std::function<void(std::vector<ElementId>*)>& run) {
  std::vector<ElementId> votes(pairs.size(), -1);
  const auto begin = std::chrono::steady_clock::now();
  run(&votes);
  const auto end = std::chrono::steady_clock::now();
  Row row;
  row.name = name;
  row.seconds = Seconds(begin, end);
  row.comparisons_per_sec =
      row.seconds > 0.0 ? static_cast<double>(pairs.size()) / row.seconds : 0.0;
  return row;
}

// Runs GenerateVotes over `pairs` in engine-round-sized chunks and checks
// the votes against the per-call reference — the shared body of the
// batch / bulk-scalar / bulk rows, which differ only in which draw kernel
// answers the open rows.
void RunChunkedBatch(Comparator* model, bool bulk_draws,
                     const std::vector<ComparisonPair>& pairs,
                     const std::vector<ElementId>& reference,
                     std::vector<ElementId>* out) {
  VoteBatchComparator* batch = model->AsVoteBatch();
  CROWDMAX_CHECK(batch != nullptr);
  batch->set_bulk_draws(bulk_draws);
  const std::span<const ComparisonPair> all(pairs);
  const std::span<ElementId> votes(*out);
  for (size_t begin = 0; begin < pairs.size(); begin += kChunk) {
    const size_t count = std::min<size_t>(kChunk, pairs.size() - begin);
    const int64_t produced = batch->GenerateVotes(
        all.subspan(begin, count), votes.subspan(begin, count));
    CROWDMAX_CHECK(produced == static_cast<int64_t>(count));
  }
  // Bit-identity with the identically seeded per-call run: the contract
  // that makes the throughput comparable — same draws, same votes.
  CROWDMAX_CHECK(*out == reference);
}

ModelReport BenchModel(const std::string& model_name,
                       const ModelFactory& make,
                       const std::vector<ComparisonPair>& pairs,
                       uint64_t seed) {
  ModelReport report;
  report.model = model_name;

  // legacy: virtual Compare through the unordered_map memo decorator.
  report.rows.push_back(Measure("legacy", pairs, [&](std::vector<ElementId>* out) {
    std::unique_ptr<Comparator> model = make(seed);
    MemoizingComparator memo(model.get());
    for (size_t i = 0; i < pairs.size(); ++i) {
      (*out)[i] = memo.Compare(pairs[i].first, pairs[i].second);
    }
  }));

  // percall: virtual Compare on the bare model.
  std::vector<ElementId> percall_votes;
  report.rows.push_back(Measure("percall", pairs, [&](std::vector<ElementId>* out) {
    std::unique_ptr<Comparator> model = make(seed);
    for (size_t i = 0; i < pairs.size(); ++i) {
      (*out)[i] = model->Compare(pairs[i].first, pairs[i].second);
    }
    percall_votes = *out;
  }));

  // batch: the scalar per-row draw loop (bulk kernels off) — the pre-§16
  // hot path, kept measurable so the bulk rows have a like-for-like
  // baseline.
  report.rows.push_back(Measure("batch", pairs, [&](std::vector<ElementId>* out) {
    std::unique_ptr<Comparator> model = make(seed);
    RunChunkedBatch(model.get(), /*bulk_draws=*/false, pairs, percall_votes,
                    out);
  }));

  // bulk-scalar: bulk draw layer pinned to the scalar kernels. The
  // in-row CHECK doubles as the scalar-backend bit-identity proof on the
  // bench workload.
  report.rows.push_back(Measure(
      "bulk-scalar", pairs, [&](std::vector<ElementId>* out) {
        SetRngBulkSimd(false);
        std::unique_ptr<Comparator> model = make(seed);
        RunChunkedBatch(model.get(), /*bulk_draws=*/true, pairs,
                        percall_votes, out);
        SetRngBulkSimd(true);
      }));

  // bulk: the default path — bulk draw layer on the best available
  // backend. Same in-row CHECK, now proving the SIMD backend (when
  // active) bit-identical on the bench workload.
  report.rows.push_back(Measure("bulk", pairs, [&](std::vector<ElementId>* out) {
    std::unique_ptr<Comparator> model = make(seed);
    RunChunkedBatch(model.get(), /*bulk_draws=*/true, pairs, percall_votes,
                    out);
  }));

  // engine=d8: the batch path driven through the pipelined RoundEngine at
  // depth 8 (round submission, in-flight cache reservation, engine-owned
  // scratch reuse all on the measured path). The engine's pipelining
  // contract requires in-flight rounds to be pair-disjoint, so the stream
  // is deduplicated first and throughput is per executed pair. Self-check:
  // every vote names one of its pair's endpoints and the engine paid for
  // exactly the deduplicated stream. The TimingComparator splits the row
  // into votegen (model) and dispatch (engine + executor) time.
  {
    std::vector<ComparisonPair> unique_pairs;
    unique_pairs.reserve(pairs.size());
    std::unordered_set<uint64_t> seen;
    seen.reserve(pairs.size() * 2);
    for (const ComparisonPair& pair : pairs) {
      if (seen.insert(PackPairKey(pair.first, pair.second)).second) {
        unique_pairs.push_back(pair);
      }
    }
    double votegen_seconds = 0.0;
    Row row = Measure(
        "engine=d8", unique_pairs, [&](std::vector<ElementId>* out) {
          std::unique_ptr<Comparator> model = make(seed);
          TimingComparator timed(model.get());
          ComparatorBatchExecutor executor(&timed);
          AsyncBatchAdapter async(&executor);
          Result<std::unique_ptr<RoundEngine>> engine =
              RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
          CROWDMAX_CHECK(engine.ok());
          PairStreamSource source(&unique_pairs, kChunk, out);
          Result<DriveResult> drive = (*engine)->Drive(&source);
          CROWDMAX_CHECK(drive.ok());
          CROWDMAX_CHECK((*engine)->paid() ==
                         static_cast<int64_t>(unique_pairs.size()));
          for (size_t i = 0; i < unique_pairs.size(); ++i) {
            CROWDMAX_CHECK((*out)[i] == unique_pairs[i].first ||
                           (*out)[i] == unique_pairs[i].second);
          }
          votegen_seconds = timed.votegen_seconds();
        });
    row.votegen_seconds = votegen_seconds;
    row.dispatch_seconds = row.seconds - votegen_seconds;
    report.rows.push_back(row);
  }

  // par=T: the parallel executor's forked batch path. Forks draw from
  // their own streams, so no vote equality with the serial rows — the
  // self-check is the vote validity contract.
  for (int64_t threads : {int64_t{1}, int64_t{8}}) {
    report.rows.push_back(Measure(
        "par=" + std::to_string(threads), pairs,
        [&](std::vector<ElementId>* out) {
          std::unique_ptr<Comparator> model = make(seed);
          Result<std::unique_ptr<ParallelBatchExecutor>> executor =
              ParallelBatchExecutor::Create(model.get(), threads,
                                            /*seed=*/seed + 17,
                                            /*chunk_size=*/kChunk);
          CROWDMAX_CHECK(executor.ok());
          *out = (*executor)->ExecuteBatch(pairs);
          CROWDMAX_CHECK(out->size() == pairs.size());
        }));
  }

  const double legacy_cps = report.rows[0].comparisons_per_sec;
  for (Row& row : report.rows) {
    row.speedup_vs_legacy =
        legacy_cps > 0.0 ? row.comparisons_per_sec / legacy_cps : 0.0;
  }
  return report;
}

const Row* FindRow(const ModelReport& report, const std::string& name) {
  for (const Row& row : report.rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

// ---- --check: regression gate against the committed JSON ---------------
//
// The committed BENCH_hotpath.json is written by this binary, so a
// minimal line scan recovers (model, path) -> comparisons_per_sec without
// a JSON library: model lines carry "model": "<name>", row lines carry
// "path": "<name>" and "comparisons_per_sec": <value>.

bool ParseBaseline(
    const std::string& path,
    std::vector<std::pair<std::string, double>>* rows_out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string line;
  std::string model;
  auto quoted_value = [](const std::string& text, const std::string& key,
                         std::string* value) {
    const std::string needle = "\"" + key + "\": \"";
    const size_t at = text.find(needle);
    if (at == std::string::npos) return false;
    const size_t begin = at + needle.size();
    const size_t end = text.find('"', begin);
    if (end == std::string::npos) return false;
    *value = text.substr(begin, end - begin);
    return true;
  };
  while (std::getline(in, line)) {
    std::string value;
    if (quoted_value(line, "model", &value)) model = value;
    if (!quoted_value(line, "path", &value)) continue;
    const std::string key = "\"comparisons_per_sec\": ";
    const size_t at = line.find(key);
    if (at == std::string::npos) continue;
    rows_out->emplace_back(model + "/" + value,
                           std::strtod(line.c_str() + at + key.size(),
                                       nullptr));
  }
  return !rows_out->empty();
}

// Serial deterministic rows only: engine and par= rows depend on thread
// scheduling and pipeline timing, too noisy for a hard gate.
bool IsCheckedRow(const std::string& name) {
  return name == "legacy" || name == "percall" || name == "batch" ||
         name == "bulk-scalar" || name == "bulk";
}

int RunCheck(const std::vector<ModelReport>& reports,
             const std::string& baseline_path, double tolerance) {
  std::vector<std::pair<std::string, double>> baseline;
  if (!ParseBaseline(baseline_path, &baseline)) {
    std::cerr << "check: cannot read baseline " << baseline_path << "\n";
    return 1;
  }
  auto committed = [&baseline](const std::string& key) -> double {
    for (const auto& [name, cps] : baseline) {
      if (name == key) return cps;
    }
    return -1.0;
  };
  TablePrinter table({"row", "committed Mcmp/s", "measured Mcmp/s", "ratio",
                      "verdict"});
  int regressions = 0;
  for (const ModelReport& report : reports) {
    for (const Row& row : report.rows) {
      if (!IsCheckedRow(row.name)) continue;
      const std::string key = report.model + "/" + row.name;
      const double want = committed(key);
      if (want <= 0.0) continue;  // Row absent from the committed file.
      const double ratio = row.comparisons_per_sec / want;
      const bool ok = ratio >= tolerance;
      if (!ok) ++regressions;
      table.AddRow({key, FormatDouble(want / 1e6, 2),
                    FormatDouble(row.comparisons_per_sec / 1e6, 2),
                    FormatDouble(ratio, 2), ok ? "ok" : "REGRESSED"});
    }
  }
  table.Print(std::cout);
  if (regressions > 0) {
    std::cerr << "check: " << regressions << " row(s) below " << tolerance
              << "x the committed throughput in " << baseline_path << "\n";
    return 1;
  }
  std::cout << "check: OK (all rows within tolerance " << tolerance
            << " of " << baseline_path << ")\n";
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 1;
  }
  const bool smoke = flags.GetBool("smoke", false);
  const bool check = flags.GetBool("check", false);
  const int64_t n_pairs =
      smoke ? 100000 : flags.GetBoundedInt("pairs", 2000000, 1, 100000000);
  const std::string out_path = flags.GetString("out", "BENCH_hotpath.json");

  if (check && std::getenv("CROWDMAX_BENCH_CHECK") == nullptr) {
    // Opt-in gate: the CI entry always exists, but only costs (and only
    // enforces) when the environment asks for it.
    std::cout << "check: skipped (set CROWDMAX_BENCH_CHECK=1 to run the "
                 "throughput regression gate)\n";
    return 0;
  }

  bench::PrintHeader("BENCH_hotpath",
                     "batch vote generation throughput (comparisons/sec)");
  std::cout << "rng bulk backend: " << RngBulkBackend() << "\n";

  // Miss-dominated workload: n large enough that the pair stream is
  // mostly distinct, with a threshold placed so both regimes (decided and
  // coin-flip pairs) occur.
  const int64_t n_elements = 4096;
  bench::TwoClassSetup setup =
      bench::MakeTwoClassSetup(n_elements, /*u_n_target=*/64,
                               /*u_e_target=*/8, /*seed=*/2024);
  const Instance* instance = &setup.instance;
  const std::vector<ComparisonPair> pairs =
      RandomPairs(n_elements, n_pairs, /*seed=*/7);

  std::vector<std::pair<std::string, ModelFactory>> models;
  models.emplace_back("threshold", [&](uint64_t seed) -> std::unique_ptr<Comparator> {
    ThresholdComparator::Options options;
    options.model = ThresholdModel{setup.delta_n, 0.15};
    return std::make_unique<ThresholdComparator>(instance, options, seed);
  });
  models.emplace_back("relative_error", [&](uint64_t seed) -> std::unique_ptr<Comparator> {
    return std::make_unique<RelativeErrorComparator>(
        instance, RelativeErrorComparator::Options{}, seed);
  });
  models.emplace_back("distance_decay", [&](uint64_t seed) -> std::unique_ptr<Comparator> {
    DistanceDecayComparator::Options options;
    options.delta = setup.delta_n;
    options.epsilon_at_threshold = 0.25;
    options.decay = 3.0 / setup.delta_n;
    return std::make_unique<DistanceDecayComparator>(instance, options, seed);
  });
  models.emplace_back("persistent_bias", [&](uint64_t seed) -> std::unique_ptr<Comparator> {
    PersistentBiasComparator::Options options;
    options.buckets = {{0.10, 0.60}, {0.20, 0.70}};
    options.individual_noise = 0.28;
    options.above_threshold_error = 0.15;
    return std::make_unique<PersistentBiasComparator>(instance, options, seed);
  });

  std::vector<ModelReport> reports;
  for (const auto& [name, factory] : models) {
    reports.push_back(BenchModel(name, factory, pairs, /*seed=*/90210));
  }

  TablePrinter table({"model", "path", "Mcmp/s", "speedup_vs_legacy"});
  for (const ModelReport& report : reports) {
    for (const Row& row : report.rows) {
      table.AddRow({report.model, row.name,
                    FormatDouble(row.comparisons_per_sec / 1e6, 2),
                    FormatDouble(row.speedup_vs_legacy, 2)});
    }
  }
  bench::EmitTable(table, flags, "Vote-generation throughput (" +
                                     std::to_string(n_pairs) + " pairs/row)");

  // engine=d8 per-stage split: where the 20x gap between the bare batch
  // path and the engine-driven path actually goes.
  for (const ModelReport& report : reports) {
    if (const Row* engine = FindRow(report, "engine=d8");
        engine != nullptr && engine->seconds > 0.0) {
      std::cout << "engine=d8 " << report.model << ": votegen "
                << FormatDouble(engine->votegen_seconds, 3) << "s, dispatch "
                << FormatDouble(engine->dispatch_seconds, 3) << "s ("
                << FormatDouble(
                       100.0 * engine->dispatch_seconds / engine->seconds, 1)
                << "% overhead)\n";
    }
  }

  // Headlines: the threshold model's serial batch path vs the legacy
  // memoized path (continuity with earlier snapshots), and what the bulk
  // draw layer adds on top of the scalar batch loop.
  const ModelReport& threshold = reports[0];
  const Row* batch_row = FindRow(threshold, "batch");
  const Row* bulk_row = FindRow(threshold, "bulk");
  CROWDMAX_CHECK(batch_row != nullptr && bulk_row != nullptr);
  const double headline = batch_row->speedup_vs_legacy;
  const double bulk_vs_batch =
      batch_row->comparisons_per_sec > 0.0
          ? bulk_row->comparisons_per_sec / batch_row->comparisons_per_sec
          : 0.0;
  std::cout << "\nheadline: threshold batch vs legacy = " << headline
            << "x\nheadline: threshold bulk vs batch = " << bulk_vs_batch
            << "x\n";

  if (check) {
    const std::string baseline =
        flags.GetString("baseline", "BENCH_hotpath.json");
    const double tolerance = flags.GetDouble("check_tolerance", 0.6);
    return RunCheck(reports, baseline, tolerance);
  }

  if (smoke) {
    // CI smoke contract: every serial chunked row re-verified
    // bit-identical to its per-call twin on both draw kernels (checked
    // inside RunChunkedBatch), the batch path not slower than legacy, and
    // the bulk layer genuinely ahead of the scalar loop it replaces.
    CROWDMAX_CHECK(headline > 1.0);
    CROWDMAX_CHECK(bulk_vs_batch > 1.0);
    std::cout << "smoke: OK (batch/bulk-scalar/bulk bit-identical to "
                 "per-call for "
              << reports.size() << " models, headline " << headline
              << "x, bulk vs batch " << bulk_vs_batch << "x)\n";
    return 0;
  }

  std::ofstream out(out_path);
  CROWDMAX_CHECK(out.good());
  out << "{\n  \"bench\": \"hotpath\",\n  \"pairs_per_row\": " << n_pairs
      << ",\n  \"n_elements\": " << n_elements << ",\n  \"rng_backend\": \""
      << RngBulkBackend() << "\",\n  \"models\": [\n";
  for (size_t m = 0; m < reports.size(); ++m) {
    out << "    {\"model\": \"" << reports[m].model << "\", \"rows\": [\n";
    for (size_t r = 0; r < reports[m].rows.size(); ++r) {
      const Row& row = reports[m].rows[r];
      out << "      {\"path\": \"" << row.name << "\", \"seconds\": "
          << row.seconds << ", \"comparisons_per_sec\": "
          << row.comparisons_per_sec << ", \"speedup_vs_legacy\": "
          << row.speedup_vs_legacy;
      if (row.votegen_seconds >= 0.0) {
        out << ", \"votegen_seconds\": " << row.votegen_seconds
            << ", \"dispatch_seconds\": " << row.dispatch_seconds;
      }
      out << "}" << (r + 1 < reports[m].rows.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (m + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"headline_threshold_batch_vs_legacy\": " << headline
      << ",\n  \"headline_threshold_bulk_vs_batch\": " << bulk_vs_batch
      << "\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) { return crowdmax::Main(argc, argv); }
