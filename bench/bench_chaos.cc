// Chaos-harness bench: what an outage actually costs a deployment, and
// what crash-safety costs a run.
//
// Part 1 drives the same multi-tenant workload through the
// ServiceSupervisor twice — once healthy, once under a chaos plan with a
// mid-run service outage window plus random per-query kills — and reports
// queries completed / shed / killed / recovered and the p99 latency of
// executed queries in both regimes. Killed queries recover by
// deterministic re-execution, so the interesting number is how much of the
// workload still completes and what the recovery re-runs do to tail
// latency.
//
// Part 2 measures the checkpoint tax: the same filter run with no
// CheckpointController, with snapshots at every round boundary, and with
// snapshots every 2nd boundary, reporting wall time per run and the
// snapshot size. This is the overhead a deployment pays for the
// kill-and-resume guarantee tests/chaos_test.cc pins.
//
// The machine-readable twin goes to BENCH_chaos.json (override with
// --out).
//
// Flags:
//   --queries=N    supervised workload size (default 240)
//   --repeats=R    checkpoint-overhead timing repetitions (default 30)
//   --smoke        32-query CI smoke run (skips the JSON artifact)
//   --out=PATH     JSON artifact path (default BENCH_chaos.json)

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/checkpoint.h"
#include "core/filter_phase.h"
#include "core/round_engine.h"
#include "core/worker_model.h"
#include "query/supervisor.h"

namespace crowdmax {
namespace {

int64_t Percentile(std::vector<int64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

int64_t ExecutedP99(const SupervisedRunResult& run) {
  std::vector<int64_t> latencies;
  for (const SupervisedOutcome& sup : run.outcomes) {
    if (sup.outcome.admitted) latencies.push_back(sup.outcome.latency_micros);
  }
  std::sort(latencies.begin(), latencies.end());
  return Percentile(latencies, 0.99);
}

struct CheckpointTiming {
  int64_t micros_per_run = 0;
  int64_t snapshots = 0;
  int64_t snapshot_bytes = 0;
};

// Times `repeats` fresh filter runs over `instance`, checkpointing every
// `cadence` boundaries (0 = no controller attached at all).
CheckpointTiming TimeFilterRuns(const Instance& instance, int64_t repeats,
                                int64_t cadence) {
  std::vector<ElementId> items;
  for (int i = 0; i < instance.size(); ++i) items.push_back(i);
  FilterOptions options;
  options.u_n = 3;
  options.memoize = true;
  options.global_loss_counter = true;

  CheckpointTiming timing;
  const auto start = std::chrono::steady_clock::now();
  for (int64_t r = 0; r < repeats; ++r) {
    ThresholdComparator comparator(&instance, ThresholdModel{0.05, 0.1},
                                   /*seed=*/500 + static_cast<uint64_t>(r));
    std::unique_ptr<RoundEngine> engine =
        RoundEngine::CreateSerial(&comparator, /*memoize=*/true);
    CheckpointController controller;
    if (cadence > 0) {
      controller.set_snapshot_every_rounds(cadence);
      engine->set_checkpoint(&controller);
    }
    Result<FilterEngineRun> run =
        RunFilterOnEngine(items, options, engine.get());
    CROWDMAX_CHECK(run.ok());
    if (cadence > 0) {
      timing.snapshots += controller.snapshots_taken();
      if (controller.has_checkpoint()) {
        timing.snapshot_bytes =
            static_cast<int64_t>(controller.checkpoint().size());
      }
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  timing.micros_per_run =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count() /
      repeats;
  return timing;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n";
    return 1;
  }
  const bool smoke = flags.GetBool("smoke", false);
  const int64_t queries =
      smoke ? 32 : flags.GetBoundedInt("queries", 240, 8, 100000);
  const int64_t repeats =
      smoke ? 5 : flags.GetBoundedInt("repeats", 30, 1, 10000);
  const std::string out_path = flags.GetString("out", "BENCH_chaos.json");

  bench::PrintHeader(
      "BENCH_chaos",
      "outage recovery under the service supervisor + checkpoint overhead");

  // Two shards of the paper's standard simulation input, platform mode
  // with mild faults — the regime where recovery machinery earns its keep.
  std::vector<bench::TwoClassSetup> setups;
  for (int64_t s = 0; s < 2; ++s) {
    setups.push_back(bench::MakeTwoClassSetup(
        60 + 20 * s, 3, 1, 700 + static_cast<uint64_t>(s)));
  }
  SupervisorOptions options;
  for (const bench::TwoClassSetup& setup : setups) {
    options.service.shards.push_back(
        {&setup.instance, setup.delta_n, setup.delta_e});
  }
  options.service.use_platform = true;
  options.service.platform_workers = 30;
  options.service.naive_votes = 3;
  options.service.expert_votes = 5;
  options.service.fault.abandon_probability = 0.03;
  options.service.fault.min_quorum = 2;
  options.service.resilient.max_retries = 3;

  std::vector<QuerySpec> specs;
  specs.reserve(static_cast<size_t>(queries));
  for (int64_t i = 0; i < queries; ++i) {
    QuerySpec spec;
    spec.tenant = "tenant" + std::to_string(i);
    spec.shard = i % 2;
    spec.kind = QueryKind::kMax;
    spec.u_n = 2 + i % 3;
    spec.seed = 40000 + static_cast<uint64_t>(i) * 71;
    spec.weight = 1 + i % 3;
    specs.push_back(spec);
  }

  // Healthy run: supervisor attached, chaos plan empty.
  Result<ServiceSupervisor> healthy = ServiceSupervisor::Create(options);
  CROWDMAX_CHECK(healthy.ok());
  Result<SupervisedRunResult> baseline = healthy->Run(specs);
  CROWDMAX_CHECK(baseline.ok());
  const int64_t baseline_p99 = ExecutedP99(*baseline);

  // Chaos run: a mid-run outage window sheds 1/8 of the workload and a
  // quarter of the surviving queries are killed mid-run and recovered by
  // re-execution.
  SupervisorOptions chaos_options = options;
  chaos_options.chaos.seed = 2026;
  chaos_options.chaos.kill_query_probability = 0.25;
  chaos_options.chaos.min_kill_step = 1;
  chaos_options.chaos.max_kill_step = 3;
  chaos_options.chaos.max_restarts = 1;
  chaos_options.chaos.outage_start = queries / 4;
  chaos_options.chaos.outage_queries = queries / 8;
  Result<ServiceSupervisor> chaotic = ServiceSupervisor::Create(chaos_options);
  CROWDMAX_CHECK(chaotic.ok());
  Result<SupervisedRunResult> outage = chaotic->Run(specs);
  CROWDMAX_CHECK(outage.ok());
  const int64_t outage_p99 = ExecutedP99(*outage);

  TablePrinter service_table(
      {"regime", "submitted", "completed", "shed", "killed", "recovered",
       "p99_us"});
  service_table.AddRow(
      {"healthy", std::to_string(baseline->report.submitted),
       std::to_string(baseline->report.completed), "0", "0", "0",
       std::to_string(baseline_p99)});
  service_table.AddRow(
      {"outage+kills", std::to_string(outage->report.submitted),
       std::to_string(outage->report.completed),
       std::to_string(outage->report.shed_outage + outage->report.shed_load +
                      outage->report.shed_breaker),
       std::to_string(outage->report.killed),
       std::to_string(outage->report.recovered),
       std::to_string(outage_p99)});
  bench::EmitTable(service_table, flags,
                   "Supervised workload, healthy vs mid-run outage");

  // Checkpoint overhead: the same run bare, snapshotting every boundary,
  // and snapshotting every 2nd boundary. A larger instance than the
  // supervised shards so the filter runs enough rounds for the cadences to
  // differ (the round count grows with n).
  const bench::TwoClassSetup timing_setup =
      bench::MakeTwoClassSetup(smoke ? 120 : 400, 3, 1, 900);
  const Instance& timing_instance = timing_setup.instance;
  const CheckpointTiming bare = TimeFilterRuns(timing_instance, repeats, 0);
  const CheckpointTiming every1 = TimeFilterRuns(timing_instance, repeats, 1);
  const CheckpointTiming every2 = TimeFilterRuns(timing_instance, repeats, 2);
  auto overhead_pct = [&bare](const CheckpointTiming& t) {
    if (bare.micros_per_run <= 0) return 0.0;
    return 100.0 *
           static_cast<double>(t.micros_per_run - bare.micros_per_run) /
           static_cast<double>(bare.micros_per_run);
  };

  TablePrinter ckpt_table({"cadence", "us_per_run", "overhead_pct",
                           "snapshots_per_run", "snapshot_bytes"});
  ckpt_table.AddRow({"off", std::to_string(bare.micros_per_run), "0.0", "0",
                     "0"});
  ckpt_table.AddRow({"every_round", std::to_string(every1.micros_per_run),
                     std::to_string(overhead_pct(every1)),
                     std::to_string(every1.snapshots / repeats),
                     std::to_string(every1.snapshot_bytes)});
  ckpt_table.AddRow({"every_2_rounds", std::to_string(every2.micros_per_run),
                     std::to_string(overhead_pct(every2)),
                     std::to_string(every2.snapshots / repeats),
                     std::to_string(every2.snapshot_bytes)});
  bench::EmitTable(ckpt_table, flags,
                   "Checkpoint overhead (serial filter, n=" +
                       std::to_string(timing_instance.size()) + ", " +
                       std::to_string(repeats) + " runs per cadence)");

  if (smoke) {
    // CI smoke contract: kills recovered, sheds typed, nothing hung.
    CROWDMAX_CHECK(outage->report.killed > 0);
    CROWDMAX_CHECK(outage->report.recovered == outage->report.killed);
    CROWDMAX_CHECK(outage->report.shed_outage > 0);
    for (const SupervisedOutcome& sup : outage->outcomes) {
      if (sup.shed_load || sup.shed_breaker) {
        CROWDMAX_CHECK(sup.outcome.status.code() == StatusCode::kUnavailable);
        CROWDMAX_CHECK(sup.outcome.status.retry_after_steps() > 0);
      }
    }
    std::cout << "\nsmoke: OK (" << outage->report.completed << " completed, "
              << outage->report.killed << " killed, "
              << outage->report.recovered << " recovered, "
              << outage->report.shed_outage << " shed)\n";
    return 0;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\"bench\": \"chaos_recovery\", \"queries\": " << queries
      << ", \"healthy\": {\"completed\": " << baseline->report.completed
      << ", \"p99_micros\": " << baseline_p99 << "}"
      << ", \"outage\": {\"completed\": " << outage->report.completed
      << ", \"shed_outage\": " << outage->report.shed_outage
      << ", \"shed_load\": " << outage->report.shed_load
      << ", \"killed\": " << outage->report.killed
      << ", \"recovered\": " << outage->report.recovered
      << ", \"unrecovered\": " << outage->report.unrecovered
      << ", \"p99_micros\": " << outage_p99 << "}"
      << ", \"checkpoint\": {\"repeats\": " << repeats
      << ", \"bare_micros_per_run\": " << bare.micros_per_run
      << ", \"every_round_micros_per_run\": " << every1.micros_per_run
      << ", \"every_2_micros_per_run\": " << every2.micros_per_run
      << ", \"snapshots_per_run\": " << every1.snapshots / repeats
      << ", \"snapshot_bytes\": " << every1.snapshot_bytes << "}}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) { return crowdmax::Main(argc, argv); }
