// Reproduces Table 1 and the surrounding DOTS experiment (Section 5.3):
// two identical runs of Algorithm 1 on 50 random-dot images over the
// simulated CrowdFlower platform, with gold questions from the golden set
// range and "experts" simulated as majority-of-7 naive votes. The paper
// reports that the phase-1 survivors were the true top images and that the
// final round ordered them essentially perfectly (one adjacent swap in one
// experiment); it also reports that 2-MaxFind alone returned the correct
// image in 13 of 14 repetitions.
//
// Flags: --u_n (default 5, the paper's choice), --seed, --runs_2mf
//        (default 14), --csv.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/single_class.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "core/batched.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/round_engine.h"
#include "core/tournament.h"
#include "datasets/dots.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

// Cross-phase dedup measurement (DESIGN.md §11): DOTS's "experts" are
// simulated from the same naive crowd (majority of 7), so both phases buy
// from one worker class and may legitimately share one SharedPairCache
// class — the final round then reuses phase-1 evidence for every survivor
// pair the filter already resolved instead of re-buying it.
struct DedupOutcome {
  std::vector<ElementId> candidates;
  int64_t expert_issued = 0;
  int64_t expert_paid = 0;
  int64_t expert_hits = 0;
  ElementId pick = -1;
};

DedupOutcome RunTwoPhase(const Instance& instance, int64_t u_n, uint64_t seed,
                         bool share_evidence) {
  RelativeErrorComparator crowd_model(&instance, DotsWorkerModel(), seed);
  PlatformOptions platform_options;
  platform_options.num_workers = 60;
  platform_options.spammer_fraction = 0.1;
  platform_options.seed = seed + 1;
  auto platform =
      CrowdPlatform::Create(&crowd_model, &instance, {}, platform_options);
  CROWDMAX_CHECK(platform.ok());
  auto naive = PlatformBatchExecutor::Create(platform->get(), /*votes=*/3);
  auto expert = PlatformBatchExecutor::Create(platform->get(), /*votes=*/7);
  CROWDMAX_CHECK(naive.ok() && expert.ok());

  SharedPairCache cache;
  FilterOptions filter;
  filter.u_n = u_n;
  filter.memoize = true;
  if (share_evidence) {
    filter.shared_cache = &cache;
    filter.cache_class = 0;  // One class: both phases buy from this crowd.
  }
  Result<BatchedFilterResult> phase1 =
      BatchedFilterCandidates(instance.AllElements(), filter, naive->get());
  CROWDMAX_CHECK(phase1.ok());

  Result<std::unique_ptr<RoundEngine>> finals_engine =
      RoundEngine::CreateBatched(expert->get(),
                                 share_evidence ? &cache : nullptr,
                                 /*cache_class=*/0);
  CROWDMAX_CHECK(finals_engine.ok());
  Result<TournamentEngineRun> finals = RunTournamentOnEngine(
      phase1->filter.candidates, finals_engine->get());
  CROWDMAX_CHECK(finals.ok());

  DedupOutcome outcome;
  outcome.candidates = phase1->filter.candidates;
  outcome.expert_issued = (*finals_engine)->issued();
  outcome.expert_paid = (*finals_engine)->paid();
  outcome.expert_hits = (*finals_engine)->cache_hits();
  outcome.pick =
      outcome.candidates[IndexOfMostWins(finals->tournament)];
  return outcome;
}

void ReportCrossPhaseDedup(const Instance& instance, int64_t u_n,
                           uint64_t seed) {
  const DedupOutcome baseline = RunTwoPhase(instance, u_n, seed, false);
  const DedupOutcome dedup = RunTwoPhase(instance, u_n, seed, true);
  // Phase 1 replays identically (same seeds, same submission sequence), so
  // the final rounds rank the same survivor set.
  CROWDMAX_CHECK(baseline.candidates == dedup.candidates);
  const double saved =
      baseline.expert_paid > 0
          ? 100.0 * static_cast<double>(baseline.expert_paid -
                                        dedup.expert_paid) /
                static_cast<double>(baseline.expert_paid)
          : 0.0;
  std::cout << "\n[cross-phase dedup] simulated-expert regime (one worker "
               "class), final round over "
            << baseline.candidates.size() << " survivors:\n"
            << "  baseline expert comparisons: " << baseline.expert_paid
            << "\n  with shared pair cache:      " << dedup.expert_paid
            << " paid, " << dedup.expert_hits << " of " << dedup.expert_issued
            << " served from phase-1 evidence (" << FormatDouble(saved, 1)
            << "% expert spend saved)\n"
            << "  final pick: baseline=" << baseline.pick
            << " dedup=" << dedup.pick
            << " true max=" << instance.MaxElement() << "\n";
}

struct ExperimentOutcome {
  // Final-round position (1-based) per element id; elements that did not
  // reach the final round are absent.
  std::map<ElementId, int64_t> final_positions;
  std::vector<ElementId> candidates;
};

// Runs one DOTS experiment: phase 1 with single naive votes, then a final
// all-play-all among the survivors judged by simulated experts (7 votes).
ExperimentOutcome RunExperiment(const Instance& instance, int64_t u_n,
                                uint64_t seed) {
  RelativeErrorComparator crowd_model(&instance, DotsWorkerModel(), seed);

  PlatformOptions platform_options;
  platform_options.num_workers = 60;
  platform_options.spammer_fraction = 0.1;
  platform_options.seed = seed + 1;
  // Gold tasks: easy, far-apart pairs.
  std::vector<ComparisonTask> gold_tasks;
  for (ElementId a = 0; a + 25 < instance.size(); ++a) {
    gold_tasks.push_back({a, static_cast<ElementId>(a + 25)});
  }
  auto platform = CrowdPlatform::Create(&crowd_model, &instance, gold_tasks,
                                        platform_options);
  CROWDMAX_CHECK(platform.ok());

  // Phase-1 comparisons aggregate 3 worker answers each (the paper's runs
  // requested multiple judgments per pair); the final round uses the
  // 7-vote "simulated experts".
  PlatformComparator naive(platform->get(), /*votes_per_task=*/3);
  PlatformComparator simulated_expert(platform->get(), /*votes_per_task=*/7);

  FilterOptions filter;
  filter.u_n = u_n;
  Result<FilterResult> phase1 =
      FilterCandidates(instance.AllElements(), filter, &naive);
  CROWDMAX_CHECK(phase1.ok());

  // Final round: all-play-all among the survivors with simulated experts,
  // ordered by wins (the "ranking of the last round" of Table 1).
  const TournamentResult finals =
      AllPlayAll(phase1->candidates, &simulated_expert);
  const std::vector<ElementId> ranked =
      OrderByWins(phase1->candidates, finals);

  ExperimentOutcome outcome;
  outcome.candidates = phase1->candidates;
  for (size_t pos = 0; pos < ranked.size(); ++pos) {
    outcome.final_positions[ranked[pos]] = static_cast<int64_t>(pos) + 1;
  }
  return outcome;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t u_n = flags.GetInt("u_n", 5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int64_t runs_2mf = flags.GetInt("runs_2mf", 14);

  bench::PrintHeader("Table 1",
                     "DOTS on the simulated platform: final-round ranking");

  DotsDataset dots = DotsDataset::Standard();
  Result<DotsDataset> sampled = dots.Sample(50, seed);
  CROWDMAX_CHECK(sampled.ok());
  Instance instance = sampled->ToInstance();

  const ExperimentOutcome exp1 = RunExperiment(instance, u_n, seed + 10);
  const ExperimentOutcome exp2 = RunExperiment(instance, u_n, seed + 20);

  // Rows: the true top images (fewest dots), as in Table 1.
  std::vector<ElementId> by_rank = instance.AllElements();
  std::sort(by_rank.begin(), by_rank.end(), [&](ElementId a, ElementId b) {
    return instance.value(a) > instance.value(b);
  });
  const size_t rows = std::max(exp1.candidates.size(), exp2.candidates.size());

  TablePrinter table({"# dots", "Exp. 1", "Exp. 2"});
  for (size_t i = 0; i < rows && i < by_rank.size(); ++i) {
    const ElementId e = by_rank[i];
    auto fmt = [&](const ExperimentOutcome& exp) -> std::string {
      auto it = exp.final_positions.find(e);
      return it == exp.final_positions.end() ? "-" : FormatInt(it->second);
    };
    table.AddRow({FormatInt(static_cast<int64_t>(-instance.value(e))),
                  fmt(exp1), fmt(exp2)});
  }
  bench::EmitTable(table, flags,
                   "Final-round position of the true top images ('-' = "
                   "eliminated in phase 1); paper: top-9 promoted and "
                   "ordered almost perfectly");

  std::cout << "\nPhase-1 survivors: Exp1=" << exp1.candidates.size()
            << ", Exp2=" << exp2.candidates.size() << " (paper: 9 and 9)\n";

  ReportCrossPhaseDedup(instance, u_n, seed + 10);

  // The paper's companion statistic: naive-only 2-MaxFind repeated 14
  // times returned the correct image in all but one run.
  int correct = 0;
  for (int64_t r = 0; r < runs_2mf; ++r) {
    RelativeErrorComparator crowd_model(&instance, DotsWorkerModel(),
                                        seed + 100 + static_cast<uint64_t>(r));
    PlatformOptions platform_options;
    platform_options.num_workers = 60;
    platform_options.spammer_fraction = 0.1;
    platform_options.seed = seed + 200 + static_cast<uint64_t>(r);
    auto platform =
        CrowdPlatform::Create(&crowd_model, &instance, {}, platform_options);
    CROWDMAX_CHECK(platform.ok());
    // Each 2-MaxFind comparison aggregates 7 worker answers, mirroring the
    // paper's multi-judgment CrowdFlower protocol.
    PlatformComparator naive(platform->get(), 7);
    Result<SingleClassResult> result =
        TwoMaxFindNaiveOnly(instance.AllElements(), &naive);
    CROWDMAX_CHECK(result.ok());
    if (result->best == instance.MaxElement()) ++correct;
  }
  std::cout << "\nNaive-only 2-MaxFind: " << correct << "/" << runs_2mf
            << " runs returned the true best image (paper: 13/14).\n"
            << "DOTS is the wisdom-of-crowds regime: simulated experts "
               "suffice, two-phase is overkill.\n";
  return 0;
}
