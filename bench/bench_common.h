// Shared helpers for the reproduction bench binaries.
//
// Every bench binary regenerates one of the paper's tables or figures: it
// seeds its RNG deterministically, runs the sweep, and prints the same
// rows/series the paper reports (aligned table plus optional CSV via
// --csv). Absolute numbers differ from the paper (simulated workers, not
// CrowdFlower), but the shape — who wins, by what factor, where crossovers
// fall — is the reproduction target; EXPERIMENTS.md records the outcomes.

#ifndef CROWDMAX_BENCH_BENCH_COMMON_H_
#define CROWDMAX_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/table.h"
#include "core/instance.h"
#include "core/trace.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace bench {

/// A random instance plus the thresholds realizing the target u_n / u_e.
struct TwoClassSetup {
  Instance instance;
  double delta_n = 0.0;
  double delta_e = 0.0;
  int64_t u_n = 0;
  int64_t u_e = 0;
};

/// Builds the paper's standard simulation input: n i.i.d. uniform values
/// with delta_n / delta_e chosen so that u_n(n) and u_e(n) hit the targets
/// (Section 5: "We experimented with various values for the parameters n,
/// delta_n and delta_e; the last two, in particular, define the values of
/// u_n(n) and u_e(n)").
inline TwoClassSetup MakeTwoClassSetup(int64_t n, int64_t u_n_target,
                                       int64_t u_e_target, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  TwoClassSetup setup{std::move(instance).value()};
  setup.delta_n = setup.instance.DeltaForU(u_n_target);
  setup.delta_e = setup.instance.DeltaForU(u_e_target);
  setup.u_n = setup.instance.CountWithin(setup.delta_n);
  setup.u_e = setup.instance.CountWithin(setup.delta_e);
  return setup;
}

/// Prints the bench banner: what artifact this binary regenerates.
inline void PrintHeader(const std::string& artifact,
                        const std::string& description) {
  std::cout << "==============================================================="
               "=\n"
            << artifact << " — " << description << "\n"
            << "Paper: The Importance of Being Expert (SIGMOD 2015)\n"
            << "==============================================================="
               "=\n";
}

/// Renders `table` aligned, plus CSV when --csv was passed.
inline void EmitTable(const TablePrinter& table, const FlagParser& flags,
                      const std::string& caption) {
  std::cout << "\n" << caption << "\n";
  table.Print(std::cout);
  if (flags.GetBool("csv", false)) {
    std::cout << "\n[csv]\n";
    table.PrintCsv(std::cout);
  }
}

/// Reads the shared --threads flag: 0 (default) keeps the serial engine;
/// 1..256 routes round tournaments through the deterministic parallel
/// engine (results are bit-identical for every value >= 1, but differ from
/// the serial path because the parallel engine draws per-group fork seeds
/// instead of sharing one RNG stream).
inline int64_t ThreadsFlag(const FlagParser& flags) {
  return flags.GetBoundedInt("threads", 0, 0, 256);
}

/// The shared metrics/trace hook of every bench binary. Construct one
/// right after flag parsing; when --metrics is passed it resets and
/// enables the global metrics registry and installs an AlgoTrace for the
/// whole run, and at scope exit it emits a machine-readable report —
/// JSON (default) or CSV via --metrics_format=csv, to stdout or to the
/// file named by --metrics_out. Without --metrics this is a strict no-op:
/// the registry stays disabled and runs are bit-identical to the legacy
/// path.
class MetricsSession {
 public:
  explicit MetricsSession(const FlagParser& flags)
      : enabled_(flags.GetBool("metrics", false)),
        out_path_(flags.GetString("metrics_out", "")),
        format_(flags.GetString("metrics_format", "json")) {
    if (!enabled_) return;
    MetricsRegistry::Default()->Reset();
    SetMetricsEnabled(true);
    scoped_trace_ = std::make_unique<ScopedTrace>(&trace_);
  }

  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  ~MetricsSession() {
    if (!enabled_) return;
    scoped_trace_.reset();
    SetMetricsEnabled(false);
    std::ofstream file;
    std::ostream* out = &std::cout;
    if (!out_path_.empty()) {
      file.open(out_path_);
      if (!file) {
        std::cerr << "metrics: cannot open " << out_path_ << "\n";
        return;
      }
      out = &file;
    } else {
      *out << "\n[metrics]\n";
    }
    if (format_ == "csv") {
      MetricsRegistry::Default()->WriteCsv(*out);
    } else {
      *out << "{\"metrics\": ";
      MetricsRegistry::Default()->WriteJson(*out);
      *out << ", \"trace\": ";
      trace_.WriteJson(*out);
      *out << "}\n";
    }
  }

  bool enabled() const { return enabled_; }

  /// The run-wide trace, or nullptr when --metrics was not passed.
  AlgoTrace* trace() { return enabled_ ? &trace_ : nullptr; }

 private:
  bool enabled_;
  std::string out_path_;
  std::string format_;
  AlgoTrace trace_;
  std::unique_ptr<ScopedTrace> scoped_trace_;
};

/// Parses flags or dies with a usage message.
inline FlagParser ParseFlagsOrDie(int argc, char** argv) {
  FlagParser flags;
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << "flag error: " << status.ToString() << "\n";
    std::exit(2);
  }
  return flags;
}

}  // namespace bench
}  // namespace crowdmax

#endif  // CROWDMAX_BENCH_BENCH_COMMON_H_
