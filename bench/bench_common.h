// Shared helpers for the reproduction bench binaries.
//
// Every bench binary regenerates one of the paper's tables or figures: it
// seeds its RNG deterministically, runs the sweep, and prints the same
// rows/series the paper reports (aligned table plus optional CSV via
// --csv). Absolute numbers differ from the paper (simulated workers, not
// CrowdFlower), but the shape — who wins, by what factor, where crossovers
// fall — is the reproduction target; EXPERIMENTS.md records the outcomes.

#ifndef CROWDMAX_BENCH_BENCH_COMMON_H_
#define CROWDMAX_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace bench {

/// A random instance plus the thresholds realizing the target u_n / u_e.
struct TwoClassSetup {
  Instance instance;
  double delta_n = 0.0;
  double delta_e = 0.0;
  int64_t u_n = 0;
  int64_t u_e = 0;
};

/// Builds the paper's standard simulation input: n i.i.d. uniform values
/// with delta_n / delta_e chosen so that u_n(n) and u_e(n) hit the targets
/// (Section 5: "We experimented with various values for the parameters n,
/// delta_n and delta_e; the last two, in particular, define the values of
/// u_n(n) and u_e(n)").
inline TwoClassSetup MakeTwoClassSetup(int64_t n, int64_t u_n_target,
                                       int64_t u_e_target, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  TwoClassSetup setup{std::move(instance).value()};
  setup.delta_n = setup.instance.DeltaForU(u_n_target);
  setup.delta_e = setup.instance.DeltaForU(u_e_target);
  setup.u_n = setup.instance.CountWithin(setup.delta_n);
  setup.u_e = setup.instance.CountWithin(setup.delta_e);
  return setup;
}

/// Prints the bench banner: what artifact this binary regenerates.
inline void PrintHeader(const std::string& artifact,
                        const std::string& description) {
  std::cout << "==============================================================="
               "=\n"
            << artifact << " — " << description << "\n"
            << "Paper: The Importance of Being Expert (SIGMOD 2015)\n"
            << "==============================================================="
               "=\n";
}

/// Renders `table` aligned, plus CSV when --csv was passed.
inline void EmitTable(const TablePrinter& table, const FlagParser& flags,
                      const std::string& caption) {
  std::cout << "\n" << caption << "\n";
  table.Print(std::cout);
  if (flags.GetBool("csv", false)) {
    std::cout << "\n[csv]\n";
    table.PrintCsv(std::cout);
  }
}

/// Reads the shared --threads flag: 0 (default) keeps the serial engine;
/// 1..256 routes round tournaments through the deterministic parallel
/// engine (results are bit-identical for every value >= 1, but differ from
/// the serial path because the parallel engine draws per-group fork seeds
/// instead of sharing one RNG stream).
inline int64_t ThreadsFlag(const FlagParser& flags) {
  return flags.GetBoundedInt("threads", 0, 0, 256);
}

/// Parses flags or dies with a usage message.
inline FlagParser ParseFlagsOrDie(int argc, char** argv) {
  FlagParser flags;
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << "flag error: " << status.ToString() << "\n";
    std::exit(2);
  }
  return flags;
}

}  // namespace bench
}  // namespace crowdmax

#endif  // CROWDMAX_BENCH_BENCH_COMMON_H_
