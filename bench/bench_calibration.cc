// Benchmarks the calibration tool (Section 3.1's methodology as an API):
// profiles three worker classes against gold data and reports threshold
// detection and the estimated delta.
//
//  * threshold workers with known delta  -> threshold detected, delta
//    recovered within a bucket width;
//  * DOTS-style probabilistic workers    -> no threshold (majority voting
//    converges everywhere except vanishing differences);
//  * oracle workers                      -> no threshold, perfect accuracy.
//
// Flags: --seed, --csv.

#include <cstdint>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/calibration.h"
#include "core/worker_model.h"
#include "datasets/dots.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

void PrintReport(const std::string& label, const CalibrationReport& report,
                 const FlagParser& flags) {
  TablePrinter table({"distance bucket", "pairs", "single-vote acc",
                      "majority-of-21 acc"});
  for (const CalibrationBucket& bucket : report.buckets) {
    table.AddRow({"(" + FormatDouble(bucket.min_distance, 3) + ", " +
                      FormatDouble(bucket.max_distance, 3) + "]",
                  FormatInt(bucket.pairs),
                  bucket.pairs > 0 ? FormatDouble(bucket.single_vote_accuracy, 3)
                                   : "n/a",
                  bucket.pairs > 0 ? FormatDouble(bucket.majority_accuracy, 3)
                                   : "n/a"});
  }
  bench::EmitTable(table, flags, label);
  std::cout << "threshold detected: "
            << (report.threshold_detected ? "YES" : "no")
            << (report.threshold_detected
                    ? ", estimated delta = " +
                          FormatDouble(report.estimated_delta, 3)
                    : std::string())
            << "\n";
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Calibration",
                     "worker profiling and threshold detection (Sec. 3.1)");

  // 1. Threshold workers with a known delta.
  {
    Result<Instance> gold = UniformInstance(80, seed, 0.0, 1.0);
    CROWDMAX_CHECK(gold.ok());
    const double true_delta = 0.3;
    ThresholdComparator worker(&*gold, ThresholdModel{true_delta, 0.0},
                               seed + 1);
    CalibrationOptions options;
    options.num_buckets = 10;
    options.seed = seed + 2;
    Result<CalibrationReport> report =
        CalibrateWorkers(*gold, &worker, options);
    CROWDMAX_CHECK(report.ok());
    PrintReport("Threshold workers, true delta = 0.300", *report, flags);
  }

  // 2. DOTS-style probabilistic workers on the dots catalog.
  {
    DotsDataset dots = DotsDataset::Standard();
    Instance instance = dots.ToInstance();
    RelativeErrorComparator worker(&instance, DotsWorkerModel(), seed + 3);
    CalibrationOptions options;
    options.num_buckets = 8;
    options.seed = seed + 4;
    Result<CalibrationReport> report =
        CalibrateWorkers(instance, &worker, options);
    CROWDMAX_CHECK(report.ok());
    PrintReport("DOTS probabilistic workers (error decays with difference)",
                *report, flags);
  }

  // 3. Oracle workers.
  {
    Result<Instance> gold = UniformInstance(60, seed + 5);
    CROWDMAX_CHECK(gold.ok());
    OracleComparator worker(&*gold);
    Result<CalibrationReport> report = CalibrateWorkers(*gold, &worker, {});
    CROWDMAX_CHECK(report.ok());
    PrintReport("Oracle workers (perfect)", *report, flags);
  }

  std::cout << "\nExpected shape: only the threshold workers trigger "
               "detection, with the estimated\ndelta within one bucket of "
               "the true 0.3.\n";
  return 0;
}
