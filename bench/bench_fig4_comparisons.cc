// Reproduces Figure 4: number of naive and expert comparisons as a function
// of n (log-scale y in the paper), in the average case (measured on random
// instances) and the worst case. Following the paper, worst-case counts for
// Algorithm 1 use the theoretical upper bounds (4*n*u_n naive,
// 2*(2*u_n-1)^{3/2} expert: "for our algorithm we considered the upper
// bound predicted by the theory"), while 2-MaxFind worst cases are measured
// on the adversarial packed instances.
//
// Flags: --trials (default 15), --seed, --csv, --threads (0 = serial
// filter phase; >= 1 runs each round's group tournaments on the parallel
// engine — same comparison counts for any thread count >= 1).

#include <cstdint>
#include <iostream>
#include <vector>

#include "baselines/single_class.h"
#include "bench/bench_common.h"
#include "common/table.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {1000, 2000, 3000, 4000, 5000};

struct Config {
  int64_t u_n;
  int64_t u_e;
};

// Measured worst case of 2-MaxFind: packed instance (everything
// indistinguishable) plus the pivot-loses adversary.
int64_t TwoMaxFindAdversarialComparisons(int64_t n, uint64_t seed) {
  Result<Instance> packed = PackedInstance(n, seed);
  CROWDMAX_CHECK(packed.ok());
  AdversarialComparator adversary(&*packed, /*delta=*/1.0,
                                  AdversarialPolicy::kFirstLoses);
  Result<MaxFindResult> result =
      TwoMaxFind(packed->AllElements(), &adversary);
  CROWDMAX_CHECK(result.ok());
  return result->paid_comparisons;
}

void RunConfig(const Config& config, int64_t trials, uint64_t seed,
               int64_t threads, const FlagParser& flags) {
  TablePrinter table({"n", "Alg1-naive(avg)", "Alg1-naive(wc)",
                      "Alg1-expert(avg)", "Alg1-expert(wc)",
                      "2MF-naive/expert(avg)", "2MF(wc,adversarial)"});
  for (int64_t n : kSizes) {
    double alg1_naive = 0.0;
    double alg1_expert = 0.0;
    double single_class = 0.0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed =
          seed + static_cast<uint64_t>(n) * 977 + static_cast<uint64_t>(t);
      bench::TwoClassSetup setup =
          bench::MakeTwoClassSetup(n, config.u_n, config.u_e, trial_seed);
      ThresholdComparator naive(&setup.instance,
                                ThresholdModel{setup.delta_n, 0.0},
                                trial_seed * 5 + 1);
      ThresholdComparator expert(&setup.instance,
                                 ThresholdModel{setup.delta_e, 0.0},
                                 trial_seed * 5 + 2);

      ExpertMaxOptions options;
      options.filter.u_n = setup.u_n;
      options.filter.threads = threads;
      Result<ExpertMaxResult> alg1 = FindMaxWithExperts(
          setup.instance.AllElements(), &naive, &expert, options);
      Result<SingleClassResult> expert_only =
          TwoMaxFindExpertOnly(setup.instance.AllElements(), &expert);
      CROWDMAX_CHECK(alg1.ok() && expert_only.ok());

      alg1_naive += static_cast<double>(alg1->paid.naive);
      alg1_expert += static_cast<double>(alg1->paid.expert);
      // The paper plots a single curve for the (near-identical) average
      // comparison counts of 2-MaxFind-naive and 2-MaxFind-expert.
      single_class += static_cast<double>(expert_only->paid_comparisons);
    }
    const double d = static_cast<double>(trials);
    const int64_t wc_2mf =
        TwoMaxFindAdversarialComparisons(n, seed + static_cast<uint64_t>(n));
    table.AddRow(
        {FormatInt(n), FormatDouble(alg1_naive / d, 0),
         FormatInt(FilterComparisonUpperBound(n, config.u_n)),
         FormatDouble(alg1_expert / d, 0),
         FormatInt(TwoMaxFindComparisonUpperBound(2 * config.u_n - 1)),
         FormatDouble(single_class / d, 0), FormatInt(wc_2mf)});
  }
  bench::EmitTable(table, flags,
                   "Figure 4 (u_n=" + std::to_string(config.u_n) +
                       ", u_e=" + std::to_string(config.u_e) +
                       "): comparison counts vs n (log scale in the paper)");
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 15);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int64_t threads = bench::ThreadsFlag(flags);

  bench::PrintHeader("Figure 4", "naive and expert comparisons vs n");
  RunConfig({10, 5}, trials, seed, threads, flags);
  RunConfig({50, 10}, trials, seed + 1, threads, flags);
  std::cout << "\nExpected shape: Alg 1's expert comparisons stay flat in n "
               "(they depend only on u_n);\nits naive comparisons grow "
               "linearly and exceed the single-class counts; 2-MaxFind\ngrows "
               "like n^1.5 in the worst case.\n";
  return 0;
}
