// Logical-step (latency) comparison of the max-finding algorithms
// (Section 3's time model, after Venetis et al.: one logical step = one
// batch of comparisons posted to the platform and answered).
//
// Monetary cost counts comparisons; *latency* counts logical steps. The
// two-phase algorithm is not only cheap when experts are pricey — it is
// also fast: Algorithm 2 runs in O(log n) steps and the expert phase in
// O(sqrt(u_n)) steps, while single-class 2-MaxFind needs O(sqrt(n)) steps
// on the whole input.
//
// Flags: --trials (default 10), --seed, --csv.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/batched.h"
#include "core/comparator.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

constexpr int64_t kSizes[] = {1000, 2000, 4000, 8000};

// Worst-case logical steps of batched 2-MaxFind: packed instance, pivot
// forced to lose every hard comparison.
int64_t TwoMaxFindWorstCaseSteps(int64_t n, uint64_t seed) {
  Result<Instance> packed = PackedInstance(n, seed);
  CROWDMAX_CHECK(packed.ok());
  AdversarialComparator adversary(&*packed, /*delta=*/1.0,
                                  AdversarialPolicy::kFirstLoses);
  ComparatorBatchExecutor executor(&adversary);
  Result<BatchedMaxFindResult> result =
      BatchedTwoMaxFind(packed->AllElements(), &executor);
  CROWDMAX_CHECK(result.ok());
  return result->logical_steps;
}

}  // namespace
}  // namespace crowdmax

int main(int argc, char** argv) {
  using namespace crowdmax;
  FlagParser flags = bench::ParseFlagsOrDie(argc, argv);
  bench::MetricsSession metrics_session(flags);
  const int64_t trials = flags.GetInt("trials", 10);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::PrintHeader("Logical steps",
                     "latency of the algorithms in platform round-trips");

  TablePrinter table({"n", "Alg1 naive steps", "Alg1 expert steps",
                      "Alg1 total", "2-MaxFind steps (avg)",
                      "2-MaxFind steps (wc)"});
  for (int64_t n : kSizes) {
    double alg1_naive = 0.0;
    double alg1_expert = 0.0;
    double single = 0.0;
    for (int64_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed =
          seed + static_cast<uint64_t>(n) * 59 + static_cast<uint64_t>(t);
      bench::TwoClassSetup setup =
          bench::MakeTwoClassSetup(n, 10, 5, trial_seed);
      ThresholdComparator naive(&setup.instance,
                                ThresholdModel{setup.delta_n, 0.0},
                                trial_seed + 1);
      ThresholdComparator expert(&setup.instance,
                                 ThresholdModel{setup.delta_e, 0.0},
                                 trial_seed + 2);
      ComparatorBatchExecutor naive_exec(&naive);
      ComparatorBatchExecutor expert_exec(&expert);

      ExpertMaxOptions options;
      options.filter.u_n = setup.u_n;
      Result<BatchedExpertMaxResult> alg1 = BatchedFindMaxWithExperts(
          setup.instance.AllElements(), &naive_exec, &expert_exec, options);
      CROWDMAX_CHECK(alg1.ok());
      alg1_naive += static_cast<double>(alg1->naive_steps);
      alg1_expert += static_cast<double>(alg1->expert_steps);

      ThresholdComparator single_worker(&setup.instance,
                                        ThresholdModel{setup.delta_e, 0.0},
                                        trial_seed + 3);
      ComparatorBatchExecutor single_exec(&single_worker);
      Result<BatchedMaxFindResult> two_mf =
          BatchedTwoMaxFind(setup.instance.AllElements(), &single_exec);
      CROWDMAX_CHECK(two_mf.ok());
      single += static_cast<double>(two_mf->logical_steps);
    }
    const double d = static_cast<double>(trials);
    table.AddRow(
        {FormatInt(n), FormatDouble(alg1_naive / d, 1),
         FormatDouble(alg1_expert / d, 1),
         FormatDouble((alg1_naive + alg1_expert) / d, 1),
         FormatDouble(single / d, 1),
         FormatInt(TwoMaxFindWorstCaseSteps(n, seed + static_cast<uint64_t>(n)))});
  }
  bench::EmitTable(table, flags,
                   "Logical steps (u_n=10, u_e=5); Alg 1 phase 1 is "
                   "O(log n); 2-MaxFind is fast on random inputs but needs "
                   "Theta(sqrt(n)) rounds in the worst case");
  std::cout << "\nExpected shape: Alg 1's total steps grow logarithmically "
               "with n and its worst case\nmatches its average; 2-MaxFind "
               "averages a couple of rounds on random inputs but its\n"
               "adversarial step count grows like sqrt(n).\n";
  return 0;
}
