// Crowd query engine: the CrowdDB-style front door. Configure two worker
// classes and their prices once; the engine plans the cheapest adequate
// strategy per query (Section 5.1's crossover rules, encoded in
// query/planner.h) and executes it.
//
//   ./examples/crowd_query [--n=3000] [--seed=42]

#include <iostream>

#include "common/flags.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "query/engine.h"

int main(int argc, char** argv) {
  using namespace crowdmax;

  FlagParser flags;
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 2;
  }
  const int64_t n = flags.GetInt("n", 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  Result<Instance> data = UniformInstance(n, seed);
  if (!data.ok()) {
    std::cerr << data.status().ToString() << "\n";
    return 1;
  }
  const double delta_n = data->DeltaForU(12);
  const int64_t u_n = data->CountWithin(delta_n);
  ThresholdComparator naive(&*data, ThresholdModel{delta_n, 0.0}, seed + 1);
  ThresholdComparator expert(&*data, ThresholdModel{data->DeltaForU(2), 0.0},
                             seed + 2);

  for (double expert_price : {3.0, 60.0}) {
    CrowdQueryEngineOptions options;
    options.naive = &naive;
    options.expert = &expert;
    options.prices = CostModel{1.0, expert_price};
    Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
    if (!engine.ok()) {
      std::cerr << engine.status().ToString() << "\n";
      return 1;
    }

    Result<MaxQueryAnswer> answer = engine->Max(data->AllElements(), u_n);
    if (!answer.ok()) {
      std::cerr << answer.status().ToString() << "\n";
      return 1;
    }
    std::cout << "SELECT MAX with c_e = " << expert_price << "\n"
              << "  plan     : " << answer->plan.explanation << "\n"
              << "  answer   : element " << answer->best << " (true rank "
              << data->Rank(answer->best) << ")\n"
              << "  paid     : " << answer->paid.naive << " naive + "
              << answer->paid.expert << " expert = $" << answer->actual_cost
              << "\n\n";
  }

  // A TOP-5 query on the same engine configuration.
  CrowdQueryEngineOptions options;
  options.naive = &naive;
  options.expert = &expert;
  options.prices = CostModel{1.0, 60.0};
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  if (!engine.ok()) return 1;
  Result<TopKQueryAnswer> top =
      engine->TopK(data->AllElements(), 2 * u_n, /*k=*/5);
  if (!top.ok()) {
    std::cerr << top.status().ToString() << "\n";
    return 1;
  }
  std::cout << "SELECT TOP 5 (cost $" << top->actual_cost << "):";
  for (ElementId e : top->top) {
    std::cout << " " << e << "(rank " << data->Rank(e) << ")";
  }
  std::cout << "\n";
  return 0;
}
