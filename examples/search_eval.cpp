// Search-result evaluation (Section 5.3): which of 50 search results best
// answers "asymmetric tsp best approximation"? Crowd workers can discard
// the obviously irrelevant hits; only researchers in the field can tell the
// current state-of-the-art paper from its near-duplicates. This example
// also estimates u_n from a gold query instead of assuming it.
//
//   ./examples/search_eval [--seed=42]

#include <iostream>

#include "common/flags.h"
#include "core/estimate.h"
#include "core/expert_max.h"
#include "core/worker_model.h"
#include "datasets/search.h"

int main(int argc, char** argv) {
  using namespace crowdmax;

  FlagParser flags;
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 2;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // The live query we want judged.
  Result<SearchQueryDataset> query = SearchQueryDataset::Generate(
      "asymmetric tsp best approximation", {}, seed);
  // A gold query with known best result, used to calibrate u_n.
  Result<SearchQueryDataset> gold = SearchQueryDataset::Generate(
      "steiner tree best approximation", {}, seed + 1);
  if (!query.ok() || !gold.ok()) {
    std::cerr << "dataset generation failed\n";
    return 1;
  }
  Instance instance = query->ToInstance();
  Instance gold_instance = gold->ToInstance();
  const double naive_delta = query->SuggestedNaiveDelta();

  // Estimate u_n(50) from the gold query (Algorithm 4): compare every gold
  // result against the known best with a naive worker.
  ThresholdComparator gold_naive(&gold_instance,
                                 SearchNaiveWorkerModel(
                                     gold->SuggestedNaiveDelta()),
                                 seed + 2);
  UnEstimateOptions estimate_options;
  estimate_options.p_err = 0.5;
  Result<UnEstimate> estimate = EstimateUn(
      gold_instance.AllElements(), gold_instance.MaxElement(),
      /*target_n=*/instance.size(), &gold_naive, estimate_options);
  if (!estimate.ok()) {
    std::cerr << estimate.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Estimated u_n(50) from the gold query: " << estimate->u_n
            << " (" << estimate->observed_errors
            << " below-threshold errors observed)\n\n";

  // Run Algorithm 1 on the live query.
  ThresholdComparator naive(&instance, SearchNaiveWorkerModel(naive_delta),
                            seed + 3);
  ThresholdComparator expert(&instance, SearchExpertWorkerModel(), seed + 4);
  ExpertMaxOptions options;
  options.filter.u_n = estimate->u_n;
  Result<ExpertMaxResult> result =
      FindMaxWithExperts(instance.AllElements(), &naive, &expert, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  const SearchResult& picked =
      query->results()[static_cast<size_t>(result->best)];
  const SearchResult& truth =
      query->results()[static_cast<size_t>(instance.MaxElement())];
  std::cout << "Query: \"" << query->query() << "\"\n"
            << "  crowd shortlist : " << result->candidates.size()
            << " of " << instance.size() << " results ("
            << result->paid.naive << " crowd judgments)\n"
            << "  expert judgments: " << result->paid.expert << "\n"
            << "  picked          : " << picked.title << " (SERP position "
            << picked.serp_position << ")\n"
            << "  ground truth    : " << truth.title << " (SERP position "
            << truth.serp_position << ")\n"
            << "  correct         : "
            << (result->best == instance.MaxElement() ? "YES" : "no") << "\n";
  return 0;
}
