// Car-pricing scenario (the paper's motivating CARS example): find the most
// expensive car in a catalog when the crowd has a persistent blind spot for
// price differences under ~20%.
//
// Demonstrates the paper's headline: majority voting plateaus in this
// regime, so simulated experts (many naive votes) fail where one real
// pricing expert succeeds — and Algorithm 1 needs only a handful of expert
// judgments.
//
//   ./examples/car_pricing [--cars=50] [--seed=42]

#include <algorithm>
#include <iostream>
#include <memory>

#include "common/flags.h"
#include "core/expert_max.h"
#include "core/worker_model.h"
#include "datasets/cars.h"
#include "platform/platform.h"

int main(int argc, char** argv) {
  using namespace crowdmax;

  FlagParser flags;
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 2;
  }
  const int64_t num_cars = flags.GetInt("cars", 50);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  CarsDataset catalog = CarsDataset::Standard(seed);
  Result<CarsDataset> sampled = catalog.Sample(num_cars, seed + 1);
  if (!sampled.ok()) {
    std::cerr << sampled.status().ToString() << "\n";
    return 1;
  }
  Instance instance = sampled->ToInstance();
  const ElementId best = instance.MaxElement();
  const Car& best_car = sampled->cars()[static_cast<size_t>(best)];

  std::cout << "Catalog: " << num_cars << " cars, $"
            << static_cast<int64_t>(instance.value(best))
            << " is the true top price (" << best_car.year << " "
            << best_car.make << " " << best_car.model << ")\n\n";

  // The crowd: CrowdFlower-style workers with the Figure 2(b) behaviour.
  PersistentBiasComparator crowd_model(&instance, CarsWorkerModel(), seed + 2);
  PlatformOptions platform_options;
  platform_options.num_workers = 50;
  platform_options.spammer_fraction = 0.08;
  platform_options.seed = seed + 3;
  auto platform =
      CrowdPlatform::Create(&crowd_model, &instance, {}, platform_options);
  if (!platform.ok()) {
    std::cerr << platform.status().ToString() << "\n";
    return 1;
  }

  PlatformComparator naive(platform->get(), /*votes_per_task=*/3);
  PlatformComparator simulated_expert(platform->get(), /*votes_per_task=*/7);
  // A real expert: a car-pricing professional who resolves every >= $500
  // difference.
  ThresholdComparator real_expert(&instance, ThresholdModel{400.0, 0.0},
                                  seed + 4);

  ExpertMaxOptions options;
  options.filter.u_n = 10;

  Result<ExpertMaxResult> with_simulated = FindMaxWithExperts(
      instance.AllElements(), &naive, &simulated_expert, options);
  Result<ExpertMaxResult> with_real = FindMaxWithExperts(
      instance.AllElements(), &naive, &real_expert, options);
  if (!with_simulated.ok() || !with_real.ok()) {
    std::cerr << "run failed\n";
    return 1;
  }

  auto describe = [&](const char* label, const ExpertMaxResult& r) {
    const Car& car = sampled->cars()[static_cast<size_t>(r.best)];
    std::cout << label << "\n"
              << "  picked   : " << car.year << " " << car.make << " "
              << car.model << " ($" << static_cast<int64_t>(car.price)
              << "), true rank " << instance.Rank(r.best) << "\n"
              << "  correct  : " << (r.best == best ? "YES" : "no") << "\n"
              << "  naive cmp: " << r.paid.naive
              << ", expert cmp: " << r.paid.expert << "\n\n";
  };
  describe("Algorithm 1 with SIMULATED experts (majority of 7 naive votes):",
           *with_simulated);
  describe("Algorithm 1 with a REAL pricing expert:", *with_real);

  std::cout << "The crowd's persistent blind spot below ~20% price "
               "difference cannot be voted away;\nonly the real expert "
               "resolves the final contenders — and needs just "
            << with_real->paid.expert << " judgments for " << num_cars
            << " cars.\n";
  return 0;
}
