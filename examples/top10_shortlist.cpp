// Top-k shortlist: an editor wants the ten best photos from a large
// submission pool, not just the single best — the top-k extension of the
// two-phase algorithm. Crowd workers shrink the pool; one expert tournament
// over the shortlist produces the ranked top ten.
//
//   ./examples/top10_shortlist [--photos=2000] [--k=10] [--seed=42]

#include <iostream>

#include "common/flags.h"
#include "core/cost.h"
#include "core/topk.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

int main(int argc, char** argv) {
  using namespace crowdmax;

  FlagParser flags;
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 2;
  }
  const int64_t n = flags.GetInt("photos", 2000);
  const int64_t k = flags.GetInt("k", 10);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  Result<Instance> photos = UniformInstance(n, seed);
  if (!photos.ok()) {
    std::cerr << photos.status().ToString() << "\n";
    return 1;
  }

  const double delta_n = photos->DeltaForU(12);
  ThresholdComparator crowd(&*photos, ThresholdModel{delta_n, 0.0}, seed + 1);
  ThresholdComparator editor(&*photos,
                             ThresholdModel{photos->DeltaForU(2), 0.0},
                             seed + 2);

  TopKOptions options;
  options.k = k;
  // u_n must bound the blind spot around every top-k element; interior
  // elements see ~2x the one-sided neighbourhood of the maximum, so double
  // the max-centred count for safety (overestimates only cost money).
  options.filter.u_n = 2 * photos->CountWithin(delta_n);

  Result<TopKResult> result =
      FindTopKWithExperts(photos->AllElements(), &crowd, &editor, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  CostModel prices{0.05, 15.0};
  std::cout << "Top-" << k << " shortlist from " << n << " photos\n"
            << "  crowd shortlist : " << result->candidates.size()
            << " photos (" << result->paid.naive << " crowd judgments)\n"
            << "  expert judgments: " << result->paid.expert << "\n"
            << "  cost            : $" << result->CostUnder(prices) << "\n\n"
            << "  pos  photo  true rank\n";
  for (size_t j = 0; j < result->top.size(); ++j) {
    std::cout << "  " << j + 1 << "    " << result->top[j] << "     "
              << photos->Rank(result->top[j]) << "\n";
  }
  std::cout << "\nEvery position is guaranteed within 2*delta_e of the true "
               "value at that rank.\n";
  return 0;
}
