// Photo-contest scenario (the paper's Section 2/3.3 running example): a
// professional photographer must pick the best photo of the Colosseum out
// of thousands of submissions. Her time is expensive, so cheap crowd
// workers first filter out the obviously weaker photos and she only judges
// the shortlist — the multilevel cascade adds an intermediate class of
// photography students between the crowd and the professional.
//
//   ./examples/photo_contest [--photos=3000] [--seed=42]

#include <iostream>

#include "common/flags.h"
#include "core/multilevel.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

int main(int argc, char** argv) {
  using namespace crowdmax;

  FlagParser flags;
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 2;
  }
  const int64_t n = flags.GetInt("photos", 3000);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // Hidden "quality" of each submitted photo.
  Result<Instance> photos = UniformInstance(n, seed);
  if (!photos.ok()) {
    std::cerr << photos.status().ToString() << "\n";
    return 1;
  }

  // Three worker classes with shrinking blind spots and growing prices.
  const double delta_crowd = photos->DeltaForU(60);
  const double delta_student = photos->DeltaForU(12);
  const double delta_pro = photos->DeltaForU(2);
  ThresholdComparator crowd(&*photos, ThresholdModel{delta_crowd, 0.0},
                            seed + 1);
  ThresholdComparator students(&*photos, ThresholdModel{delta_student, 0.0},
                               seed + 2);
  ThresholdComparator professional(&*photos, ThresholdModel{delta_pro, 0.0},
                                   seed + 3);

  MultilevelOptions options;
  Result<MultilevelResult> result = FindMaxMultilevel(
      photos->AllElements(),
      {
          {&crowd, photos->CountWithin(delta_crowd), /*cost=*/0.05},
          {&students, photos->CountWithin(delta_student), /*cost=*/1.0},
          {&professional, 1, /*cost=*/40.0},
      },
      options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Photo contest with " << n << " submissions\n"
            << "  crowd shortlist        : " << result->candidates_per_level[0]
            << " photos (" << result->paid_per_class[0]
            << " crowd judgments @ $0.05)\n"
            << "  student shortlist      : " << result->candidates_per_level[1]
            << " photos (" << result->paid_per_class[1]
            << " student judgments @ $1)\n"
            << "  professional judgments : " << result->paid_per_class[2]
            << " @ $40\n"
            << "  winner                 : photo " << result->best
            << " (true rank " << photos->Rank(result->best) << " of " << n
            << ")\n"
            << "  total cost             : $" << result->total_cost << "\n\n";

  // What would it cost to give every pairwise judgment to the pro?
  const double all_pro = 40.0 * static_cast<double>(n) *
                         static_cast<double>(n - 1) / 2.0;
  std::cout << "For reference, an all-play-all by the professional alone "
               "would cost $"
            << all_pro << " — the cascade spends "
            << result->total_cost / all_pro * 100.0 << "% of that.\n";
  return 0;
}
