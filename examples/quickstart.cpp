// Quickstart: find an approximate maximum with naive + expert workers.
//
// Builds a random instance, wires up two threshold-model worker classes,
// runs Algorithm 1 and prints what it cost. Start here; the other examples
// show domain-specific scenarios.
//
//   ./examples/quickstart [--n=2000] [--u_n=15] [--seed=42]

#include <iostream>

#include "common/flags.h"
#include "core/cost.h"
#include "core/expert_max.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

int main(int argc, char** argv) {
  using namespace crowdmax;

  FlagParser flags;
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 2;
  }
  const int64_t n = flags.GetInt("n", 2000);
  const int64_t u_target = flags.GetInt("u_n", 15);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // 1. A problem instance: n elements with hidden values. In a real
  //    deployment you would not know the values — here they power the
  //    simulated workers and the final evaluation.
  Result<Instance> instance = UniformInstance(n, seed);
  if (!instance.ok()) {
    std::cerr << instance.status().ToString() << "\n";
    return 1;
  }

  // 2. Two worker classes under the threshold model T(delta, epsilon):
  //    naive workers cannot rank elements closer than delta_n; experts
  //    resolve everything except the u_e-sized blind spot around the max.
  const double delta_n = instance->DeltaForU(u_target);
  const double delta_e = instance->DeltaForU(3);
  const int64_t u_n = instance->CountWithin(delta_n);
  ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0},
                            seed + 1);
  ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                             seed + 2);

  // 3. Run Algorithm 1: naive workers filter n elements down to O(u_n)
  //    candidates, experts pick the winner with 2-MaxFind.
  ExpertMaxOptions options;
  options.filter.u_n = u_n;  // The one required parameter; see EstimateUn.
  Result<ExpertMaxResult> result =
      FindMaxWithExperts(instance->AllElements(), &naive, &expert, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  // 4. Inspect the outcome.
  CostModel prices{/*naive_cost=*/1.0, /*expert_cost=*/25.0};
  std::cout << "crowdmax quickstart\n"
            << "  instance size          : " << n << "\n"
            << "  u_n (naive blind spot) : " << u_n << "\n"
            << "  phase-1 candidates     : " << result->candidates.size()
            << "\n"
            << "  returned element       : " << result->best
            << " (true rank " << instance->Rank(result->best) << " of " << n
            << ")\n"
            << "  distance from max      : "
            << instance->Distance(result->best, instance->MaxElement())
            << " (guarantee: <= 2*delta_e = " << 2.0 * delta_e << ")\n"
            << "  naive comparisons      : " << result->paid.naive << "\n"
            << "  expert comparisons     : " << result->paid.expert << "\n"
            << "  cost @ c_n=1, c_e=25   : " << result->CostUnder(prices)
            << "\n";
  return 0;
}
