// Budget planner: given the expert/naive price ratio of your platform,
// which strategy should you buy — Algorithm 1 or single-class 2-MaxFind?
//
// Section 5.1's rule of thumb is "ratio below ~10: just use experts;
// above: the two-phase algorithm wins". This example measures the actual
// crossover on your instance size by simulating both strategies across a
// range of ratios and printing the cheaper accurate option per ratio.
//
//   ./examples/budget_planner [--n=2000] [--u_n=20] [--trials=10] [--seed=42]

#include <iostream>
#include <vector>

#include "baselines/single_class.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/cost.h"
#include "core/expert_max.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

int main(int argc, char** argv) {
  using namespace crowdmax;

  FlagParser flags;
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 2;
  }
  const int64_t n = flags.GetInt("n", 2000);
  const int64_t u_target = flags.GetInt("u_n", 20);
  const int64_t trials = flags.GetInt("trials", 10);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // Measure average comparison counts for both accurate strategies (the
  // naive-only baseline is cheap but inaccurate, so it is not a
  // contender; see bench_fig3).
  double alg1_naive_cmp = 0.0;
  double alg1_expert_cmp = 0.0;
  double expert_only_cmp = 0.0;
  for (int64_t t = 0; t < trials; ++t) {
    const uint64_t trial_seed = seed + static_cast<uint64_t>(t);
    Result<Instance> instance = UniformInstance(n, trial_seed);
    if (!instance.ok()) {
      std::cerr << instance.status().ToString() << "\n";
      return 1;
    }
    const double delta_n = instance->DeltaForU(u_target);
    const double delta_e = instance->DeltaForU(3);
    ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0},
                              trial_seed + 1);
    ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                               trial_seed + 2);

    ExpertMaxOptions options;
    options.filter.u_n = instance->CountWithin(delta_n);
    Result<ExpertMaxResult> alg1 =
        FindMaxWithExperts(instance->AllElements(), &naive, &expert, options);
    Result<SingleClassResult> expert_only =
        TwoMaxFindExpertOnly(instance->AllElements(), &expert);
    if (!alg1.ok() || !expert_only.ok()) {
      std::cerr << "simulation failed\n";
      return 1;
    }
    alg1_naive_cmp += static_cast<double>(alg1->paid.naive);
    alg1_expert_cmp += static_cast<double>(alg1->paid.expert);
    expert_only_cmp += static_cast<double>(expert_only->paid_comparisons);
  }
  alg1_naive_cmp /= static_cast<double>(trials);
  alg1_expert_cmp /= static_cast<double>(trials);
  expert_only_cmp /= static_cast<double>(trials);

  std::cout << "Budget planner for n=" << n << ", u_n~" << u_target << "\n"
            << "  Algorithm 1      : " << alg1_naive_cmp << " naive + "
            << alg1_expert_cmp << " expert comparisons\n"
            << "  2-MaxFind-expert : " << expert_only_cmp
            << " expert comparisons\n\n";

  TablePrinter table({"c_e/c_n ratio", "Alg 1 cost", "expert-only cost",
                      "cheaper accurate option"});
  double crossover = -1.0;
  for (double ratio : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0}) {
    CostModel model{1.0, ratio};
    const double alg1_cost =
        alg1_naive_cmp * model.naive_cost + alg1_expert_cmp * model.expert_cost;
    const double expert_cost = expert_only_cmp * model.expert_cost;
    if (crossover < 0.0 && alg1_cost < expert_cost) crossover = ratio;
    table.AddRow({FormatDouble(ratio, 0), FormatDouble(alg1_cost, 0),
                  FormatDouble(expert_cost, 0),
                  alg1_cost < expert_cost ? "Algorithm 1" : "expert-only"});
  }
  table.Print(std::cout);

  // The exact break-even ratio from the measured counts:
  //   alg1_naive + r * alg1_expert = r * expert_only
  //   => r = alg1_naive / (expert_only - alg1_expert).
  if (expert_only_cmp > alg1_expert_cmp) {
    std::cout << "\nMeasured break-even ratio: "
              << alg1_naive_cmp / (expert_only_cmp - alg1_expert_cmp)
              << " (paper's rule of thumb: ~10)\n";
  }
  return 0;
}
