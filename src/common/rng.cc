#include "common/rng.h"

namespace crowdmax {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  CROWDMAX_DCHECK(state != nullptr);
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
  fork_state_ = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CROWDMAX_DCHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CROWDMAX_DCHECK(lo <= hi);
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  CROWDMAX_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::Fork() { return SplitMix64(&fork_state_); }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CROWDMAX_DCHECK(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, O(k) draws.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    using std::swap;
    swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

}  // namespace crowdmax
