#include "common/rng.h"

#include <algorithm>
#include <cstdlib>

// The AVX2 bulk kernels are compiled whenever the build enables
// CROWDMAX_SIMD on an x86-64 GNU-compatible toolchain; whether they run is
// a runtime question (CPU support + the CROWDMAX_NO_SIMD escape hatch),
// resolved once in ActiveKernels below. Scalar and AVX2 backends are
// bit-identical: every operation involved (mul-by-constant, rotate, shift,
// unsigned compare) is exact integer arithmetic.
#if defined(CROWDMAX_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CROWDMAX_BULK_AVX2 1
#include <immintrin.h>
#endif

namespace crowdmax {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// xoshiro256** output whitening: the generator's result is a pure function
// of the pre-update s[1] word, so bulk kernels store raw s[1] values while
// walking the (serial) recurrence and whiten them afterwards in a pass the
// compiler or the AVX2 kernel can vectorize.
uint64_t Whiten(uint64_t s1) { return Rotl(s1 * 5, 7) * 9; }

// Elements per internal bulk block: big enough to amortize dispatch, small
// enough that the raw-word scratch stays in L1 (8 KiB).
constexpr size_t kBulkBlock = 1024;

// Advances the recurrence `n` steps, storing the pre-whitening s[1] word of
// each step. This is the only serial part of the bulk path — the xoshiro
// state update is a loop-carried dependency — and it is just xor/shift/
// rotate with plenty of ILP inside one step.
void AdvanceBlock(uint64_t* state, uint64_t* out, size_t n) {
  uint64_t s0 = state[0], s1 = state[1], s2 = state[2], s3 = state[3];
  for (size_t i = 0; i < n; ++i) {
    out[i] = s1;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
  }
  state[0] = s0;
  state[1] = s1;
  state[2] = s2;
  state[3] = s3;
}

void WhitenBlockScalar(uint64_t* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = Whiten(x[i]);
}

void BernoulliBlockScalar(const uint64_t* s1, const uint64_t* thresholds,
                          uint8_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>((Whiten(s1[i]) >> 11) < thresholds[i]);
  }
}

#if CROWDMAX_BULK_AVX2

// x*5 and x*9 as shift-adds: AVX2 has no 64-bit lane multiply
// (_mm256_mullo_epi64 is AVX-512DQ), and 5x = x + 4x, 9x = x + 8x are
// exact in two instructions each.
__attribute__((target("avx2"))) inline __m256i WhitenLanes(__m256i v) {
  const __m256i v5 = _mm256_add_epi64(v, _mm256_slli_epi64(v, 2));
  const __m256i rot = _mm256_or_si256(_mm256_slli_epi64(v5, 7),
                                      _mm256_srli_epi64(v5, 57));
  return _mm256_add_epi64(rot, _mm256_slli_epi64(rot, 3));
}

__attribute__((target("avx2"))) void WhitenBlockAvx2(uint64_t* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + i), WhitenLanes(v));
  }
  for (; i < n; ++i) x[i] = Whiten(x[i]);
}

// 4-bit compare mask -> four 0/1 bytes, written as one u32 store instead
// of four byte stores. kMaskBytes[m] has byte j equal to bit j of m.
constexpr uint32_t kMaskBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u,
};

__attribute__((target("avx2"))) void BernoulliBlockAvx2(
    const uint64_t* s1, const uint64_t* thresholds, uint8_t* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s1 + i));
    const __m256i u = _mm256_srli_epi64(WhitenLanes(raw), 11);
    const __m256i thr =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(thresholds + i));
    // u < 2^53 and thr <= 2^53 are both positive as signed 64-bit, so the
    // signed compare realizes the unsigned one exactly.
    const __m256i lt = _mm256_cmpgt_epi64(thr, u);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(lt));
    uint32_t bytes = kMaskBytes[mask];
    __builtin_memcpy(out + i, &bytes, sizeof(bytes));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint8_t>((Whiten(s1[i]) >> 11) < thresholds[i]);
  }
}

#endif  // CROWDMAX_BULK_AVX2

// The vectorizable halves of the bulk path, runtime-dispatched once. The
// recurrence walk (AdvanceBlock) is shared; only whitening and the
// threshold compare have SIMD variants.
struct BulkKernels {
  void (*whiten)(uint64_t*, size_t);
  void (*bernoulli)(const uint64_t*, const uint64_t*, uint8_t*, size_t);
  const char* name;
};

constexpr BulkKernels kScalarKernels = {WhitenBlockScalar,
                                        BernoulliBlockScalar, "scalar"};

const BulkKernels* DetectKernels(bool want_simd) {
#if CROWDMAX_BULK_AVX2
  static constexpr BulkKernels kAvx2Kernels = {WhitenBlockAvx2,
                                               BernoulliBlockAvx2, "avx2"};
  if (want_simd && __builtin_cpu_supports("avx2") &&
      std::getenv("CROWDMAX_NO_SIMD") == nullptr) {
    return &kAvx2Kernels;
  }
#else
  (void)want_simd;
#endif
  return &kScalarKernels;
}

const BulkKernels*& ActiveKernels() {
  static const BulkKernels* active = DetectKernels(/*want_simd=*/true);
  return active;
}

}  // namespace

const char* RngBulkBackend() { return ActiveKernels()->name; }

bool RngBulkSimdActive() { return ActiveKernels() != &kScalarKernels; }

bool SetRngBulkSimd(bool enabled) {
  ActiveKernels() = DetectKernels(enabled);
  return ActiveKernels() != &kScalarKernels;
}

uint64_t SplitMix64(uint64_t* state) {
  CROWDMAX_DCHECK(state != nullptr);
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
  fork_state_ = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CROWDMAX_DCHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CROWDMAX_DCHECK(lo <= hi);
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  CROWDMAX_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::FillRaw(std::span<uint64_t> out) {
  const BulkKernels* kernels = ActiveKernels();
  size_t done = 0;
  while (done < out.size()) {
    // Blocked so the whitening pass reads cache-hot raw words.
    const size_t n = std::min(kBulkBlock, out.size() - done);
    AdvanceBlock(state_, out.data() + done, n);
    kernels->whiten(out.data() + done, n);
    done += n;
  }
}

void Rng::FillDoubles(std::span<double> out) {
  const BulkKernels* kernels = ActiveKernels();
  uint64_t raw[kBulkBlock];
  size_t done = 0;
  while (done < out.size()) {
    const size_t n = std::min(kBulkBlock, out.size() - done);
    AdvanceBlock(state_, raw, n);
    kernels->whiten(raw, n);
    for (size_t i = 0; i < n; ++i) {
      out[done + i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
    }
    done += n;
  }
}

void Rng::FillBernoulliThresholds(std::span<const uint64_t> thresholds,
                                  std::span<uint8_t> out) {
  CROWDMAX_CHECK(out.size() >= thresholds.size());
#ifndef NDEBUG
  for (const uint64_t threshold : thresholds) {
    CROWDMAX_DCHECK(threshold <= (uint64_t{1} << 53));
  }
#endif
  const BulkKernels* kernels = ActiveKernels();
  uint64_t raw[kBulkBlock];
  size_t done = 0;
  while (done < thresholds.size()) {
    const size_t n = std::min(kBulkBlock, thresholds.size() - done);
    AdvanceBlock(state_, raw, n);
    kernels->bernoulli(raw, thresholds.data() + done, out.data() + done, n);
    done += n;
  }
}

void Rng::FillBernoulli(std::span<const double> probs,
                        std::span<uint8_t> out) {
  CROWDMAX_CHECK(out.size() >= probs.size());
  uint64_t thresholds[kBulkBlock];
  size_t i = 0;
  while (i < probs.size()) {
    const double p = probs[i];
    // Draw-skipping edges, exactly like per-call NextBernoulli.
    if (p <= 0.0) {
      out[i++] = 0;
      continue;
    }
    if (p >= 1.0) {
      out[i++] = 1;
      continue;
    }
    // Open run: every row consumes exactly one draw. A NaN probability
    // falls through both edge tests per call and fails NextDouble() < p,
    // so it draws and answers false — threshold 0 reproduces that.
    size_t run = 0;
    while (i + run < probs.size() && run < kBulkBlock) {
      const double q = probs[i + run];
      if (q <= 0.0 || q >= 1.0) break;
      thresholds[run] = (q == q) ? BernoulliThreshold(q) : 0;
      ++run;
    }
    FillBernoulliThresholds({thresholds, run}, out.subspan(i));
    i += run;
  }
}

uint64_t Rng::Fork() { return SplitMix64(&fork_state_); }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CROWDMAX_DCHECK(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, O(k) draws.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    using std::swap;
    swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

}  // namespace crowdmax
