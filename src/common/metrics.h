// Low-overhead, thread-shard-aware metrics registry.
//
// The comparison counts behind the paper's cost claim (Section 3.4) flow
// through several independently-maintained tallies; this registry is the
// shared observability substrate they reconcile against (core/trace.h).
// Three instrument kinds:
//
//  * Counter   — monotonic, sharded across cache-line-padded atomics so
//                concurrent increments from the thread pool never contend
//                on one line; read by summing shards in shard order.
//  * Gauge     — a single last-write-wins value.
//  * Histogram — fixed integer bucket bounds chosen at registration
//                (latencies in logical steps, batch sizes); per-bucket
//                atomic counts plus sum/count.
//
// Everything is off by default: instruments check one relaxed atomic flag
// and return, so legacy runs are bit-identical and the comparator hot path
// pays nothing beyond a predictable branch. All mutation is lock-free and
// race-checked under -DCROWDMAX_TSAN=ON (ctest -L metrics / -L tsan).
// Reports (JSON/CSV) iterate name-sorted maps and merge shards in shard
// order, so a report is a deterministic function of the recorded values.

#ifndef CROWDMAX_COMMON_METRICS_H_
#define CROWDMAX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace crowdmax {

/// Global recording switch, off by default. Instruments drop writes while
/// disabled; registration and reads work regardless.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonic counter, sharded per thread. Pointers returned by a registry
/// stay valid for the registry's lifetime (Reset() zeroes, never deletes).
class Counter {
 public:
  /// Adds `delta` (>= 0) to this thread's shard; dropped while disabled.
  void Add(int64_t delta);
  void Increment() { Add(1); }

  /// Sum over shards, read in shard order (deterministic once writers are
  /// quiescent).
  int64_t value() const;

  static constexpr int kShards = 16;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset();

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t value);
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over int64 observations (step counts, batch
/// sizes). Bucket i counts observations <= bounds[i]; one overflow bucket
/// catches the rest.
class Histogram {
 public:
  /// Records `value`; dropped while disabled.
  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds order then overflow (size bounds()+1).
  std::vector<int64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<int64_t> bounds);
  void Reset();

  std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Doubling bounds 1, 2, 4, ... covering [1, 2^(n-1)] — the default shape
/// for logical-step latencies and batch sizes.
std::vector<int64_t> ExponentialBounds(int n);

/// Owns instruments by name. Get* registers on first use and returns the
/// same pointer afterwards; instruments are never deleted, so cached
/// pointers (e.g. function-local statics at call sites) stay valid.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the library's instrumentation points use.
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be non-empty and strictly ascending; ignored (the
  /// original instrument wins) when `name` is already registered.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds);

  /// Zeroes every instrument's values; registrations survive.
  void Reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  /// in name order — byte-deterministic for fixed recorded values.
  void WriteJson(std::ostream& out) const;

  /// kind,name,value rows (histograms expand to one row per bucket plus
  /// sum/count), name-sorted.
  void WriteCsv(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_COMMON_METRICS_H_
