// Work-stealing thread-pool executor for the parallel tournament engine.
//
// Design (after the trainer-pool pattern of concurrent independent
// tournaments): every worker thread owns a deque of tasks. Submitted tasks
// are distributed round-robin across the deques; a worker pops from the
// back of its own deque (LIFO, cache-friendly) and, when empty, steals from
// the front of a sibling's deque (FIFO, oldest-first). The submitting
// thread also helps drain queues while it waits, so a pool never deadlocks
// waiting on itself and `threads == 1` adds no concurrency at all.
//
// The pool executes *side effects chosen by the caller*; it makes no
// ordering promises between tasks of one batch. Deterministic users (the
// tournament engine) therefore (a) pre-assign every task's RNG stream
// before dispatch and (b) write results into disjoint, pre-sized slots, so
// the observable outcome is independent of the thread schedule.
//
// Thread-safety: Submit/ParallelFor may be called from any thread, but not
// re-entrantly from inside a task of the same pool.

#ifndef CROWDMAX_COMMON_THREAD_POOL_H_
#define CROWDMAX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace crowdmax {

/// A fixed-size work-stealing thread pool.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` executor threads (clamped to
  /// >= 1). `num_threads == 1` spawns no background thread: all work runs
  /// inline on the submitting thread at ParallelFor/Wait time.
  explicit ThreadPool(int64_t num_threads);

  /// Drains nothing: outstanding tasks submitted via Submit must be waited
  /// on by the caller (ParallelFor does this) before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of executor threads this pool was created with.
  int64_t num_threads() const { return num_threads_; }

  /// Runs fn(0), ..., fn(count - 1), each exactly once, distributing the
  /// calls across the pool; blocks until all complete. The calling thread
  /// participates in execution. No ordering is guaranteed between indices;
  /// fn must confine unsynchronized writes to per-index state.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

  /// A sensible default thread count for this machine (>= 1).
  static int64_t HardwareThreads();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  // Enqueues a task on queue (submit_cursor_ % queues), wakes one worker.
  void Submit(std::function<void()> task);

  // Pops one task — own queue first (back), then steals (front) — and runs
  // it. `home` is the preferred queue index (worker id, or a rotating
  // index for the helping caller). Returns false if every queue was empty.
  bool RunOneTask(size_t home);

  void WorkerLoop(size_t worker_id);

  const int64_t num_threads_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake machinery: pending_ counts queued-but-unstarted tasks.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> submit_cursor_{0};
};

}  // namespace crowdmax

#endif  // CROWDMAX_COMMON_THREAD_POOL_H_
