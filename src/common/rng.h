// Deterministic pseudo-random number generation.
//
// All randomized components in crowdmax take an explicit seed and draw from
// an Rng instance; there is no global RNG state. The generator is
// xoshiro256**, seeded through SplitMix64, so results are identical across
// platforms and standard-library implementations (std::mt19937 would also be
// portable, but std::uniform_int_distribution is not).

#ifndef CROWDMAX_COMMON_RNG_H_
#define CROWDMAX_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace crowdmax {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for deriving independent child seeds.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** generator with convenience sampling helpers.
///
/// Thread-safety contract: an Rng instance is plain mutable state — every
/// sampling call advances it — and must never be shared across threads
/// without external synchronization (which would also destroy determinism,
/// since interleaving becomes schedule-dependent). The supported pattern
/// for concurrent code is seed-forking *before* dispatch: a single owner
/// calls Fork() once per unit of work, in a fixed order (e.g. group index),
/// and each worker constructs its private Rng from the seed it was handed.
/// Results are then a function of the fork order alone, identical for any
/// thread count. The round engine's parallel backend (core/round_engine.h)
/// follows exactly this discipline.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns an integer uniform in [0, bound). `bound` must be positive.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns an integer uniform in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns a double uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Derives a new seed suitable for an independent child Rng. Successive
  /// calls yield distinct seeds.
  uint64_t Fork();

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    CROWDMAX_DCHECK(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order.
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Raw generator state for crash-safe checkpointing (core/checkpoint.h):
  /// the four xoshiro256** words followed by the Fork() SplitMix64 word.
  /// Restoring through set_state resumes the output stream exactly where
  /// state() captured it.
  std::array<uint64_t, 5> state() const {
    return {state_[0], state_[1], state_[2], state_[3], fork_state_};
  }
  void set_state(const std::array<uint64_t, 5>& state) {
    state_[0] = state[0];
    state_[1] = state[1];
    state_[2] = state[2];
    state_[3] = state[3];
    fork_state_ = state[4];
  }

 private:
  uint64_t state_[4];
  uint64_t fork_state_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_COMMON_RNG_H_
