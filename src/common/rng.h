// Deterministic pseudo-random number generation.
//
// All randomized components in crowdmax take an explicit seed and draw from
// an Rng instance; there is no global RNG state. The generator is
// xoshiro256**, seeded through SplitMix64, so results are identical across
// platforms and standard-library implementations (std::mt19937 would also be
// portable, but std::uniform_int_distribution is not).

#ifndef CROWDMAX_COMMON_RNG_H_
#define CROWDMAX_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace crowdmax {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for deriving independent child seeds.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** generator with convenience sampling helpers.
///
/// Thread-safety contract: an Rng instance is plain mutable state — every
/// sampling call advances it — and must never be shared across threads
/// without external synchronization (which would also destroy determinism,
/// since interleaving becomes schedule-dependent). The supported pattern
/// for concurrent code is seed-forking *before* dispatch: a single owner
/// calls Fork() once per unit of work, in a fixed order (e.g. group index),
/// and each worker constructs its private Rng from the seed it was handed.
/// Results are then a function of the fork order alone, identical for any
/// thread count. The round engine's parallel backend (core/round_engine.h)
/// follows exactly this discipline.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns an integer uniform in [0, bound). `bound` must be positive.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns an integer uniform in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns a double uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // ---- Bulk draw layer (DESIGN.md §16) -----------------------------------
  //
  // Each Fill* call produces the *exact same draw stream* as the
  // corresponding per-call API applied element by element: after
  // FillRaw(out) the generator state equals out.size() Next() calls and
  // out[i] equals the i-th of those calls, bit for bit — so bulk and
  // per-call paths are interchangeable mid-run and checkpoints
  // (state()/set_state) round-trip across them. The kernels advance the
  // xoshiro256** recurrence in unrolled blocks and vectorize the output
  // whitening and probability compares (scalar or AVX2, runtime-dispatched;
  // both backends bit-identical — see RngBulkBackend below).

  /// Fills `out` with the next out.size() raw Next() outputs.
  void FillRaw(std::span<uint64_t> out);

  /// Fills `out` with the next out.size() NextDouble() outputs.
  void FillDoubles(std::span<double> out);

  /// Fills out[i] (0 or 1) with the next NextBernoulli(probs[i]) outcomes,
  /// including the draw-skipping edges: rows with p <= 0 or p >= 1 are
  /// answered without consuming a draw, exactly like the per-call API.
  /// Requires out.size() >= probs.size().
  void FillBernoulli(std::span<const double> probs, std::span<uint8_t> out);

  /// Integer-threshold fast path: out[i] = (Next() >> 11) < thresholds[i],
  /// consuming exactly one draw per row. With thresholds[i] ==
  /// BernoulliThreshold(p_i) and every p_i strictly inside (0, 1) this is
  /// bit-identical to per-call NextBernoulli(p_i) — the comparison happens
  /// on the 53-bit integer mantissa source, with no float conversion in
  /// the loop. Requires out.size() >= thresholds.size(); thresholds must
  /// not exceed 2^53 (DCHECK'd), so every row draws (p in (0,1) never
  /// skips).
  void FillBernoulliThresholds(std::span<const uint64_t> thresholds,
                               std::span<uint8_t> out);

  /// The 53-bit integer threshold T(p) = ceil(p * 2^53) realizing
  /// NextDouble() < p as an integer compare: NextDouble() is
  /// (Next() >> 11) * 2^-53 with u = Next() >> 11 < 2^53, and both u*2^-53
  /// and p*2^53 are exact (power-of-two scaling, including subnormal p),
  /// so u * 2^-53 < p  <=>  u < p * 2^53  <=>  u < ceil(p * 2^53).
  /// Defined for p in (0, 1); callers handle the draw-skipping edges
  /// p <= 0 / p >= 1 themselves (see FillBernoulli).
  static uint64_t BernoulliThreshold(double p) {
    CROWDMAX_DCHECK(p > 0.0 && p < 1.0);
    const double scaled = p * 0x1.0p53;  // Exact: p in (0,1).
    const uint64_t floor_part = static_cast<uint64_t>(scaled);
    return floor_part + (static_cast<double>(floor_part) != scaled ? 1 : 0);
  }

  /// Derives a new seed suitable for an independent child Rng. Successive
  /// calls yield distinct seeds.
  uint64_t Fork();

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    CROWDMAX_DCHECK(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order.
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Raw generator state for crash-safe checkpointing (core/checkpoint.h):
  /// the four xoshiro256** words followed by the Fork() SplitMix64 word.
  /// Restoring through set_state resumes the output stream exactly where
  /// state() captured it.
  std::array<uint64_t, 5> state() const {
    return {state_[0], state_[1], state_[2], state_[3], fork_state_};
  }
  void set_state(const std::array<uint64_t, 5>& state) {
    state_[0] = state[0];
    state_[1] = state[1];
    state_[2] = state[2];
    state_[3] = state[3];
    fork_state_ = state[4];
  }

 private:
  uint64_t state_[4];
  uint64_t fork_state_;
};

/// Name of the active bulk-kernel backend: "avx2" when the binary was
/// built with CROWDMAX_SIMD on an AVX2-capable CPU (and the
/// CROWDMAX_NO_SIMD environment variable is not set), "scalar" otherwise.
/// Both backends produce bit-identical output; the choice is purely a
/// throughput matter.
const char* RngBulkBackend();

/// Forces the bulk kernels onto the scalar backend (enabled == false) or
/// back to the best available one (enabled == true). Returns whether the
/// SIMD backend is active after the call — false when the build or the CPU
/// does not support it. Test/bench hook for exercising both code paths in
/// one process; not thread-safe against concurrent Fill* calls.
bool SetRngBulkSimd(bool enabled);

/// Whether the SIMD backend is currently active (equivalent to
/// RngBulkBackend() != "scalar"). Other subsystems with their own
/// runtime-dispatched kernels (e.g. the vote-precompute loops in
/// worker_model.cc) key off this so one switch governs every SIMD path.
bool RngBulkSimdActive();

}  // namespace crowdmax

#endif  // CROWDMAX_COMMON_RNG_H_
