// Plain-text table rendering for bench harnesses.
//
// Bench binaries print the same rows/series the paper's tables and figures
// report. TablePrinter renders a column-aligned view for humans and a CSV
// view for plotting.

#ifndef CROWDMAX_COMMON_TABLE_H_
#define CROWDMAX_COMMON_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace crowdmax {

/// Collects rows of string cells and renders them aligned or as CSV.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty, extra cells are
  /// kept and widen the table.
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows added so far.
  size_t num_rows() const { return rows_.size(); }

  /// Writes a column-aligned rendering (header, rule, rows) to `out`.
  void Print(std::ostream& out) const;

  /// Writes an RFC-4180-ish CSV rendering (quotes cells containing commas,
  /// quotes or newlines) to `out`.
  void PrintCsv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// RFC-4180 field escaping: returns `cell` unchanged unless it contains a
/// comma, double quote or newline, in which case the cell is wrapped in
/// double quotes with embedded quotes doubled. Shared by TablePrinter and
/// the platform transcript exporter.
std::string CsvEscape(const std::string& cell);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats an integer count (no separators, base 10).
std::string FormatInt(int64_t value);

}  // namespace crowdmax

#endif  // CROWDMAX_COMMON_TABLE_H_
