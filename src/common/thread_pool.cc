#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace crowdmax {

ThreadPool::ThreadPool(int64_t num_threads)
    : num_threads_(std::max<int64_t>(1, num_threads)) {
  if (num_threads_ == 1) return;  // Inline mode: no queues, no threads.
  queues_.reserve(static_cast<size_t>(num_threads_));
  for (int64_t i = 0; i < num_threads_; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int64_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int64_t ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

void ThreadPool::Submit(std::function<void()> task) {
  CROWDMAX_DCHECK(!queues_.empty());
  const size_t target = static_cast<size_t>(
      submit_cursor_.fetch_add(1, std::memory_order_relaxed) % queues_.size());
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::RunOneTask(size_t home) {
  const size_t q = queues_.size();
  std::function<void()> task;
  // Own queue: newest first (the task most likely still cache-hot).
  {
    Queue& own = *queues_[home % q];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  // Steal: oldest first from the nearest non-empty sibling.
  if (!task) {
    for (size_t offset = 1; offset < q && !task; ++offset) {
      Queue& victim = *queues_[(home + offset) % q];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  while (true) {
    if (RunOneTask(worker_id)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  if (workers_.empty() || count == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  struct Batch {
    std::atomic<int64_t> remaining;
    std::mutex mu;
    std::condition_variable done_cv;
    explicit Batch(int64_t n) : remaining(n) {}
  };
  auto batch = std::make_shared<Batch>(count);

  // fn is captured by pointer: the caller blocks below until every task has
  // finished, so the referenced callable outlives all uses.
  const std::function<void(int64_t)>* body = &fn;
  for (int64_t i = 0; i < count; ++i) {
    Submit([batch, body, i] {
      (*body)(i);
      if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(batch->mu);
        batch->done_cv.notify_all();
      }
    });
  }

  // Help drain queues while waiting; sleep only when there is nothing left
  // to steal but stragglers are still running.
  size_t help_cursor = 0;
  while (batch->remaining.load(std::memory_order_acquire) > 0) {
    if (RunOneTask(help_cursor++)) continue;
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return batch->remaining.load(std::memory_order_acquire) == 0;
    });
  }
}

}  // namespace crowdmax
