#include "common/flags.h"

#include <cstdlib>

namespace crowdmax {

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("positional argument not supported: " +
                                     arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // Bare boolean flag.
      }
    }
    if (name.empty()) return Status::InvalidArgument("empty flag name");
    if (values_.count(name) > 0) {
      return Status::InvalidArgument("duplicate flag: --" + name);
    }
    values_[name] = value;
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return default_value;
  return v;
}

int64_t FlagParser::GetBoundedInt(const std::string& name,
                                  int64_t default_value, int64_t min_value,
                                  int64_t max_value) const {
  const int64_t v = GetInt(name, default_value);
  if (v < min_value) return min_value;
  if (v > max_value) return max_value;
  return v;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return default_value;
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return default_value;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace crowdmax
