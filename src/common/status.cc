#include "common/status.h"

namespace crowdmax {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  if (retry_after_steps_ > 0) {
    out += " (retry_after_steps=" + std::to_string(retry_after_steps_) + ")";
  }
  return out;
}

}  // namespace crowdmax
