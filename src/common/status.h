// Exception-free error handling, in the style of RocksDB/Arrow.
//
// Public crowdmax APIs that can fail return Status (for actions) or
// Result<T> (for producers). Both are cheap to move; an OK Status carries no
// allocation.

#ifndef CROWDMAX_COMMON_STATUS_H_
#define CROWDMAX_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace crowdmax {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kInternal,
  /// Transient failure of an external service (the simulated crowd platform
  /// rejecting a submit, or a retry budget exhausted on such failures).
  /// Callers may retry with backoff; see core/resilient.h.
  kUnavailable,
  /// A quota or monetary budget cannot cover the request (admission control
  /// rejecting a query whose predicted cost exceeds its budget, or a
  /// per-query comparison budget exhausted mid-run). Not retryable without
  /// a bigger budget; see query/service.h.
  kResourceExhausted,
  /// A deadline expired, or admission control predicts it must (a tenant's
  /// logical-step deadline cannot be met at the admitted capacity). See
  /// query/service.h.
  kDeadlineExceeded,
  /// The operation was deliberately killed by a supervisory layer (a
  /// ChaosSchedule fault plan or an operator restart) at a clean round
  /// boundary. Unlike kUnavailable this is not a crowd fault: the run is
  /// resumable bit-identically from its last checkpoint (core/checkpoint.h)
  /// or replayable from its hermetic seed. See query/supervisor.h.
  kAborted,
};

/// Returns a short human-readable name ("InvalidArgument", ...) for `code`.
std::string_view StatusCodeName(StatusCode code);

/// Outcome of an operation: an OK marker or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status& other) = default;
  Status& operator=(const Status& other) = default;
  Status(Status&& other) = default;
  Status& operator=(Status&& other) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Aborted(std::string message) {
    return Status(StatusCode::kAborted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Attaches a retry-after hint: the number of logical steps after which
  /// the caller's retry has a chance of succeeding (an outage's remaining
  /// length, a shed query's predicted queue drain). Meaningful for
  /// kUnavailable and kResourceExhausted; 0 means "no hint". Returns *this
  /// so factories chain: `Status::Unavailable(...).WithRetryAfter(12)`.
  Status&& WithRetryAfter(int64_t steps) && {
    retry_after_steps_ = steps;
    return std::move(*this);
  }
  Status& WithRetryAfter(int64_t steps) & {
    retry_after_steps_ = steps;
    return *this;
  }

  /// The retry-after hint in logical steps; 0 when none was attached.
  int64_t retry_after_steps() const { return retry_after_steps_; }

  /// Renders "OK" or "<CodeName>: <message>" (plus the retry-after hint
  /// when one is attached).
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_;
  std::string message_;
  int64_t retry_after_steps_ = 0;
};

/// A value of type T or the Status explaining why it could not be produced.
///
/// Usage:
///   Result<Candidates> r = FilterPhase(...);
///   if (!r.ok()) return r.status();
///   Candidates c = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    CROWDMAX_CHECK(!status_.ok());
  }

  Result(const Result& other) = default;
  Result& operator=(const Result& other) = default;
  Result(Result&& other) = default;
  Result& operator=(Result&& other) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CROWDMAX_CHECK(ok());
    return *value_;
  }
  T& value() & {
    CROWDMAX_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    CROWDMAX_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const {
    CROWDMAX_CHECK(ok());
    return &*value_;
  }
  T* operator->() {
    CROWDMAX_CHECK(ok());
    return &*value_;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_COMMON_STATUS_H_
