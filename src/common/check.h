// Assertion macros for internal invariants.
//
// CROWDMAX_CHECK aborts on violation in all build modes and is reserved for
// conditions whose violation would make continuing meaningless (corrupted
// internal state). CROWDMAX_DCHECK compiles away in NDEBUG builds and guards
// programmer errors on internal (non-public) paths. Public APIs report user
// errors through Status/Result instead of asserting.

#ifndef CROWDMAX_COMMON_CHECK_H_
#define CROWDMAX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define CROWDMAX_CHECK(condition)                                           \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define CROWDMAX_DCHECK(condition) \
  do {                             \
  } while (false)
#else
#define CROWDMAX_DCHECK(condition) CROWDMAX_CHECK(condition)
#endif

#endif  // CROWDMAX_COMMON_CHECK_H_
