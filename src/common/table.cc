#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <utility>

namespace crowdmax {

namespace {

bool NeedsCsvQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

}  // namespace

std::string CsvEscape(const std::string& cell) {
  if (!NeedsCsvQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  size_t num_cols = headers_.size();
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.size());

  std::vector<size_t> widths(num_cols, 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = std::max(widths[c], headers_[c].size());
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < num_cols) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };

  print_row(headers_);
  size_t rule_len = 0;
  for (size_t c = 0; c < num_cols; ++c) rule_len += widths[c] + 2;
  out << std::string(rule_len > 2 ? rule_len - 2 : rule_len, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatInt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace crowdmax
