#include "common/metrics.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/check.h"

namespace crowdmax {

namespace {

std::atomic<bool> g_metrics_enabled{false};

// Shard selection: a small per-thread id assigned on first use. Modulo
// keeps every thread on a fixed shard, so re-reading a quiescent counter
// always sums the same values in the same order.
int ShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id % Counter::kShards;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Counter::Add(int64_t delta) {
  if (!MetricsEnabled()) return;
  CROWDMAX_DCHECK(delta >= 0);
  shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Counter::value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Set(int64_t value) {
  if (!MetricsEnabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  CROWDMAX_CHECK(!bounds_.empty());
  CROWDMAX_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    CROWDMAX_CHECK(bounds_[i] < bounds_[i + 1]);
  }
  Reset();
}

void Histogram::Observe(int64_t value) {
  if (!MetricsEnabled()) return;
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<int64_t> ExponentialBounds(int n) {
  CROWDMAX_CHECK(n >= 1 && n < 63);
  std::vector<int64_t> bounds(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) bounds[static_cast<size_t>(i)] = int64_t{1} << i;
  return bounds;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(std::move(bounds)));
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ", ") << '"' << name << "\": " << counter->value();
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ", ") << '"' << name << "\": " << gauge->value();
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ", ") << '"' << name << "\": {\"bounds\": [";
    const std::vector<int64_t>& bounds = histogram->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      out << (i ? ", " : "") << bounds[i];
    }
    out << "], \"counts\": [";
    const std::vector<int64_t> counts = histogram->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      out << (i ? ", " : "") << counts[i];
    }
    out << "], \"sum\": " << histogram->sum()
        << ", \"count\": " << histogram->count() << '}';
    first = false;
  }
  out << "}}";
}

void MetricsRegistry::WriteCsv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "kind,name,value\n";
  for (const auto& [name, counter] : counters_) {
    out << "counter," << name << ',' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "gauge," << name << ',' << gauge->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::vector<int64_t>& bounds = histogram->bounds();
    const std::vector<int64_t> counts = histogram->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      out << "histogram," << name << ".le.";
      if (i < bounds.size()) {
        out << bounds[i];
      } else {
        out << "inf";
      }
      out << ',' << counts[i] << '\n';
    }
    out << "histogram," << name << ".sum," << histogram->sum() << '\n';
    out << "histogram," << name << ".count," << histogram->count() << '\n';
  }
}

}  // namespace crowdmax
