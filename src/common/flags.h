// Minimal command-line flag parsing for bench and example binaries.
//
// Supports "--name=value" and "--name value". Unknown flags are reported via
// Status so typos do not silently alter an experiment.

#ifndef CROWDMAX_COMMON_FLAGS_H_
#define CROWDMAX_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace crowdmax {

/// Parses flags of the form --name=value / --name value and exposes typed
/// accessors with defaults.
class FlagParser {
 public:
  FlagParser() = default;

  /// Parses `argv`. Returns InvalidArgument on a malformed or duplicate
  /// flag; positional arguments are not supported and are rejected.
  Status Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  /// Typed accessors; return `default_value` when the flag is absent. A
  /// present-but-unparsable value returns `default_value` as well, after
  /// Parse() has already rejected clearly malformed input.
  int64_t GetInt(const std::string& name, int64_t default_value) const;

  /// GetInt clamped to [min_value, max_value]. Used for flags like
  /// --threads where an out-of-range value should degrade to the nearest
  /// sane setting instead of poisoning an experiment.
  int64_t GetBoundedInt(const std::string& name, int64_t default_value,
                        int64_t min_value, int64_t max_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_COMMON_FLAGS_H_
