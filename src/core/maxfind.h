// Phase-2 max-finding under imprecise comparisons (Section 4.1.2).
//
// Three interchangeable solvers for Problem 2 — selecting a near-maximum
// element out of a candidate set S using a single worker class:
//
//  * AllPlayAllMax   — Theta(|S|^2) comparisons, d(M, e) <= 2*delta.
//  * TwoMaxFind      — Algorithm 3 (2-MaxFind of Ajtai et al., ICALP'09):
//                      O(|S|^{3/2}) comparisons, d(M, e) <= 2*delta,
//                      deterministic given consistent answers.
//  * RandomizedMaxFind — Algorithm 5 (Ajtai et al., Section 3.2):
//                      Theta(|S|) comparisons but with a very large
//                      constant (80*(c+2) group size), d(M, e) <= 3*delta
//                      w.h.p. Asymptotically optimal, practically dominated
//                      by 2-MaxFind at the paper's instance sizes.

#ifndef CROWDMAX_CORE_MAXFIND_H_
#define CROWDMAX_CORE_MAXFIND_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/comparator.h"
#include "core/instance.h"

namespace crowdmax {

/// Outcome of a phase-2 solver.
struct MaxFindResult {
  /// The element reported as (approximately) maximal.
  ElementId best = -1;
  /// Comparisons actually paid for (cache misses when memoizing).
  int64_t paid_comparisons = 0;
  /// Comparisons issued, including memoization hits.
  int64_t issued_comparisons = 0;
  /// Round count (while-loop iterations; 0 for AllPlayAllMax).
  int64_t rounds = 0;
};

/// Plays a single all-play-all tournament over `items` and returns the
/// element with the most wins. Requires a non-empty set of distinct ids.
Result<MaxFindResult> AllPlayAllMax(const std::vector<ElementId>& items,
                                    Comparator* comparator);

class SharedPairCache;

/// Options for TwoMaxFind.
struct TwoMaxFindOptions {
  /// Remember each pair's answer and never re-ask (the paper assumes this:
  /// "we memorize results and we do not repeat comparisons"). Memoization
  /// also guarantees termination against inconsistent (randomized)
  /// comparators; with it off the algorithm aborts with Internal status
  /// after a progress-failure budget is exhausted.
  bool memoize = true;

  /// Cross-phase pair-evidence sharing (core/round_engine.h): when set,
  /// memoize into this cache's `cache_class` map instead of a private one,
  /// so pairs already resolved by an earlier engine of the same worker
  /// class are answered for free. Dedup is within-class only (1 = expert
  /// by convention). Not owned; must outlive the call.
  SharedPairCache* shared_cache = nullptr;
  int64_t cache_class = 1;
};

/// Algorithm 3 (2-MaxFind). Repeatedly: tournament among ceil(sqrt(s))
/// arbitrary candidates, pick the winner x, compare x against every
/// candidate and drop all that lose to x; once at most ceil(sqrt(s))
/// candidates remain, a final tournament decides. Elimination comparisons
/// pass the pivot as the *first* argument (AdversarialPolicy::kFirstLoses
/// exercises the worst case).
Result<MaxFindResult> TwoMaxFind(const std::vector<ElementId>& items,
                                 Comparator* comparator,
                                 const TwoMaxFindOptions& options = {});

/// The deterministic upper bound on 2-MaxFind comparisons used by the
/// paper's worst-case plots: 2 * s^{3/2} (from Ajtai et al., Lemma 1).
int64_t TwoMaxFindComparisonUpperBound(int64_t s);

/// Options for RandomizedMaxFind.
struct RandomizedMaxFindOptions {
  /// Seed for sampling and partitioning.
  uint64_t seed = 1;
  /// The constant c of Algorithm 5; group size is 80 * (c + 2) and the
  /// success probability is 1 - |S|^{-c}.
  int64_t c = 1;
  /// Exponent of the stopping threshold and witness-sample size (|S|^0.3
  /// in the paper).
  double sample_exponent = 0.3;
  /// If positive, overrides the 80*(c+2) group size — used by ablation
  /// benches to show the cost/accuracy effect of the constant.
  int64_t group_size_override = 0;

  /// Emit each elimination group as its own engine round instead of one
  /// round carrying every group as a unit. The groups of one logical round
  /// are pairwise disjoint, so a pipelined engine can keep several group
  /// round trips in flight (CanPipelineNextRound); elimination decisions
  /// still wait for the whole logical round (the witness sample and
  /// shuffle are drawn once, at the first group's emission). Results are
  /// identical either way; only the round-trip overlap differs.
  bool pipeline_groups = false;
};

/// Algorithm 5: the randomized linear-comparison max-finder. Maintains a
/// witness set W sampled along the way; each round partitions the survivors
/// into groups of 80*(c+2), plays all-play-all in each group and eliminates
/// each group's minimal element; finishes with a tournament over W plus the
/// remaining survivors.
Result<MaxFindResult> RandomizedMaxFind(
    const std::vector<ElementId>& items, Comparator* comparator,
    const RandomizedMaxFindOptions& options = {});

class RoundEngine;

/// Outcome of a phase-2 solver driven on a caller-provided engine. On
/// comparator backends `partial` is always false. On an executor backend,
/// missing evidence (faults the executor's own recovery could not repair)
/// can leave the run partial: an elimination loop that stalls without
/// evidence stops with `maxfind.best == -1` and the surviving candidate set
/// in `survivors`; a final tournament on incomplete evidence reports the
/// provisional leader in `maxfind.best` and also fills `survivors`.
struct MaxFindEngineRun {
  MaxFindResult maxfind;
  bool partial = false;
  Status fault_status = Status::OK();
  std::vector<ElementId> survivors;
};

/// Options for RunTwoMaxFindOnEngine beyond the plain sync drive.
struct TwoMaxFindEngineOptions {
  /// Predict each sample tournament's pivot and speculatively issue the
  /// elimination scan before the sample's answers arrive (DESIGN.md §15).
  /// The predicted pivot is the lowest-indexed sample member, so callers
  /// that order candidates by prior strength (e.g. phase-1 win counts)
  /// get a high hit rate. Only a pipelined engine consults the hooks;
  /// results, traces and paid counters are bit-identical to the sync
  /// drive either way — mispredictions surface only as
  /// `speculation_wasted` spend on the engine.
  bool speculate = false;
};

/// Algorithm 3 (2-MaxFind) as a RoundSource on `engine` (any backend). The
/// engine owns memoization and dispatch; `TwoMaxFind` and
/// `BatchedTwoMaxFind` are thin wrappers over this.
Result<MaxFindEngineRun> RunTwoMaxFindOnEngine(
    const std::vector<ElementId>& items, RoundEngine* engine,
    const TwoMaxFindEngineOptions& options = {});

/// Algorithm 5 as a RoundSource on `engine` (any backend). A group with an
/// unresolved pair eliminates nobody (no eviction without evidence); a
/// stalled elimination loop proceeds straight to the final tournament over
/// the witness set plus all remaining survivors.
Result<MaxFindEngineRun> RunRandomizedMaxFindOnEngine(
    const std::vector<ElementId>& items, RoundEngine* engine,
    const RandomizedMaxFindOptions& options = {});

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_MAXFIND_H_
