// Algorithm 1: the expert-aware two-phase max-finding algorithm.
//
// Phase 1 filters the input down to O(u_n) candidates using cheap naive
// workers (Algorithm 2); phase 2 runs a max-finder over the candidates
// using expensive expert workers. With 2-MaxFind in phase 2 the returned
// element e satisfies d(M, e) <= 2*delta_e using at most 4*n*u_n naive and
// 2*(2*u_n)^{3/2} expert comparisons (Theorem 1); with the randomized
// phase 2 the guarantee is 3*delta_e w.h.p. with Theta(u_n) expert
// comparisons (Lemmas 4-5).

#ifndef CROWDMAX_CORE_EXPERT_MAX_H_
#define CROWDMAX_CORE_EXPERT_MAX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/cost.h"
#include "core/filter_phase.h"
#include "core/instance.h"
#include "core/maxfind.h"

namespace crowdmax {

/// Which solver runs over the candidate set in phase 2.
enum class Phase2Algorithm {
  /// Algorithm 3 (default; the choice used in the paper's Section 5
  /// simulations): O(u_n^{3/2}) expert comparisons, 2*delta_e guarantee.
  kTwoMaxFind,
  /// Algorithm 5: Theta(u_n) expert comparisons with a very large
  /// constant, 3*delta_e guarantee w.h.p. (the variant used in the paper's
  /// asymptotic analysis).
  kRandomized,
  /// Exhaustive tournament: Theta(u_n^2) expert comparisons, 2*delta_e.
  kAllPlayAll,
};

/// Configuration of the two-phase algorithm.
struct ExpertMaxOptions {
  /// Phase-1 options; `filter.u_n` is the only required parameter of the
  /// whole algorithm (estimate it with EstimateUn when unknown).
  FilterOptions filter;
  Phase2Algorithm phase2 = Phase2Algorithm::kTwoMaxFind;
  TwoMaxFindOptions two_maxfind;
  RandomizedMaxFindOptions randomized;

  /// Cross-phase pair-evidence sharing (core/round_engine.h). When set, it
  /// overrides the sub-options' cache fields: phase 1 memoizes its naive
  /// evidence into `shared_cache[naive_cache_class]` and phase 2 (2-MaxFind
  /// or all-play-all) into `shared_cache[expert_cache_class]`. Dedup is
  /// within-class only — naive answers never substitute for expert answers
  /// — so phase 2 reuses phase-1 evidence exactly when both classes share
  /// an id, i.e. both phases buy from the very same crowd (the single-class
  /// regime of the paper's u_n = u_e degenerate case). The main gain is
  /// across calls: a later run on the same (cache, class) answers every
  /// already-resolved pair for free. kRandomized runs unmemoized by design
  /// and never reads or writes the cache. Not owned; must outlive the call.
  SharedPairCache* shared_cache = nullptr;
  int64_t naive_cache_class = 0;
  int64_t expert_cache_class = 1;
};

/// Execution record of the two-phase algorithm.
struct ExpertMaxResult {
  /// The element returned as (approximately) maximal.
  ElementId best = -1;
  /// Phase-1 survivors handed to the experts.
  std::vector<ElementId> candidates;
  /// Paid comparison counts per worker class.
  ComparisonStats paid;
  /// Issued comparison counts per worker class (>= paid when memoizing).
  ComparisonStats issued;
  int64_t filter_rounds = 0;
  int64_t phase2_rounds = 0;
  /// Propagated phase-1 degradation flags (see FilterResult).
  bool filter_hit_empty_round = false;
  bool filter_stopped_by_budget = false;

  /// Monetary cost of this execution under `model`.
  double CostUnder(const CostModel& model) const {
    return model.Cost(paid.naive, paid.expert);
  }
};

/// Runs Algorithm 1 on `items`: Algorithm 2 with `naive`, then the selected
/// phase-2 solver with `expert`. Returns InvalidArgument for bad options,
/// duplicate ids, or an empty input.
Result<ExpertMaxResult> FindMaxWithExperts(const std::vector<ElementId>& items,
                                           Comparator* naive,
                                           Comparator* expert,
                                           const ExpertMaxOptions& options);

/// Budget-constrained execution (cf. Mo et al.'s fixed-budget task
/// assignment in the paper's related work): reserve the worst-case expert
/// cost for phase 2, spend what remains on naive filtering.
struct BudgetedMaxOptions {
  ExpertMaxOptions base;
  CostModel prices;
  /// Total monetary budget. Must at least cover the reserved expert phase
  /// plus one filtering round.
  double budget = 0.0;
};

/// Outcome of a budgeted run.
struct BudgetedMaxResult {
  ExpertMaxResult result;
  /// Naive comparisons the budget afforded phase 1.
  int64_t naive_comparison_cap = 0;
  /// True if phase 1 hit its cap and returned early (candidates may exceed
  /// 2*u_n - 1; the maximum still survives — stopping early only keeps
  /// more elements).
  bool filter_stopped_by_budget = false;
  /// Actual spend; can exceed `budget` only when an early-stopped phase 1
  /// left more candidates than the expert reserve anticipated (best-effort
  /// semantics; check within_budget).
  double actual_cost = 0.0;
  bool within_budget = false;
};

/// Runs Algorithm 1 under a monetary budget: phase 2's worst-case cost
/// (2-MaxFind on 2*u_n - 1 candidates at expert prices) is reserved up
/// front and FilterOptions::max_comparisons is set to spend the rest on
/// naive work. Returns InvalidArgument when the budget cannot cover the
/// expert reserve plus the first filtering round.
Result<BudgetedMaxResult> BudgetedFindMaxWithExperts(
    const std::vector<ElementId>& items, Comparator* naive,
    Comparator* expert, const BudgetedMaxOptions& options);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_EXPERT_MAX_H_
