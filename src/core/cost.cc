#include "core/cost.h"

#include <limits>

namespace crowdmax {

double CostModel::Ratio() const {
  if (naive_cost == 0.0) return std::numeric_limits<double>::infinity();
  return expert_cost / naive_cost;
}

}  // namespace crowdmax
