#include "core/cost.h"

#include <limits>

namespace crowdmax {

double CostModel::Ratio() const {
  if (naive_cost == 0.0) {
    // Both prices zero is 0/0; define it as "no premium" instead of NaN so
    // downstream consumers (planner logs, crossover solvers) stay finite.
    if (expert_cost == 0.0) return 1.0;
    return std::numeric_limits<double>::infinity();
  }
  return expert_cost / naive_cost;
}

}  // namespace crowdmax
