// Fault-tolerant batch execution (the recovery half of the fault model).
//
// The paper's guarantees (Lemmas 1-3, Theorem 1) assume every submitted
// comparison comes back answered; a CrowdFlower-style platform loses votes
// to task abandonment, stragglers and worker churn, and sometimes rejects
// a submission outright (platform/platform.h, FaultOptions). This header
// provides the execution-side recovery stack:
//
//  * ResilientBatchExecutor — a decorator over any BatchExecutor that
//    re-issues unanswered or no-quorum tasks with bounded retries and
//    exponential backoff, accepts relaxed-quorum majorities once enough
//    votes arrived, and on an exhausted budget either degrades through a
//    caller-supplied tie-break or propagates a typed Unavailable status so
//    the batched algorithms can return partial results. Every recovery
//    action is accounted in a FaultReport (core/batched.h).
//
//  * FaultInjectingBatchExecutor — deterministic fault injection over any
//    executor, for tests and benches that need faults without a platform
//    (e.g. exercising the resilient layer over ParallelBatchExecutor at
//    several thread counts).
//
// Both decorators are deterministic given their seeds and the inner
// executor's determinism, so faulty runs replay bit-for-bit.

#ifndef CROWDMAX_CORE_RESILIENT_H_
#define CROWDMAX_CORE_RESILIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/batched.h"

namespace crowdmax {

/// Tie-break for tasks the retry budget could not resolve: must return one
/// of the two elements. Deterministic policies keep runs replayable.
using FaultFallback = std::function<ElementId(ElementId a, ElementId b)>;

/// Built-in deterministic fallback: the smaller id wins. Id order carries
/// no value information, but the choice is stable across runs and thread
/// counts — use it when availability matters more than the guarantee.
ElementId SmallerIdFallback(ElementId a, ElementId b);

/// Recovery policy of ResilientBatchExecutor.
struct ResilientOptions {
  /// Re-submissions allowed per caller batch beyond the first attempt.
  int64_t max_retries = 3;
  /// Relaxed quorum: accept a provisional (no-quorum) majority once at
  /// least this many collected votes back it, instead of re-issuing the
  /// task. Fully answered outcomes are always accepted. 1 accepts any
  /// majority of whatever arrived; raise it to demand more evidence.
  int64_t min_votes = 1;
  /// Backoff before retry k (1-based) is accounted as
  /// backoff_base_steps << (k-1) logical steps in the FaultReport
  /// (latency inflation; the simulator has no wall clock to sleep on).
  /// 0 disables backoff accounting.
  int64_t backoff_base_steps = 1;
  /// Graceful degradation: applied to tasks still unresolved when the
  /// retry budget is exhausted. When empty, the executor instead
  /// propagates Status::Unavailable and the batched algorithms return
  /// partial results (survivors so far + fault report).
  FaultFallback fallback;
};

/// Decorator that makes any BatchExecutor survive the fault modes of the
/// fallible execution path. logical_steps() describes the caller-visible
/// execution (one step per batch); comparisons() charges the true crowd
/// spend — every task of every attempt, retries included — so it matches
/// the inner executor's dispatch count and the platform transcript row
/// count. Extra latency is accounted in FaultReport::steps_added.
class ResilientBatchExecutor : public BatchExecutor {
 public:
  /// `inner` is not owned and must outlive the decorator. Returns
  /// InvalidArgument for a null inner, max_retries < 0, min_votes < 1 or
  /// backoff_base_steps < 0.
  static Result<std::unique_ptr<ResilientBatchExecutor>> Create(
      BatchExecutor* inner, const ResilientOptions& options = {});

  const FaultReport& report() const { return report_; }
  const FaultReport* fault_report() const override { return &report_; }

  /// Resets this executor's counters and its FaultReport. The inner
  /// executor's counters are left untouched (it may be shared or may be a
  /// platform adapter with its own snapshot discipline).
  void ResetCounters() override;

  /// Simulated latency accrues in the inner stack (every attempt's round
  /// trip, retries included); the decorator just drains it through.
  int64_t TakeSimulatedLatencyMicros() override;

  /// Overrides the quorum/retry policy in place — the graceful-degradation
  /// lever of the ServiceSupervisor (query/supervisor.h). Takes effect on
  /// the next batch; the FaultReport keeps accumulating across the switch,
  /// so degraded and healthy work land in one ledger.
  void set_options(const ResilientOptions& options) { options_ = options; }
  const ResilientOptions& options() const { return options_; }

 private:
  ResilientBatchExecutor(BatchExecutor* inner, const ResilientOptions& options);

  /// Infallible path: requires the recovery to fully resolve the batch
  /// (i.e. a fallback policy, or faults mild enough for the retry budget);
  /// aborts otherwise. Prefer TryExecuteBatch.
  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  Result<std::vector<BatchTaskResult>> DoTryExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  /// The inner executor records the dispatched/outcome trace cells; this
  /// decorator records only what it terminates (retries, degradations).
  bool RecordsTraceCells() const override { return false; }

  // Checkpoint support: the FaultReport ledger plus the inner stack.
  Status DoSaveState(CheckpointWriter* writer) const override;
  Status DoLoadState(CheckpointReader* reader) override;

  BatchExecutor* inner_;
  ResilientOptions options_;
  FaultReport report_;
};

/// Deterministic executor-level fault injection (no platform needed).
struct InjectedFaultOptions {
  /// Per-task probability the task comes back unanswered with zero votes.
  double drop_probability = 0.0;
  /// Per-task probability the task comes back as a no-quorum partial: the
  /// inner winner is reported with answered=false and `partial_votes`
  /// backing votes.
  double no_quorum_probability = 0.0;
  /// Per-submission probability of a transient Unavailable error (the
  /// whole batch fails; no step, no votes).
  double unavailable_probability = 0.0;
  /// Votes reported for healthy tasks (answered=true).
  int64_t votes_per_task = 5;
  /// Votes reported for injected no-quorum partials; keep it below a
  /// resilient caller's min_votes to force re-issues, or at/above it to
  /// exercise relaxed-quorum acceptance.
  int64_t partial_votes = 2;
  /// Seed of the injection stream.
  uint64_t seed = 0;
};

/// Wraps any executor and injects faults on the fallible path. All fault
/// draws happen serially at submission time, before delegating to the
/// inner executor, so the injected pattern depends only on the submission
/// sequence and the seed — never on the inner executor's thread schedule.
/// The infallible ExecuteBatch path forwards untouched (fault-free).
class FaultInjectingBatchExecutor : public BatchExecutor {
 public:
  /// `inner` is not owned. Returns InvalidArgument for a null inner,
  /// probabilities outside [0, 1), votes_per_task < 1 or partial_votes < 1.
  static Result<std::unique_ptr<FaultInjectingBatchExecutor>> Create(
      BatchExecutor* inner, const InjectedFaultOptions& options);

  int64_t injected_drops() const { return injected_drops_; }
  int64_t injected_no_quorums() const { return injected_no_quorums_; }
  int64_t injected_unavailable() const { return injected_unavailable_; }

  /// Forwards the inner stack's simulated latency (injected failures cost
  /// no extra round trip: an injected-unavailable submission never reached
  /// the inner executor).
  int64_t TakeSimulatedLatencyMicros() override;

 private:
  FaultInjectingBatchExecutor(BatchExecutor* inner,
                              const InjectedFaultOptions& options);

  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  Result<std::vector<BatchTaskResult>> DoTryExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  /// Forwarded tasks are recorded by the inner (sink) executor; this
  /// decorator records the faults it injects itself — dropped tasks (which
  /// never reach the inner executor) and the demotion of inner answers to
  /// no-quorum partials — so the trace reflects the modeled crowd.
  bool RecordsTraceCells() const override { return false; }

  // Checkpoint support: the injection RNG stream, the injected-fault
  // counters, and the inner stack — a resumed run injects the exact same
  // fault pattern the uninterrupted run would have.
  Status DoSaveState(CheckpointWriter* writer) const override;
  Status DoLoadState(CheckpointReader* reader) override;

  BatchExecutor* inner_;
  InjectedFaultOptions options_;
  Rng rng_;
  int64_t injected_drops_ = 0;
  int64_t injected_no_quorums_ = 0;
  int64_t injected_unavailable_ = 0;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_RESILIENT_H_
