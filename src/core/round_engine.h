// The round-based execution core: one engine for every comparison loop.
//
// The paper defines every algorithm in terms of logical steps — "in the
// s-th logical step, a batch B_s of pairwise comparisons is sent to the
// platform" (Section 3, Venetis et al.'s step-count time measure). The
// round structure is the algorithm-independent part: an algorithm only
// decides *which* independent comparisons the next step needs (a
// RoundSource), while the engine owns everything the serial, parallel and
// batched paths used to duplicate — pair memoization, budget enforcement
// at round boundaries, Comparator::Fork seeding discipline, BatchExecutor
// decoration with kUnresolved/no-evidence semantics, and exactly-once
// trace-cell attribution under the RecordsTraceCells gate.
//
// Backends (see RoundEngine::Backend):
//  - kSerial: pairs run through the caller's Comparator in emission order;
//    optional engine-owned pair cache reproduces MemoizingComparator
//    byte-for-byte (same unordered PairKey, paid = misses only).
//  - kParallel: one Comparator::Fork per RoundUnit, seeds drawn in unit
//    order from one persistent Rng *before* dispatch, per-fork counts
//    merged into the parent at the single-threaded round barrier, and the
//    memo cache treated as a read-only snapshot during the round with
//    fresh outcomes merged in unit order at the barrier. This is the PR 1
//    discipline previously implemented by ParallelGroupRunner and the
//    per-match forks in the Venetis ladder; seeded runs are bit-identical
//    for any thread count.
//  - kExecutor: the whole round's cache misses go to a BatchExecutor as
//    one fallible batch. Faulted pairs are parked as kUnresolvedWinner in
//    the cache (re-issued on the next resolve) and surface to the source
//    as no-evidence outcomes, so partial-result semantics (no eviction
//    without evidence) stay with the algorithm while retry/quorum live in
//    the executor stack.
//
// Trace shape stays backend-specific on purpose (the pre-engine paths
// differed, and seeded traces must stay bit-identical): RoundUnit carries
// the serial-path batch-span label ("all_play_all" where the old code
// called AllPlayAll), EngineRound carries the executor-path batch-span
// label ("sample"/"scan"/"final"), and the round-span open/close points
// are declared per backend family. Worker threads never touch the trace.

#ifndef CROWDMAX_CORE_ROUND_ENGINE_H_
#define CROWDMAX_CORE_ROUND_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/comparator.h"
#include "core/pair_table.h"

namespace crowdmax {

class BatchExecutor;
class AsyncBatchExecutor;
class CheckpointController;
class CheckpointReader;
class CheckpointWriter;

// ComparisonPair (one comparison task, argument order preserved) lives in
// core/comparator.h, shared with the batch vote interface.

/// Winner sentinel for a pair with no evidence this round: the executor
/// stack (after its own recovery) could not answer it. Comparator-backed
/// rounds never produce it. Matches the batched paths' historical
/// kUnresolved cache sentinel.
inline constexpr ElementId kUnresolvedWinner = -2;

/// One independently-executable set of comparisons within a round. On the
/// parallel backend a unit is the forking granularity (one comparator fork
/// per unit — a filter group, a Marcus group, a Venetis match); pairs
/// within a unit run sequentially on the fork, so a unit may repeat a pair
/// (Venetis votes).
struct RoundUnit {
  std::vector<ComparisonPair> pairs;
  /// Serial backend only: open a kBatch trace span with this label around
  /// the unit (the shape AllPlayAll used to produce). nullptr = no span.
  const char* serial_span = nullptr;
  /// Serial backend only, with serial_span: observe this value in the
  /// crowdmax.tournament.group_size histogram (-1 = no observation).
  int64_t serial_span_size = -1;
};

/// One engine round: the next set of independent comparisons, plus the
/// trace-shape declarations for each backend family. An algorithm round
/// may span several engine rounds when it has internal barriers (2-MaxFind
/// picks its pivot between the sample tournament and the scan).
struct EngineRound {
  std::vector<RoundUnit> units;

  /// Executor backend only: open a kBatch span with this label around the
  /// round's resolve (the "sample"/"scan"/"final" labels of the batched
  /// 2-MaxFind). nullptr = no span.
  const char* executor_span = nullptr;

  /// Round-span control, per backend family. >0 opens a round span with
  /// that number before execution; the matching close flag ends it after
  /// the source consumed the outcome (so barrier tallies land inside the
  /// span). A span may stay open across engine rounds (open on the sample
  /// round, close on the scan round).
  int64_t open_round_comparator = 0;
  int64_t open_round_executor = 0;
  bool close_round_comparator = false;
  bool close_round_executor = false;

  /// Comparator backends only: record this round's (paid, issued) deltas
  /// as one trace cell at the barrier — dispatched = answered = paid,
  /// cache_hits = issued - paid. On the executor backend cells are
  /// recorded by the executor wrappers themselves (RecordsTraceCells gate)
  /// and the engine records only cache hits, so attribution stays
  /// exactly-once.
  bool record_round_cell = false;

  /// Executor backend only: drop the pair cache before resolving (the
  /// non-memoized filter still dedupes within a round but forgets across
  /// rounds). Unresolved sentinels are dropped with it; the source must
  /// re-emit the pairs it still needs.
  bool clear_round_cache = false;

  int64_t TotalPairs() const;
};

/// What one round bought. winners[u][p] answers units[u].pairs[p]; a pair
/// with no evidence (executor faults) carries kUnresolvedWinner.
struct RoundOutcome {
  std::vector<std::vector<ElementId>> winners;
  /// Pairs processed this round (cache hits included).
  int64_t issued = 0;
  /// Comparisons actually paid for this round (cache misses; on the
  /// executor backend includes retry re-buys charged by decorators).
  int64_t paid_delta = 0;
  /// Pairs left without evidence this round (executor backend only).
  int64_t unresolved = 0;
  /// Transient (kUnavailable) executor fault absorbed this round, if any.
  /// Non-transient executor errors abort the drive instead.
  Status fault = Status::OK();
};

/// Cross-phase pair-evidence store: one winner map per caller-assigned
/// worker-class id. Several engines (typically one per phase) created over
/// the same cache and class id share evidence — Phase-2 never re-buys a
/// pair Phase-1 already resolved with the *same* worker class. Class ids
/// are caller-assigned integers, not trace classes, so a multilevel
/// cascade can keep every level's evidence separate: naive answers never
/// substitute for expert answers unless the caller deliberately maps both
/// phases to one class (the simulated-expert regime, where both phases buy
/// from the same crowd).
///
/// kUnresolvedWinner entries persist across engines: a pair an earlier
/// phase could not resolve is re-issued (and re-paid) by the next engine
/// that asks for it. Not thread-safe; drive one engine at a time.
class SharedPairCache {
 public:
  /// The winner table for `class_id` (created empty on first use). The
  /// pointer stays valid for the cache's lifetime.
  PairTable* ForClass(int64_t class_id) { return &maps_[class_id]; }

  /// Resolved pairs stored for `class_id` (unresolved sentinels excluded).
  int64_t ResolvedPairs(int64_t class_id) const;

 private:
  std::unordered_map<int64_t, PairTable> maps_;
};

/// Verdict of RoundSource::ReconcileSpeculation: did the in-flight
/// speculative rounds predict the now-known truth?
enum class SpeculationVerdict {
  kConfirmed,
  kMispredicted,
};

/// A round generator: given the answers so far, emit the next set of
/// independent comparisons, or finish. Sources hold the algorithm state
/// (survivor sets, tallies, loss counters) and consume outcomes at the
/// round barrier; they never dispatch, memoize, or budget — that is the
/// engine's job.
class RoundSource {
 public:
  virtual ~RoundSource() = default;

  /// Fills `round` (passed in default-constructed) with the next round.
  /// Returns false when the algorithm is finished, or an error status for
  /// algorithm-level failure (e.g. a round-count safety budget exceeded).
  virtual Result<bool> NextRound(EngineRound* round) = 0;

  /// Consumes the outcome of the round just executed (tallies, survivor
  /// selection, partial-result decisions). Runs single-threaded at the
  /// round barrier, inside the round's trace span when one is open. An
  /// error status aborts the drive.
  virtual Status ConsumeOutcome(const EngineRound& round,
                                const RoundOutcome& outcome) = 0;

  /// The engine declined the next round because it would exceed the
  /// comparison budget; the source records the stop and the drive ends.
  virtual void OnBudgetStop() {}

  /// Pipelining legality (see DESIGN.md §11): true when the source can
  /// emit its next round *now*, before the outcomes of already-emitted
  /// rounds have been consumed. A source may only say yes when (a) the
  /// next round's pair content is fully determined by outcomes it has
  /// already consumed, (b) the next round shares no pair with any
  /// in-flight round (the engine rejects violations), and (c) its
  /// ConsumeOutcome emits no trace operations — the three conditions that
  /// make the pipelined drive bit-identical to the serial drive. The
  /// filter phase's disjoint groups within one logical round are the
  /// canonical case. Default: never (the pipelined drive then degenerates
  /// to depth 1).
  virtual bool CanPipelineNextRound() const { return false; }

  /// Speculative round declaration (DESIGN.md §15). When the next round's
  /// content depends on an outcome still in flight, a source may offer a
  /// *predicted* variant: CanSpeculateNextRound says one is available, and
  /// SpeculateNextRound fills it in (returning false to decline after
  /// all). The emission must be side-effect-free on the source's own
  /// consumed-truth state — only the speculation bookkeeping (prediction,
  /// outstanding flag) may change, because a misprediction rolls the
  /// emission back via OnSpeculationAborted and the true round is
  /// re-emitted through NextRound. Speculative rounds must not open round
  /// trace spans or clear the round cache (the engine CHECKs), and are
  /// refused on budget-gated drives — the budget gate is an emission-time
  /// predicate with no sync-equivalent program point for a round that has
  /// not, in the synchronous schedule, been emitted yet.
  virtual bool CanSpeculateNextRound() const { return false; }
  virtual Result<bool> SpeculateNextRound(EngineRound* round);

  /// Called when every firm outcome the speculation was predicated on has
  /// been consumed: judge the prediction against the now-known truth. Pure
  /// judgment — no state rollback here. On kConfirmed the engine turns the
  /// speculative rounds firm in emission order (their deterministic
  /// effects run now, at the exact point the synchronous drive would have
  /// submitted them); on kMispredicted it cancels them, charges the
  /// would-have-been-bought pairs as speculation_wasted, and calls
  /// OnSpeculationAborted.
  virtual SpeculationVerdict ReconcileSpeculation() {
    return SpeculationVerdict::kMispredicted;
  }

  /// Rolls the source's emission bookkeeping back to consumed truth after
  /// the engine cancelled its outstanding speculative rounds — on a
  /// misprediction or on any drive abort with speculation in flight. The
  /// next NextRound call must emit what the synchronous drive would emit.
  virtual void OnSpeculationAborted() {}

  /// Checkpoint support (core/checkpoint.h): serializes the source's full
  /// algorithm state — survivor sets, tallies, loss counters, phase
  /// machines, any internal RNG stream — so a fresh source constructed
  /// with the same inputs and restored from these bytes continues the run
  /// bit-identically. Called by the engine only at clean round boundaries
  /// (no round in flight, no open round span). The defaults refuse with
  /// kFailedPrecondition, so a source that never opted in cannot silently
  /// resume from scratch.
  virtual Status SaveState(CheckpointWriter* writer) const;
  virtual Status LoadState(CheckpointReader* reader);
};

struct DriveOptions {
  /// >0: decline any round whose worst-case cost (its pair count) would
  /// push paid comparisons past this cap — the FilterOptions::
  /// max_comparisons contract, enforced in exactly one place.
  int64_t max_comparisons = 0;
};

struct DriveResult {
  bool stopped_by_budget = false;
  int64_t rounds_executed = 0;
};

/// The execution core. One engine instance per algorithm run (its paid /
/// issued / step counters and memo cache are scoped to the run, like the
/// per-call MemoizingComparator and batched caches it replaces).
class RoundEngine {
 public:
  enum class Backend { kSerial, kParallel, kExecutor };

  /// Serial comparator execution, optionally memoized through an
  /// engine-owned pair cache (Appendix A, optimization 1). When
  /// `shared_cache` is non-null the engine memoizes into that cache's
  /// `cache_class` map instead of a private one, so evidence outlives the
  /// engine and is visible to later engines on the same (cache, class).
  static std::unique_ptr<RoundEngine> CreateSerial(
      Comparator* comparator, bool memoize,
      SharedPairCache* shared_cache = nullptr, int64_t cache_class = 0);

  /// Parallel comparator execution: `threads` workers, one fork per
  /// RoundUnit, fork seeds drawn from Rng(seed) in unit order. Fails when
  /// the comparator cannot Fork (probed once, up front).
  static Result<std::unique_ptr<RoundEngine>> CreateParallel(
      Comparator* comparator, int64_t threads, uint64_t seed, bool memoize,
      SharedPairCache* shared_cache = nullptr, int64_t cache_class = 0);

  /// Batched execution through a BatchExecutor stack (fault injection,
  /// retry/quorum recovery, platform adapters). Always caches within a
  /// round; EngineRound::clear_round_cache controls cross-round memory
  /// (and, with a shared cache, drops the whole class map — a non-memoized
  /// source opting into sharing would be contradictory).
  static Result<std::unique_ptr<RoundEngine>> CreateBatched(
      BatchExecutor* executor, SharedPairCache* shared_cache = nullptr,
      int64_t cache_class = 0);

  /// Pipelined batched execution: rounds are submitted through `async`
  /// (core/async_executor.h) and up to `max_in_flight` rounds ride the
  /// simulated crowd latency concurrently whenever the source says the
  /// next round is latency-independent (RoundSource::CanPipelineNextRound).
  /// Outcomes are consumed strictly in submission order, all computation
  /// and accounting happens at submission time, and cache resolution
  /// rejects any pair already in flight — together this makes results,
  /// traces and counters bit-identical to CreateBatched over the same
  /// inner executor (only wall-clock changes). `async` is not owned.
  ///
  /// When the source additionally implements the speculative hooks
  /// (CanSpeculateNextRound et al., DESIGN.md §15) the drive keeps a
  /// prediction window: predicted rounds ride the latency unconfirmed and
  /// are either turned firm (all deterministic effects run at the
  /// sync-equivalent program point, via AsyncBatchExecutor::ConfirmBatch)
  /// or cancelled with the wasted spend charged to speculation_wasted().
  /// Results, traces and non-speculation counters stay bit-identical to
  /// the synchronous drive on both the hit and the miss path.
  static Result<std::unique_ptr<RoundEngine>> CreatePipelined(
      AsyncBatchExecutor* async, int64_t max_in_flight,
      SharedPairCache* shared_cache = nullptr, int64_t cache_class = 0);

  /// Runs the source to completion: budget gate, round execution, cell
  /// recording, outcome delivery. Returns the first error from the source
  /// or a non-transient executor error; transient faults flow to the
  /// source through RoundOutcome instead.
  Result<DriveResult> Drive(RoundSource* source,
                            const DriveOptions& options = DriveOptions());

  Backend backend() const { return backend_; }

  /// True when rounds can come back with unresolved pairs / transient
  /// faults (the executor backend). Sources use this to choose between
  /// the strict comparator-path contract (a non-shrinking round is a
  /// broken comparator) and partial-result semantics.
  bool SupportsPartialEvidence() const {
    return backend_ == Backend::kExecutor;
  }

  /// Comparisons paid since engine creation (comparator count delta or
  /// executor comparisons delta — includes decorator retry charges).
  int64_t paid() const;
  /// Pairs processed since engine creation (cache hits included).
  int64_t issued() const { return issued_; }
  /// Pairs served from the engine's caches since creation.
  int64_t cache_hits() const { return cache_hits_; }
  /// Executor logical steps since engine creation (0 on comparator
  /// backends: the serial/parallel paths predate step accounting).
  int64_t logical_steps() const;

  /// Pipelined drive only: rounds submitted while at least one earlier
  /// round was still in flight (the overlap the pipeline buys), and the
  /// deepest concurrent in-flight depth observed.
  int64_t overlapped_rounds() const { return overlapped_rounds_; }
  int64_t max_in_flight_observed() const { return max_in_flight_observed_; }

  /// Speculation accounting (DESIGN.md §15), all since engine creation.
  /// speculative_rounds = hits + mispredicts once the drive has drained.
  /// `speculation_wasted` is the first-class wasted-spend counter: the
  /// comparisons a mispredicted round would have bought (deduped against
  /// the cache at cancellation time), charged to the executor via
  /// ChargeCancelledSpeculation so paid() = sync_paid + speculation_wasted
  /// — never silently folded into the paid tally.
  int64_t speculative_rounds() const { return speculative_rounds_; }
  int64_t speculation_hits() const { return speculation_hits_; }
  int64_t speculation_mispredicts() const { return speculation_mispredicts_; }
  int64_t speculation_wasted() const { return speculation_wasted_; }

  /// Attaches a CheckpointController (core/checkpoint.h) to this engine's
  /// drives. At every clean round boundary — outcome consumed, no round in
  /// flight, no open round trace span — the controller may snapshot the
  /// whole run (engine counters, pair cache, comparator/executor stack,
  /// source state) and may inject a planned kAborted crash. Before the
  /// next drive's first round, a staged restore (ResumeFrom) is loaded
  /// into the engine, the stack, and the source. Not owned; may be null.
  void set_checkpoint(CheckpointController* controller) {
    checkpoint_ = controller;
  }
  CheckpointController* checkpoint() const { return checkpoint_; }

  /// Batch-at-once vote generation (DESIGN.md §14): when enabled (the
  /// default) and the comparator (or its forks) exposes AsVoteBatch(), the
  /// comparator backends collect each unit's cache misses and answer them
  /// with one GenerateVotes call instead of per-pair virtual dispatch.
  /// Results, counters, caches and traces are bit-identical either way;
  /// disable to force the per-call path (equivalence tests, baselines).
  void set_batch_generation(bool enabled) { batch_generation_ = enabled; }
  bool batch_generation() const { return batch_generation_; }

 private:
  struct PendingRound;

  RoundEngine(Backend backend, Comparator* comparator,
              BatchExecutor* executor, bool memoize, int64_t threads,
              uint64_t seed, SharedPairCache* shared_cache,
              int64_t cache_class);

  Result<RoundOutcome> ExecuteRound(const EngineRound& round);
  Result<RoundOutcome> ExecuteSerial(const EngineRound& round);
  Result<RoundOutcome> ExecuteParallel(const EngineRound& round);
  Result<RoundOutcome> ExecuteBatched(const EngineRound& round);

  Result<DriveResult> DrivePipelined(RoundSource* source,
                                     const DriveOptions& options);
  /// Submission half of a pipelined round (pending->round already set):
  /// cache resolution, batch span, accounting, async dispatch. All
  /// counter/trace mutation for the round happens here, in submission
  /// order. For a speculative round being confirmed (pending->handle
  /// already issued) the same body runs at confirmation time — the exact
  /// program point where the synchronous drive would have submitted it —
  /// and dispatches through ConfirmBatch instead.
  Status SubmitPipelined(PendingRound* pending);
  /// Completion half: waits out the round's latency, stores the answers,
  /// and maps them back onto the round's units.
  Status CompletePipelined(PendingRound* pending);

  /// Serializes one checkpoint: drive progress (`paid_start`, rounds), the
  /// engine's counters/cache/seeder, the comparator or executor stack, and
  /// the source. RestoreCheckpoint is the exact inverse, applied to a
  /// freshly constructed engine+stack+source of the same shape.
  Result<std::string> SerializeCheckpoint(const RoundSource* source,
                                          int64_t paid_start,
                                          const DriveResult& drive) const;
  Status RestoreCheckpoint(RoundSource* source, const std::string& bytes,
                           int64_t* paid_start, DriveResult* drive);

  const Backend backend_;
  Comparator* const comparator_;  // Comparator backends; else nullptr.
  BatchExecutor* const executor_;  // Executor backend; else nullptr.
  AsyncBatchExecutor* async_ = nullptr;  // Pipelined drive; else nullptr.
  int64_t max_in_flight_ = 1;
  const bool memoize_;

  // Pair-winner cache (open-addressed PairTable, core/pair_table.h).
  // Serial: MemoizingComparator semantics. Parallel: read-only snapshot
  // during a round, merged at the barrier. Executor: in-round dedup
  // always, cross-round per clear_round_cache, with kUnresolvedWinner
  // parking for faulted pairs. Points at owned_cache_ unless a
  // SharedPairCache class table was supplied at creation.
  PairTable* cache_;
  PairTable owned_cache_;

  bool batch_generation_ = true;

  // Parallel backend: the pool and the persistent fork seeder (one chain
  // across all rounds, so seeded runs replay bit-identically).
  std::unique_ptr<ThreadPool> pool_;
  Rng seeder_;
  const int64_t threads_;

  int64_t paid_base_ = 0;
  int64_t steps_base_ = 0;
  int64_t issued_ = 0;
  int64_t cache_hits_ = 0;
  int64_t overlapped_rounds_ = 0;
  int64_t max_in_flight_observed_ = 0;
  int64_t speculative_rounds_ = 0;
  int64_t speculation_hits_ = 0;
  int64_t speculation_mispredicts_ = 0;
  int64_t speculation_wasted_ = 0;

  // Cross-round reusable scratch (DESIGN.md §15 satellite): the per-round
  // miss/answer buffers of the dispatch paths, hoisted out of the round
  // loop so steady-state rounds allocate nothing. The parallel backend
  // gets one slot per unit index — each pool task touches only its own
  // slot, so the buffers stay fork-local and race-free.
  struct UnitScratch {
    std::vector<ComparisonPair> misses;
    std::vector<ElementId> answers;
  };
  std::vector<ComparisonPair> serial_misses_;
  std::vector<size_t> serial_miss_at_;
  std::vector<ElementId> serial_answers_;
  std::vector<size_t> serial_deferred_;
  std::vector<UnitScratch> unit_scratch_;
  std::vector<ComparisonPair> round_queries_;
  std::vector<ComparisonPair> round_misses_;

  // Round-boundary snapshot/crash/restore coordinator; null = disabled.
  CheckpointController* checkpoint_ = nullptr;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_ROUND_ENGINE_H_
