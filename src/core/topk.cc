#include "core/topk.h"

#include <memory>
#include <utility>

#include "core/round_engine.h"
#include "core/tournament.h"

namespace crowdmax {

Result<TopKResult> FindTopKWithExperts(const std::vector<ElementId>& items,
                                       Comparator* naive, Comparator* expert,
                                       const TopKOptions& options) {
  CROWDMAX_CHECK(naive != nullptr);
  CROWDMAX_CHECK(expert != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.k < 1 || options.k > static_cast<int64_t>(items.size())) {
    return Status::InvalidArgument("k must be in [1, |items|]");
  }
  if (options.filter.u_n < 1) {
    return Status::InvalidArgument("u_n must be >= 1");
  }

  // Phase 1 with the inflated blind spot u' = u_n + k - 1 so every true
  // top-k element survives (it loses at most u_n + k - 2 < u' comparisons
  // in any all-play-all).
  FilterOptions filter = options.filter;
  filter.u_n = options.filter.u_n + options.k - 1;
  if (options.shared_cache != nullptr) {
    filter.shared_cache = options.shared_cache;
    filter.cache_class = options.naive_cache_class;
  }
  Result<FilterResult> filtered = FilterCandidates(items, filter, naive);
  if (!filtered.ok()) return filtered.status();

  TopKResult result;
  result.candidates = std::move(filtered->candidates);
  result.paid.naive = filtered->paid_comparisons;
  result.filter_rounds = filtered->rounds;
  if (static_cast<int64_t>(result.candidates.size()) < options.k) {
    return Status::Internal(
        "phase 1 returned fewer candidates than k; the comparator violated "
        "the threshold-model contract");
  }

  // Phase 2: one expert all-play-all over the candidates; take the k
  // biggest winners in win order. Within this call memoization is a no-op
  // (each pair is played exactly once), but against a shared cache the
  // tournament re-asks pairs an earlier expert-class engine — typically a
  // FindMaxWithExperts run in the same query session — already resolved,
  // and those come back free.
  TournamentResult tournament;
  if (options.shared_cache != nullptr) {
    const std::unique_ptr<RoundEngine> engine = RoundEngine::CreateSerial(
        expert, /*memoize=*/true, options.shared_cache,
        options.expert_cache_class);
    Result<TournamentEngineRun> run =
        RunTournamentOnEngine(result.candidates, engine.get());
    if (!run.ok()) return run.status();
    tournament = std::move(run->tournament);
    result.paid.expert = engine->paid();
  } else {
    const int64_t expert_before = expert->num_comparisons();
    tournament = AllPlayAll(result.candidates, expert);
    result.paid.expert = expert->num_comparisons() - expert_before;
  }

  std::vector<ElementId> ranked = OrderByWins(result.candidates, tournament);
  ranked.resize(static_cast<size_t>(options.k));
  result.top = std::move(ranked);
  return result;
}

}  // namespace crowdmax
