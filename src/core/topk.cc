#include "core/topk.h"

#include <utility>

#include "core/tournament.h"

namespace crowdmax {

Result<TopKResult> FindTopKWithExperts(const std::vector<ElementId>& items,
                                       Comparator* naive, Comparator* expert,
                                       const TopKOptions& options) {
  CROWDMAX_CHECK(naive != nullptr);
  CROWDMAX_CHECK(expert != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.k < 1 || options.k > static_cast<int64_t>(items.size())) {
    return Status::InvalidArgument("k must be in [1, |items|]");
  }
  if (options.filter.u_n < 1) {
    return Status::InvalidArgument("u_n must be >= 1");
  }

  // Phase 1 with the inflated blind spot u' = u_n + k - 1 so every true
  // top-k element survives (it loses at most u_n + k - 2 < u' comparisons
  // in any all-play-all).
  FilterOptions filter = options.filter;
  filter.u_n = options.filter.u_n + options.k - 1;
  Result<FilterResult> filtered = FilterCandidates(items, filter, naive);
  if (!filtered.ok()) return filtered.status();

  TopKResult result;
  result.candidates = std::move(filtered->candidates);
  result.paid.naive = filtered->paid_comparisons;
  result.filter_rounds = filtered->rounds;
  if (static_cast<int64_t>(result.candidates.size()) < options.k) {
    return Status::Internal(
        "phase 1 returned fewer candidates than k; the comparator violated "
        "the threshold-model contract");
  }

  // Phase 2: one expert all-play-all over the candidates; take the k
  // biggest winners in win order. Memoization would be a no-op here (each
  // pair is played exactly once).
  const int64_t expert_before = expert->num_comparisons();
  const TournamentResult tournament = AllPlayAll(result.candidates, expert);
  result.paid.expert = expert->num_comparisons() - expert_before;

  std::vector<ElementId> ranked = OrderByWins(result.candidates, tournament);
  ranked.resize(static_cast<size_t>(options.k));
  result.top = std::move(ranked);
  return result;
}

}  // namespace crowdmax
