// Multi-class extension of the two-phase algorithm (the paper's Section 3.3
// "natural extension models multiple classes of workers with different
// expertise levels", left as future work there and implemented here).
//
// Worker classes are ordered by increasing expertise (decreasing threshold)
// and increasing price. Each class k except the last runs the Algorithm-2
// filter with its own u_k, shrinking the candidate set before handing it to
// the next, more expensive, class; the most expert class runs a phase-2
// max-finder. With two classes this degenerates exactly to Algorithm 1.

#ifndef CROWDMAX_CORE_MULTILEVEL_H_
#define CROWDMAX_CORE_MULTILEVEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/instance.h"

namespace crowdmax {

/// One worker class in the cascade.
struct WorkerClassSpec {
  /// Comparator backed by this class's workers (not owned).
  Comparator* comparator = nullptr;
  /// u_k: number of elements this class cannot distinguish from the
  /// maximum (including the maximum). Must be >= 1. Ignored for the last
  /// class, which runs phase 2 rather than a filter.
  int64_t u = 1;
  /// Price per comparison, for cost reporting.
  double cost_per_comparison = 1.0;
};

/// Options for the cascade.
struct MultilevelOptions {
  /// Applied to every filtering level (u_n is taken from the class spec).
  FilterOptions filter_template;
  /// Solver run by the final (most expert) class.
  Phase2Algorithm final_phase = Phase2Algorithm::kTwoMaxFind;
  TwoMaxFindOptions two_maxfind;
  RandomizedMaxFindOptions randomized;

  /// Cross-call pair-evidence sharing (core/round_engine.h). When set, it
  /// overrides the template/sub-option cache fields: level k's engine
  /// memoizes into `shared_cache[k]` (the class index doubles as the cache
  /// class id, so classes of different expertise never trade evidence), and
  /// a repeated cascade over overlapping items answers every pair a
  /// previous run's same level resolved for free. kRandomized finals run
  /// unmemoized and never share. Not owned; must outlive the call.
  SharedPairCache* shared_cache = nullptr;

  /// Pipelining shape for the final class (consulted only when the final
  /// engine is pipelined; sync drives are unaffected). For a kTwoMaxFind
  /// final, enables speculative elimination scans
  /// (TwoMaxFindEngineOptions::speculate); for a kAllPlayAll final, splits
  /// the tournament into chunks of at most `final_chunk_pairs` pairs
  /// (TournamentEngineOptions::chunk_pairs, 0 = single round).
  bool final_speculate = false;
  int64_t final_chunk_pairs = 0;
};

/// Execution record of the cascade.
struct MultilevelResult {
  ElementId best = -1;
  /// Paid comparisons per class, aligned with the input specs.
  std::vector<int64_t> paid_per_class;
  /// Candidate-set size after each filtering level (one entry per
  /// non-final class).
  std::vector<int64_t> candidates_per_level;
  /// Total monetary cost given each class's cost_per_comparison.
  double total_cost = 0.0;
};

/// Runs the cascade over `items`. `classes` must be non-empty and ordered
/// from least to most expert; with one class this is a plain single-class
/// phase-2 run.
Result<MultilevelResult> FindMaxMultilevel(
    const std::vector<ElementId>& items,
    const std::vector<WorkerClassSpec>& classes,
    const MultilevelOptions& options);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_MULTILEVEL_H_
