#include "core/instance.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace crowdmax {

Instance::Instance(std::vector<double> values) : values_(std::move(values)) {}

double Instance::Distance(ElementId a, ElementId b) const {
  return std::fabs(value(a) - value(b));
}

double Instance::RelativeDifference(ElementId a, ElementId b) const {
  const double va = std::fabs(value(a));
  const double vb = std::fabs(value(b));
  const double denom = std::max(va, vb);
  if (denom == 0.0) return 0.0;
  return std::fabs(value(a) - value(b)) / denom;
}

ElementId Instance::MaxElement() const {
  CROWDMAX_CHECK(!values_.empty());
  size_t best = 0;
  for (size_t i = 1; i < values_.size(); ++i) {
    if (values_[i] > values_[best]) best = i;
  }
  return static_cast<ElementId>(best);
}

int64_t Instance::Rank(ElementId e) const {
  CROWDMAX_DCHECK(Contains(e));
  const double v = value(e);
  int64_t greater = 0;
  for (double other : values_) {
    if (other > v) ++greater;
  }
  return greater + 1;
}

int64_t Instance::CountWithin(double delta) const {
  return CountWithinOf(MaxElement(), delta);
}

int64_t Instance::CountWithinOf(ElementId e, double delta) const {
  CROWDMAX_DCHECK(Contains(e));
  const double ve = value(e);
  int64_t count = 0;
  for (double v : values_) {
    if (std::fabs(ve - v) <= delta) ++count;
  }
  return count;
}

double Instance::DeltaForU(int64_t u) const {
  CROWDMAX_CHECK(u >= 1 && u <= size());
  const double vmax = value(MaxElement());
  std::vector<double> distances;
  distances.reserve(values_.size());
  for (double v : values_) distances.push_back(std::fabs(vmax - v));
  // The u-th smallest distance (1-based); nth_element is O(n).
  std::nth_element(distances.begin(),
                   distances.begin() + static_cast<size_t>(u - 1),
                   distances.end());
  return distances[static_cast<size_t>(u - 1)];
}

std::vector<ElementId> Instance::AllElements() const {
  std::vector<ElementId> out(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    out[i] = static_cast<ElementId>(i);
  }
  return out;
}

}  // namespace crowdmax
