// The comparison-oracle boundary between algorithms and workers.
//
// Every worker interaction in crowdmax flows through Comparator::Compare,
// which returns the element the worker believes is larger and counts the
// comparison. Decorators add memoization (Appendix A, optimization 1) and
// adversarial behaviour; model-backed comparators live in worker_model.h.
//
// Thread-safety contract: a Comparator instance is NOT thread-safe — its
// comparison counter, any internal Rng, and any per-pair caches are plain
// (unsynchronized) state. The parallel tournament engine
// (core/round_engine.h) therefore never shares an instance across
// threads: it derives one independent child per concurrent unit of work via
// Fork(seed) — with the seed fixed *before* dispatch, never by thread
// schedule — and merges each child's paid-comparison count back into the
// parent with AddComparisons() at a single-threaded round barrier (a
// sharded counter, one shard per fork).

#ifndef CROWDMAX_CORE_COMPARATOR_H_
#define CROWDMAX_CORE_COMPARATOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "core/instance.h"

namespace crowdmax {

class CheckpointReader;
class CheckpointWriter;
class VoteBatchComparator;

/// One comparison task: ask a worker which of the two elements is larger.
/// The argument order is preserved all the way to the worker (adversarial
/// policies like kFirstLoses depend on it). Shared by the Comparator batch
/// interface, the round engine and the executor stack.
using ComparisonPair = std::pair<ElementId, ElementId>;

/// Pairwise comparison oracle. Compare(a, b) returns a or b — the element
/// the worker reports as having the larger value — and increments the
/// comparison counter. Implementations may be randomized (model-backed) or
/// adversarial; callers must not assume consistency across repeated queries
/// unless the concrete comparator documents it.
class Comparator {
 public:
  virtual ~Comparator() = default;

  /// Asks one worker to compare distinct elements `a` and `b`. Counts one
  /// comparison unless the concrete class documents otherwise (memoizing
  /// comparators count only cache misses).
  virtual ElementId Compare(ElementId a, ElementId b) {
    ++num_comparisons_;
    return DoCompare(a, b);
  }

  /// Total comparisons paid since construction or the last ResetCount().
  int64_t num_comparisons() const { return num_comparisons_; }

  void ResetCount() { num_comparisons_ = 0; }

  /// Derives an independent comparator answering under the same model:
  /// same instance and parameters, but a private RNG stream seeded from
  /// `seed`, a zeroed comparison counter, and no shared mutable state with
  /// this object. The parallel engine gives every concurrent group one
  /// fork, so answers depend only on (group contents, seed), never on the
  /// thread schedule. Per-pair sticky state (persistent-arbitrary ties,
  /// crowd bias) is scoped to the fork: it does not see, and is not copied
  /// back into, the parent.
  ///
  /// Returns nullptr when this comparator cannot be forked (the default);
  /// parallel entry points then report InvalidArgument.
  virtual std::unique_ptr<Comparator> Fork(uint64_t seed) const {
    (void)seed;
    return nullptr;
  }

  /// Folds `n` comparisons paid on forked children into this counter — the
  /// round-barrier merge of the parallel engine's sharded counts. Must be
  /// called from a single thread (the barrier).
  void AddComparisons(int64_t n) { num_comparisons_ += n; }

  /// The batch-at-once vote interface of this comparator, or nullptr when
  /// it only answers per call (the default). Dispatch layers (the round
  /// engine, the executor adapters, the crowd platform) probe this once
  /// and fall back to the per-call virtual path when absent; results are
  /// bit-identical either way (DESIGN.md §14).
  virtual VoteBatchComparator* AsVoteBatch() { return nullptr; }

  /// Serializes the comparator's full replay state — paid-comparison
  /// counter, RNG stream position, per-pair sticky tables — so a run
  /// restored from a checkpoint (core/checkpoint.h) answers bit-identically
  /// from that point on. The default returns kFailedPrecondition: a
  /// comparator that does not opt in cannot silently resume with a reset
  /// RNG and wrong answers. Each class serializes only its own state; the
  /// owner of a decorator stack walks it explicitly.
  virtual Status SaveState(CheckpointWriter* writer) const;
  virtual Status LoadState(CheckpointReader* reader);

 protected:
  Comparator() = default;
  void CountComparison() { ++num_comparisons_; }

  /// Shared counter section used by every SaveState override.
  Status SaveCounterState(CheckpointWriter* writer) const;
  Status LoadCounterState(CheckpointReader* reader);

 private:
  virtual ElementId DoCompare(ElementId a, ElementId b) = 0;

  int64_t num_comparisons_ = 0;
};

/// Batch-at-once vote generation (DESIGN.md §14). A comparator exposes
/// this interface through Comparator::AsVoteBatch() when it can answer a
/// whole span of independent comparisons in one call, with struct-of-
/// arrays precompute instead of per-pair virtual dispatch.
///
/// Contract (the bit-identity rules every implementation must keep):
///  * GenerateVotes answers the longest valid prefix of `pairs`, writes
///    out[i] for each answered pair, charges exactly that many comparisons
///    to the owning Comparator's counter, and returns the count. A pair
///    with an id outside the instance (negative sentinels included) is
///    refused: it is not answered, not charged, and generation stops
///    there — the partial-batch accounting rule.
///  * The RNG draw sequence is exactly the per-call sequence: answering k
///    pairs via one GenerateVotes call leaves every RNG stream and sticky
///    table in the same state as k sequential Compare calls, so the two
///    paths are interchangeable mid-run (checkpoints round-trip across
///    them).
///  * out.size() >= pairs.size(); out beyond the returned count is
///    unspecified.
class VoteBatchComparator {
 public:
  virtual ~VoteBatchComparator() = default;

  virtual int64_t GenerateVotes(std::span<const ComparisonPair> pairs,
                                std::span<ElementId> out) = 0;

  /// Switches GenerateVotes' draw resolution between the bulk RNG kernels
  /// (integer-threshold compares over block-generated raw draws,
  /// DESIGN.md §16 — the default) and the scalar per-row float-compare
  /// loop they replaced. The two are bit-identical in votes, counters,
  /// RNG position and sticky state (pinned by rng_test and
  /// VoteBatchEquivalenceTest); the knob exists so tests and
  /// bench_hotpath can pin and measure the equivalence, not to change
  /// behaviour.
  void set_bulk_draws(bool on) { bulk_draws_ = on; }
  bool bulk_draws() const { return bulk_draws_; }

 protected:
  VoteBatchComparator() = default;

 private:
  bool bulk_draws_ = true;
};

/// Exact comparator: always returns the element with the larger true value
/// (lower id on exact ties). Useful as a ground-truth baseline and in
/// tests. Does not own the instance, which must outlive the comparator.
class OracleComparator : public Comparator {
 public:
  explicit OracleComparator(const Instance* instance);

  /// Deterministic and stateless (beyond the counter): the fork is simply a
  /// fresh oracle over the same instance; `seed` is unused.
  std::unique_ptr<Comparator> Fork(uint64_t seed) const override;

  /// Stateless beyond the counter, so the counter section is the state.
  Status SaveState(CheckpointWriter* writer) const override;
  Status LoadState(CheckpointReader* reader) override;

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;

  const Instance* instance_;
};

/// Memoizing decorator (Appendix A, optimization 1): the first query for an
/// unordered pair is forwarded to the inner comparator and cached; repeats
/// return the cached winner and are not counted as paid comparisons.
///
/// num_comparisons() on this object counts paid (forwarded) comparisons
/// only. Does not own the inner comparator.
///
/// NOT usable from the parallel path: the cache is a plain unordered_map
/// and the decorator aliases the inner comparator, so forking it is
/// meaningless (forks would either share the cache — a data race — or
/// silently stop memoizing). Fork() CHECK-fails with that message; the
/// parallel filter implements memoization itself, as a read-only cache
/// snapshot per round with new entries merged at the round barrier (see
/// core/round_engine.h).
class MemoizingComparator : public Comparator {
 public:
  explicit MemoizingComparator(Comparator* inner);

  ElementId Compare(ElementId a, ElementId b) override;

  /// CHECK-fails: MemoizingComparator is not thread-safe and must not
  /// enter the parallel engine.
  std::unique_ptr<Comparator> Fork(uint64_t seed) const override;

  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_size() const { return static_cast<int64_t>(cache_.size()); }

  /// Serializes the memo cache and hit counter, then the inner
  /// comparator's state (the decorator owns walking into what it wraps).
  Status SaveState(CheckpointWriter* writer) const override;
  Status LoadState(CheckpointReader* reader) override;

 private:
  // Final override point; unused because Compare is overridden, but must
  // exist to make the class concrete.
  ElementId DoCompare(ElementId a, ElementId b) override;

  Comparator* inner_;
  std::unordered_map<uint64_t, ElementId> cache_;
  int64_t cache_hits_ = 0;
};

/// How an adversarial comparator resolves comparisons of indistinguishable
/// elements (distance <= delta).
enum class AdversarialPolicy {
  /// The first argument loses. 2-MaxFind passes the pivot first in its
  /// elimination scan, so this policy realizes the paper's worst case for
  /// 2-MaxFind ("we make element x lose, such as to maximize the number of
  /// elements that go to the next round", Section 5).
  kFirstLoses,
  /// The element with the lower true value wins, i.e. every hard
  /// comparison is answered wrongly.
  kLowerValueWins,
  /// The element with the higher true value wins (truthful; hard
  /// comparisons cost but never mislead).
  kHigherValueWins,
};

/// Deterministic adversarial comparator under the threshold model: above
/// `delta` it answers truthfully; at or below `delta` it follows the
/// configured policy. Deterministic and repeat-consistent for policies that
/// are symmetric in the arguments; kFirstLoses depends on argument order by
/// design. Does not own the instance.
class AdversarialComparator : public Comparator {
 public:
  AdversarialComparator(const Instance* instance, double delta,
                        AdversarialPolicy policy);

  /// Deterministic and stateless (beyond the counter): the fork answers
  /// identically to the parent; `seed` is unused.
  std::unique_ptr<Comparator> Fork(uint64_t seed) const override;

  /// Stateless beyond the counter, so the counter section is the state.
  Status SaveState(CheckpointWriter* writer) const override;
  Status LoadState(CheckpointReader* reader) override;

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;

  const Instance* instance_;
  double delta_;
  AdversarialPolicy policy_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_COMPARATOR_H_
