// The comparison-oracle boundary between algorithms and workers.
//
// Every worker interaction in crowdmax flows through Comparator::Compare,
// which returns the element the worker believes is larger and counts the
// comparison. Decorators add memoization (Appendix A, optimization 1) and
// adversarial behaviour; model-backed comparators live in worker_model.h.

#ifndef CROWDMAX_CORE_COMPARATOR_H_
#define CROWDMAX_CORE_COMPARATOR_H_

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "core/instance.h"

namespace crowdmax {

/// Pairwise comparison oracle. Compare(a, b) returns a or b — the element
/// the worker reports as having the larger value — and increments the
/// comparison counter. Implementations may be randomized (model-backed) or
/// adversarial; callers must not assume consistency across repeated queries
/// unless the concrete comparator documents it.
class Comparator {
 public:
  virtual ~Comparator() = default;

  /// Asks one worker to compare distinct elements `a` and `b`. Counts one
  /// comparison unless the concrete class documents otherwise (memoizing
  /// comparators count only cache misses).
  virtual ElementId Compare(ElementId a, ElementId b) {
    ++num_comparisons_;
    return DoCompare(a, b);
  }

  /// Total comparisons paid since construction or the last ResetCount().
  int64_t num_comparisons() const { return num_comparisons_; }

  void ResetCount() { num_comparisons_ = 0; }

 protected:
  Comparator() = default;
  void CountComparison() { ++num_comparisons_; }

 private:
  virtual ElementId DoCompare(ElementId a, ElementId b) = 0;

  int64_t num_comparisons_ = 0;
};

/// Exact comparator: always returns the element with the larger true value
/// (lower id on exact ties). Useful as a ground-truth baseline and in
/// tests. Does not own the instance, which must outlive the comparator.
class OracleComparator : public Comparator {
 public:
  explicit OracleComparator(const Instance* instance);

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;

  const Instance* instance_;
};

/// Memoizing decorator (Appendix A, optimization 1): the first query for an
/// unordered pair is forwarded to the inner comparator and cached; repeats
/// return the cached winner and are not counted as paid comparisons.
///
/// num_comparisons() on this object counts paid (forwarded) comparisons
/// only. Does not own the inner comparator.
class MemoizingComparator : public Comparator {
 public:
  explicit MemoizingComparator(Comparator* inner);

  ElementId Compare(ElementId a, ElementId b) override;

  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_size() const { return static_cast<int64_t>(cache_.size()); }

 private:
  // Final override point; unused because Compare is overridden, but must
  // exist to make the class concrete.
  ElementId DoCompare(ElementId a, ElementId b) override;

  static uint64_t PairKey(ElementId a, ElementId b);

  Comparator* inner_;
  std::unordered_map<uint64_t, ElementId> cache_;
  int64_t cache_hits_ = 0;
};

/// How an adversarial comparator resolves comparisons of indistinguishable
/// elements (distance <= delta).
enum class AdversarialPolicy {
  /// The first argument loses. 2-MaxFind passes the pivot first in its
  /// elimination scan, so this policy realizes the paper's worst case for
  /// 2-MaxFind ("we make element x lose, such as to maximize the number of
  /// elements that go to the next round", Section 5).
  kFirstLoses,
  /// The element with the lower true value wins, i.e. every hard
  /// comparison is answered wrongly.
  kLowerValueWins,
  /// The element with the higher true value wins (truthful; hard
  /// comparisons cost but never mislead).
  kHigherValueWins,
};

/// Deterministic adversarial comparator under the threshold model: above
/// `delta` it answers truthfully; at or below `delta` it follows the
/// configured policy. Deterministic and repeat-consistent for policies that
/// are symmetric in the arguments; kFirstLoses depends on argument order by
/// design. Does not own the instance.
class AdversarialComparator : public Comparator {
 public:
  AdversarialComparator(const Instance* instance, double delta,
                        AdversarialPolicy policy);

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;

  const Instance* instance_;
  double delta_;
  AdversarialPolicy policy_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_COMPARATOR_H_
