// Asynchronous batch submission: the latency-hiding half of the pipelined
// RoundEngine drive.
//
// The paper measures time in logical steps (Section 3); in a deployment
// the dominant wall-clock term behind each step is the crowd round trip.
// Rounds are the fundamental latency unit for noisy comparisons
// (Braverman-Mao-Weinberg), so the way to buy wall-clock back without
// changing the algorithms is to keep several rounds' latencies in flight
// at once. AsyncBatchExecutor is the contract that makes that possible:
// SubmitBatchAsync returns a handle immediately, Ready polls it, Wait
// blocks until the round trip has elapsed and returns the answers.
//
// Determinism discipline (DESIGN.md §11): AsyncBatchAdapter is
// compute-at-submit. The wrapped BatchExecutor runs synchronously inside
// SubmitBatchAsync — every RNG draw, counter increment, transcript row and
// trace cell happens at submission, in submission order, byte-identical to
// the non-pipelined path — and only the *latency* (drained from the inner
// stack via BatchExecutor::TakeSimulatedLatencyMicros) is deferred, as a
// deadline the Wait call sleeps out. Results, traces and counters are
// therefore bit-identical to the synchronous drive; overlapping the
// deadlines is pure wall-clock win.
//
// Speculative batches (DESIGN.md §15) invert the split: a speculative
// submission records only the wall-clock *start* of the round trip and
// defers every deterministic effect to ConfirmBatch, which the engine
// calls once the prediction the round was predicated on has been
// validated — i.e. at the exact program point where the synchronous
// drive would have submitted the round. Confirmed batches are
// indistinguishable from firm ones except that their deadline is
// measured from the speculative start, which is where the wall-clock
// win comes from. Mispredicted batches are cancelled before any compute
// happens; CancelBatch also refunds already-computed (banked) answers
// when the engine abandons firm rounds mid-drive.

#ifndef CROWDMAX_CORE_ASYNC_EXECUTOR_H_
#define CROWDMAX_CORE_ASYNC_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/batched.h"

namespace crowdmax {

/// Asynchronous batch execution: submit now, collect the answers when the
/// simulated (or real) round trip completes. Handles are only valid with
/// the executor that issued them and are consumed by Wait.
class AsyncBatchExecutor {
 public:
  virtual ~AsyncBatchExecutor() = default;

  /// Starts one logical step's batch and returns a handle for it. All
  /// deterministic effects of the batch (answers, counters, transcript,
  /// trace cells) must be produced here, at submission time, so that
  /// interleaved submissions replay byte-identically regardless of when
  /// their results are collected. An empty batch is legal (it mirrors the
  /// synchronous path's no-op step).
  virtual Result<int64_t> SubmitBatchAsync(
      const std::vector<ComparisonPair>& tasks) = 0;

  /// True when Wait(handle) would return without blocking.
  virtual bool Ready(int64_t handle) const = 0;

  /// Blocks until the batch's round trip has elapsed, then returns its
  /// result (the inner executor's TryExecuteBatch result, success or
  /// failure). Consumes the handle; waiting twice is a kInvalidArgument.
  virtual Result<std::vector<BatchTaskResult>> Wait(int64_t handle) = 0;

  /// The synchronous executor whose accounting backs this one. The
  /// pipelined engine reads paid/step counters from it — submission-time
  /// accounting makes those counters exact at any pipeline depth.
  virtual BatchExecutor* inner() = 0;

  /// Opens a speculative batch: records the wall-clock start of a round
  /// trip but runs nothing. The batch has no tasks and no deterministic
  /// effects until ConfirmBatch supplies them; Wait on an unconfirmed
  /// handle is a kFailedPrecondition and Ready reports false. Implementing
  /// the speculative lifecycle is optional; the default refuses.
  virtual Result<int64_t> SubmitSpeculativeBatch() {
    return Status::FailedPrecondition(
        "this AsyncBatchExecutor does not support speculative batches");
  }

  /// Fills in a speculative batch: runs the tasks now (all deterministic
  /// effects land here, exactly where a firm submission would have put
  /// them) and sets the deadline relative to the *speculative* start, so
  /// the round trip overlaps whatever ran in between. Confirming twice,
  /// or confirming a firm handle, is a kFailedPrecondition.
  virtual Status ConfirmBatch(int64_t handle,
                              const std::vector<ComparisonPair>& tasks) {
    (void)handle;
    (void)tasks;
    return Status::FailedPrecondition(
        "this AsyncBatchExecutor does not support speculative batches");
  }

  /// Discards a pending batch without waiting for it. For unconfirmed
  /// speculative handles nothing was computed, so nothing is lost; for
  /// firm or confirmed handles the already-computed answers are banked
  /// work being thrown away — the count of answered tasks discarded is
  /// returned so callers can account the refund. The handle is consumed.
  virtual Result<int64_t> CancelBatch(int64_t handle) {
    (void)handle;
    return Status::FailedPrecondition(
        "this AsyncBatchExecutor does not support batch cancellation");
  }
};

/// Wraps any BatchExecutor (platform adapters, the resilient retry/quorum
/// stack, fault injectors) as an AsyncBatchExecutor, compute-at-submit:
/// SubmitBatchAsync runs inner->TryExecuteBatch immediately and banks the
/// latency the inner stack accumulated (TakeSimulatedLatencyMicros) as a
/// wall-clock deadline; Wait sleeps out whatever remains of it. With no
/// latency model on the inner stack every deadline is "now" and the
/// adapter degenerates to the synchronous path.
///
/// Not thread-safe: submissions and waits come from the engine's
/// coordinating thread (the §7 discipline). Does not own the executor.
/// Handles never waited on are dropped at destruction.
class AsyncBatchAdapter : public AsyncBatchExecutor {
 public:
  explicit AsyncBatchAdapter(BatchExecutor* executor);

  Result<int64_t> SubmitBatchAsync(
      const std::vector<ComparisonPair>& tasks) override;
  bool Ready(int64_t handle) const override;
  Result<std::vector<BatchTaskResult>> Wait(int64_t handle) override;
  BatchExecutor* inner() override { return executor_; }
  Result<int64_t> SubmitSpeculativeBatch() override;
  Status ConfirmBatch(int64_t handle,
                      const std::vector<ComparisonPair>& tasks) override;
  Result<int64_t> CancelBatch(int64_t handle) override;

  /// Batches submitted / collected so far (counts both success and
  /// failure results; diagnostics only).
  int64_t submitted() const { return next_handle_; }
  int64_t collected() const { return collected_; }
  /// Batches cancelled and answered tasks refunded by CancelBatch
  /// (diagnostics only).
  int64_t cancelled() const { return cancelled_; }
  int64_t refunded_answers() const { return refunded_answers_; }

 private:
  struct PendingBatch {
    Result<std::vector<BatchTaskResult>> result{std::vector<BatchTaskResult>()};
    std::chrono::steady_clock::time_point deadline;
    // Speculative lifecycle: `start` is stamped at SubmitSpeculativeBatch
    // and turned into a deadline by ConfirmBatch; firm submissions are
    // born confirmed.
    std::chrono::steady_clock::time_point start;
    bool confirmed = true;
  };

  BatchExecutor* const executor_;
  std::map<int64_t, PendingBatch> pending_;
  int64_t next_handle_ = 0;
  int64_t collected_ = 0;
  int64_t cancelled_ = 0;
  int64_t refunded_answers_ = 0;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_ASYNC_EXECUTOR_H_
