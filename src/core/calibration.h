// Worker-model calibration from gold data — the measurement methodology of
// Section 3.1 packaged as a reusable tool.
//
// The paper measured CrowdFlower workers by bucketing comparison pairs by
// difficulty (the difference of the hidden values) and plotting
// majority-vote accuracy against crowd size per bucket (Figure 2).
// CalibrateWorkers does the same against any Comparator over a gold
// instance and, from the resulting profile, detects whether the worker
// class exhibits a *threshold* (buckets whose accuracy cannot be voted
// above a plateau — the CARS regime) and estimates the threshold distance
// delta, which is exactly what ThresholdComparator and FilterOptions
// consume.

#ifndef CROWDMAX_CORE_CALIBRATION_H_
#define CROWDMAX_CORE_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/instance.h"

namespace crowdmax {

/// Accuracy profile of one distance bucket.
struct CalibrationBucket {
  /// Value-distance range covered: (min_distance, max_distance] (the first
  /// bucket includes its lower edge).
  double min_distance = 0.0;
  double max_distance = 0.0;
  /// Pairs sampled into this bucket (0 = no evidence; accuracies are 0).
  int64_t pairs = 0;
  /// Accuracy of a single vote, over all votes on this bucket's pairs.
  double single_vote_accuracy = 0.0;
  /// Accuracy of the majority over votes_per_pair votes, per pair.
  double majority_accuracy = 0.0;
};

/// Outcome of a calibration run.
struct CalibrationReport {
  std::vector<CalibrationBucket> buckets;
  /// True if some populated bucket's majority accuracy stays below the
  /// convergence level while a later bucket converges — the signature of
  /// the threshold model (majority voting hits a ceiling on hard pairs).
  bool threshold_detected = false;
  /// Upper distance edge of the last non-converging bucket; 0 when no
  /// threshold was detected. A safe delta to feed ThresholdComparator /
  /// DeltaForU-style parameter selection.
  double estimated_delta = 0.0;
};

/// Knobs for CalibrateWorkers.
struct CalibrationOptions {
  /// Distance buckets, spaced evenly over the observed distance range.
  int64_t num_buckets = 8;
  /// Votes requested per sampled pair (odd, so majorities are decided).
  int64_t votes_per_pair = 21;
  /// Pairs sampled per bucket (fewer if the gold set has fewer).
  int64_t pairs_per_bucket = 40;
  /// Majority accuracy at or above this counts as "converged".
  double convergence_accuracy = 0.85;
  /// Seed for pair sampling.
  uint64_t seed = 42;
};

/// Profiles `worker` against the gold instance (whose values are known)
/// and returns the bucketed accuracy report with threshold detection.
/// Requires a gold instance with at least 2 elements, odd votes_per_pair
/// >= 3, num_buckets >= 2 and pairs_per_bucket >= 1.
Result<CalibrationReport> CalibrateWorkers(const Instance& gold,
                                           Comparator* worker,
                                           const CalibrationOptions& options);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_CALIBRATION_H_
