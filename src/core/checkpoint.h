// Crash-safe checkpointing of in-flight runs.
//
// A checkpoint is a versioned, deterministic byte string capturing
// everything a RoundEngine drive needs to resume bit-identically after a
// process crash: the RoundSource's algorithm state, the engine's pair memo
// and SharedPairCache entries, budget/step counters, and every RNG stream
// position in the comparator/executor stack. Snapshots are taken only at
// clean round boundaries (no round in flight, no open round trace span),
// so a resumed run replays the remaining rounds exactly — same results,
// same counters, same trace cells — as an uninterrupted run.
//
// Determinism contract: serialization is canonical. Unordered containers
// are written in sorted key order and all integers are fixed-width
// little-endian, so the same logical state always yields the same bytes on
// every platform. That is what makes golden-capture tests of the format
// possible (tests/checkpoint_test.cc).
//
// Layering: this header depends only on common/status.h. The things being
// serialized (engines, sources, comparators, executors) each expose
// SaveState/LoadState taking a writer/reader, so the format lives in one
// place and the state lives with its owner.

#ifndef CROWDMAX_CORE_CHECKPOINT_H_
#define CROWDMAX_CORE_CHECKPOINT_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace crowdmax {

/// First 8 bytes of every checkpoint: magic then format version.
inline constexpr uint32_t kCheckpointMagic = 0x504B4D43;  // "CMKP" in LE
inline constexpr uint32_t kCheckpointVersion = 2;

/// Four-character section tag, e.g. CheckpointTag("ENG "). Tags delimit the
/// sections of a checkpoint so a reader that drifts out of sync fails with
/// a typed mismatch instead of silently misinterpreting bytes.
constexpr uint32_t CheckpointTag(const char (&s)[5]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

/// Appends typed fields to a checkpoint byte string. The constructor writes
/// the magic/version header; everything else is explicit little-endian.
class CheckpointWriter {
 public:
  CheckpointWriter();

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteBool(bool v);
  void WriteDouble(double v);
  void WriteString(const std::string& v);
  void WriteStatus(const Status& v);
  void WriteRngState(const std::array<uint64_t, 5>& state);
  void WriteTag(uint32_t tag) { WriteU32(tag); }

  /// Length-prefixed vector of integer ids (any integral element type;
  /// always serialized as I64 so the encoding is width-independent).
  template <typename T>
  void WriteIdVector(const std::vector<T>& ids) {
    WriteU64(static_cast<uint64_t>(ids.size()));
    for (T id : ids) WriteI64(static_cast<int64_t>(id));
  }

  /// Canonical serialization of an unordered map/set: entries sorted by
  /// key. `Container::value_type` must be a pair for maps; use the
  /// single-argument form for sets.
  template <typename Map>
  void WriteSortedMap(const Map& map) {
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    for (const auto& entry : map) keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    WriteU64(static_cast<uint64_t>(keys.size()));
    for (const auto& key : keys) {
      WriteI64(static_cast<int64_t>(key));
      WriteI64(static_cast<int64_t>(map.at(key)));
    }
  }

  template <typename Set>
  void WriteSortedSet(const Set& set) {
    std::vector<typename Set::key_type> keys(set.begin(), set.end());
    std::sort(keys.begin(), keys.end());
    WriteU64(static_cast<uint64_t>(keys.size()));
    for (const auto& key : keys) WriteI64(static_cast<int64_t>(key));
  }

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Reads typed fields back out of a checkpoint byte string. Errors are
/// sticky: the first truncation or tag mismatch latches into status() and
/// every later read returns a zero value, so call sites check once after a
/// batch of reads instead of after every field.
class CheckpointReader {
 public:
  /// Validates the magic/version header. A wrong magic or a version newer
  /// than kCheckpointVersion yields a typed kFailedPrecondition — the
  /// forward-compat contract tested by tests/checkpoint_test.cc.
  static Result<CheckpointReader> Open(std::string bytes);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  bool ReadBool();
  double ReadDouble();
  std::string ReadString();
  Status ReadStatus();
  std::array<uint64_t, 5> ReadRngState();
  std::vector<int64_t> ReadIdVector();

  /// Typed counterpart of the templated WriteIdVector.
  template <typename T>
  void ReadIdVector(std::vector<T>* out) {
    out->clear();
    const uint64_t n = ReadU64();
    out->reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n && status_.ok(); ++i) {
      out->push_back(static_cast<T>(ReadI64()));
    }
  }

  /// Consumes a tag and latches an error if it is not `tag`.
  void ExpectTag(uint32_t tag);

  template <typename Map>
  void ReadSortedMap(Map* map) {
    map->clear();
    const uint64_t n = ReadU64();
    for (uint64_t i = 0; i < n && status_.ok(); ++i) {
      const auto key =
          static_cast<typename Map::key_type>(ReadI64());
      const auto value =
          static_cast<typename Map::mapped_type>(ReadI64());
      map->emplace(key, value);
    }
  }

  template <typename Set>
  void ReadSortedSet(Set* set) {
    set->clear();
    const uint64_t n = ReadU64();
    for (uint64_t i = 0; i < n && status_.ok(); ++i) {
      set->insert(static_cast<typename Set::key_type>(ReadI64()));
    }
  }

  bool AtEnd() const { return pos_ >= bytes_.size(); }
  const Status& status() const { return status_; }

  /// status(), plus kFailedPrecondition when trailing bytes remain.
  Status Finish() const;

 private:
  explicit CheckpointReader(std::string bytes) : bytes_(std::move(bytes)) {}
  bool Take(size_t n, const unsigned char** out);

  std::string bytes_;
  size_t pos_ = 0;
  Status status_;
};

/// Lowercase-hex transport encoding, used for committed golden files and
/// for shipping checkpoints through line-oriented tooling.
std::string CheckpointToHex(const std::string& bytes);
Result<std::string> CheckpointFromHex(const std::string& hex);

/// Coordinates round-boundary snapshots, crash injection, and resume for
/// one engine drive. Attach with RoundEngine::set_checkpoint(); hooks run
/// on the drive's coordinating thread only.
///
/// Lifecycle of a chaos kill-and-resume cycle:
///   1. Arm: ArmCrashAtBoundary(k) — the k-th eligible round boundary
///      snapshots and then returns kAborted out of Drive().
///   2. Crash: the caller observes kAborted, tears the whole stack down.
///   3. Resume: build a *fresh* stack (engine, source, comparators) with
///      the same construction parameters, attach a controller carrying
///      ResumeFrom(checkpoint()), and call the same run wrapper again.
///      Drive() restores every layer before its first round; the rerun is
///      bit-identical to the uninterrupted run from that boundary on.
class CheckpointController {
 public:
  CheckpointController() = default;

  /// Snapshot cadence: capture state at every n-th eligible boundary
  /// (1 = every boundary). Snapshots are cheap but not free; bench_chaos
  /// measures the overhead per interval.
  void set_snapshot_every_rounds(int64_t n) {
    CROWDMAX_CHECK(n >= 1);
    snapshot_every_ = n;
  }

  /// Arms a deliberate kAborted at the `boundary`-th eligible round
  /// boundary (1-based). A snapshot is always taken there first, so the
  /// crash is recoverable by construction.
  void ArmCrashAtBoundary(int64_t boundary) {
    CROWDMAX_CHECK(boundary >= 1);
    crash_at_boundary_ = boundary;
  }

  /// Stages `bytes` to be restored into the next drive before its first
  /// round.
  void ResumeFrom(std::string bytes) {
    pending_restore_ = std::move(bytes);
    has_pending_restore_ = true;
  }

  bool has_checkpoint() const { return has_checkpoint_; }
  const std::string& checkpoint() const { return checkpoint_; }
  int64_t boundaries_seen() const { return boundaries_seen_; }
  int64_t snapshots_taken() const { return snapshots_taken_; }
  int64_t restores() const { return restores_; }
  bool crashed() const { return crashed_; }

  // --- engine-facing hooks ------------------------------------------------

  /// Non-null when a staged restore has not been consumed yet.
  const std::string* PendingRestore() const {
    return has_pending_restore_ ? &pending_restore_ : nullptr;
  }
  void MarkRestored() {
    has_pending_restore_ = false;
    ++restores_;
  }

  /// Called by Drive() at each eligible round boundary. `serialize`
  /// produces the snapshot lazily (only invoked when the cadence or an
  /// armed crash wants one). Returns OK to continue, or the armed
  /// kAborted.
  Status OnRoundBoundary(
      const std::function<Result<std::string>()>& serialize);

 private:
  int64_t snapshot_every_ = 1;
  int64_t crash_at_boundary_ = 0;  // 0 = never
  int64_t boundaries_seen_ = 0;
  int64_t snapshots_taken_ = 0;
  int64_t restores_ = 0;
  bool crashed_ = false;
  bool has_checkpoint_ = false;
  std::string checkpoint_;
  bool has_pending_restore_ = false;
  std::string pending_restore_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_CHECKPOINT_H_
