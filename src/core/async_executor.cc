#include "core/async_executor.h"

#include <thread>
#include <utility>

namespace crowdmax {

AsyncBatchAdapter::AsyncBatchAdapter(BatchExecutor* executor)
    : executor_(executor) {
  CROWDMAX_CHECK(executor_ != nullptr);
}

Result<int64_t> AsyncBatchAdapter::SubmitBatchAsync(
    const std::vector<ComparisonPair>& tasks) {
  // Compute-at-submit: the inner stack runs now, in submission order, so
  // all of its deterministic effects land exactly where the synchronous
  // path would put them. Only the round-trip time is deferred.
  PendingBatch batch;
  batch.result = executor_->TryExecuteBatch(tasks);
  batch.deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(executor_->TakeSimulatedLatencyMicros());
  const int64_t handle = next_handle_++;
  pending_.emplace(handle, std::move(batch));
  return handle;
}

bool AsyncBatchAdapter::Ready(int64_t handle) const {
  auto it = pending_.find(handle);
  if (it == pending_.end()) return false;
  if (!it->second.confirmed) return false;
  return std::chrono::steady_clock::now() >= it->second.deadline;
}

Result<int64_t> AsyncBatchAdapter::SubmitSpeculativeBatch() {
  // Compute-at-confirm: nothing runs yet. Only the wall-clock start of
  // the round trip is recorded; ConfirmBatch supplies the tasks (and all
  // their deterministic effects) once the engine has validated the
  // prediction this round was predicated on.
  PendingBatch batch;
  batch.confirmed = false;
  batch.start = std::chrono::steady_clock::now();
  const int64_t handle = next_handle_++;
  pending_.emplace(handle, std::move(batch));
  return handle;
}

Status AsyncBatchAdapter::ConfirmBatch(
    int64_t handle, const std::vector<ComparisonPair>& tasks) {
  auto it = pending_.find(handle);
  if (it == pending_.end()) {
    return Status::InvalidArgument(
        "unknown or already-consumed async batch handle");
  }
  if (it->second.confirmed) {
    return Status::FailedPrecondition(
        "ConfirmBatch on a batch that is already confirmed");
  }
  // The deterministic half runs now — at the exact program point where
  // the synchronous drive would have submitted this round — while the
  // deadline is measured from the speculative start, overlapping the
  // round trip with everything that ran in between.
  it->second.result = executor_->TryExecuteBatch(tasks);
  it->second.deadline =
      it->second.start +
      std::chrono::microseconds(executor_->TakeSimulatedLatencyMicros());
  it->second.confirmed = true;
  return Status::OK();
}

Result<int64_t> AsyncBatchAdapter::CancelBatch(int64_t handle) {
  auto it = pending_.find(handle);
  if (it == pending_.end()) {
    return Status::InvalidArgument(
        "unknown or already-consumed async batch handle");
  }
  int64_t refunded = 0;
  if (it->second.confirmed && it->second.result.ok()) {
    for (const BatchTaskResult& task : *it->second.result) {
      if (task.answered) ++refunded;
    }
  }
  pending_.erase(it);
  ++cancelled_;
  refunded_answers_ += refunded;
  return refunded;
}

Result<std::vector<BatchTaskResult>> AsyncBatchAdapter::Wait(int64_t handle) {
  auto it = pending_.find(handle);
  if (it == pending_.end()) {
    return Status::InvalidArgument(
        "unknown or already-consumed async batch handle");
  }
  if (!it->second.confirmed) {
    return Status::FailedPrecondition(
        "Wait on a speculative batch that was never confirmed");
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < it->second.deadline) {
    std::this_thread::sleep_until(it->second.deadline);
  }
  Result<std::vector<BatchTaskResult>> result = std::move(it->second.result);
  pending_.erase(it);
  ++collected_;
  return result;
}

}  // namespace crowdmax
