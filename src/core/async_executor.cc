#include "core/async_executor.h"

#include <thread>
#include <utility>

namespace crowdmax {

AsyncBatchAdapter::AsyncBatchAdapter(BatchExecutor* executor)
    : executor_(executor) {
  CROWDMAX_CHECK(executor_ != nullptr);
}

Result<int64_t> AsyncBatchAdapter::SubmitBatchAsync(
    const std::vector<ComparisonPair>& tasks) {
  // Compute-at-submit: the inner stack runs now, in submission order, so
  // all of its deterministic effects land exactly where the synchronous
  // path would put them. Only the round-trip time is deferred.
  PendingBatch batch;
  batch.result = executor_->TryExecuteBatch(tasks);
  batch.deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(executor_->TakeSimulatedLatencyMicros());
  const int64_t handle = next_handle_++;
  pending_.emplace(handle, std::move(batch));
  return handle;
}

bool AsyncBatchAdapter::Ready(int64_t handle) const {
  auto it = pending_.find(handle);
  if (it == pending_.end()) return false;
  return std::chrono::steady_clock::now() >= it->second.deadline;
}

Result<std::vector<BatchTaskResult>> AsyncBatchAdapter::Wait(int64_t handle) {
  auto it = pending_.find(handle);
  if (it == pending_.end()) {
    return Status::InvalidArgument(
        "unknown or already-consumed async batch handle");
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < it->second.deadline) {
    std::this_thread::sleep_until(it->second.deadline);
  }
  Result<std::vector<BatchTaskResult>> result = std::move(it->second.result);
  pending_.erase(it);
  ++collected_;
  return result;
}

}  // namespace crowdmax
