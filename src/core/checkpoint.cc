#include "core/checkpoint.h"

#include <cstring>

namespace crowdmax {

namespace {

void AppendLe(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

CheckpointWriter::CheckpointWriter() {
  WriteU32(kCheckpointMagic);
  WriteU32(kCheckpointVersion);
}

void CheckpointWriter::WriteU32(uint32_t v) { AppendLe(&bytes_, v, 4); }

void CheckpointWriter::WriteU64(uint64_t v) { AppendLe(&bytes_, v, 8); }

void CheckpointWriter::WriteI64(int64_t v) {
  WriteU64(static_cast<uint64_t>(v));
}

void CheckpointWriter::WriteBool(bool v) {
  bytes_.push_back(v ? '\x01' : '\x00');
}

void CheckpointWriter::WriteDouble(double v) {
  // Bit-exact round trip; doubles in checkpointed state are deterministic
  // products of the seeded RNGs, so the bit pattern is canonical.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void CheckpointWriter::WriteString(const std::string& v) {
  WriteU64(static_cast<uint64_t>(v.size()));
  bytes_.append(v);
}

void CheckpointWriter::WriteStatus(const Status& v) {
  WriteU32(static_cast<uint32_t>(v.code()));
  WriteString(v.message());
  WriteI64(v.retry_after_steps());
}

void CheckpointWriter::WriteRngState(const std::array<uint64_t, 5>& state) {
  for (uint64_t word : state) WriteU64(word);
}

Result<CheckpointReader> CheckpointReader::Open(std::string bytes) {
  CheckpointReader reader(std::move(bytes));
  const uint32_t magic = reader.ReadU32();
  const uint32_t version = reader.ReadU32();
  if (!reader.status().ok()) {
    return Status::FailedPrecondition(
        "checkpoint too short for its 8-byte header");
  }
  if (magic != kCheckpointMagic) {
    return Status::FailedPrecondition(
        "not a crowdmax checkpoint (bad magic)");
  }
  if (version > kCheckpointVersion) {
    return Status::FailedPrecondition(
        "checkpoint format version " + std::to_string(version) +
        " is newer than the supported version " +
        std::to_string(kCheckpointVersion) +
        "; upgrade before restoring this checkpoint");
  }
  return reader;
}

bool CheckpointReader::Take(size_t n, const unsigned char** out) {
  if (!status_.ok()) return false;
  if (pos_ + n > bytes_.size()) {
    status_ = Status::FailedPrecondition(
        "checkpoint truncated at byte " + std::to_string(pos_));
    return false;
  }
  *out = reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
  pos_ += n;
  return true;
}

uint32_t CheckpointReader::ReadU32() {
  const unsigned char* p = nullptr;
  if (!Take(4, &p)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t CheckpointReader::ReadU64() {
  const unsigned char* p = nullptr;
  if (!Take(8, &p)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

int64_t CheckpointReader::ReadI64() {
  return static_cast<int64_t>(ReadU64());
}

bool CheckpointReader::ReadBool() {
  const unsigned char* p = nullptr;
  if (!Take(1, &p)) return false;
  return *p != 0;
}

double CheckpointReader::ReadDouble() {
  const uint64_t bits = ReadU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::ReadString() {
  const uint64_t n = ReadU64();
  const unsigned char* p = nullptr;
  if (!Take(static_cast<size_t>(n), &p)) return std::string();
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<size_t>(n));
}

Status CheckpointReader::ReadStatus() {
  const uint32_t code = ReadU32();
  std::string message = ReadString();
  const int64_t retry_after = ReadI64();
  if (!status_.ok()) return Status::OK();
  if (code == 0) return Status::OK();
  // Reconstruct through the Internal factory then overwrite the code via
  // the public surface: Status has no (code, message) constructor exposed,
  // so map the code explicitly.
  Status out;
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      out = Status::InvalidArgument(std::move(message));
      break;
    case StatusCode::kFailedPrecondition:
      out = Status::FailedPrecondition(std::move(message));
      break;
    case StatusCode::kNotFound:
      out = Status::NotFound(std::move(message));
      break;
    case StatusCode::kOutOfRange:
      out = Status::OutOfRange(std::move(message));
      break;
    case StatusCode::kInternal:
      out = Status::Internal(std::move(message));
      break;
    case StatusCode::kUnavailable:
      out = Status::Unavailable(std::move(message));
      break;
    case StatusCode::kResourceExhausted:
      out = Status::ResourceExhausted(std::move(message));
      break;
    case StatusCode::kDeadlineExceeded:
      out = Status::DeadlineExceeded(std::move(message));
      break;
    case StatusCode::kAborted:
      out = Status::Aborted(std::move(message));
      break;
    default:
      status_ = Status::FailedPrecondition(
          "checkpoint carries unknown status code " + std::to_string(code));
      return Status::OK();
  }
  if (retry_after > 0) out.WithRetryAfter(retry_after);
  return out;
}

std::array<uint64_t, 5> CheckpointReader::ReadRngState() {
  std::array<uint64_t, 5> state = {};
  for (uint64_t& word : state) word = ReadU64();
  return state;
}

std::vector<int64_t> CheckpointReader::ReadIdVector() {
  const uint64_t n = ReadU64();
  std::vector<int64_t> ids;
  if (!status_.ok()) return ids;
  // A corrupt length must not drive a multi-gigabyte reserve; the per-read
  // bounds check below fails fast instead.
  for (uint64_t i = 0; i < n && status_.ok(); ++i) ids.push_back(ReadI64());
  return ids;
}

void CheckpointReader::ExpectTag(uint32_t tag) {
  const size_t at = pos_;
  const uint32_t got = ReadU32();
  if (status_.ok() && got != tag) {
    status_ = Status::FailedPrecondition(
        "checkpoint section tag mismatch at byte " + std::to_string(at));
  }
}

Status CheckpointReader::Finish() const {
  if (!status_.ok()) return status_;
  if (!AtEnd()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(bytes_.size() - pos_) +
        " trailing bytes");
  }
  return Status::OK();
}

std::string CheckpointToHex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

Result<std::string> CheckpointFromHex(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t') continue;
    const int v = nibble(c);
    if (v < 0) {
      return Status::InvalidArgument("invalid hex digit in checkpoint");
    }
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<char>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) {
    return Status::InvalidArgument("odd number of hex digits in checkpoint");
  }
  return out;
}

Status CheckpointController::OnRoundBoundary(
    const std::function<Result<std::string>()>& serialize) {
  ++boundaries_seen_;
  const bool crash_here =
      crash_at_boundary_ > 0 && boundaries_seen_ == crash_at_boundary_;
  const bool cadence_here = boundaries_seen_ % snapshot_every_ == 0;
  if (crash_here || cadence_here) {
    Result<std::string> snapshot = serialize();
    if (!snapshot.ok()) return snapshot.status();
    checkpoint_ = std::move(snapshot).value();
    has_checkpoint_ = true;
    ++snapshots_taken_;
  }
  if (crash_here) {
    crashed_ = true;
    return Status::Aborted(
        "chaos plan killed the run at round boundary " +
        std::to_string(boundaries_seen_) +
        "; resume from the last checkpoint");
  }
  return Status::OK();
}

}  // namespace crowdmax
