// All-play-all (round-robin) tournaments.
//
// Both phases of the paper's algorithm and all baselines are built out of
// all-play-all tournaments among small groups of elements (Lemmas 1-2).

#ifndef CROWDMAX_CORE_TOURNAMENT_H_
#define CROWDMAX_CORE_TOURNAMENT_H_

#include <cstdint>
#include <vector>

#include "core/comparator.h"
#include "core/instance.h"

namespace crowdmax {

/// Outcome of an all-play-all tournament among k elements.
struct TournamentResult {
  /// wins[i] = number of comparisons won by the i-th input element; always
  /// sums to k*(k-1)/2.
  std::vector<int64_t> wins;
  /// Comparisons issued to the comparator (k*(k-1)/2; fewer are *paid* if
  /// the comparator memoizes).
  int64_t comparisons = 0;
};

/// Plays every unordered pair of `elements` once through `comparator` and
/// tallies wins. Elements must be distinct ids; k == 0 and k == 1 are valid
/// (no comparisons). A thin adapter over RunTournamentOnEngine with a
/// serial, non-memoizing engine.
TournamentResult AllPlayAll(const std::vector<ElementId>& elements,
                            Comparator* comparator);

class RoundEngine;

/// Outcome of an engine-backed all-play-all tournament. On comparator
/// backends `unresolved` is 0 and `fault` is OK; on an executor backend a
/// pair the executor could not answer (after its own recovery) awards no
/// win to either side and is counted here instead.
struct TournamentEngineRun {
  TournamentResult tournament;
  int64_t unresolved = 0;
  Status fault = Status::OK();
};

/// Options for RunTournamentOnEngine beyond the single-round drive.
struct TournamentEngineOptions {
  /// When positive, split the all-play-all into engine rounds of at most
  /// this many pairs instead of one round carrying every pair. The chunks
  /// are pair-disjoint and order-independent, so a pipelined engine can
  /// keep several chunk round trips in flight (CanPipelineNextRound) and
  /// overlap their latencies; the tally is identical to the single-round
  /// drive. 0 keeps the historical single-round shape.
  int64_t chunk_pairs = 0;
};

/// Plays one all-play-all tournament over `elements` as a single engine
/// round on any backend (or chunked rounds, see TournamentEngineOptions).
/// `span_label` names the kBatch trace span (the serial paths' historical
/// "all_play_all").
Result<TournamentEngineRun> RunTournamentOnEngine(
    const std::vector<ElementId>& elements, RoundEngine* engine,
    const char* span_label = "all_play_all",
    const TournamentEngineOptions& options = {});

/// Index (into the tournament's input vector) of an element with the most
/// wins; the earliest such index on ties ("ties broken arbitrarily" in the
/// paper — this choice is deterministic for reproducibility). Requires a
/// non-empty tally.
size_t IndexOfMostWins(const TournamentResult& result);

/// Index of an element with the fewest wins (earliest on ties). Used by the
/// randomized phase-2 algorithm, which eliminates minimal elements.
size_t IndexOfFewestWins(const TournamentResult& result);

/// Orders `elements` by decreasing wins in `result` (stable: earlier input
/// position first on win ties) — the "ranking of the last round" used by
/// the paper's Tables 1-2. Requires result.wins.size() == elements.size().
std::vector<ElementId> OrderByWins(const std::vector<ElementId>& elements,
                                   const TournamentResult& result);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_TOURNAMENT_H_
