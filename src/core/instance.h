// Problem instances for max-finding.
//
// An Instance is a multiset L of n elements with a hidden real value v(e)
// per element (Section 3 of the paper). Algorithms identify elements by
// dense ElementId and never read values directly; only comparators (the
// simulated workers) and evaluation code do.

#ifndef CROWDMAX_CORE_INSTANCE_H_
#define CROWDMAX_CORE_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace crowdmax {

/// Dense element identifier: index into the instance's value array.
using ElementId = int32_t;

/// An immutable multiset of elements with hidden values.
class Instance {
 public:
  /// Takes ownership of `values`; element i has value values[i].
  explicit Instance(std::vector<double> values);

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  double value(ElementId e) const {
    CROWDMAX_DCHECK(Contains(e));
    return values_[static_cast<size_t>(e)];
  }

  /// The paper's distance d(a, b) = |v(a) - v(b)|.
  double Distance(ElementId a, ElementId b) const;

  /// Relative difference |v(a)-v(b)| / max(|v(a)|, |v(b)|); 0 when both
  /// values are 0. Used by the empirically calibrated worker models.
  double RelativeDifference(ElementId a, ElementId b) const;

  bool Contains(ElementId e) const {
    return e >= 0 && static_cast<size_t>(e) < values_.size();
  }

  /// An element M with maximum value (lowest id among ties). Instance must
  /// be non-empty.
  ElementId MaxElement() const;

  /// True 1-based rank of `e`: 1 + number of elements with strictly greater
  /// value. The maximum has rank 1.
  int64_t Rank(ElementId e) const;

  /// u(delta) = |{e : d(M, e) <= delta}|, counting M itself, as in the
  /// paper's definition of u_n(n). Instance must be non-empty.
  int64_t CountWithin(double delta) const;

  /// |{e' : d(e, e') <= delta}|, counting `e` itself — the blind-spot size
  /// around an arbitrary element (used by the top-k extension, where the
  /// relevant quantity is the largest blind spot over the top-k elements).
  int64_t CountWithinOf(ElementId e, double delta) const;

  /// The smallest distance delta such that CountWithin(delta) >= u; i.e.
  /// the distance from M to its u-th closest element (M itself is the
  /// 1st). Requires 1 <= u <= size(). Used by instance generators to derive
  /// a threshold realizing a target u_n.
  double DeltaForU(int64_t u) const;

  /// Element ids [0, size()) in order, as the default input list for
  /// algorithms.
  std::vector<ElementId> AllElements() const;

 private:
  std::vector<double> values_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_INSTANCE_H_
