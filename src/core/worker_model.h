// Model-backed worker comparators (Sections 3.2-3.3 of the paper).
//
// Three answer models are provided:
//  * ThresholdComparator — the paper's threshold model T(delta, epsilon):
//    above the distance threshold the worker errs with probability epsilon;
//    at or below it the answer is arbitrary, with several selectable
//    "arbitrary" behaviours.
//  * RelativeErrorComparator — the purely probabilistic model where the
//    per-comparison error probability decays with the relative difference
//    of the two values (the DOTS behaviour of Figure 2(a): majority voting
//    drives accuracy to 1).
//  * PersistentBiasComparator — an empirical crowd model reproducing the
//    CARS behaviour of Figure 2(b): below a relative-difference threshold,
//    the crowd holds a persistent per-pair preferred answer that is correct
//    only with probability q, so majority voting plateaus at q instead of
//    converging to 1. This is the phenomenon that motivates experts.
//
// Every model also implements VoteBatchComparator (comparator.h): the
// batch path precomputes per-pair error probabilities and outcome
// candidates into flat struct-of-arrays scratch, then resolves all draws
// in one pass — branch-free when every probability is strictly inside
// (0, 1) — with results, counters and RNG stream positions bit-identical
// to the per-call path (DESIGN.md §14). Sticky per-pair state lives in
// open-addressed PairTables (core/pair_table.h) instead of unordered_maps.

#ifndef CROWDMAX_CORE_WORKER_MODEL_H_
#define CROWDMAX_CORE_WORKER_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/pair_table.h"

namespace crowdmax {

/// Parameters of the threshold model T(delta, epsilon): workers cannot
/// discriminate elements closer than `delta`, and err with residual
/// probability `epsilon` otherwise. The probabilistic error model is the
/// special case delta == 0.
struct ThresholdModel {
  double delta = 0.0;
  double epsilon = 0.0;

  /// True iff delta >= 0 and epsilon in [0, 1).
  bool Valid() const { return delta >= 0.0 && epsilon >= 0.0 && epsilon < 1.0; }
};

/// How a ThresholdComparator resolves comparisons of indistinguishable
/// elements. The model only says the answer is "completely arbitrary"; these
/// are concrete arbitrary behaviours used in simulation and testing.
enum class TiePolicy {
  /// A fresh fair (or biased, see below_threshold_correct_prob) coin per
  /// query — the behaviour used in the paper's Section 5 simulations
  /// ("each element is chosen as the answer with probability 1/2").
  kFreshCoin,
  /// The answer for each unordered pair is drawn once (uniformly) at the
  /// first query and repeated thereafter — a worker class with a fixed but
  /// arbitrary opinion on hard pairs.
  kPersistentArbitrary,
};

/// Shared struct-of-arrays scratch of the batch vote path: one flat array
/// per precomputed quantity, reused across GenerateVotes calls so the hot
/// loop never allocates after warm-up. `prob[i]` is the Bernoulli
/// probability of the i-th draw, `on_true[i]`/`on_false[i]` the two
/// outcome candidates; models with sticky tables additionally flag the
/// rows that walk the table instead of drawing directly.
struct VoteBatchScratch {
  std::vector<double> prob;
  std::vector<ElementId> on_true;
  std::vector<ElementId> on_false;
  std::vector<uint8_t> sticky;
  /// Per-row 53-bit integer draw thresholds — the Rng::BernoulliThreshold
  /// mapping of prob[], clamped to the draw-free edges (0 = never true,
  /// 2^53 = always true; see DESIGN.md §16). The bulk draw path compares
  /// raw 64-bit outputs against these with no float conversion in the
  /// loop; models with constant per-class probabilities precompute the
  /// thresholds once at construction and only copy them here per row.
  std::vector<uint64_t> threshold;
  /// Draw outcomes of the bulk Bernoulli kernels (0/1 per row).
  std::vector<uint8_t> bits;
  /// Pre-generated raw draws (Rng::FillRaw) consumed in row order by the
  /// sticky-table walks; sized per call to the exact draw count so the
  /// RNG stream position matches the per-call path.
  std::vector<uint64_t> raw;
  /// Sticky-table slot pointers cached by pass 1 of the two-pass walks.
  /// Valid only within one GenerateVotes call: the table is Reserve()d
  /// up front so pass-1 inserts cannot rehash, which pins the pointers
  /// until pass 2 has written the drawn answers through them.
  std::vector<ElementId*> slots;

  void Resize(size_t n) {
    prob.resize(n);
    on_true.resize(n);
    on_false.resize(n);
    sticky.resize(n);
    threshold.resize(n);
    bits.resize(n);
  }
};

/// The paper's threshold-model worker over an Instance.
///
/// Above the threshold the higher-valued element wins with probability
/// 1 - epsilon. At or below the threshold the answer follows `tie_policy`;
/// with kFreshCoin the correct element is returned with probability
/// `below_threshold_correct_prob` (0.5 = the unbiased coin of the paper's
/// simulations). Not thread-safe. Does not own the instance.
class ThresholdComparator : public Comparator, public VoteBatchComparator {
 public:
  struct Options {
    ThresholdModel model;
    TiePolicy tie_policy = TiePolicy::kFreshCoin;
    /// P(correct answer) for an indistinguishable pair under kFreshCoin.
    double below_threshold_correct_prob = 0.5;
  };

  ThresholdComparator(const Instance* instance, const Options& options,
                      uint64_t seed);

  /// Convenience constructor for T(delta, epsilon) with a fair coin below
  /// the threshold.
  ThresholdComparator(const Instance* instance, ThresholdModel model,
                      uint64_t seed);

  /// Independent worker of the same class: same instance and options, a
  /// fresh Rng seeded from `seed`, and (under kPersistentArbitrary) an
  /// empty sticky-answer table — per-pair opinions are per-fork, like two
  /// different workers of the same class holding independent arbitrary
  /// views.
  std::unique_ptr<Comparator> Fork(uint64_t seed) const override;

  VoteBatchComparator* AsVoteBatch() override { return this; }
  int64_t GenerateVotes(std::span<const ComparisonPair> pairs,
                        std::span<ElementId> out) override;

  /// Checkpoints the counter, the RNG stream position, and the sticky
  /// below-threshold answer table, so a restored run replays the exact
  /// same coin flips and per-pair opinions (core/checkpoint.h).
  Status SaveState(CheckpointWriter* writer) const override;
  Status LoadState(CheckpointReader* reader) override;

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;
  // The pre-bulk scalar batch path (bulk_draws() == false), kept as the
  // measurable baseline and bit-identity twin of the bulk kernels.
  void GenerateVotesScalar(std::span<const ComparisonPair> pairs, size_t n,
                           std::span<ElementId> out);

  const Instance* instance_;
  Options options_;
  Rng rng_;
  // Clamped integer thresholds of the two per-class probabilities,
  // computed once at construction for the bulk draw path.
  uint64_t epsilon_threshold_ = 0;
  uint64_t coin_threshold_ = 0;
  // Persistent below-threshold answers for kPersistentArbitrary.
  PairTable sticky_answers_;
  VoteBatchScratch scratch_;
};

/// Probabilistic-model worker whose error probability decays exponentially
/// with the relative difference of the values:
///   P(error) = min(max_error, base_error * exp(-decay * rel_diff)).
/// Answers are independent across queries, so majority voting converges to
/// the correct answer for any pair with rel_diff > 0 — the DOTS regime.
/// Does not own the instance.
class RelativeErrorComparator : public Comparator, public VoteBatchComparator {
 public:
  struct Options {
    /// Error probability at relative difference 0 (capped by max_error).
    double base_error = 0.5;
    /// Exponential decay rate in the relative difference.
    double decay = 4.5;
    /// Upper cap applied after the decay formula; 0.5 means a pair with
    /// rel_diff == 0 is a pure coin flip.
    double max_error = 0.5;
  };

  RelativeErrorComparator(const Instance* instance, const Options& options,
                          uint64_t seed);

  /// Independent worker of the same class with a fresh Rng from `seed`.
  std::unique_ptr<Comparator> Fork(uint64_t seed) const override;

  VoteBatchComparator* AsVoteBatch() override { return this; }
  int64_t GenerateVotes(std::span<const ComparisonPair> pairs,
                        std::span<ElementId> out) override;

  /// Checkpoints the counter and the RNG stream position.
  Status SaveState(CheckpointWriter* writer) const override;
  Status LoadState(CheckpointReader* reader) override;

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;
  // The pre-bulk scalar batch path (bulk_draws() == false), kept as the
  // measurable baseline and bit-identity twin of the bulk kernels.
  void GenerateVotesScalar(std::span<const ComparisonPair> pairs, size_t n,
                           std::span<ElementId> out);

  const Instance* instance_;
  Options options_;
  Rng rng_;
  VoteBatchScratch scratch_;
};

/// Generalized threshold worker (Appendix A: "even if the difference ...
/// is above delta_n a worker may err, albeit with a smaller probability
/// ... the error probability depends on the distance"): below the
/// threshold the answer is an (optionally biased) coin, and above it the
/// error probability decays exponentially with the distance beyond the
/// threshold:
///   P(error | d > delta) = epsilon_at_threshold * exp(-decay * (d - delta)).
/// With decay == 0 this reduces to the plain threshold model
/// T(delta, epsilon_at_threshold). Does not own the instance.
class DistanceDecayComparator : public Comparator, public VoteBatchComparator {
 public:
  struct Options {
    /// Indistinguishability threshold on the absolute value distance.
    double delta = 0.0;
    /// P(correct) for pairs at or below the threshold (0.5 = fair coin).
    double below_threshold_correct_prob = 0.5;
    /// Error probability just above the threshold; must be in [0, 0.5).
    double epsilon_at_threshold = 0.3;
    /// Exponential decay rate of the error in (d - delta); >= 0.
    double decay = 5.0;
  };

  DistanceDecayComparator(const Instance* instance, const Options& options,
                          uint64_t seed);

  /// Independent worker of the same class with a fresh Rng from `seed`.
  std::unique_ptr<Comparator> Fork(uint64_t seed) const override;

  VoteBatchComparator* AsVoteBatch() override { return this; }
  int64_t GenerateVotes(std::span<const ComparisonPair> pairs,
                        std::span<ElementId> out) override;

  /// Checkpoints the counter and the RNG stream position.
  Status SaveState(CheckpointWriter* writer) const override;
  Status LoadState(CheckpointReader* reader) override;

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;
  // The pre-bulk scalar batch path (bulk_draws() == false), kept as the
  // measurable baseline and bit-identity twin of the bulk kernels.
  void GenerateVotesScalar(std::span<const ComparisonPair> pairs, size_t n,
                           std::span<ElementId> out);

  const Instance* instance_;
  Options options_;
  Rng rng_;
  VoteBatchScratch scratch_;
};

/// Crowd model with persistent per-pair bias below a relative-difference
/// threshold (the CARS regime of Figure 2(b)).
///
/// For a pair with relative difference at or below `relative_threshold`,
/// the crowd has a persistent preferred winner, drawn once per pair and
/// correct with probability `preferred_correct_prob(rel_diff)` (a step
/// function over buckets). Each individual query returns the preferred
/// winner with probability 1 - individual_noise. Majority voting therefore
/// converges to the *preferred* winner, and accuracy plateaus at the
/// probability the preference is correct — no number of naive workers can
/// exceed it. Above the threshold behaviour is probabilistic with error
/// `above_threshold_error`, so majority voting converges to correct.
/// Does not own the instance.
class PersistentBiasComparator : public Comparator, public VoteBatchComparator {
 public:
  struct Bucket {
    /// Pairs with rel_diff <= max_relative_difference fall in this bucket
    /// (buckets are checked in order).
    double max_relative_difference;
    /// Probability the crowd's persistent preferred winner is the correct
    /// element for pairs in this bucket.
    double preferred_correct_prob;
  };

  struct Options {
    /// Buckets in increasing max_relative_difference order; pairs above the
    /// last bucket's bound are "easy" (no persistent bias).
    std::vector<Bucket> buckets;
    /// Per-query probability an individual worker deviates from the
    /// crowd-preferred answer on a hard pair.
    double individual_noise = 0.28;
    /// Per-query error probability on easy pairs (decays is not modeled;
    /// a constant suffices for the regime above the plateau).
    double above_threshold_error = 0.15;
  };

  PersistentBiasComparator(const Instance* instance, const Options& options,
                           uint64_t seed);

  /// Independent crowd of the same composition with a fresh Rng from
  /// `seed`. The per-pair preferred-winner table starts empty in the fork:
  /// persistence holds within a fork's lifetime (one parallel group), not
  /// across forks — use the serial path when cross-round persistence of
  /// the crowd bias is the behaviour under study.
  std::unique_ptr<Comparator> Fork(uint64_t seed) const override;

  VoteBatchComparator* AsVoteBatch() override { return this; }
  int64_t GenerateVotes(std::span<const ComparisonPair> pairs,
                        std::span<ElementId> out) override;

  /// Checkpoints the counter, the RNG stream position, and the persistent
  /// per-pair preferred-winner table — the crowd keeps its opinions across
  /// a crash.
  Status SaveState(CheckpointWriter* writer) const override;
  Status LoadState(CheckpointReader* reader) override;

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;
  // The pre-bulk scalar batch path (bulk_draws() == false), kept as the
  // measurable baseline and bit-identity twin of the bulk kernels.
  void GenerateVotesScalar(std::span<const ComparisonPair> pairs, size_t n,
                           std::span<ElementId> out);

  const Instance* instance_;
  Options options_;
  Rng rng_;
  // Clamped integer thresholds of the per-class probabilities (one per
  // bucket, plus noise and easy-pair error), computed once at
  // construction for the bulk draw path.
  std::vector<uint64_t> bucket_thresholds_;
  uint64_t noise_threshold_ = 0;
  uint64_t error_threshold_ = 0;
  // Per-pair persistent preferred winner for pairs inside a bucket.
  PairTable preferred_;
  VoteBatchScratch scratch_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_WORKER_MODEL_H_
