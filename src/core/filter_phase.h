// Phase 1 of the expert-aware max-finding algorithm (Algorithm 2).
//
// Using only naive workers, repeatedly partition the surviving elements
// into groups of g = 4*u_n, play an all-play-all tournament inside each
// group, and keep only elements that win at least |G| - u_n comparisons,
// until fewer than 2*u_n elements survive. Guarantees (Lemma 3): the true
// maximum survives, at most 2*u_n - 1 candidates are returned, and at most
// 4*n*u_n comparisons are issued. This matches the Omega(n*u_n) lower bound
// of Corollary 1 up to constants.
//
// The two Appendix-A optimizations are implemented and individually
// toggleable for ablation studies:
//  1. memoize      — never pay twice for the same unordered pair;
//  2. global_loss_counter — track, across rounds, how many distinct
//     opponents each element has lost to, and evict every element whose
//     count exceeds u_n (it would lose more than u_n comparisons in a full
//     all-play-all, so by Lemma 1 it cannot be the maximum).

#ifndef CROWDMAX_CORE_FILTER_PHASE_H_
#define CROWDMAX_CORE_FILTER_PHASE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/instance.h"

namespace crowdmax {

class SharedPairCache;

/// Tuning knobs for Algorithm 2.
struct FilterOptions {
  /// The paper's u_n(n): assumed number of elements naive-indistinguishable
  /// from the maximum (including the maximum itself). Overestimating only
  /// raises cost, never hurts correctness; underestimating may drop the
  /// maximum. Must be >= 1.
  int64_t u_n = 1;

  /// Group size is group_size_multiplier * u_n; the paper uses 4. Must be
  /// >= 2 (groups must be larger than u_n for the win threshold to bite).
  int64_t group_size_multiplier = 4;

  /// Appendix A optimization 1: cache comparison outcomes per unordered
  /// pair so re-grouped pairs are answered for free.
  bool memoize = false;

  /// Appendix A optimization 2: evict elements that have lost to more than
  /// u_n distinct opponents across all rounds.
  bool global_loss_counter = false;

  /// Hard cap on paid comparisons (0 = unlimited). Checked at round
  /// boundaries: when a completed round would leave fewer comparisons than
  /// the next round needs, filtering stops early and returns the current
  /// survivors with FilterResult::stopped_by_budget set. Correctness of
  /// "M survives" is preserved (stopping early only keeps more elements);
  /// the |S| <= 2*u_n - 1 size bound is not.
  int64_t max_comparisons = 0;

  /// Parallel tournament execution (core/round_engine.h). 0 (the default)
  /// keeps the original serial path, answering every comparison through
  /// the caller's comparator in program order. Any value >= 1 routes each
  /// round's disjoint group tournaments through a work-stealing pool of
  /// that many threads, answering each group through an independent
  /// Comparator::Fork child seeded in group-index order from
  /// `parallel_seed`. Results are observationally deterministic: winner,
  /// survivor sets and paid-comparison counts are bit-identical for every
  /// threads >= 1 (but differ from the serial path's RNG draw order).
  /// Requires a forkable comparator; returns InvalidArgument otherwise.
  int64_t threads = 0;

  /// Seed of the per-group RNG fork chain used when threads >= 1.
  uint64_t parallel_seed = 0x9E3779B97F4A7C15ULL;

  /// Emit each round's disjoint group tournaments as separate engine
  /// rounds (one group per round) instead of one combined round. The
  /// groups of a filter round share no element, so their pair sets are
  /// disjoint and each group's content is known the moment the round is
  /// partitioned — exactly the RoundSource::CanPipelineNextRound legality
  /// conditions — which lets the pipelined engine (RoundEngine::
  /// CreatePipelined) overlap the groups' crowd round trips. Survivor
  /// selection still happens once per logical round, after every group's
  /// outcome arrived, so winners, survivor sets and paid counts are
  /// identical to the combined emission; only step accounting changes
  /// granularity (one logical step per group rather than per round).
  bool pipeline_groups = false;

  /// Cross-phase pair-evidence sharing (core/round_engine.h): when set,
  /// the filter's engine memoizes into this cache's `cache_class` map
  /// instead of a private one, so every pair the filter resolves is free
  /// for any later engine driven on the same (cache, class) — and pairs an
  /// earlier run of the same class resolved are free here. Implies
  /// `memoize`. Not owned; must outlive the call.
  SharedPairCache* shared_cache = nullptr;
  /// Worker-class id of this filter's evidence in `shared_cache`. Dedup is
  /// within-class only: naive evidence must never substitute for expert
  /// evidence, so use distinct ids per worker class (0 = naive by
  /// convention) and share an id only between phases buying from the very
  /// same crowd.
  int64_t cache_class = 0;
};

/// Outcome of the filtering phase.
struct FilterResult {
  /// Surviving candidate set; contains the maximum under the model
  /// assumptions and has size <= 2*u_n - 1 (unless the input was already
  /// smaller than 2*u_n, in which case it is the input).
  std::vector<ElementId> candidates;

  /// Comparisons actually paid for (cache misses when memoizing).
  int64_t paid_comparisons = 0;

  /// Comparisons issued by the algorithm, including memoization hits.
  int64_t issued_comparisons = 0;

  /// Number of while-loop iterations executed.
  int64_t rounds = 0;

  /// |L_i| at the start of each round (diagnostics; empty if the loop never
  /// ran).
  std::vector<int64_t> round_sizes;

  /// Elements evicted by the cross-round loss counter (0 unless the
  /// optimization is enabled).
  int64_t evicted_by_loss_counter = 0;

  /// True if some round produced an empty survivor set — possible only
  /// when u_n is underestimated (Section 5.2 notes the algorithm "could
  /// return an empty set" in that regime). The filter then stops and
  /// returns the pre-round survivors instead, so `candidates` is never
  /// empty for non-empty input, though it may exceed 2*u_n - 1.
  bool hit_empty_round = false;

  /// True if filtering stopped early because the next round would exceed
  /// FilterOptions::max_comparisons.
  bool stopped_by_budget = false;
};

/// Runs Algorithm 2 on `items` with `naive` workers. `items` must be
/// distinct element ids; returns InvalidArgument for bad options or
/// duplicate ids.
Result<FilterResult> FilterCandidates(const std::vector<ElementId>& items,
                                      const FilterOptions& options,
                                      Comparator* naive);

class RoundEngine;

/// Outcome of driving Algorithm 2 on a caller-provided engine. On a
/// comparator-backed engine `partial` is always false (missing evidence is
/// impossible there); on an executor-backed engine a round that makes no
/// progress because faults withheld evidence sets `partial` and carries the
/// triggering fault in `fault_status`, with the conservative survivor set
/// (no eviction without evidence) in `filter.candidates`.
struct FilterEngineRun {
  FilterResult filter;
  bool partial = false;
  Status fault_status = Status::OK();
};

/// Runs Algorithm 2 as a RoundSource on `engine` (any backend). The engine
/// owns memoization, FilterOptions::max_comparisons enforcement at round
/// boundaries, dispatch, and trace-cell recording; this function only emits
/// rounds and consumes outcomes. `FilterCandidates` and
/// `BatchedFilterCandidates` are thin wrappers over it.
Result<FilterEngineRun> RunFilterOnEngine(const std::vector<ElementId>& items,
                                          const FilterOptions& options,
                                          RoundEngine* engine);

/// The theoretical worst-case number of naive comparisons of Algorithm 2
/// for input size n (Lemma 3): 4*n*u_n. Benches report this alongside
/// measured counts, as the paper does for its worst-case curves.
int64_t FilterComparisonUpperBound(int64_t n, int64_t u_n);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_FILTER_PHASE_H_
