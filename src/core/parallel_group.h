// The parallel tournament engine: concurrent execution of one round's
// independent group tournaments.
//
// Phase 1 (Algorithm 2), the Marcus recursive tournament and the Venetis
// ladder all have the same round structure: partition the survivors into
// disjoint groups, play an independent contest inside each group, merge the
// results, repeat. The contests of one round share no elements, so they are
// embarrassingly parallel (cf. Braverman et al., "Parallel Algorithms for
// Select and Partition with Noisy Comparisons": round-structured noisy
// comparison algorithms parallelize across rounds).
//
// Determinism discipline — results must be bit-identical for every thread
// count >= 1:
//  1. RNG: each group receives an independent child seed drawn with
//     Rng::Fork() from a round seeder *before* dispatch, in group-index
//     order. The group's comparisons are answered by a Comparator::Fork()
//     child constructed from that seed, so outcomes are a function of
//     (group contents, seed), never of the thread schedule.
//  2. Counters: forks count their own paid comparisons (one counter shard
//     per group); the runner sums the shards into the parent comparator at
//     the single-threaded round barrier.
//  3. Memoization: the runner, not a MemoizingComparator, implements the
//     pair cache for the parallel path. During a round the cache is a
//     read-only snapshot (groups are disjoint, so a pair can only have
//     been answered in an earlier round); each group's fresh outcomes are
//     merged into the cache at the barrier, again in group-index order.

#ifndef CROWDMAX_CORE_PARALLEL_GROUP_H_
#define CROWDMAX_CORE_PARALLEL_GROUP_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/comparator.h"
#include "core/instance.h"

namespace crowdmax {

/// Cache of per-unordered-pair winners used by the parallel filter's
/// memoization (Appendix A, optimization 1).
using PairWinnerCache = std::unordered_map<uint64_t, ElementId>;

/// Canonical key of the unordered pair {a, b} in a PairWinnerCache.
uint64_t PairCacheKey(ElementId a, ElementId b);

/// Result of one group's all-play-all tournament, played on a fork.
struct GroupOutcome {
  /// wins[i] = comparisons won by the group's i-th element.
  std::vector<int64_t> wins;
  /// Winner of each unordered pair (i, j), i < j, in the nested-loop order
  /// of AllPlayAll — enough for the caller to feed loss counters and other
  /// cross-round state at the barrier.
  std::vector<ElementId> pair_winners;
  /// Comparisons issued inside the group, including cache hits.
  int64_t issued = 0;
  /// Comparisons paid by the group's fork (cache misses only when a cache
  /// is in use). Already merged into the parent comparator by the runner.
  int64_t paid = 0;
};

/// Runs rounds of disjoint group tournaments on a work-stealing pool.
///
/// Not thread-safe itself: one runner per algorithm invocation, driven from
/// that invocation's thread. The parent comparator must outlive the runner
/// and must not be used concurrently with RunRound.
class ParallelGroupRunner {
 public:
  /// `parent` answers comparisons (through forks) and accumulates merged
  /// counts; `threads >= 1` sizes the pool. Returns InvalidArgument if the
  /// parent does not support Fork(). (A unique_ptr because the runner owns
  /// a ThreadPool and is therefore immovable.)
  static Result<std::unique_ptr<ParallelGroupRunner>> Create(
      Comparator* parent, int64_t threads);

  /// Plays every group's all-play-all tournament, concurrently across
  /// groups, and blocks until the round barrier. Child seeds are drawn
  /// from `seeder` in group order before dispatch. When `cache` is
  /// non-null, previously-cached pairs are answered from it for free and
  /// this round's fresh outcomes are merged back into it at the barrier.
  /// Paid counts are merged into the parent comparator before returning.
  std::vector<GroupOutcome> RunRound(
      const std::vector<std::vector<ElementId>>& groups, Rng* seeder,
      PairWinnerCache* cache);

  int64_t threads() const { return pool_.num_threads(); }

 private:
  ParallelGroupRunner(Comparator* parent, int64_t threads)
      : parent_(parent), pool_(threads) {}

  Comparator* parent_;
  ThreadPool pool_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_PARALLEL_GROUP_H_
