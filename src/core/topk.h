// Approximate top-k selection with experts — an extension beyond the
// paper's max-finding (the paper's related work discusses top-k under
// distance-based error models, Davidson et al. ICDT'13; here we lift the
// two-phase expert-aware approach to k > 1).
//
// The key observation generalizes Lemma 1: in an all-play-all tournament
// under T(delta_n, 0), the true j-th ranked element (j <= k) loses only to
// elements truly above it (at most j - 1 <= k - 1) and to elements
// naive-indistinguishable from *it* (at most U - 1, where U is the largest
// blind-spot size |{e : d(e, m_j) <= delta_n}| over the top-k elements —
// note this can be up to twice the paper's u_n, which only measures the
// one-sided neighbourhood of the maximum). Running Algorithm 2 with the
// inflated parameter u' = U + k - 1 therefore keeps the entire true top-k
// in the candidate set (at most 2*u' - 1 elements, at most 4*n*u' naive
// comparisons). Experts then play one all-play-all tournament over the
// candidates and the k biggest winners, in win order, are returned.
//
// Guarantee (proved by the counting argument in tests/topk_test.cc): with
// expert residual error 0, the value at every returned position j is at
// least the true j-th value minus 2*delta_e.

#ifndef CROWDMAX_CORE_TOPK_H_
#define CROWDMAX_CORE_TOPK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/cost.h"
#include "core/filter_phase.h"
#include "core/instance.h"

namespace crowdmax {

/// Configuration of the two-phase top-k algorithm.
struct TopKOptions {
  /// Number of top elements to return. Must be >= 1 and <= |items|.
  int64_t k = 1;
  /// Phase-1 options. `filter.u_n` must bound the blind-spot size around
  /// *every* top-k element (U above), not just the maximum; the algorithm
  /// internally inflates it to U + k - 1. Overestimating costs, never
  /// breaks correctness.
  FilterOptions filter;

  /// Cross-phase pair-evidence sharing (core/round_engine.h). When set, it
  /// overrides `filter`'s cache fields: phase 1 memoizes naive evidence
  /// into `shared_cache[naive_cache_class]`, and the expert tournament runs
  /// memoized against `shared_cache[expert_cache_class]` — so a query
  /// session that already ran FindMaxWithExperts on the same cache answers
  /// every expert pair that run resolved for free (the top-k tournament
  /// replays much of phase 2's evidence). Dedup is within-class only. Not
  /// owned; must outlive the call.
  SharedPairCache* shared_cache = nullptr;
  int64_t naive_cache_class = 0;
  int64_t expert_cache_class = 1;

  /// When positive, the expert tournament is split into engine rounds of
  /// at most this many pairs (TournamentEngineOptions::chunk_pairs) so a
  /// pipelined engine overlaps the chunk round trips. 0 keeps the
  /// single-round tournament; tallies are identical either way.
  int64_t expert_chunk_pairs = 0;
};

/// Outcome of the top-k algorithm.
struct TopKResult {
  /// k elements in decreasing estimated-rank order (top[0] ~ maximum).
  std::vector<ElementId> top;
  /// Phase-1 survivors (contains the entire true top-k under the model
  /// assumptions).
  std::vector<ElementId> candidates;
  /// Paid comparisons per worker class.
  ComparisonStats paid;
  int64_t filter_rounds = 0;

  double CostUnder(const CostModel& model) const {
    return model.Cost(paid.naive, paid.expert);
  }
};

/// Runs the two-phase top-k algorithm: Algorithm 2 with u' = u_n + k - 1
/// using `naive`, then one expert all-play-all over the candidates, ordered
/// by wins. Returns InvalidArgument for bad options or duplicate ids.
Result<TopKResult> FindTopKWithExperts(const std::vector<ElementId>& items,
                                       Comparator* naive, Comparator* expert,
                                       const TopKOptions& options);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_TOPK_H_
