#include "core/resilient.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "core/checkpoint.h"
#include "core/trace.h"

namespace crowdmax {

namespace {

constexpr uint32_t kReportTag = CheckpointTag("RPRT");
constexpr uint32_t kInjectTag = CheckpointTag("INJC");

void CountRecovery(const char* name, int64_t n) {
  if (!MetricsEnabled() || n == 0) return;
  MetricsRegistry::Default()->GetCounter(name)->Add(n);
}

}  // namespace

ElementId SmallerIdFallback(ElementId a, ElementId b) {
  return a < b ? a : b;
}

ResilientBatchExecutor::ResilientBatchExecutor(BatchExecutor* inner,
                                               const ResilientOptions& options)
    : inner_(inner), options_(options) {}

Result<std::unique_ptr<ResilientBatchExecutor>> ResilientBatchExecutor::Create(
    BatchExecutor* inner, const ResilientOptions& options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("inner executor must not be null");
  }
  if (options.max_retries < 0) {
    return Status::InvalidArgument("max_retries must be >= 0");
  }
  if (options.min_votes < 1) {
    return Status::InvalidArgument("min_votes must be >= 1");
  }
  if (options.backoff_base_steps < 0) {
    return Status::InvalidArgument("backoff_base_steps must be >= 0");
  }
  return std::unique_ptr<ResilientBatchExecutor>(
      new ResilientBatchExecutor(inner, options));
}

void ResilientBatchExecutor::ResetCounters() {
  BatchExecutor::ResetCounters();
  report_ = FaultReport();
}

int64_t ResilientBatchExecutor::TakeSimulatedLatencyMicros() {
  return inner_->TakeSimulatedLatencyMicros();
}

Status ResilientBatchExecutor::DoSaveState(CheckpointWriter* writer) const {
  writer->WriteTag(kReportTag);
  writer->WriteI64(report_.batches);
  writer->WriteI64(report_.attempts);
  writer->WriteI64(report_.retried_tasks);
  writer->WriteI64(report_.votes_lost);
  writer->WriteI64(report_.relaxed_accepts);
  writer->WriteI64(report_.degraded_tasks);
  writer->WriteI64(report_.transient_errors);
  writer->WriteI64(report_.steps_added);
  writer->WriteI64(report_.backoff_steps);
  writer->WriteBool(report_.exhausted);
  writer->WriteStatus(report_.last_error);
  return inner_->SaveState(writer);
}

Status ResilientBatchExecutor::DoLoadState(CheckpointReader* reader) {
  reader->ExpectTag(kReportTag);
  report_.batches = reader->ReadI64();
  report_.attempts = reader->ReadI64();
  report_.retried_tasks = reader->ReadI64();
  report_.votes_lost = reader->ReadI64();
  report_.relaxed_accepts = reader->ReadI64();
  report_.degraded_tasks = reader->ReadI64();
  report_.transient_errors = reader->ReadI64();
  report_.steps_added = reader->ReadI64();
  report_.backoff_steps = reader->ReadI64();
  report_.exhausted = reader->ReadBool();
  report_.last_error = reader->ReadStatus();
  if (!reader->status().ok()) return reader->status();
  return inner_->LoadState(reader);
}

std::vector<ElementId> ResilientBatchExecutor::DoExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  Result<std::vector<BatchTaskResult>> results = DoTryExecuteBatch(tasks);
  // The infallible contract cannot report failure; configure a fallback
  // policy (ResilientOptions::fallback) or use TryExecuteBatch.
  CROWDMAX_CHECK(results.ok());
  std::vector<ElementId> winners;
  winners.reserve(results->size());
  for (const BatchTaskResult& result : *results) {
    CROWDMAX_CHECK(result.answered);
    winners.push_back(result.winner);
  }
  return winners;
}

Result<std::vector<BatchTaskResult>> ResilientBatchExecutor::DoTryExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  ++report_.batches;
  const int64_t inner_steps_before = inner_->logical_steps();
  int64_t backoff_this_batch = 0;
  // True crowd spend of this batch: every task of every successful inner
  // attempt (the inner wrapper charges nothing on a failed submission).
  int64_t dispatched_this_batch = 0;

  // Settles this batch's accounting on every exit path. The base wrapper
  // charges tasks.size() comparisons and one step only when we return OK,
  // so the correction differs between success and failure: on success the
  // nominal charge is replaced by the true spend (the delta may be
  // negative, e.g. when every attempt failed and a fallback resolved the
  // batch for free); on failure the true spend is charged outright, and
  // every inner step is extra latency since no caller step was accounted.
  auto settle_accounting = [&](bool success) {
    report_.backoff_steps += backoff_this_batch;
    const int64_t inner_steps = inner_->logical_steps() - inner_steps_before;
    report_.steps_added +=
        std::max<int64_t>(0, inner_steps - (success ? 1 : 0)) +
        backoff_this_batch;
    ChargeExtraComparisons(
        dispatched_this_batch -
        (success ? static_cast<int64_t>(tasks.size()) : 0));
  };

  std::vector<BatchTaskResult> resolved(tasks.size());
  std::vector<size_t> pending(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) pending[i] = i;

  for (int64_t attempt = 0;; ++attempt) {
    std::vector<ComparisonPair> subset;
    subset.reserve(pending.size());
    for (size_t idx : pending) subset.push_back(tasks[idx]);

    ++report_.attempts;
    TraceSpanScope attempt_span(TraceSpanKind::kAttempt,
                                std::to_string(attempt));
    Result<std::vector<BatchTaskResult>> outcome =
        inner_->TryExecuteBatch(subset);
    if (!outcome.ok()) {
      if (outcome.status().code() != StatusCode::kUnavailable) {
        // Non-transient failure (contract violation, bad arguments):
        // retrying cannot help, surface it unchanged.
        settle_accounting(/*success=*/false);
        return outcome.status();
      }
      ++report_.transient_errors;
      CountRecovery("crowdmax.resilient.transient_errors", 1);
      report_.last_error = outcome.status();
    } else {
      dispatched_this_batch += static_cast<int64_t>(subset.size());
      CROWDMAX_CHECK(outcome->size() == pending.size());
      std::vector<size_t> still_pending;
      for (size_t i = 0; i < pending.size(); ++i) {
        const size_t idx = pending[i];
        BatchTaskResult result = (*outcome)[i];
        if (result.answered) {
          resolved[idx] = result;
          continue;
        }
        if (result.winner != -1 && result.counted_votes >= options_.min_votes) {
          // Relaxed quorum: a provisional majority backed by enough votes
          // is accepted rather than re-bought.
          result.answered = true;
          resolved[idx] = result;
          ++report_.relaxed_accepts;
          continue;
        }
        ++report_.votes_lost;
        still_pending.push_back(idx);
      }
      pending = std::move(still_pending);
      if (pending.empty()) break;
    }

    if (attempt >= options_.max_retries) break;
    report_.retried_tasks += static_cast<int64_t>(pending.size());
    CountRecovery("crowdmax.resilient.retried_tasks",
                  static_cast<int64_t>(pending.size()));
    if (AlgoTrace* trace = CurrentTrace(); trace != nullptr) {
      trace->RecordRetries(static_cast<int64_t>(pending.size()));
    }
    if (options_.backoff_base_steps > 0) {
      backoff_this_batch +=
          options_.backoff_base_steps << std::min<int64_t>(attempt, 30);
    }
  }

  if (!pending.empty()) {
    if (options_.fallback) {
      for (size_t idx : pending) {
        BatchTaskResult degraded;
        degraded.winner =
            options_.fallback(tasks[idx].first, tasks[idx].second);
        CROWDMAX_CHECK(degraded.winner == tasks[idx].first ||
                       degraded.winner == tasks[idx].second);
        degraded.answered = true;
        degraded.counted_votes = 0;
        resolved[idx] = degraded;
        ++report_.degraded_tasks;
      }
      CountRecovery("crowdmax.resilient.degraded_tasks",
                    static_cast<int64_t>(pending.size()));
      if (AlgoTrace* trace = CurrentTrace(); trace != nullptr) {
        trace->RecordDegraded(static_cast<int64_t>(pending.size()));
      }
    } else {
      report_.exhausted = true;
      report_.last_error = Status::Unavailable(
          "retry budget exhausted: " + std::to_string(pending.size()) +
          " of " + std::to_string(tasks.size()) +
          " tasks unresolved after " +
          std::to_string(options_.max_retries + 1) + " attempts");
      settle_accounting(/*success=*/false);
      return report_.last_error;
    }
  }
  settle_accounting(/*success=*/true);
  return resolved;
}

FaultInjectingBatchExecutor::FaultInjectingBatchExecutor(
    BatchExecutor* inner, const InjectedFaultOptions& options)
    : inner_(inner), options_(options), rng_(options.seed) {}

int64_t FaultInjectingBatchExecutor::TakeSimulatedLatencyMicros() {
  return inner_->TakeSimulatedLatencyMicros();
}

Status FaultInjectingBatchExecutor::DoSaveState(
    CheckpointWriter* writer) const {
  writer->WriteTag(kInjectTag);
  writer->WriteRngState(rng_.state());
  writer->WriteI64(injected_drops_);
  writer->WriteI64(injected_no_quorums_);
  writer->WriteI64(injected_unavailable_);
  return inner_->SaveState(writer);
}

Status FaultInjectingBatchExecutor::DoLoadState(CheckpointReader* reader) {
  reader->ExpectTag(kInjectTag);
  rng_.set_state(reader->ReadRngState());
  injected_drops_ = reader->ReadI64();
  injected_no_quorums_ = reader->ReadI64();
  injected_unavailable_ = reader->ReadI64();
  if (!reader->status().ok()) return reader->status();
  return inner_->LoadState(reader);
}

Result<std::unique_ptr<FaultInjectingBatchExecutor>>
FaultInjectingBatchExecutor::Create(BatchExecutor* inner,
                                    const InjectedFaultOptions& options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("inner executor must not be null");
  }
  for (double p : {options.drop_probability, options.no_quorum_probability,
                   options.unavailable_probability}) {
    if (p < 0.0 || p >= 1.0) {
      return Status::InvalidArgument(
          "fault probabilities must be in [0, 1)");
    }
  }
  if (options.votes_per_task < 1) {
    return Status::InvalidArgument("votes_per_task must be >= 1");
  }
  if (options.partial_votes < 1) {
    return Status::InvalidArgument("partial_votes must be >= 1");
  }
  return std::unique_ptr<FaultInjectingBatchExecutor>(
      new FaultInjectingBatchExecutor(inner, options));
}

std::vector<ElementId> FaultInjectingBatchExecutor::DoExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  return inner_->ExecuteBatch(tasks);
}

Result<std::vector<BatchTaskResult>>
FaultInjectingBatchExecutor::DoTryExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  if (options_.unavailable_probability > 0.0 &&
      rng_.NextBernoulli(options_.unavailable_probability)) {
    ++injected_unavailable_;
    CountRecovery("crowdmax.fault.injected_unavailable", 1);
    return Status::Unavailable("injected transient executor fault");
  }

  // Draw each task's fate serially, in submission order, before touching
  // the inner executor: the pattern is schedule-independent.
  enum class Fate { kHealthy, kDropped, kNoQuorum };
  std::vector<Fate> fates(tasks.size(), Fate::kHealthy);
  std::vector<ComparisonPair> forwarded;
  forwarded.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (options_.drop_probability > 0.0 &&
        rng_.NextBernoulli(options_.drop_probability)) {
      fates[i] = Fate::kDropped;
      ++injected_drops_;
      continue;  // The work never happened; nothing to forward.
    }
    if (options_.no_quorum_probability > 0.0 &&
        rng_.NextBernoulli(options_.no_quorum_probability)) {
      fates[i] = Fate::kNoQuorum;
      ++injected_no_quorums_;
    }
    forwarded.push_back(tasks[i]);
  }

  Result<std::vector<BatchTaskResult>> inner_results =
      inner_->TryExecuteBatch(forwarded);
  if (!inner_results.ok()) return inner_results.status();
  CROWDMAX_CHECK(inner_results->size() == forwarded.size());

  int64_t dropped_here = 0;
  int64_t demoted_here = 0;
  std::vector<BatchTaskResult> results(tasks.size());
  size_t next_forwarded = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (fates[i] == Fate::kDropped) {
      results[i] = BatchTaskResult{-1, false, 0};
      ++dropped_here;
      continue;
    }
    BatchTaskResult result = (*inner_results)[next_forwarded++];
    if (fates[i] == Fate::kNoQuorum) {
      // Demote the inner answer to a no-quorum partial.
      if (result.answered) ++demoted_here;
      result.answered = false;
      result.counted_votes = options_.partial_votes;
    } else if (result.answered && result.counted_votes < 0) {
      result.counted_votes = options_.votes_per_task;
    }
    results[i] = result;
  }
  CountRecovery("crowdmax.fault.injected_drops", dropped_here);
  CountRecovery("crowdmax.fault.injected_no_quorums", demoted_here);
  if (AlgoTrace* trace = CurrentTrace(); trace != nullptr) {
    // This decorator is the dispatch point for the faults it models: a
    // dropped task never reached the inner executor (record it dispatched
    // and dropped here), and a demoted task was recorded answered by the
    // inner sink although the modeled crowd returned no quorum (reclassify
    // it, keeping the cell's dispatched = answered + no_quorum + dropped
    // identity intact).
    if (dropped_here > 0) {
      trace->RecordDispatched(dropped_here);
      trace->RecordOutcomes(0, 0, dropped_here);
    }
    if (demoted_here > 0) trace->RecordOutcomes(-demoted_here, demoted_here, 0);
  }
  return results;
}

}  // namespace crowdmax
