#include "core/pair_table.h"

#include <algorithm>

#include "core/checkpoint.h"

namespace crowdmax {

void PairTable::Rehash(size_t capacity) {
  CROWDMAX_CHECK((capacity & (capacity - 1)) == 0);
  std::vector<Slot> old = std::move(slots_);
  const uint32_t old_epoch = epoch_;
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  shift_ = 64;
  for (size_t c = capacity; c > 1; c >>= 1) --shift_;
  epoch_ = 1;
  size_ = 0;
  for (const Slot& slot : old) {
    if (slot.epoch == old_epoch) Insert(slot.key, slot.value);
  }
}

std::vector<std::pair<uint64_t, ElementId>> PairTable::SortedEntries() const {
  std::vector<std::pair<uint64_t, ElementId>> entries;
  entries.reserve(static_cast<size_t>(size_));
  ForEach([&entries](uint64_t key, ElementId value) {
    entries.emplace_back(key, value);
  });
  std::sort(entries.begin(), entries.end());
  return entries;
}

void SavePairTable(CheckpointWriter* writer, const PairTable& table) {
  const auto entries = table.SortedEntries();
  writer->WriteU64(static_cast<uint64_t>(entries.size()));
  for (const auto& [key, value] : entries) {
    writer->WriteI64(static_cast<int64_t>(key));
    writer->WriteI64(static_cast<int64_t>(value));
  }
}

void LoadPairTable(CheckpointReader* reader, PairTable* table) {
  table->Clear();
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->status().ok(); ++i) {
    const uint64_t key = static_cast<uint64_t>(reader->ReadI64());
    const ElementId value = static_cast<ElementId>(reader->ReadI64());
    table->Set(key, value);
  }
}

}  // namespace crowdmax
