// Open-addressed flat hash table over packed pair keys.
//
// The engine memo cache and the worker models' sticky-answer tables used
// to be std::unordered_map<uint64_t, ElementId>: one heap node per pair,
// pointer-chasing on every probe, and a full rehash-scale teardown on
// clear(). PairTable replaces them with a single flat slot array (linear
// probing, power-of-two capacity) and an epoch-based Clear() that
// invalidates every slot in O(1) without releasing the arena — the
// "reset per round instead of rehashed" layout of DESIGN.md §14.
//
// Values are ElementIds and may be any int32, including the engine's -1
// in-flight reservation and kUnresolvedWinner (-2) parking sentinels;
// presence is tracked by the slot epoch, never by a value sentinel.
//
// Thread-safety: mutation is single-threaded like the maps it replaces.
// Concurrent Find() calls with no writer are safe (the parallel engine's
// read-only snapshot discipline during a round).
//
// Serialization: SavePairTable/LoadPairTable emit exactly the bytes of
// CheckpointWriter::WriteSortedMap over an equivalent unordered_map, so
// swapping the container changed no checkpoint golden.

#ifndef CROWDMAX_CORE_PAIR_TABLE_H_
#define CROWDMAX_CORE_PAIR_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/instance.h"

namespace crowdmax {

class CheckpointReader;
class CheckpointWriter;

class PairTable {
 public:
  PairTable() { Rehash(kInitialCapacity); }

  /// Pointer to the value stored under `key`, or nullptr when absent. The
  /// pointer is invalidated by any mutation.
  ElementId* Find(uint64_t key) {
    Slot* slot = Probe(key);
    return slot->epoch == epoch_ ? &slot->value : nullptr;
  }
  const ElementId* Find(uint64_t key) const {
    const Slot* slot = const_cast<PairTable*>(this)->Probe(key);
    return slot->epoch == epoch_ ? &slot->value : nullptr;
  }

  /// Inserts `value` under `key` when absent; returns the slot value
  /// pointer either way and reports which through `inserted` (may be
  /// null). The unordered_map::emplace shape the engine's barrier merge
  /// needs.
  ElementId* Insert(uint64_t key, ElementId value, bool* inserted = nullptr) {
    MaybeGrow();
    Slot* slot = Probe(key);
    const bool fresh = slot->epoch != epoch_;
    if (fresh) {
      slot->key = key;
      slot->value = value;
      slot->epoch = epoch_;
      ++size_;
    }
    if (inserted != nullptr) *inserted = fresh;
    return &slot->value;
  }

  /// Insert-or-assign.
  void Set(uint64_t key, ElementId value) {
    bool inserted = false;
    ElementId* slot = Insert(key, value, &inserted);
    if (!inserted) *slot = value;
  }

  /// Grows the arena now so the next `additional` Insert calls cannot
  /// rehash — which pins slot pointers for that window. The worker
  /// models' two-pass batch walks rely on this: pass 1 reserves, inserts
  /// and caches slot pointers; pass 2 writes through them draw by draw.
  void Reserve(int64_t additional) {
    CROWDMAX_DCHECK(additional >= 0);
    const size_t needed = static_cast<size_t>(size_ + additional);
    size_t capacity = slots_.size();
    // Same 7/8 load ceiling as MaybeGrow.
    while (needed > capacity - (capacity >> 3)) capacity *= 2;
    if (capacity != slots_.size()) Rehash(capacity);
  }

  /// Drops every entry in O(1) by bumping the epoch; capacity (the arena)
  /// is retained, so per-round resets never rehash.
  void Clear() {
    ++epoch_;
    size_ = 0;
    if (epoch_ == 0) {
      // Epoch counter wrapped (2^32 clears): hard-reset the slots so stale
      // epochs cannot read as live.
      for (Slot& slot : slots_) slot.epoch = kDeadEpoch;
      epoch_ = 1;
    }
  }

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Entries sorted by key — the canonical order for serialization and
  /// deterministic iteration.
  std::vector<std::pair<uint64_t, ElementId>> SortedEntries() const;

  /// Visits every live entry in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.epoch == epoch_) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;
    ElementId value = 0;
    uint32_t epoch = kDeadEpoch;
  };

  static constexpr size_t kInitialCapacity = 64;  // Power of two.
  static constexpr uint32_t kDeadEpoch = 0;

  // First slot whose key matches, else the first free slot of the probe
  // chain. Fibonacci-hashes the key so packed pairs (dense ids in both
  // words) spread over the power-of-two table.
  Slot* Probe(uint64_t key) {
    const uint64_t hash = key * 0x9e3779b97f4a7c15ULL;
    size_t index = static_cast<size_t>(hash >> shift_);
    while (true) {
      Slot& slot = slots_[index];
      if (slot.epoch != epoch_ || slot.key == key) return &slot;
      index = (index + 1) & mask_;
    }
  }

  void MaybeGrow() {
    // Grow at 7/8 load so probe chains stay short.
    if (static_cast<size_t>(size_) + 1 >
        slots_.size() - (slots_.size() >> 3)) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t capacity);

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  int shift_ = 0;  // 64 - log2(capacity), for the multiplicative hash.
  uint32_t epoch_ = 1;
  int64_t size_ = 0;
};

/// Canonical checkpoint serialization: byte-identical to
/// CheckpointWriter::WriteSortedMap over an unordered_map with the same
/// entries (U64 count, then sorted (I64 key, I64 value) pairs).
void SavePairTable(CheckpointWriter* writer, const PairTable& table);
void LoadPairTable(CheckpointReader* reader, PairTable* table);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_PAIR_TABLE_H_
