#include "core/batched.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/metrics.h"
#include "core/trace.h"

namespace crowdmax {

namespace {

// Batch-level metrics, recorded in the public wrappers (never per
// comparison, so the comparator hot path stays untouched).
void RecordBatchMetrics(int64_t batch_size) {
  if (!MetricsEnabled()) return;
  static Counter* batches =
      MetricsRegistry::Default()->GetCounter("crowdmax.executor.batches");
  static Counter* dispatched = MetricsRegistry::Default()->GetCounter(
      "crowdmax.executor.comparisons_dispatched");
  static Histogram* sizes = MetricsRegistry::Default()->GetHistogram(
      "crowdmax.executor.batch_size", ExponentialBounds(16));
  batches->Increment();
  dispatched->Add(batch_size);
  sizes->Observe(batch_size);
}

// Trace-cell recording for a sink executor's successful fallible batch:
// every task was dispatched; classify each outcome.
void RecordTraceOutcomes(AlgoTrace* trace,
                         const std::vector<BatchTaskResult>& results) {
  int64_t answered = 0;
  int64_t no_quorum = 0;
  int64_t dropped = 0;
  for (const BatchTaskResult& result : results) {
    if (result.answered) {
      ++answered;
    } else if (result.winner == -1) {
      ++dropped;
    } else {
      ++no_quorum;
    }
  }
  trace->RecordDispatched(static_cast<int64_t>(results.size()));
  trace->RecordOutcomes(answered, no_quorum, dropped);
}

// Cache sentinel for a pair whose last execution attempt came back
// unanswered (fault): treated as a miss (re-issued) by the next resolve
// and as "no evidence" by the round tallies.
constexpr ElementId kUnresolved = -2;

uint64_t PairKey(ElementId a, ElementId b) {
  const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
  const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Status ValidateDistinct(const std::vector<ElementId>& items) {
  std::unordered_set<ElementId> seen;
  for (ElementId e : items) {
    if (!seen.insert(e).second) {
      return Status::InvalidArgument("duplicate element id in input");
    }
  }
  return Status::OK();
}

// Resolves a set of pair queries through the cache, batching only the
// misses (including pairs left unresolved by an earlier faulty attempt);
// fills `cache` with the new answers, kUnresolved for tasks the executor
// could not answer. Returns the number of queries answered from cache, or
// the executor's typed error when the whole submission failed — the cache
// then marks this round's misses kUnresolved so callers tally them as
// missing evidence.
Result<int64_t> ResolveThroughCache(
    const std::vector<ComparisonPair>& queries, BatchExecutor* executor,
    std::unordered_map<uint64_t, ElementId>* cache) {
  std::vector<ComparisonPair> misses;
  misses.reserve(queries.size());
  for (const ComparisonPair& q : queries) {
    auto it = cache->find(PairKey(q.first, q.second));
    if (it == cache->end() || it->second == kUnresolved) {
      misses.push_back(q);
      // Reserve the slot so duplicate queries within one batch are sent
      // once; overwritten with the real winner below.
      (*cache)[PairKey(q.first, q.second)] = -1;
    }
  }
  if (AlgoTrace* trace = CurrentTrace();
      trace != nullptr && queries.size() != misses.size()) {
    trace->RecordCacheHits(static_cast<int64_t>(queries.size() - misses.size()));
  }
  Result<std::vector<BatchTaskResult>> results =
      executor->TryExecuteBatch(misses);
  if (!results.ok()) {
    for (const ComparisonPair& m : misses) {
      (*cache)[PairKey(m.first, m.second)] = kUnresolved;
    }
    return results.status();
  }
  CROWDMAX_CHECK(results->size() == misses.size());
  for (size_t i = 0; i < misses.size(); ++i) {
    const BatchTaskResult& result = (*results)[i];
    const uint64_t key = PairKey(misses[i].first, misses[i].second);
    if (!result.answered) {
      (*cache)[key] = kUnresolved;
      continue;
    }
    CROWDMAX_DCHECK(result.winner == misses[i].first ||
                    result.winner == misses[i].second);
    (*cache)[key] = result.winner;
  }
  return static_cast<int64_t>(queries.size() - misses.size());
}

// Cached outcome of a query passed to ResolveThroughCache this round: the
// winner, or kUnresolved when the last attempt could not answer the pair.
ElementId CachedOutcome(const std::unordered_map<uint64_t, ElementId>& cache,
                        ElementId a, ElementId b) {
  auto it = cache.find(PairKey(a, b));
  CROWDMAX_CHECK(it != cache.end() && it->second != -1);
  return it->second;
}

}  // namespace

std::string FaultReport::ToString() const {
  std::string out = "batches=" + std::to_string(batches) +
                    " attempts=" + std::to_string(attempts) +
                    " retried_tasks=" + std::to_string(retried_tasks) +
                    " votes_lost=" + std::to_string(votes_lost) +
                    " relaxed_accepts=" + std::to_string(relaxed_accepts) +
                    " degraded_tasks=" + std::to_string(degraded_tasks) +
                    " transient_errors=" + std::to_string(transient_errors) +
                    " steps_added=" + std::to_string(steps_added) +
                    " backoff_steps=" + std::to_string(backoff_steps);
  if (exhausted) out += " exhausted(" + last_error.ToString() + ")";
  return out;
}

std::vector<ElementId> BatchExecutor::ExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  if (tasks.empty()) return {};
  ++logical_steps_;
  comparisons_ += static_cast<int64_t>(tasks.size());
  RecordBatchMetrics(static_cast<int64_t>(tasks.size()));
  std::vector<ElementId> winners = DoExecuteBatch(tasks);
  if (AlgoTrace* trace = CurrentTrace();
      trace != nullptr && RecordsTraceCells()) {
    // The infallible path answers everything: one cell record per batch,
    // on the submitting thread (the coordinating thread at a barrier).
    trace->RecordDispatched(static_cast<int64_t>(tasks.size()));
    trace->RecordOutcomes(static_cast<int64_t>(tasks.size()), 0, 0);
  }
  return winners;
}

Result<std::vector<BatchTaskResult>> BatchExecutor::TryExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  if (tasks.empty()) return std::vector<BatchTaskResult>{};
  Result<std::vector<BatchTaskResult>> results = DoTryExecuteBatch(tasks);
  if (results.ok()) {
    // A failed submission consumed no crowd work: charge the step and the
    // comparisons only on success, so retry loops account what they buy.
    ++logical_steps_;
    comparisons_ += static_cast<int64_t>(tasks.size());
    RecordBatchMetrics(static_cast<int64_t>(tasks.size()));
    if (AlgoTrace* trace = CurrentTrace();
        trace != nullptr && RecordsTraceCells()) {
      RecordTraceOutcomes(trace, *results);
    }
  }
  return results;
}

Result<std::vector<BatchTaskResult>> BatchExecutor::DoTryExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  // Default adapter: the infallible path answers everything.
  const std::vector<ElementId> winners = DoExecuteBatch(tasks);
  CROWDMAX_CHECK(winners.size() == tasks.size());
  std::vector<BatchTaskResult> results;
  results.reserve(winners.size());
  for (ElementId winner : winners) {
    results.push_back(BatchTaskResult{winner, true, -1});
  }
  return results;
}

ComparatorBatchExecutor::ComparatorBatchExecutor(Comparator* comparator)
    : comparator_(comparator) {
  CROWDMAX_CHECK(comparator != nullptr);
}

std::vector<ElementId> ComparatorBatchExecutor::DoExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  std::vector<ElementId> winners;
  winners.reserve(tasks.size());
  for (const ComparisonPair& task : tasks) {
    winners.push_back(comparator_->Compare(task.first, task.second));
  }
  return winners;
}

ParallelBatchExecutor::ParallelBatchExecutor(Comparator* comparator,
                                             int64_t threads, uint64_t seed,
                                             int64_t chunk_size)
    : comparator_(comparator),
      pool_(threads),
      seeder_(seed),
      chunk_size_(chunk_size) {}

Result<std::unique_ptr<ParallelBatchExecutor>> ParallelBatchExecutor::Create(
    Comparator* comparator, int64_t threads, uint64_t seed,
    int64_t chunk_size) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (threads < 1) return Status::InvalidArgument("threads must be >= 1");
  if (chunk_size < 1) {
    return Status::InvalidArgument("chunk_size must be >= 1");
  }
  if (comparator->Fork(0) == nullptr) {
    return Status::InvalidArgument(
        "comparator does not support Fork(); ParallelBatchExecutor requires "
        "a forkable comparator");
  }
  return std::unique_ptr<ParallelBatchExecutor>(
      new ParallelBatchExecutor(comparator, threads, seed, chunk_size));
}

std::vector<ElementId> ParallelBatchExecutor::DoExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  const int64_t n = static_cast<int64_t>(tasks.size());
  const int64_t num_chunks = (n + chunk_size_ - 1) / chunk_size_;
  std::vector<ElementId> winners(tasks.size(), -1);

  // Chunk seeds are drawn before dispatch, in chunk order, so answers are
  // independent of which thread runs which chunk.
  std::vector<uint64_t> seeds(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    seeds[static_cast<size_t>(c)] = seeder_.Fork();
  }

  std::vector<int64_t> paid(static_cast<size_t>(num_chunks), 0);
  pool_.ParallelFor(num_chunks, [&](int64_t c) {
    const std::unique_ptr<Comparator> fork =
        comparator_->Fork(seeds[static_cast<size_t>(c)]);
    CROWDMAX_CHECK(fork != nullptr);
    const int64_t begin = c * chunk_size_;
    const int64_t end = std::min(n, begin + chunk_size_);
    for (int64_t t = begin; t < end; ++t) {
      const ComparisonPair& task = tasks[static_cast<size_t>(t)];
      winners[static_cast<size_t>(t)] = fork->Compare(task.first, task.second);
    }
    paid[static_cast<size_t>(c)] = fork->num_comparisons();
  });

  int64_t total_paid = 0;
  for (int64_t p : paid) total_paid += p;
  comparator_->AddComparisons(total_paid);
  return winners;
}

TournamentResult BatchedAllPlayAll(const std::vector<ElementId>& elements,
                                   BatchExecutor* executor) {
  CROWDMAX_CHECK(executor != nullptr);
  TraceSpanScope batch_span(TraceSpanKind::kBatch, "all_play_all");
  const size_t k = elements.size();
  std::vector<ComparisonPair> tasks;
  tasks.reserve(k * (k > 0 ? k - 1 : 0) / 2);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      tasks.push_back({elements[i], elements[j]});
    }
  }
  const std::vector<ElementId> winners = executor->ExecuteBatch(tasks);
  CROWDMAX_CHECK(winners.size() == tasks.size());

  TournamentResult result;
  result.wins.assign(k, 0);
  result.comparisons = static_cast<int64_t>(tasks.size());
  size_t t = 0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j, ++t) {
      CROWDMAX_DCHECK(winners[t] == elements[i] || winners[t] == elements[j]);
      ++result.wins[winners[t] == elements[i] ? i : j];
    }
  }
  return result;
}

Result<BatchedFilterResult> BatchedFilterCandidates(
    const std::vector<ElementId>& items, const FilterOptions& options,
    BatchExecutor* executor) {
  CROWDMAX_CHECK(executor != nullptr);
  if (options.u_n < 1) return Status::InvalidArgument("u_n must be >= 1");
  if (options.group_size_multiplier < 2) {
    return Status::InvalidArgument("group_size_multiplier must be >= 2");
  }
  if (options.max_comparisons < 0) {
    return Status::InvalidArgument("max_comparisons must be >= 0");
  }
  if (Status status = ValidateDistinct(items); !status.ok()) return status;

  const int64_t u_n = options.u_n;
  const int64_t g = options.group_size_multiplier * u_n;
  const int64_t steps_before = executor->logical_steps();
  const int64_t comparisons_before = executor->comparisons();
  TraceSpanScope phase_span("filter", TraceWorkerClass::kNaive);

  BatchedFilterResult out;
  std::vector<ElementId> current = items;
  std::unordered_map<uint64_t, ElementId> cache;
  std::unordered_map<ElementId, std::unordered_set<ElementId>> losses;

  while (static_cast<int64_t>(current.size()) >= 2 * u_n) {
    // Budget check at the round boundary, mirroring FilterCandidates.
    if (options.max_comparisons > 0) {
      const int64_t n_cur = static_cast<int64_t>(current.size());
      int64_t round_cost = 0;
      for (int64_t start = 0; start < n_cur; start += g) {
        const int64_t m = std::min(g, n_cur - start);
        if (m > u_n) round_cost += m * (m - 1) / 2;
      }
      const int64_t paid_so_far =
          executor->comparisons() - comparisons_before;
      if (paid_so_far + round_cost > options.max_comparisons) {
        out.filter.stopped_by_budget = true;
        break;
      }
    }

    out.filter.round_sizes.push_back(static_cast<int64_t>(current.size()));
    ++out.filter.rounds;
    TraceSpanScope round_span(out.filter.rounds);
    if (!options.memoize) cache.clear();

    // Gather this round's group tournaments into one batch. Groups are
    // disjoint, so every pair appears at most once per round.
    const int64_t n_cur = static_cast<int64_t>(current.size());
    std::vector<ComparisonPair> queries;
    for (int64_t start = 0; start < n_cur; start += g) {
      const int64_t m = std::min(g, n_cur - start);
      if (m <= u_n) continue;  // Short tail group advances untouched.
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = i + 1; j < m; ++j) {
          queries.push_back({current[start + i], current[start + j]});
        }
      }
    }
    out.filter.issued_comparisons += static_cast<int64_t>(queries.size());
    Status round_fault = Status::OK();
    if (Result<int64_t> resolved = ResolveThroughCache(queries, executor, &cache);
        !resolved.ok()) {
      if (resolved.status().code() != StatusCode::kUnavailable) {
        return resolved.status();
      }
      round_fault = resolved.status();
    }

    // Tally wins per group from the cache and select survivors. An
    // unresolved pair is missing evidence: it eliminates neither element
    // (both tally the win), and the cache re-issues it next round.
    int64_t unresolved_pairs = 0;
    std::vector<ElementId> next;
    next.reserve(current.size() / 2 + 1);
    for (int64_t start = 0; start < n_cur; start += g) {
      const int64_t m = std::min(g, n_cur - start);
      if (m <= u_n) {
        for (int64_t i = 0; i < m; ++i) next.push_back(current[start + i]);
        continue;
      }
      std::vector<int64_t> wins(m, 0);
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = i + 1; j < m; ++j) {
          const ElementId a = current[start + i];
          const ElementId b = current[start + j];
          const ElementId winner = CachedOutcome(cache, a, b);
          if (winner == kUnresolved) {
            ++unresolved_pairs;
            ++wins[i];
            ++wins[j];
            continue;
          }
          ++wins[winner == a ? i : j];
          if (options.global_loss_counter) {
            losses[winner == a ? b : a].insert(winner);
          }
        }
      }
      const int64_t keep_threshold = m - u_n;
      for (int64_t i = 0; i < m; ++i) {
        if (wins[i] >= keep_threshold) next.push_back(current[start + i]);
      }
    }

    if (options.global_loss_counter) {
      auto cannot_be_max = [&](ElementId e) {
        auto it = losses.find(e);
        return it != losses.end() &&
               static_cast<int64_t>(it->second.size()) > u_n;
      };
      const size_t before = next.size();
      next.erase(std::remove_if(next.begin(), next.end(), cannot_be_max),
                 next.end());
      out.filter.evicted_by_loss_counter +=
          static_cast<int64_t>(before - next.size());
    }

    if (next.empty()) {
      out.filter.hit_empty_round = true;
      break;
    }
    if (next.size() >= current.size()) {
      if (unresolved_pairs == 0 && round_fault.ok()) {
        return Status::Internal(
            "batched filter made no progress with full evidence; executor "
            "answers are inconsistent");
      }
      // Faults withheld too much evidence to shrink the pool: stop and
      // report the survivors so far. The conservative tally never evicts
      // without a counted loss, so the maximum is still among them.
      out.partial = true;
      out.fault_status =
          round_fault.ok()
              ? Status::Unavailable(
                    "filter round made no progress: " +
                    std::to_string(unresolved_pairs) +
                    " comparisons unresolved after executor recovery")
              : round_fault;
      break;
    }
    current = std::move(next);
  }

  out.filter.candidates = std::move(current);
  out.filter.paid_comparisons = executor->comparisons() - comparisons_before;
  out.logical_steps = executor->logical_steps() - steps_before;
  return out;
}

Result<BatchedMaxFindResult> BatchedTwoMaxFind(
    const std::vector<ElementId>& items, BatchExecutor* executor) {
  CROWDMAX_CHECK(executor != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("candidate set must be non-empty");
  }
  if (Status status = ValidateDistinct(items); !status.ok()) return status;

  const int64_t steps_before = executor->logical_steps();
  const int64_t comparisons_before = executor->comparisons();
  TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
  const int64_t s = static_cast<int64_t>(items.size());
  int64_t k = static_cast<int64_t>(
      std::ceil(std::sqrt(static_cast<double>(s))));
  while (k * k < s) ++k;
  while (k > 1 && (k - 1) * (k - 1) >= s) --k;

  BatchedMaxFindResult out;
  std::vector<ElementId> candidates = items;
  std::unordered_map<uint64_t, ElementId> cache;
  const int64_t max_rounds = 4 * s + 16;

  // All-play-all over `group` through the cache; unresolved pairs award no
  // win to either side. Non-transient executor errors propagate; a
  // transient (Unavailable) one is recorded in `fault` and the round
  // tallies whatever evidence exists.
  struct TournamentRound {
    TournamentResult tournament;
    int64_t unresolved = 0;
    Status fault;
  };
  auto cached_tournament =
      [&](const std::vector<ElementId>& group) -> Result<TournamentRound> {
    std::vector<ComparisonPair> queries;
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        queries.push_back({group[i], group[j]});
      }
    }
    out.maxfind.issued_comparisons += static_cast<int64_t>(queries.size());
    TournamentRound round;
    if (Result<int64_t> resolved =
            ResolveThroughCache(queries, executor, &cache);
        !resolved.ok()) {
      if (resolved.status().code() != StatusCode::kUnavailable) {
        return resolved.status();
      }
      round.fault = resolved.status();
    }
    round.tournament.wins.assign(group.size(), 0);
    round.tournament.comparisons = static_cast<int64_t>(queries.size());
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        const ElementId winner = CachedOutcome(cache, group[i], group[j]);
        if (winner == kUnresolved) {
          ++round.unresolved;
          continue;
        }
        ++round.tournament.wins[winner == group[i] ? i : j];
      }
    }
    return round;
  };

  auto finish_partial = [&](Status fault_status) {
    out.partial = true;
    out.fault_status = std::move(fault_status);
    out.survivors = candidates;
    out.maxfind.best = -1;
    out.maxfind.paid_comparisons =
        executor->comparisons() - comparisons_before;
    out.logical_steps = executor->logical_steps() - steps_before;
    return out;
  };

  while (static_cast<int64_t>(candidates.size()) > k) {
    if (out.maxfind.rounds >= max_rounds) {
      return Status::Internal(
          "batched 2-MaxFind exceeded its round budget; executor answers "
          "are inconsistent");
    }
    ++out.maxfind.rounds;
    TraceSpanScope round_span(out.maxfind.rounds);

    std::vector<ElementId> sample(candidates.begin(), candidates.begin() + k);
    Result<TournamentRound> sample_round = [&] {
      TraceSpanScope batch_span(TraceSpanKind::kBatch, "sample");
      return cached_tournament(sample);
    }();
    if (!sample_round.ok()) return sample_round.status();
    const ElementId x = sample[IndexOfMostWins(sample_round->tournament)];

    // Elimination scan, pivot first, as one batch of cache misses.
    std::vector<ComparisonPair> scan;
    scan.reserve(candidates.size());
    for (ElementId y : candidates) {
      if (y != x) scan.push_back({x, y});
    }
    out.maxfind.issued_comparisons += static_cast<int64_t>(scan.size());
    Status scan_fault = Status::OK();
    {
      TraceSpanScope batch_span(TraceSpanKind::kBatch, "scan");
      if (Result<int64_t> resolved =
              ResolveThroughCache(scan, executor, &cache);
          !resolved.ok()) {
        if (resolved.status().code() != StatusCode::kUnavailable) {
          return resolved.status();
        }
        scan_fault = resolved.status();
      }
    }

    // An unresolved scan comparison is missing evidence: the element
    // survives (no elimination without a counted loss) and the pair is
    // re-issued by a later round through the cache.
    int64_t unresolved_scan = 0;
    std::vector<ElementId> survivors;
    survivors.reserve(candidates.size());
    for (ElementId y : candidates) {
      if (y == x) {
        survivors.push_back(y);
        continue;
      }
      const ElementId winner = CachedOutcome(cache, x, y);
      if (winner == kUnresolved) {
        ++unresolved_scan;
        survivors.push_back(y);
        continue;
      }
      if (winner != x) survivors.push_back(y);
    }
    const bool progress = survivors.size() < candidates.size();
    candidates = std::move(survivors);

    const bool faulty = sample_round->unresolved > 0 || unresolved_scan > 0 ||
                        !sample_round->fault.ok() || !scan_fault.ok();
    if (!progress && faulty) {
      // Faults withheld the evidence this round needed; the executor's own
      // recovery already ran, so stop and report the field as it stands.
      Status fault_status =
          !scan_fault.ok() ? scan_fault
          : !sample_round->fault.ok()
              ? sample_round->fault
              : Status::Unavailable(
                    "2-MaxFind round made no progress: " +
                    std::to_string(sample_round->unresolved + unresolved_scan) +
                    " comparisons unresolved after executor recovery");
      return finish_partial(std::move(fault_status));
    }
  }

  Result<TournamentRound> final_round = [&] {
    TraceSpanScope batch_span(TraceSpanKind::kBatch, "final");
    return cached_tournament(candidates);
  }();
  if (!final_round.ok()) return final_round.status();
  out.maxfind.best = candidates[IndexOfMostWins(final_round->tournament)];
  if (final_round->unresolved > 0 || !final_round->fault.ok()) {
    // The final tournament ran on incomplete evidence: `best` is the
    // provisional leader, flagged partial so callers can tell.
    out.partial = true;
    out.fault_status =
        !final_round->fault.ok()
            ? final_round->fault
            : Status::Unavailable(
                  "final tournament left " +
                  std::to_string(final_round->unresolved) +
                  " comparisons unresolved; best is provisional");
    out.survivors = candidates;
  }
  out.maxfind.paid_comparisons = executor->comparisons() - comparisons_before;
  out.logical_steps = executor->logical_steps() - steps_before;
  return out;
}

Result<BatchedExpertMaxResult> BatchedFindMaxWithExperts(
    const std::vector<ElementId>& items, BatchExecutor* naive,
    BatchExecutor* expert, const ExpertMaxOptions& options) {
  CROWDMAX_CHECK(naive != nullptr);
  CROWDMAX_CHECK(expert != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  TraceSpanScope run_span(TraceSpanKind::kRun, "batched_expert_max");

  Result<BatchedFilterResult> filtered =
      BatchedFilterCandidates(items, options.filter, naive);
  if (!filtered.ok()) return filtered.status();

  BatchedExpertMaxResult out;
  out.result.candidates = std::move(filtered->filter.candidates);
  out.result.paid.naive = filtered->filter.paid_comparisons;
  out.result.issued.naive = filtered->filter.issued_comparisons;
  out.result.filter_rounds = filtered->filter.rounds;
  out.naive_steps = filtered->logical_steps;
  if (filtered->partial) {
    out.partial = true;
    out.fault_status = filtered->fault_status;
  }
  if (const FaultReport* report = naive->fault_report()) {
    out.has_naive_faults = true;
    out.naive_faults = *report;
  }
  if (out.result.candidates.empty()) {
    return Status::Internal("phase 1 returned an empty candidate set");
  }

  // Phase 2 runs even on a partial phase 1: the conservative filter never
  // evicts without a counted loss, so the maximum is still among the
  // (possibly oversized) survivor set and the experts can finish the job.
  Result<BatchedMaxFindResult> phase2 =
      BatchedTwoMaxFind(out.result.candidates, expert);
  if (!phase2.ok()) return phase2.status();

  out.result.best = phase2->maxfind.best;
  out.result.paid.expert = phase2->maxfind.paid_comparisons;
  out.result.issued.expert = phase2->maxfind.issued_comparisons;
  out.result.phase2_rounds = phase2->maxfind.rounds;
  out.expert_steps = phase2->logical_steps;
  if (phase2->partial) {
    out.partial = true;
    if (out.fault_status.ok()) out.fault_status = phase2->fault_status;
  }
  if (const FaultReport* report = expert->fault_report()) {
    out.has_expert_faults = true;
    out.expert_faults = *report;
  }
  return out;
}

}  // namespace crowdmax
