#include "core/batched.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/metrics.h"
#include "core/async_executor.h"
#include "core/checkpoint.h"
#include "core/trace.h"

namespace crowdmax {

namespace {

constexpr uint32_t kExecutorTag = CheckpointTag("EXE ");
constexpr uint32_t kSeederTag = CheckpointTag("SEED");

// Batch-level metrics, recorded in the public wrappers (never per
// comparison, so the comparator hot path stays untouched).
void RecordBatchMetrics(int64_t batch_size) {
  if (!MetricsEnabled()) return;
  static Counter* batches =
      MetricsRegistry::Default()->GetCounter("crowdmax.executor.batches");
  static Counter* dispatched = MetricsRegistry::Default()->GetCounter(
      "crowdmax.executor.comparisons_dispatched");
  static Histogram* sizes = MetricsRegistry::Default()->GetHistogram(
      "crowdmax.executor.batch_size", ExponentialBounds(16));
  batches->Increment();
  dispatched->Add(batch_size);
  sizes->Observe(batch_size);
}

// Trace-cell recording for a sink executor's successful fallible batch:
// every task was dispatched; classify each outcome.
void RecordTraceOutcomes(AlgoTrace* trace,
                         const std::vector<BatchTaskResult>& results) {
  int64_t answered = 0;
  int64_t no_quorum = 0;
  int64_t dropped = 0;
  for (const BatchTaskResult& result : results) {
    if (result.answered) {
      ++answered;
    } else if (result.winner == -1) {
      ++dropped;
    } else {
      ++no_quorum;
    }
  }
  trace->RecordDispatched(static_cast<int64_t>(results.size()));
  trace->RecordOutcomes(answered, no_quorum, dropped);
}

}  // namespace

std::string FaultReport::ToString() const {
  std::string out = "batches=" + std::to_string(batches) +
                    " attempts=" + std::to_string(attempts) +
                    " retried_tasks=" + std::to_string(retried_tasks) +
                    " votes_lost=" + std::to_string(votes_lost) +
                    " relaxed_accepts=" + std::to_string(relaxed_accepts) +
                    " degraded_tasks=" + std::to_string(degraded_tasks) +
                    " transient_errors=" + std::to_string(transient_errors) +
                    " steps_added=" + std::to_string(steps_added) +
                    " backoff_steps=" + std::to_string(backoff_steps);
  if (exhausted) out += " exhausted(" + last_error.ToString() + ")";
  return out;
}

std::vector<ElementId> BatchExecutor::ExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  if (tasks.empty()) return {};
  ++logical_steps_;
  comparisons_ += static_cast<int64_t>(tasks.size());
  RecordBatchMetrics(static_cast<int64_t>(tasks.size()));
  std::vector<ElementId> winners = DoExecuteBatch(tasks);
  if (AlgoTrace* trace = CurrentTrace();
      trace != nullptr && RecordsTraceCells()) {
    // The infallible path answers everything: one cell record per batch,
    // on the submitting thread (the coordinating thread at a barrier).
    trace->RecordDispatched(static_cast<int64_t>(tasks.size()));
    trace->RecordOutcomes(static_cast<int64_t>(tasks.size()), 0, 0);
  }
  return winners;
}

Result<std::vector<BatchTaskResult>> BatchExecutor::TryExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  if (tasks.empty()) return std::vector<BatchTaskResult>{};
  Result<std::vector<BatchTaskResult>> results = DoTryExecuteBatch(tasks);
  if (results.ok()) {
    // A failed submission consumed no crowd work: charge the step and the
    // comparisons only on success, so retry loops account what they buy.
    ++logical_steps_;
    comparisons_ += static_cast<int64_t>(tasks.size());
    RecordBatchMetrics(static_cast<int64_t>(tasks.size()));
    if (AlgoTrace* trace = CurrentTrace();
        trace != nullptr && RecordsTraceCells()) {
      RecordTraceOutcomes(trace, *results);
    }
  }
  return results;
}

Status BatchExecutor::SaveState(CheckpointWriter* writer) const {
  writer->WriteTag(kExecutorTag);
  writer->WriteI64(logical_steps_);
  writer->WriteI64(comparisons_);
  writer->WriteI64(cancelled_comparisons_);
  return DoSaveState(writer);
}

Status BatchExecutor::LoadState(CheckpointReader* reader) {
  reader->ExpectTag(kExecutorTag);
  logical_steps_ = reader->ReadI64();
  comparisons_ = reader->ReadI64();
  cancelled_comparisons_ = reader->ReadI64();
  if (!reader->status().ok()) return reader->status();
  return DoLoadState(reader);
}

Status BatchExecutor::DoSaveState(CheckpointWriter* /*writer*/) const {
  return Status::FailedPrecondition(
      "this executor does not support checkpointing; recover by "
      "deterministic re-execution instead");
}

Status BatchExecutor::DoLoadState(CheckpointReader* /*reader*/) {
  return Status::FailedPrecondition(
      "this executor does not support checkpointing");
}

Result<std::vector<BatchTaskResult>> BatchExecutor::DoTryExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  // Default adapter: the infallible path answers everything.
  const std::vector<ElementId> winners = DoExecuteBatch(tasks);
  CROWDMAX_CHECK(winners.size() == tasks.size());
  std::vector<BatchTaskResult> results;
  results.reserve(winners.size());
  for (ElementId winner : winners) {
    results.push_back(BatchTaskResult{winner, true, -1});
  }
  return results;
}

ComparatorBatchExecutor::ComparatorBatchExecutor(Comparator* comparator)
    : comparator_(comparator) {
  CROWDMAX_CHECK(comparator != nullptr);
}

std::vector<ElementId> ComparatorBatchExecutor::DoExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  std::vector<ElementId> winners(tasks.size(), -1);
  if (VoteBatchComparator* batch = comparator_->AsVoteBatch();
      batch != nullptr) {
    // Batch-at-once (DESIGN.md §14): same draws, counters and answers as
    // the per-call loop, one virtual call per batch instead of per task.
    const int64_t produced = batch->GenerateVotes(tasks, winners);
    CROWDMAX_CHECK(produced == static_cast<int64_t>(tasks.size()));
    return winners;
  }
  for (size_t t = 0; t < tasks.size(); ++t) {
    winners[t] = comparator_->Compare(tasks[t].first, tasks[t].second);
  }
  return winners;
}

Status ComparatorBatchExecutor::DoSaveState(CheckpointWriter* writer) const {
  return comparator_->SaveState(writer);
}

Status ComparatorBatchExecutor::DoLoadState(CheckpointReader* reader) {
  return comparator_->LoadState(reader);
}

ParallelBatchExecutor::ParallelBatchExecutor(Comparator* comparator,
                                             int64_t threads, uint64_t seed,
                                             int64_t chunk_size)
    : comparator_(comparator),
      pool_(threads),
      seeder_(seed),
      chunk_size_(chunk_size) {}

Result<std::unique_ptr<ParallelBatchExecutor>> ParallelBatchExecutor::Create(
    Comparator* comparator, int64_t threads, uint64_t seed,
    int64_t chunk_size) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (threads < 1) return Status::InvalidArgument("threads must be >= 1");
  if (chunk_size < 1) {
    return Status::InvalidArgument("chunk_size must be >= 1");
  }
  if (comparator->Fork(0) == nullptr) {
    return Status::InvalidArgument(
        "comparator does not support Fork(); ParallelBatchExecutor requires "
        "a forkable comparator");
  }
  return std::unique_ptr<ParallelBatchExecutor>(
      new ParallelBatchExecutor(comparator, threads, seed, chunk_size));
}

std::vector<ElementId> ParallelBatchExecutor::DoExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  const int64_t n = static_cast<int64_t>(tasks.size());
  const int64_t num_chunks = (n + chunk_size_ - 1) / chunk_size_;
  std::vector<ElementId> winners(tasks.size(), -1);

  // Chunk seeds are drawn before dispatch, in chunk order, so answers are
  // independent of which thread runs which chunk.
  std::vector<uint64_t> seeds(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    seeds[static_cast<size_t>(c)] = seeder_.Fork();
  }

  std::vector<int64_t> paid(static_cast<size_t>(num_chunks), 0);
  pool_.ParallelFor(num_chunks, [&](int64_t c) {
    const std::unique_ptr<Comparator> fork =
        comparator_->Fork(seeds[static_cast<size_t>(c)]);
    CROWDMAX_CHECK(fork != nullptr);
    const int64_t begin = c * chunk_size_;
    const int64_t end = std::min(n, begin + chunk_size_);
    const size_t count = static_cast<size_t>(end - begin);
    if (VoteBatchComparator* batch = fork->AsVoteBatch(); batch != nullptr) {
      // Whole chunk in one call, on span slices of the shared arrays —
      // same seeds, same draws, same disjoint output slots.
      const int64_t produced = batch->GenerateVotes(
          std::span<const ComparisonPair>(tasks).subspan(
              static_cast<size_t>(begin), count),
          std::span<ElementId>(winners).subspan(static_cast<size_t>(begin),
                                                count));
      CROWDMAX_CHECK(produced == static_cast<int64_t>(count));
    } else {
      for (int64_t t = begin; t < end; ++t) {
        const ComparisonPair& task = tasks[static_cast<size_t>(t)];
        winners[static_cast<size_t>(t)] =
            fork->Compare(task.first, task.second);
      }
    }
    paid[static_cast<size_t>(c)] = fork->num_comparisons();
  });

  int64_t total_paid = 0;
  for (int64_t p : paid) total_paid += p;
  comparator_->AddComparisons(total_paid);
  return winners;
}

Status ParallelBatchExecutor::DoSaveState(CheckpointWriter* writer) const {
  writer->WriteTag(kSeederTag);
  writer->WriteRngState(seeder_.state());
  return comparator_->SaveState(writer);
}

Status ParallelBatchExecutor::DoLoadState(CheckpointReader* reader) {
  reader->ExpectTag(kSeederTag);
  seeder_.set_state(reader->ReadRngState());
  if (!reader->status().ok()) return reader->status();
  return comparator_->LoadState(reader);
}

// ---------------------------------------------------------------------------
// Batched adapters. Every function below is a thin shell: create an
// executor-backed RoundEngine, drive the shared RoundSource, translate the
// engine run into the Batched* result shape. The round loops, caches,
// budget gates and fault semantics all live in core/round_engine.cc and
// the sources in filter_phase.cc / maxfind.cc / tournament.cc.
// ---------------------------------------------------------------------------

Result<BatchedFilterResult> BatchedFilterCandidates(
    const std::vector<ElementId>& items, const FilterOptions& options,
    BatchExecutor* executor) {
  CROWDMAX_CHECK(executor != nullptr);
  Result<std::unique_ptr<RoundEngine>> engine = RoundEngine::CreateBatched(
      executor, options.shared_cache, options.cache_class);
  if (!engine.ok()) return engine.status();

  Result<FilterEngineRun> run =
      RunFilterOnEngine(items, options, engine->get());
  if (!run.ok()) return run.status();

  BatchedFilterResult out;
  out.filter = std::move(run->filter);
  out.partial = run->partial;
  out.fault_status = run->fault_status;
  out.logical_steps = (*engine)->logical_steps();
  return out;
}

Result<BatchedFilterResult> PipelinedFilterCandidates(
    const std::vector<ElementId>& items, const FilterOptions& options,
    AsyncBatchExecutor* async, const BatchedPipelineOptions& pipeline) {
  CROWDMAX_CHECK(async != nullptr);
  SharedPairCache* cache = pipeline.shared_cache != nullptr
                               ? pipeline.shared_cache
                               : options.shared_cache;
  const int64_t cache_class = pipeline.shared_cache != nullptr
                                  ? pipeline.cache_class
                                  : options.cache_class;
  Result<std::unique_ptr<RoundEngine>> engine = RoundEngine::CreatePipelined(
      async, pipeline.max_in_flight, cache, cache_class);
  if (!engine.ok()) return engine.status();

  Result<FilterEngineRun> run =
      RunFilterOnEngine(items, options, engine->get());
  if (!run.ok()) return run.status();

  BatchedFilterResult out;
  out.filter = std::move(run->filter);
  out.partial = run->partial;
  out.fault_status = run->fault_status;
  out.logical_steps = (*engine)->logical_steps();
  return out;
}

Result<BatchedMaxFindResult> BatchedTwoMaxFind(
    const std::vector<ElementId>& items, BatchExecutor* executor,
    SharedPairCache* shared_cache, int64_t cache_class) {
  CROWDMAX_CHECK(executor != nullptr);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreateBatched(executor, shared_cache, cache_class);
  if (!engine.ok()) return engine.status();

  TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
  Result<MaxFindEngineRun> run = RunTwoMaxFindOnEngine(items, engine->get());
  if (!run.ok()) return run.status();

  BatchedMaxFindResult out;
  out.maxfind = run->maxfind;
  out.partial = run->partial;
  out.fault_status = run->fault_status;
  out.survivors = std::move(run->survivors);
  out.logical_steps = (*engine)->logical_steps();
  return out;
}

Result<BatchedMaxFindResult> PipelinedTwoMaxFind(
    const std::vector<ElementId>& items, AsyncBatchExecutor* async,
    const BatchedPipelineOptions& pipeline,
    const TwoMaxFindEngineOptions& engine_options,
    SharedPairCache* shared_cache, int64_t cache_class) {
  CROWDMAX_CHECK(async != nullptr);
  SharedPairCache* cache = pipeline.shared_cache != nullptr
                               ? pipeline.shared_cache
                               : shared_cache;
  const int64_t klass = pipeline.shared_cache != nullptr ? pipeline.cache_class
                                                         : cache_class;
  Result<std::unique_ptr<RoundEngine>> engine = RoundEngine::CreatePipelined(
      async, pipeline.max_in_flight, cache, klass);
  if (!engine.ok()) return engine.status();

  TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
  Result<MaxFindEngineRun> run =
      RunTwoMaxFindOnEngine(items, engine->get(), engine_options);
  if (!run.ok()) return run.status();

  BatchedMaxFindResult out;
  out.maxfind = run->maxfind;
  out.partial = run->partial;
  out.fault_status = run->fault_status;
  out.survivors = std::move(run->survivors);
  out.logical_steps = (*engine)->logical_steps();
  return out;
}

Result<BatchedExpertMaxResult> BatchedFindMaxWithExperts(
    const std::vector<ElementId>& items, BatchExecutor* naive,
    BatchExecutor* expert, const ExpertMaxOptions& options) {
  CROWDMAX_CHECK(naive != nullptr);
  CROWDMAX_CHECK(expert != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  TraceSpanScope run_span(TraceSpanKind::kRun, "batched_expert_max");

  FilterOptions filter_options = options.filter;
  if (options.shared_cache != nullptr) {
    filter_options.shared_cache = options.shared_cache;
    filter_options.cache_class = options.naive_cache_class;
  }
  Result<BatchedFilterResult> filtered =
      BatchedFilterCandidates(items, filter_options, naive);
  if (!filtered.ok()) return filtered.status();

  BatchedExpertMaxResult out;
  out.result.candidates = std::move(filtered->filter.candidates);
  out.result.paid.naive = filtered->filter.paid_comparisons;
  out.result.issued.naive = filtered->filter.issued_comparisons;
  out.result.filter_rounds = filtered->filter.rounds;
  out.result.filter_hit_empty_round = filtered->filter.hit_empty_round;
  out.result.filter_stopped_by_budget = filtered->filter.stopped_by_budget;
  out.naive_steps = filtered->logical_steps;
  if (filtered->partial) {
    out.partial = true;
    out.fault_status = filtered->fault_status;
  }
  if (const FaultReport* report = naive->fault_report()) {
    out.has_naive_faults = true;
    out.naive_faults = *report;
  }
  if (out.result.candidates.empty()) {
    return Status::Internal("phase 1 returned an empty candidate set");
  }

  // Phase 2 runs even on a partial phase 1: the conservative filter never
  // evicts without a counted loss, so the maximum is still among the
  // (possibly oversized) survivor set and the experts can finish the job.
  Result<BatchedMaxFindResult> phase2 = BatchedTwoMaxFind(
      out.result.candidates, expert, options.shared_cache,
      options.expert_cache_class);
  if (!phase2.ok()) return phase2.status();

  out.result.best = phase2->maxfind.best;
  out.result.paid.expert = phase2->maxfind.paid_comparisons;
  out.result.issued.expert = phase2->maxfind.issued_comparisons;
  out.result.phase2_rounds = phase2->maxfind.rounds;
  out.expert_steps = phase2->logical_steps;
  if (phase2->partial) {
    out.partial = true;
    if (out.fault_status.ok()) out.fault_status = phase2->fault_status;
  }
  if (const FaultReport* report = expert->fault_report()) {
    out.has_expert_faults = true;
    out.expert_faults = *report;
  }
  return out;
}

Result<BatchedTopKResult> BatchedFindTopKWithExperts(
    const std::vector<ElementId>& items, BatchExecutor* naive,
    BatchExecutor* expert, const TopKOptions& options) {
  CROWDMAX_CHECK(naive != nullptr);
  CROWDMAX_CHECK(expert != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.k < 1 || options.k > static_cast<int64_t>(items.size())) {
    return Status::InvalidArgument("k must be in [1, |items|]");
  }
  if (options.filter.u_n < 1) {
    return Status::InvalidArgument("u_n must be >= 1");
  }
  TraceSpanScope run_span(TraceSpanKind::kRun, "batched_topk");

  // Phase 1 with the inflated blind spot u' = u_n + k - 1 so every true
  // top-k element survives (see core/topk.h).
  FilterOptions filter = options.filter;
  filter.u_n = options.filter.u_n + options.k - 1;
  if (options.shared_cache != nullptr) {
    filter.shared_cache = options.shared_cache;
    filter.cache_class = options.naive_cache_class;
  }
  Result<BatchedFilterResult> filtered =
      BatchedFilterCandidates(items, filter, naive);
  if (!filtered.ok()) return filtered.status();

  BatchedTopKResult out;
  out.result.candidates = std::move(filtered->filter.candidates);
  out.result.paid.naive = filtered->filter.paid_comparisons;
  out.result.filter_rounds = filtered->filter.rounds;
  out.naive_steps = filtered->logical_steps;
  if (filtered->partial) {
    out.partial = true;
    out.fault_status = filtered->fault_status;
  }
  if (const FaultReport* report = naive->fault_report()) {
    out.has_naive_faults = true;
    out.naive_faults = *report;
  }
  if (static_cast<int64_t>(out.result.candidates.size()) < options.k) {
    return Status::Internal(
        "phase 1 returned fewer candidates than k; the comparator violated "
        "the threshold-model contract");
  }

  // Phase 2: one expert all-play-all batch over the candidates; the k
  // biggest winners in win order. A partial filter only enlarges the
  // candidate set, so the tournament still ranks the true top-k. Against a
  // shared cache, pairs an earlier expert-class run already resolved are
  // answered for free.
  Result<std::unique_ptr<RoundEngine>> engine = RoundEngine::CreateBatched(
      expert, options.shared_cache, options.expert_cache_class);
  if (!engine.ok()) return engine.status();
  TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
  Result<TournamentEngineRun> tournament = RunTournamentOnEngine(
      out.result.candidates, engine->get(), "all_play_all",
      TournamentEngineOptions{options.expert_chunk_pairs});
  if (!tournament.ok()) return tournament.status();

  // Mispredicted speculative spend stays on the engine's wasted counter,
  // never in the per-class paid totals (DESIGN.md §15).
  out.result.paid.expert = (*engine)->paid() - (*engine)->speculation_wasted();
  out.expert_steps = (*engine)->logical_steps();
  if (tournament->unresolved > 0 || !tournament->fault.ok()) {
    out.partial = true;
    if (out.fault_status.ok()) {
      out.fault_status =
          tournament->fault.ok()
              ? Status::Unavailable(
                    "expert tournament left " +
                    std::to_string(tournament->unresolved) +
                    " comparisons unresolved; the order is provisional")
              : tournament->fault;
    }
  }
  if (const FaultReport* report = expert->fault_report()) {
    out.has_expert_faults = true;
    out.expert_faults = *report;
  }

  std::vector<ElementId> ranked =
      OrderByWins(out.result.candidates, tournament->tournament);
  ranked.resize(static_cast<size_t>(options.k));
  out.result.top = std::move(ranked);
  return out;
}

Result<BatchedMultilevelResult> BatchedFindMaxMultilevel(
    const std::vector<ElementId>& items,
    const std::vector<BatchedWorkerClassSpec>& classes,
    const MultilevelOptions& options) {
  if (classes.empty()) {
    return Status::InvalidArgument("at least one worker class is required");
  }
  for (const BatchedWorkerClassSpec& spec : classes) {
    if (spec.executor == nullptr) {
      return Status::InvalidArgument("worker class has null executor");
    }
    if (spec.cost_per_comparison < 0.0) {
      return Status::InvalidArgument("cost_per_comparison must be >= 0");
    }
  }
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  TraceSpanScope run_span(TraceSpanKind::kRun, "batched_multilevel");

  BatchedMultilevelResult out;
  out.result.paid_per_class.assign(classes.size(), 0);
  out.steps_per_class.assign(classes.size(), 0);

  std::vector<ElementId> current = items;

  // Filtering levels: every class except the last. A partial level hands
  // its (oversized but max-preserving) survivor set to the next class.
  for (size_t level = 0; level + 1 < classes.size(); ++level) {
    const BatchedWorkerClassSpec& spec = classes[level];
    if (spec.u < 1) {
      return Status::InvalidArgument("worker class u must be >= 1");
    }
    FilterOptions filter = options.filter_template;
    filter.u_n = spec.u;
    if (options.shared_cache != nullptr) {
      filter.shared_cache = options.shared_cache;
      filter.cache_class = static_cast<int64_t>(level);
    }
    Result<BatchedFilterResult> filtered =
        BatchedFilterCandidates(current, filter, spec.executor);
    if (!filtered.ok()) return filtered.status();
    out.result.paid_per_class[level] = filtered->filter.paid_comparisons;
    out.steps_per_class[level] = filtered->logical_steps;
    out.result.candidates_per_level.push_back(
        static_cast<int64_t>(filtered->filter.candidates.size()));
    if (filtered->partial) {
      out.partial = true;
      if (out.fault_status.ok()) out.fault_status = filtered->fault_status;
    }
    current = std::move(filtered->filter.candidates);
    if (current.empty()) {
      return Status::Internal("filter level returned an empty candidate set");
    }
  }

  // Final level: phase-2 max-finding with the most expert class's
  // executor, through the same engine.
  const size_t last = classes.size() - 1;
  BatchExecutor* final_executor = classes[last].executor;
  Result<std::unique_ptr<RoundEngine>> engine = RoundEngine::CreateBatched(
      final_executor, options.shared_cache, static_cast<int64_t>(last));
  if (!engine.ok()) return engine.status();
  TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
  switch (options.final_phase) {
    case Phase2Algorithm::kTwoMaxFind: {
      Result<MaxFindEngineRun> run = RunTwoMaxFindOnEngine(
          current, engine->get(),
          TwoMaxFindEngineOptions{options.final_speculate});
      if (!run.ok()) return run.status();
      out.result.best = run->maxfind.best;
      if (run->partial) {
        out.partial = true;
        if (out.fault_status.ok()) out.fault_status = run->fault_status;
      }
      break;
    }
    case Phase2Algorithm::kRandomized: {
      Result<MaxFindEngineRun> run =
          RunRandomizedMaxFindOnEngine(current, engine->get(),
                                       options.randomized);
      if (!run.ok()) return run.status();
      out.result.best = run->maxfind.best;
      if (run->partial) {
        out.partial = true;
        if (out.fault_status.ok()) out.fault_status = run->fault_status;
      }
      break;
    }
    case Phase2Algorithm::kAllPlayAll: {
      Result<TournamentEngineRun> run = RunTournamentOnEngine(
          current, engine->get(), "all_play_all",
          TournamentEngineOptions{options.final_chunk_pairs});
      if (!run.ok()) return run.status();
      out.result.best = current[IndexOfMostWins(run->tournament)];
      if (run->unresolved > 0 || !run->fault.ok()) {
        out.partial = true;
        if (out.fault_status.ok()) {
          out.fault_status =
              run->fault.ok()
                  ? Status::Unavailable(
                        "final tournament left " +
                        std::to_string(run->unresolved) +
                        " comparisons unresolved; best is provisional")
                  : run->fault;
        }
      }
      break;
    }
  }
  out.result.paid_per_class[last] =
      (*engine)->paid() - (*engine)->speculation_wasted();
  out.steps_per_class[last] = (*engine)->logical_steps();

  for (size_t i = 0; i < classes.size(); ++i) {
    out.result.total_cost +=
        static_cast<double>(out.result.paid_per_class[i]) *
        classes[i].cost_per_comparison;
  }
  return out;
}

Result<BatchedTopKResult> PipelinedFindTopKWithExperts(
    const std::vector<ElementId>& items, AsyncBatchExecutor* naive,
    AsyncBatchExecutor* expert, const TopKOptions& options,
    const BatchedPipelineOptions& pipeline) {
  CROWDMAX_CHECK(naive != nullptr);
  CROWDMAX_CHECK(expert != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.k < 1 || options.k > static_cast<int64_t>(items.size())) {
    return Status::InvalidArgument("k must be in [1, |items|]");
  }
  if (options.filter.u_n < 1) {
    return Status::InvalidArgument("u_n must be >= 1");
  }
  // Same run-span label as the batched path: the pipelined drive is
  // bit-identical to it, traces included.
  TraceSpanScope run_span(TraceSpanKind::kRun, "batched_topk");

  FilterOptions filter = options.filter;
  filter.u_n = options.filter.u_n + options.k - 1;
  if (options.shared_cache != nullptr) {
    filter.shared_cache = options.shared_cache;
    filter.cache_class = options.naive_cache_class;
  }
  // The per-class cache wiring lives in `options`; a pipeline-level
  // override would force both classes into one cache class.
  BatchedPipelineOptions phase_pipeline = pipeline;
  phase_pipeline.shared_cache = nullptr;
  Result<BatchedFilterResult> filtered =
      PipelinedFilterCandidates(items, filter, naive, phase_pipeline);
  if (!filtered.ok()) return filtered.status();

  BatchedTopKResult out;
  out.result.candidates = std::move(filtered->filter.candidates);
  out.result.paid.naive = filtered->filter.paid_comparisons;
  out.result.filter_rounds = filtered->filter.rounds;
  out.naive_steps = filtered->logical_steps;
  if (filtered->partial) {
    out.partial = true;
    out.fault_status = filtered->fault_status;
  }
  if (const FaultReport* report = naive->inner()->fault_report()) {
    out.has_naive_faults = true;
    out.naive_faults = *report;
  }
  if (static_cast<int64_t>(out.result.candidates.size()) < options.k) {
    return Status::Internal(
        "phase 1 returned fewer candidates than k; the comparator violated "
        "the threshold-model contract");
  }

  Result<std::unique_ptr<RoundEngine>> engine = RoundEngine::CreatePipelined(
      expert, pipeline.max_in_flight, options.shared_cache,
      options.expert_cache_class);
  if (!engine.ok()) return engine.status();
  TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
  Result<TournamentEngineRun> tournament = RunTournamentOnEngine(
      out.result.candidates, engine->get(), "all_play_all",
      TournamentEngineOptions{options.expert_chunk_pairs});
  if (!tournament.ok()) return tournament.status();

  out.result.paid.expert = (*engine)->paid() - (*engine)->speculation_wasted();
  out.expert_steps = (*engine)->logical_steps();
  if (tournament->unresolved > 0 || !tournament->fault.ok()) {
    out.partial = true;
    if (out.fault_status.ok()) {
      out.fault_status =
          tournament->fault.ok()
              ? Status::Unavailable(
                    "expert tournament left " +
                    std::to_string(tournament->unresolved) +
                    " comparisons unresolved; the order is provisional")
              : tournament->fault;
    }
  }
  if (const FaultReport* report = expert->inner()->fault_report()) {
    out.has_expert_faults = true;
    out.expert_faults = *report;
  }

  std::vector<ElementId> ranked =
      OrderByWins(out.result.candidates, tournament->tournament);
  ranked.resize(static_cast<size_t>(options.k));
  out.result.top = std::move(ranked);
  return out;
}

Result<BatchedMultilevelResult> PipelinedFindMaxMultilevel(
    const std::vector<ElementId>& items,
    const std::vector<PipelinedWorkerClassSpec>& classes,
    const MultilevelOptions& options,
    const BatchedPipelineOptions& pipeline) {
  if (classes.empty()) {
    return Status::InvalidArgument("at least one worker class is required");
  }
  for (const PipelinedWorkerClassSpec& spec : classes) {
    if (spec.async == nullptr) {
      return Status::InvalidArgument("worker class has null executor");
    }
    if (spec.cost_per_comparison < 0.0) {
      return Status::InvalidArgument("cost_per_comparison must be >= 0");
    }
  }
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  // Same run-span label as the batched path: the pipelined drive is
  // bit-identical to it, traces included.
  TraceSpanScope run_span(TraceSpanKind::kRun, "batched_multilevel");

  BatchedMultilevelResult out;
  out.result.paid_per_class.assign(classes.size(), 0);
  out.steps_per_class.assign(classes.size(), 0);

  std::vector<ElementId> current = items;

  // The class index doubles as the cache class (multilevel.h), so the
  // pipeline-level cache override is dropped in favour of per-level wiring.
  BatchedPipelineOptions level_pipeline = pipeline;
  level_pipeline.shared_cache = nullptr;

  for (size_t level = 0; level + 1 < classes.size(); ++level) {
    const PipelinedWorkerClassSpec& spec = classes[level];
    if (spec.u < 1) {
      return Status::InvalidArgument("worker class u must be >= 1");
    }
    FilterOptions filter = options.filter_template;
    filter.u_n = spec.u;
    if (options.shared_cache != nullptr) {
      filter.shared_cache = options.shared_cache;
      filter.cache_class = static_cast<int64_t>(level);
    }
    Result<BatchedFilterResult> filtered =
        PipelinedFilterCandidates(current, filter, spec.async, level_pipeline);
    if (!filtered.ok()) return filtered.status();
    out.result.paid_per_class[level] = filtered->filter.paid_comparisons;
    out.steps_per_class[level] = filtered->logical_steps;
    out.result.candidates_per_level.push_back(
        static_cast<int64_t>(filtered->filter.candidates.size()));
    if (filtered->partial) {
      out.partial = true;
      if (out.fault_status.ok()) out.fault_status = filtered->fault_status;
    }
    current = std::move(filtered->filter.candidates);
    if (current.empty()) {
      return Status::Internal("filter level returned an empty candidate set");
    }
  }

  const size_t last = classes.size() - 1;
  Result<std::unique_ptr<RoundEngine>> engine = RoundEngine::CreatePipelined(
      classes[last].async, pipeline.max_in_flight, options.shared_cache,
      static_cast<int64_t>(last));
  if (!engine.ok()) return engine.status();
  TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
  switch (options.final_phase) {
    case Phase2Algorithm::kTwoMaxFind: {
      Result<MaxFindEngineRun> run = RunTwoMaxFindOnEngine(
          current, engine->get(),
          TwoMaxFindEngineOptions{options.final_speculate});
      if (!run.ok()) return run.status();
      out.result.best = run->maxfind.best;
      if (run->partial) {
        out.partial = true;
        if (out.fault_status.ok()) out.fault_status = run->fault_status;
      }
      break;
    }
    case Phase2Algorithm::kRandomized: {
      Result<MaxFindEngineRun> run =
          RunRandomizedMaxFindOnEngine(current, engine->get(),
                                       options.randomized);
      if (!run.ok()) return run.status();
      out.result.best = run->maxfind.best;
      if (run->partial) {
        out.partial = true;
        if (out.fault_status.ok()) out.fault_status = run->fault_status;
      }
      break;
    }
    case Phase2Algorithm::kAllPlayAll: {
      Result<TournamentEngineRun> run = RunTournamentOnEngine(
          current, engine->get(), "all_play_all",
          TournamentEngineOptions{options.final_chunk_pairs});
      if (!run.ok()) return run.status();
      out.result.best = current[IndexOfMostWins(run->tournament)];
      if (run->unresolved > 0 || !run->fault.ok()) {
        out.partial = true;
        if (out.fault_status.ok()) {
          out.fault_status =
              run->fault.ok()
                  ? Status::Unavailable(
                        "final tournament left " +
                        std::to_string(run->unresolved) +
                        " comparisons unresolved; best is provisional")
                  : run->fault;
        }
      }
      break;
    }
  }
  out.result.paid_per_class[last] =
      (*engine)->paid() - (*engine)->speculation_wasted();
  out.steps_per_class[last] = (*engine)->logical_steps();

  for (size_t i = 0; i < classes.size(); ++i) {
    out.result.total_cost +=
        static_cast<double>(out.result.paid_per_class[i]) *
        classes[i].cost_per_comparison;
  }
  return out;
}

}  // namespace crowdmax
