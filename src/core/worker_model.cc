#include "core/worker_model.h"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.h"

namespace crowdmax {

namespace {

constexpr uint32_t kRngTag = CheckpointTag("RNG ");
constexpr uint32_t kStickyTag = CheckpointTag("STKY");

// Returns the element with the larger value; lower id on exact ties.
ElementId TrueWinner(const Instance& instance, ElementId a, ElementId b) {
  if (instance.value(a) > instance.value(b)) return a;
  if (instance.value(b) > instance.value(a)) return b;
  return std::min(a, b);
}

ElementId Other(ElementId winner, ElementId a, ElementId b) {
  return winner == a ? b : a;
}

}  // namespace

ThresholdComparator::ThresholdComparator(const Instance* instance,
                                         const Options& options,
                                         uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.model.Valid());
  CROWDMAX_CHECK(options.below_threshold_correct_prob >= 0.0 &&
                 options.below_threshold_correct_prob <= 1.0);
}

ThresholdComparator::ThresholdComparator(const Instance* instance,
                                         ThresholdModel model, uint64_t seed)
    : ThresholdComparator(instance, Options{model, TiePolicy::kFreshCoin, 0.5},
                          seed) {}

uint64_t ThresholdComparator::PairKey(ElementId a, ElementId b) {
  const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
  const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

ElementId ThresholdComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  if (instance_->Distance(a, b) > options_.model.delta) {
    // Discriminable pair: err with residual probability epsilon.
    if (rng_.NextBernoulli(options_.model.epsilon)) {
      return Other(correct, a, b);
    }
    return correct;
  }
  switch (options_.tie_policy) {
    case TiePolicy::kFreshCoin:
      return rng_.NextBernoulli(options_.below_threshold_correct_prob)
                 ? correct
                 : Other(correct, a, b);
    case TiePolicy::kPersistentArbitrary: {
      const uint64_t key = PairKey(a, b);
      auto it = sticky_answers_.find(key);
      if (it == sticky_answers_.end()) {
        const ElementId pick = rng_.NextBernoulli(0.5) ? a : b;
        it = sticky_answers_.emplace(key, pick).first;
      }
      return it->second;
    }
  }
  return correct;
}

std::unique_ptr<Comparator> ThresholdComparator::Fork(uint64_t seed) const {
  return std::make_unique<ThresholdComparator>(instance_, options_, seed);
}

Status ThresholdComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  writer->WriteTag(kStickyTag);
  writer->WriteSortedMap(sticky_answers_);
  return Status::OK();
}

Status ThresholdComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  reader->ExpectTag(kStickyTag);
  reader->ReadSortedMap(&sticky_answers_);
  return reader->status();
}

RelativeErrorComparator::RelativeErrorComparator(const Instance* instance,
                                                 const Options& options,
                                                 uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.base_error >= 0.0 && options.base_error <= 1.0);
  CROWDMAX_CHECK(options.max_error >= 0.0 && options.max_error <= 1.0);
  CROWDMAX_CHECK(options.decay >= 0.0);
}

ElementId RelativeErrorComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double rel = instance_->RelativeDifference(a, b);
  const double p_error = std::min(
      options_.max_error, options_.base_error * std::exp(-options_.decay * rel));
  if (rng_.NextBernoulli(p_error)) return Other(correct, a, b);
  return correct;
}

std::unique_ptr<Comparator> RelativeErrorComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<RelativeErrorComparator>(instance_, options_, seed);
}

Status RelativeErrorComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  return Status::OK();
}

Status RelativeErrorComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  return reader->status();
}

DistanceDecayComparator::DistanceDecayComparator(const Instance* instance,
                                                 const Options& options,
                                                 uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.delta >= 0.0);
  CROWDMAX_CHECK(options.below_threshold_correct_prob >= 0.0 &&
                 options.below_threshold_correct_prob <= 1.0);
  CROWDMAX_CHECK(options.epsilon_at_threshold >= 0.0 &&
                 options.epsilon_at_threshold < 0.5);
  CROWDMAX_CHECK(options.decay >= 0.0);
}

ElementId DistanceDecayComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double d = instance_->Distance(a, b);
  if (d <= options_.delta) {
    return rng_.NextBernoulli(options_.below_threshold_correct_prob)
               ? correct
               : Other(correct, a, b);
  }
  const double p_error = options_.epsilon_at_threshold *
                         std::exp(-options_.decay * (d - options_.delta));
  if (rng_.NextBernoulli(p_error)) return Other(correct, a, b);
  return correct;
}

std::unique_ptr<Comparator> DistanceDecayComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<DistanceDecayComparator>(instance_, options_, seed);
}

Status DistanceDecayComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  return Status::OK();
}

Status DistanceDecayComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  return reader->status();
}

PersistentBiasComparator::PersistentBiasComparator(const Instance* instance,
                                                   const Options& options,
                                                   uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  double prev = 0.0;
  for (const Bucket& bucket : options.buckets) {
    CROWDMAX_CHECK(bucket.max_relative_difference >= prev);
    CROWDMAX_CHECK(bucket.preferred_correct_prob >= 0.0 &&
                   bucket.preferred_correct_prob <= 1.0);
    prev = bucket.max_relative_difference;
  }
  CROWDMAX_CHECK(options.individual_noise >= 0.0 &&
                 options.individual_noise <= 1.0);
  CROWDMAX_CHECK(options.above_threshold_error >= 0.0 &&
                 options.above_threshold_error < 0.5);
}

uint64_t PersistentBiasComparator::PairKey(ElementId a, ElementId b) {
  const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
  const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

ElementId PersistentBiasComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double rel = instance_->RelativeDifference(a, b);

  const Bucket* bucket = nullptr;
  for (const Bucket& candidate : options_.buckets) {
    if (rel <= candidate.max_relative_difference) {
      bucket = &candidate;
      break;
    }
  }

  if (bucket == nullptr) {
    // Easy pair: independent per-query error.
    if (rng_.NextBernoulli(options_.above_threshold_error)) {
      return Other(correct, a, b);
    }
    return correct;
  }

  // Hard pair: resolve (or recall) the crowd's persistent preference, then
  // apply individual per-query noise around it.
  const uint64_t key = PairKey(a, b);
  auto it = preferred_.find(key);
  if (it == preferred_.end()) {
    const bool preference_correct =
        rng_.NextBernoulli(bucket->preferred_correct_prob);
    const ElementId preferred =
        preference_correct ? correct : Other(correct, a, b);
    it = preferred_.emplace(key, preferred).first;
  }
  const ElementId preferred = it->second;
  if (rng_.NextBernoulli(options_.individual_noise)) {
    return Other(preferred, a, b);
  }
  return preferred;
}

std::unique_ptr<Comparator> PersistentBiasComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<PersistentBiasComparator>(instance_, options_, seed);
}

Status PersistentBiasComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  writer->WriteTag(kStickyTag);
  writer->WriteSortedMap(preferred_);
  return Status::OK();
}

Status PersistentBiasComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  reader->ExpectTag(kStickyTag);
  reader->ReadSortedMap(&preferred_);
  return reader->status();
}

}  // namespace crowdmax
