#include "core/worker_model.h"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.h"
#include "core/pair_key.h"

namespace crowdmax {

namespace {

constexpr uint32_t kRngTag = CheckpointTag("RNG ");
constexpr uint32_t kStickyTag = CheckpointTag("STKY");

// Returns the element with the larger value; lower id on exact ties.
ElementId TrueWinner(const Instance& instance, ElementId a, ElementId b) {
  if (instance.value(a) > instance.value(b)) return a;
  if (instance.value(b) > instance.value(a)) return b;
  return std::min(a, b);
}

ElementId Other(ElementId winner, ElementId a, ElementId b) {
  return winner == a ? b : a;
}

// Length of the longest prefix of `pairs` whose ids are all inside the
// instance. GenerateVotes answers exactly this prefix: the first invalid
// pair (negative sentinel or out of range) is refused, not answered, not
// charged.
size_t ValidPrefix(const Instance& instance,
                   std::span<const ComparisonPair> pairs) {
  size_t n = 0;
  for (; n < pairs.size(); ++n) {
    if (!instance.Contains(pairs[n].first) ||
        !instance.Contains(pairs[n].second)) {
      break;
    }
  }
  return n;
}

// Resolves n precomputed draws with one unconditional uniform draw each.
// Valid only when every prob is strictly inside (0, 1): in that regime
// NextBernoulli(p) == (NextDouble() < p) bit-for-bit, with exactly one
// Next() consumed either way, so this loop leaves the RNG stream in the
// same position as n per-call draws.
void DrawBranchFree(Rng& rng, const VoteBatchScratch& s, size_t n,
                    std::span<ElementId> out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = rng.NextDouble() < s.prob[i] ? s.on_true[i] : s.on_false[i];
  }
}

// Fallback when some prob touches 0 or 1 (e.g. exp() underflow): defer to
// NextBernoulli per row so degenerate draws skip the RNG exactly like the
// per-call path.
void DrawGated(Rng& rng, const VoteBatchScratch& s, size_t n,
               std::span<ElementId> out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = rng.NextBernoulli(s.prob[i]) ? s.on_true[i] : s.on_false[i];
  }
}

bool Open(double p) { return p > 0.0 && p < 1.0; }

}  // namespace

ThresholdComparator::ThresholdComparator(const Instance* instance,
                                         const Options& options,
                                         uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.model.Valid());
  CROWDMAX_CHECK(options.below_threshold_correct_prob >= 0.0 &&
                 options.below_threshold_correct_prob <= 1.0);
}

ThresholdComparator::ThresholdComparator(const Instance* instance,
                                         ThresholdModel model, uint64_t seed)
    : ThresholdComparator(instance, Options{model, TiePolicy::kFreshCoin, 0.5},
                          seed) {}

ElementId ThresholdComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  if (instance_->Distance(a, b) > options_.model.delta) {
    // Discriminable pair: err with residual probability epsilon.
    if (rng_.NextBernoulli(options_.model.epsilon)) {
      return Other(correct, a, b);
    }
    return correct;
  }
  switch (options_.tie_policy) {
    case TiePolicy::kFreshCoin:
      return rng_.NextBernoulli(options_.below_threshold_correct_prob)
                 ? correct
                 : Other(correct, a, b);
    case TiePolicy::kPersistentArbitrary: {
      const uint64_t key = PackPairKey(a, b);
      ElementId* sticky = sticky_answers_.Find(key);
      if (sticky == nullptr) {
        const ElementId pick = rng_.NextBernoulli(0.5) ? a : b;
        sticky = sticky_answers_.Insert(key, pick);
      }
      return *sticky;
    }
  }
  return correct;
}

int64_t ThresholdComparator::GenerateVotes(
    std::span<const ComparisonPair> pairs, std::span<ElementId> out) {
  CROWDMAX_CHECK(out.size() >= pairs.size());
  const size_t n = ValidPrefix(*instance_, pairs);
  scratch_.Resize(n);
  bool all_open = true;
  bool any_sticky = false;
  for (size_t i = 0; i < n; ++i) {
    const auto [a, b] = pairs[i];
    const ElementId correct = TrueWinner(*instance_, a, b);
    if (instance_->Distance(a, b) > options_.model.delta) {
      scratch_.prob[i] = options_.model.epsilon;
      scratch_.on_true[i] = Other(correct, a, b);
      scratch_.on_false[i] = correct;
      scratch_.sticky[i] = 0;
    } else if (options_.tie_policy == TiePolicy::kFreshCoin) {
      scratch_.prob[i] = options_.below_threshold_correct_prob;
      scratch_.on_true[i] = correct;
      scratch_.on_false[i] = Other(correct, a, b);
      scratch_.sticky[i] = 0;
    } else {
      // kPersistentArbitrary: the sticky pick uses *argument* order
      // (pick = coin ? a : b), so stash a/b, not correct/other.
      scratch_.on_true[i] = a;
      scratch_.on_false[i] = b;
      scratch_.prob[i] = 0.5;
      scratch_.sticky[i] = 1;
      any_sticky = true;
    }
    all_open = all_open && Open(scratch_.prob[i]);
  }
  if (!any_sticky) {
    if (all_open) {
      DrawBranchFree(rng_, scratch_, n, out);
    } else {
      DrawGated(rng_, scratch_, n, out);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (scratch_.sticky[i] == 0) {
        out[i] = rng_.NextBernoulli(scratch_.prob[i]) ? scratch_.on_true[i]
                                                      : scratch_.on_false[i];
        continue;
      }
      const ElementId a = scratch_.on_true[i];
      const ElementId b = scratch_.on_false[i];
      const uint64_t key = PackPairKey(a, b);
      ElementId* sticky = sticky_answers_.Find(key);
      if (sticky == nullptr) {
        const ElementId pick = rng_.NextBernoulli(0.5) ? a : b;
        sticky = sticky_answers_.Insert(key, pick);
      }
      out[i] = *sticky;
    }
  }
  AddComparisons(static_cast<int64_t>(n));
  return static_cast<int64_t>(n);
}

std::unique_ptr<Comparator> ThresholdComparator::Fork(uint64_t seed) const {
  return std::make_unique<ThresholdComparator>(instance_, options_, seed);
}

Status ThresholdComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  writer->WriteTag(kStickyTag);
  SavePairTable(writer, sticky_answers_);
  return Status::OK();
}

Status ThresholdComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  reader->ExpectTag(kStickyTag);
  LoadPairTable(reader, &sticky_answers_);
  return reader->status();
}

RelativeErrorComparator::RelativeErrorComparator(const Instance* instance,
                                                 const Options& options,
                                                 uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.base_error >= 0.0 && options.base_error <= 1.0);
  CROWDMAX_CHECK(options.max_error >= 0.0 && options.max_error <= 1.0);
  CROWDMAX_CHECK(options.decay >= 0.0);
}

ElementId RelativeErrorComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double rel = instance_->RelativeDifference(a, b);
  const double p_error = std::min(
      options_.max_error, options_.base_error * std::exp(-options_.decay * rel));
  if (rng_.NextBernoulli(p_error)) return Other(correct, a, b);
  return correct;
}

int64_t RelativeErrorComparator::GenerateVotes(
    std::span<const ComparisonPair> pairs, std::span<ElementId> out) {
  CROWDMAX_CHECK(out.size() >= pairs.size());
  const size_t n = ValidPrefix(*instance_, pairs);
  scratch_.Resize(n);
  bool all_open = true;
  for (size_t i = 0; i < n; ++i) {
    const auto [a, b] = pairs[i];
    const ElementId correct = TrueWinner(*instance_, a, b);
    const double rel = instance_->RelativeDifference(a, b);
    const double p_error =
        std::min(options_.max_error,
                 options_.base_error * std::exp(-options_.decay * rel));
    scratch_.prob[i] = p_error;
    scratch_.on_true[i] = Other(correct, a, b);
    scratch_.on_false[i] = correct;
    all_open = all_open && Open(p_error);
  }
  if (all_open) {
    DrawBranchFree(rng_, scratch_, n, out);
  } else {
    DrawGated(rng_, scratch_, n, out);
  }
  AddComparisons(static_cast<int64_t>(n));
  return static_cast<int64_t>(n);
}

std::unique_ptr<Comparator> RelativeErrorComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<RelativeErrorComparator>(instance_, options_, seed);
}

Status RelativeErrorComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  return Status::OK();
}

Status RelativeErrorComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  return reader->status();
}

DistanceDecayComparator::DistanceDecayComparator(const Instance* instance,
                                                 const Options& options,
                                                 uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.delta >= 0.0);
  CROWDMAX_CHECK(options.below_threshold_correct_prob >= 0.0 &&
                 options.below_threshold_correct_prob <= 1.0);
  CROWDMAX_CHECK(options.epsilon_at_threshold >= 0.0 &&
                 options.epsilon_at_threshold < 0.5);
  CROWDMAX_CHECK(options.decay >= 0.0);
}

ElementId DistanceDecayComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double d = instance_->Distance(a, b);
  if (d <= options_.delta) {
    return rng_.NextBernoulli(options_.below_threshold_correct_prob)
               ? correct
               : Other(correct, a, b);
  }
  const double p_error = options_.epsilon_at_threshold *
                         std::exp(-options_.decay * (d - options_.delta));
  if (rng_.NextBernoulli(p_error)) return Other(correct, a, b);
  return correct;
}

int64_t DistanceDecayComparator::GenerateVotes(
    std::span<const ComparisonPair> pairs, std::span<ElementId> out) {
  CROWDMAX_CHECK(out.size() >= pairs.size());
  const size_t n = ValidPrefix(*instance_, pairs);
  scratch_.Resize(n);
  bool all_open = true;
  for (size_t i = 0; i < n; ++i) {
    const auto [a, b] = pairs[i];
    const ElementId correct = TrueWinner(*instance_, a, b);
    const double d = instance_->Distance(a, b);
    if (d <= options_.delta) {
      scratch_.prob[i] = options_.below_threshold_correct_prob;
      scratch_.on_true[i] = correct;
      scratch_.on_false[i] = Other(correct, a, b);
    } else {
      scratch_.prob[i] = options_.epsilon_at_threshold *
                         std::exp(-options_.decay * (d - options_.delta));
      scratch_.on_true[i] = Other(correct, a, b);
      scratch_.on_false[i] = correct;
    }
    all_open = all_open && Open(scratch_.prob[i]);
  }
  if (all_open) {
    DrawBranchFree(rng_, scratch_, n, out);
  } else {
    DrawGated(rng_, scratch_, n, out);
  }
  AddComparisons(static_cast<int64_t>(n));
  return static_cast<int64_t>(n);
}

std::unique_ptr<Comparator> DistanceDecayComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<DistanceDecayComparator>(instance_, options_, seed);
}

Status DistanceDecayComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  return Status::OK();
}

Status DistanceDecayComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  return reader->status();
}

PersistentBiasComparator::PersistentBiasComparator(const Instance* instance,
                                                   const Options& options,
                                                   uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  double prev = 0.0;
  for (const Bucket& bucket : options.buckets) {
    CROWDMAX_CHECK(bucket.max_relative_difference >= prev);
    CROWDMAX_CHECK(bucket.preferred_correct_prob >= 0.0 &&
                   bucket.preferred_correct_prob <= 1.0);
    prev = bucket.max_relative_difference;
  }
  CROWDMAX_CHECK(options.individual_noise >= 0.0 &&
                 options.individual_noise <= 1.0);
  CROWDMAX_CHECK(options.above_threshold_error >= 0.0 &&
                 options.above_threshold_error < 0.5);
}

ElementId PersistentBiasComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double rel = instance_->RelativeDifference(a, b);

  const Bucket* bucket = nullptr;
  for (const Bucket& candidate : options_.buckets) {
    if (rel <= candidate.max_relative_difference) {
      bucket = &candidate;
      break;
    }
  }

  if (bucket == nullptr) {
    // Easy pair: independent per-query error.
    if (rng_.NextBernoulli(options_.above_threshold_error)) {
      return Other(correct, a, b);
    }
    return correct;
  }

  // Hard pair: resolve (or recall) the crowd's persistent preference, then
  // apply individual per-query noise around it.
  const uint64_t key = PackPairKey(a, b);
  ElementId* slot = preferred_.Find(key);
  if (slot == nullptr) {
    const bool preference_correct =
        rng_.NextBernoulli(bucket->preferred_correct_prob);
    const ElementId preferred =
        preference_correct ? correct : Other(correct, a, b);
    slot = preferred_.Insert(key, preferred);
  }
  const ElementId preferred = *slot;
  if (rng_.NextBernoulli(options_.individual_noise)) {
    return Other(preferred, a, b);
  }
  return preferred;
}

int64_t PersistentBiasComparator::GenerateVotes(
    std::span<const ComparisonPair> pairs, std::span<ElementId> out) {
  CROWDMAX_CHECK(out.size() >= pairs.size());
  const size_t n = ValidPrefix(*instance_, pairs);
  scratch_.Resize(n);
  bool all_open = true;
  bool any_hard = false;
  for (size_t i = 0; i < n; ++i) {
    const auto [a, b] = pairs[i];
    const ElementId correct = TrueWinner(*instance_, a, b);
    const double rel = instance_->RelativeDifference(a, b);
    const Bucket* bucket = nullptr;
    for (const Bucket& candidate : options_.buckets) {
      if (rel <= candidate.max_relative_difference) {
        bucket = &candidate;
        break;
      }
    }
    scratch_.on_true[i] = correct;
    scratch_.on_false[i] = Other(correct, a, b);
    if (bucket == nullptr) {
      // Easy pair: one error draw, errs toward the non-correct element.
      scratch_.prob[i] = options_.above_threshold_error;
      std::swap(scratch_.on_true[i], scratch_.on_false[i]);
      scratch_.sticky[i] = 0;
    } else {
      // Hard pair: prob holds the first-touch preference draw; the noise
      // draw is applied in the sequential pass.
      scratch_.prob[i] = bucket->preferred_correct_prob;
      scratch_.sticky[i] = 1;
      any_hard = true;
    }
    all_open = all_open && Open(scratch_.prob[i]);
  }
  if (!any_hard) {
    if (all_open) {
      DrawBranchFree(rng_, scratch_, n, out);
    } else {
      DrawGated(rng_, scratch_, n, out);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (scratch_.sticky[i] == 0) {
        out[i] = rng_.NextBernoulli(scratch_.prob[i]) ? scratch_.on_true[i]
                                                      : scratch_.on_false[i];
        continue;
      }
      const ElementId correct = scratch_.on_true[i];
      const ElementId other = scratch_.on_false[i];
      const uint64_t key = PackPairKey(correct, other);
      ElementId* slot = preferred_.Find(key);
      ElementId preferred;
      if (slot == nullptr) {
        preferred = rng_.NextBernoulli(scratch_.prob[i]) ? correct : other;
        preferred_.Insert(key, preferred);
      } else {
        preferred = *slot;
      }
      out[i] = rng_.NextBernoulli(options_.individual_noise)
                   ? (preferred == correct ? other : correct)
                   : preferred;
    }
  }
  AddComparisons(static_cast<int64_t>(n));
  return static_cast<int64_t>(n);
}

std::unique_ptr<Comparator> PersistentBiasComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<PersistentBiasComparator>(instance_, options_, seed);
}

Status PersistentBiasComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  writer->WriteTag(kStickyTag);
  SavePairTable(writer, preferred_);
  return Status::OK();
}

Status PersistentBiasComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  reader->ExpectTag(kStickyTag);
  LoadPairTable(reader, &preferred_);
  return reader->status();
}

}  // namespace crowdmax
