#include "core/worker_model.h"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.h"
#include "core/pair_key.h"

// Same compile-time guard as common/rng.cc: AVX2 clones of the vote
// precompute loops are compiled whenever the build enables CROWDMAX_SIMD on
// an x86-64 GNU-compatible toolchain; whether they run is decided per call
// from RngBulkSimdActive(), so one switch (build option, CPU support,
// CROWDMAX_NO_SIMD, SetRngBulkSimd) governs every SIMD path in the binary.
#if defined(CROWDMAX_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CROWDMAX_VOTE_AVX2 1
#endif

namespace crowdmax {

namespace {

constexpr uint32_t kRngTag = CheckpointTag("RNG ");
constexpr uint32_t kStickyTag = CheckpointTag("STKY");

// Returns the element with the larger value; lower id on exact ties.
ElementId TrueWinner(const Instance& instance, ElementId a, ElementId b) {
  if (instance.value(a) > instance.value(b)) return a;
  if (instance.value(b) > instance.value(a)) return b;
  return std::min(a, b);
}

ElementId Other(ElementId winner, ElementId a, ElementId b) {
  return winner == a ? b : a;
}

// Length of the longest prefix of `pairs` whose ids are all inside the
// instance. GenerateVotes answers exactly this prefix: the first invalid
// pair (negative sentinel or out of range) is refused, not answered, not
// charged.
size_t ValidPrefix(const Instance& instance,
                   std::span<const ComparisonPair> pairs) {
  size_t n = 0;
  for (; n < pairs.size(); ++n) {
    if (!instance.Contains(pairs[n].first) ||
        !instance.Contains(pairs[n].second)) {
      break;
    }
  }
  return n;
}

// Resolves n precomputed draws with one unconditional uniform draw each.
// Valid only when every prob is strictly inside (0, 1): in that regime
// NextBernoulli(p) == (NextDouble() < p) bit-for-bit, with exactly one
// Next() consumed either way, so this loop leaves the RNG stream in the
// same position as n per-call draws.
void DrawBranchFree(Rng& rng, const VoteBatchScratch& s, size_t n,
                    std::span<ElementId> out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = rng.NextDouble() < s.prob[i] ? s.on_true[i] : s.on_false[i];
  }
}

// Fallback when some prob touches 0 or 1 (e.g. exp() underflow): defer to
// NextBernoulli per row so degenerate draws skip the RNG exactly like the
// per-call path.
void DrawGated(Rng& rng, const VoteBatchScratch& s, size_t n,
               std::span<ElementId> out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = rng.NextBernoulli(s.prob[i]) ? s.on_true[i] : s.on_false[i];
  }
}

bool Open(double p) { return p > 0.0 && p < 1.0; }

// ---- Bulk draw resolution (DESIGN.md §16) --------------------------------

// Clamped 53-bit threshold: the Rng::BernoulliThreshold mapping extended
// to the draw-free edges. 0 encodes "never true, no draw" (p <= 0, and
// NaN — but models validate their probabilities), 2^53 encodes "always
// true, no draw" (p >= 1); everything in between is an open draw.
constexpr uint64_t kAlwaysThreshold = uint64_t{1} << 53;
constexpr uint64_t kHalfThreshold = uint64_t{1} << 52;  // BernoulliThreshold(.5)

uint64_t ClampedThreshold(double p) {
  if (!(p > 0.0)) return 0;
  if (p >= 1.0) return kAlwaysThreshold;
  return Rng::BernoulliThreshold(p);
}

// Whether a clamped threshold consumes a draw (p strictly inside (0, 1)).
bool ThresholdDraws(uint64_t threshold) {
  return threshold != 0 && threshold != kAlwaysThreshold;
}

// Resolves one row against a pre-generated raw draw stream: open
// thresholds consume the next raw word, edge thresholds answer without
// consuming — the per-call NextBernoulli contract over a FillRaw buffer.
bool ConsumeDraw(const uint64_t* raw, uint64_t threshold, size_t* cursor) {
  if (!ThresholdDraws(threshold)) return threshold != 0;
  return (raw[(*cursor)++] >> 11) < threshold;
}

// Hot loops below hoist the scratch arrays into __restrict locals: left
// as std::vector subscripts, GCC must assume every store may alias the
// vectors' internal pointers and reloads them per row, which blocks cmov
// conversion and costs ~7x on the random-data selects (measured; see
// DESIGN.md §16).
void SelectVotes(const VoteBatchScratch& s, size_t n,
                 std::span<ElementId> out) {
  const uint8_t* __restrict bits = s.bits.data();
  const ElementId* __restrict on_true = s.on_true.data();
  const ElementId* __restrict on_false = s.on_false.data();
  ElementId* o = out.data();
  for (size_t i = 0; i < n; ++i) {
    o[i] = bits[i] ? on_true[i] : on_false[i];
  }
}

// ---- Threshold fresh-coin precompute kernel ------------------------------
//
// The per-row classify/select loop of ThresholdComparator's fresh-coin bulk
// path, factored out so an AVX2 clone can be compiled next to the baseline
// build. The library targets generic x86-64, where GCC cannot vectorize
// this loop (value gathers need vgatherqpd); inside a target("avx2")
// function the very same body auto-vectorizes and runs ~4x faster
// (measured 10.4 ns -> 2.4 ns per row). Every operation involved —
// double compare, subtract, fabs, integer select — is IEEE-exact and
// lane-independent, so the clones are bit-identical by construction; the
// in-bench CHECKs and VoteBatchEquivalenceTest pin this at runtime.
struct PrecomputeSummary {
  unsigned saw_above;
  unsigned saw_below;
};

__attribute__((always_inline)) inline PrecomputeSummary
ThresholdFreshPrecomputeBody(const ComparisonPair* p, size_t n,
                             const Instance& inst, double delta,
                             uint64_t eps_thr, uint64_t coin_thr,
                             uint64_t* __restrict threshold,
                             ElementId* __restrict on_true,
                             ElementId* __restrict on_false) {
  unsigned saw_above = 0;
  unsigned saw_below = 0;
  for (size_t i = 0; i < n; ++i) {
    const ElementId a = p[i].first;
    const ElementId b = p[i].second;
    const double va = inst.value(a);
    const double vb = inst.value(b);
    // Exact FP operations of TrueWinner + Instance::Distance, so
    // classification cannot diverge from the per-call path.
    const bool a_wins = (va > vb) | ((va == vb) & (a < b));
    const bool above = std::fabs(va - vb) > delta;
    // sel folds correct/other into one pair of selects: above rows put
    // the loser on the draw's true side, below rows the winner.
    const bool sel = a_wins != above;
    threshold[i] = above ? eps_thr : coin_thr;
    on_true[i] = sel ? a : b;
    on_false[i] = sel ? b : a;
    saw_above |= static_cast<unsigned>(above);
    saw_below |= static_cast<unsigned>(!above);
  }
  return {saw_above, saw_below};
}

PrecomputeSummary ThresholdFreshPrecomputeScalar(
    const ComparisonPair* p, size_t n, const Instance& inst, double delta,
    uint64_t eps_thr, uint64_t coin_thr, uint64_t* threshold,
    ElementId* on_true, ElementId* on_false) {
  return ThresholdFreshPrecomputeBody(p, n, inst, delta, eps_thr, coin_thr,
                                      threshold, on_true, on_false);
}

#if CROWDMAX_VOTE_AVX2
// optimize("O3") matters: at -O2 the vectorizer's very-cheap cost model
// refuses loops with a runtime trip count (an epilogue would be needed),
// so the clone would silently compile scalar. O3's full cost model
// vectorizes it (verified by the vgather in the disassembly and the
// bench delta).
__attribute__((target("avx2"), optimize("O3"))) PrecomputeSummary
ThresholdFreshPrecomputeAvx2(
    const ComparisonPair* p, size_t n, const Instance& inst, double delta,
    uint64_t eps_thr, uint64_t coin_thr, uint64_t* threshold,
    ElementId* on_true, ElementId* on_false) {
  return ThresholdFreshPrecomputeBody(p, n, inst, delta, eps_thr, coin_thr,
                                      threshold, on_true, on_false);
}
#endif

PrecomputeSummary ThresholdFreshPrecompute(const ComparisonPair* p, size_t n,
                                           const Instance& inst, double delta,
                                           uint64_t eps_thr, uint64_t coin_thr,
                                           uint64_t* threshold,
                                           ElementId* on_true,
                                           ElementId* on_false) {
#if CROWDMAX_VOTE_AVX2
  if (RngBulkSimdActive()) {
    return ThresholdFreshPrecomputeAvx2(p, n, inst, delta, eps_thr, coin_thr,
                                        threshold, on_true, on_false);
  }
#endif
  return ThresholdFreshPrecomputeScalar(p, n, inst, delta, eps_thr, coin_thr,
                                        threshold, on_true, on_false);
}

// Resolves n independent (sticky-free) rows on the scalar (pre-bulk) draw
// path: the per-row float-compare loop over scratch.prob, branch-free when
// every probability is open.
void ResolveIndependentScalar(Rng& rng, VoteBatchScratch& s, size_t n,
                              bool all_open, std::span<ElementId> out) {
  if (all_open) {
    DrawBranchFree(rng, s, n, out);
  } else {
    DrawGated(rng, s, n, out);
  }
}

// Resolves n independent (sticky-free) rows with the bulk kernels, driven
// entirely by scratch.threshold — prob[] is never read. When every row
// draws, one FillBernoulliThresholds call resolves the batch; otherwise
// raw words are generated for exactly the open rows and walked in order,
// so closed rows skip the stream like per-call NextBernoulli. (The one
// divergence from NextBernoulli: ClampedThreshold folds NaN to "never
// true, no draw" where NextBernoulli draws and fails — unreachable here
// because every model CHECK-validates its probabilities.) Bit-identity
// with the scalar path is pinned by rng_test and VoteBatchEquivalenceTest.
void ResolveIndependentBulk(Rng& rng, VoteBatchScratch& s, size_t n,
                            bool all_open, std::span<ElementId> out) {
  if (all_open) {
    rng.FillBernoulliThresholds({s.threshold.data(), n}, {s.bits.data(), n});
    SelectVotes(s, n, out);
    return;
  }
  const uint64_t* __restrict threshold = s.threshold.data();
  size_t draws = 0;
  for (size_t i = 0; i < n; ++i) {
    draws += ThresholdDraws(threshold[i]) ? 1 : 0;
  }
  s.raw.resize(draws);
  rng.FillRaw({s.raw.data(), draws});
  const uint64_t* __restrict raw = s.raw.data();
  const ElementId* __restrict on_true = s.on_true.data();
  const ElementId* __restrict on_false = s.on_false.data();
  ElementId* o = out.data();
  size_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    o[i] = ConsumeDraw(raw, threshold[i], &cursor) ? on_true[i] : on_false[i];
  }
  CROWDMAX_DCHECK(cursor == draws);
}

}  // namespace

ThresholdComparator::ThresholdComparator(const Instance* instance,
                                         const Options& options,
                                         uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.model.Valid());
  CROWDMAX_CHECK(options.below_threshold_correct_prob >= 0.0 &&
                 options.below_threshold_correct_prob <= 1.0);
  epsilon_threshold_ = ClampedThreshold(options.model.epsilon);
  coin_threshold_ = ClampedThreshold(options.below_threshold_correct_prob);
}

ThresholdComparator::ThresholdComparator(const Instance* instance,
                                         ThresholdModel model, uint64_t seed)
    : ThresholdComparator(instance, Options{model, TiePolicy::kFreshCoin, 0.5},
                          seed) {}

ElementId ThresholdComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  if (instance_->Distance(a, b) > options_.model.delta) {
    // Discriminable pair: err with residual probability epsilon.
    if (rng_.NextBernoulli(options_.model.epsilon)) {
      return Other(correct, a, b);
    }
    return correct;
  }
  switch (options_.tie_policy) {
    case TiePolicy::kFreshCoin:
      return rng_.NextBernoulli(options_.below_threshold_correct_prob)
                 ? correct
                 : Other(correct, a, b);
    case TiePolicy::kPersistentArbitrary: {
      const uint64_t key = PackPairKey(a, b);
      ElementId* sticky = sticky_answers_.Find(key);
      if (sticky == nullptr) {
        const ElementId pick = rng_.NextBernoulli(0.5) ? a : b;
        sticky = sticky_answers_.Insert(key, pick);
      }
      return *sticky;
    }
  }
  return correct;
}

int64_t ThresholdComparator::GenerateVotes(
    std::span<const ComparisonPair> pairs, std::span<ElementId> out) {
  CROWDMAX_CHECK(out.size() >= pairs.size());
  const size_t n = ValidPrefix(*instance_, pairs);
  scratch_.Resize(n);
  if (!bulk_draws()) {
    GenerateVotesScalar(pairs, n, out);
    AddComparisons(static_cast<int64_t>(n));
    return static_cast<int64_t>(n);
  }
  const double delta = options_.model.delta;
  const uint64_t eps_thr = epsilon_threshold_;
  const bool eps_draws = ThresholdDraws(eps_thr);
  if (options_.tie_policy == TiePolicy::kFreshCoin) {
    // Fresh-coin precompute: two regimes, each with a constant per-class
    // threshold, so the kernel is inline value loads plus branchless
    // selects — no prob[]/sticky[] traffic and no out-of-line calls. The
    // kernel is runtime-dispatched scalar/AVX2 (bit-identical; see the
    // definitions above).
    const uint64_t coin_thr = coin_threshold_;
    const PrecomputeSummary summary = ThresholdFreshPrecompute(
        pairs.data(), n, *instance_, delta, eps_thr, coin_thr,
        scratch_.threshold.data(), scratch_.on_true.data(),
        scratch_.on_false.data());
    const bool all_open = (!summary.saw_above || eps_draws) &&
                          (!summary.saw_below || ThresholdDraws(coin_thr));
    ResolveIndependentBulk(rng_, scratch_, n, all_open, out);
    AddComparisons(static_cast<int64_t>(n));
    return static_cast<int64_t>(n);
  }
  // kPersistentArbitrary. Pass 1 (no RNG): classify each row, touch the
  // sticky table exactly once (Reserve pins the arena, so the Insert's
  // slot pointer stays valid for the whole batch), and count the exact
  // draws the per-call path would make. The sticky pick uses *argument*
  // order (pick = coin ? a : b), so stash a/b, not correct/other.
  scratch_.slots.resize(n);
  sticky_answers_.Reserve(static_cast<int64_t>(n));
  const ComparisonPair* p = pairs.data();
  uint64_t* __restrict threshold = scratch_.threshold.data();
  ElementId* __restrict on_true = scratch_.on_true.data();
  ElementId* __restrict on_false = scratch_.on_false.data();
  uint8_t* __restrict sticky = scratch_.sticky.data();
  ElementId** __restrict slots = scratch_.slots.data();
  bool any_sticky = false;
  size_t draws = 0;
  for (size_t i = 0; i < n; ++i) {
    const ElementId a = p[i].first;
    const ElementId b = p[i].second;
    const double va = instance_->value(a);
    const double vb = instance_->value(b);
    if (std::fabs(va - vb) > delta) {
      const bool a_wins = (va > vb) | ((va == vb) & (a < b));
      threshold[i] = eps_thr;
      on_true[i] = a_wins ? b : a;
      on_false[i] = a_wins ? a : b;
      sticky[i] = 0;
      draws += eps_draws ? 1 : 0;
    } else {
      on_true[i] = a;
      on_false[i] = b;
      bool fresh = false;
      // Placeholder value; pass 2 draws the real pick through the slot.
      slots[i] = sticky_answers_.Insert(PackPairKey(a, b), a, &fresh);
      sticky[i] = fresh ? 1 : 2;
      draws += fresh ? 1 : 0;  // The 0.5 coin is always an open draw.
      any_sticky = true;
    }
  }
  if (!any_sticky) {
    // Every row was above-threshold, so openness is the one class flag.
    ResolveIndependentBulk(rng_, scratch_, n, eps_draws, out);
  } else {
    // Pass 2: bulk-generate the exact draw count, then walk the rows in
    // order consuming draws — the same draw-per-row schedule as per-call.
    // Sticky rows resolve through the pass-1 slot pointers: no re-probe.
    scratch_.raw.resize(draws);
    rng_.FillRaw({scratch_.raw.data(), draws});
    const uint64_t* __restrict raw = scratch_.raw.data();
    size_t cursor = 0;
    for (size_t i = 0; i < n; ++i) {
      if (sticky[i] == 0) {
        out[i] = ConsumeDraw(raw, threshold[i], &cursor) ? on_true[i]
                                                         : on_false[i];
      } else if (sticky[i] == 1) {
        const ElementId pick =
            ConsumeDraw(raw, kHalfThreshold, &cursor) ? on_true[i]
                                                      : on_false[i];
        *slots[i] = pick;
        out[i] = pick;
      } else {
        out[i] = *slots[i];
      }
    }
    CROWDMAX_DCHECK(cursor == draws);
  }
  AddComparisons(static_cast<int64_t>(n));
  return static_cast<int64_t>(n);
}

// The pre-bulk scalar batch path, kept bit-identical as the
// bench_hotpath "batch" baseline and the bulk-toggle test twin.
void ThresholdComparator::GenerateVotesScalar(
    std::span<const ComparisonPair> pairs, size_t n,
    std::span<ElementId> out) {
  const bool persistent =
      options_.tie_policy == TiePolicy::kPersistentArbitrary;
  if (persistent) {
    scratch_.slots.resize(n);
    sticky_answers_.Reserve(static_cast<int64_t>(n));
  }
  bool all_open = true;
  bool any_sticky = false;
  for (size_t i = 0; i < n; ++i) {
    const auto [a, b] = pairs[i];
    const ElementId correct = TrueWinner(*instance_, a, b);
    if (instance_->Distance(a, b) > options_.model.delta) {
      scratch_.prob[i] = options_.model.epsilon;
      scratch_.on_true[i] = Other(correct, a, b);
      scratch_.on_false[i] = correct;
      scratch_.sticky[i] = 0;
    } else if (!persistent) {
      scratch_.prob[i] = options_.below_threshold_correct_prob;
      scratch_.on_true[i] = correct;
      scratch_.on_false[i] = Other(correct, a, b);
      scratch_.sticky[i] = 0;
    } else {
      // kPersistentArbitrary: the sticky pick uses *argument* order
      // (pick = coin ? a : b), so stash a/b, not correct/other. Touch
      // the table once here (no RNG) and cache the Reserve-pinned slot;
      // the sequential walk below draws through it without re-probing.
      scratch_.on_true[i] = a;
      scratch_.on_false[i] = b;
      scratch_.prob[i] = 0.5;
      bool fresh = false;
      scratch_.slots[i] = sticky_answers_.Insert(PackPairKey(a, b), a, &fresh);
      scratch_.sticky[i] = fresh ? 1 : 2;
      any_sticky = true;
    }
    all_open = all_open && Open(scratch_.prob[i]);
  }
  if (!any_sticky) {
    ResolveIndependentScalar(rng_, scratch_, n, all_open, out);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (scratch_.sticky[i] == 0) {
      out[i] = rng_.NextBernoulli(scratch_.prob[i]) ? scratch_.on_true[i]
                                                    : scratch_.on_false[i];
    } else if (scratch_.sticky[i] == 1) {
      const ElementId pick =
          rng_.NextBernoulli(0.5) ? scratch_.on_true[i] : scratch_.on_false[i];
      *scratch_.slots[i] = pick;
      out[i] = pick;
    } else {
      out[i] = *scratch_.slots[i];
    }
  }
}

std::unique_ptr<Comparator> ThresholdComparator::Fork(uint64_t seed) const {
  return std::make_unique<ThresholdComparator>(instance_, options_, seed);
}

Status ThresholdComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  writer->WriteTag(kStickyTag);
  SavePairTable(writer, sticky_answers_);
  return Status::OK();
}

Status ThresholdComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  reader->ExpectTag(kStickyTag);
  LoadPairTable(reader, &sticky_answers_);
  return reader->status();
}

RelativeErrorComparator::RelativeErrorComparator(const Instance* instance,
                                                 const Options& options,
                                                 uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.base_error >= 0.0 && options.base_error <= 1.0);
  CROWDMAX_CHECK(options.max_error >= 0.0 && options.max_error <= 1.0);
  CROWDMAX_CHECK(options.decay >= 0.0);
}

ElementId RelativeErrorComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double rel = instance_->RelativeDifference(a, b);
  const double p_error = std::min(
      options_.max_error, options_.base_error * std::exp(-options_.decay * rel));
  if (rng_.NextBernoulli(p_error)) return Other(correct, a, b);
  return correct;
}

int64_t RelativeErrorComparator::GenerateVotes(
    std::span<const ComparisonPair> pairs, std::span<ElementId> out) {
  CROWDMAX_CHECK(out.size() >= pairs.size());
  const size_t n = ValidPrefix(*instance_, pairs);
  scratch_.Resize(n);
  if (!bulk_draws()) {
    GenerateVotesScalar(pairs, n, out);
    AddComparisons(static_cast<int64_t>(n));
    return static_cast<int64_t>(n);
  }
  const double base_error = options_.base_error;
  const double decay = options_.decay;
  const double max_error = options_.max_error;
  const ComparisonPair* p = pairs.data();
  uint64_t* __restrict threshold = scratch_.threshold.data();
  ElementId* __restrict on_true = scratch_.on_true.data();
  ElementId* __restrict on_false = scratch_.on_false.data();
  unsigned open_all = 1;
  for (size_t i = 0; i < n; ++i) {
    const ElementId a = p[i].first;
    const ElementId b = p[i].second;
    const double va = instance_->value(a);
    const double vb = instance_->value(b);
    const bool a_wins = (va > vb) | ((va == vb) & (a < b));
    // Inline Instance::RelativeDifference — the identical FP operations,
    // so p_error (and with it the draw threshold) cannot diverge from
    // the per-call path.
    const double denom = std::max(std::fabs(va), std::fabs(vb));
    const double rel = denom == 0.0 ? 0.0 : std::fabs(va - vb) / denom;
    const double p_error =
        std::min(max_error, base_error * std::exp(-decay * rel));
    const uint64_t thr = ClampedThreshold(p_error);
    threshold[i] = thr;
    on_true[i] = a_wins ? b : a;
    on_false[i] = a_wins ? a : b;
    open_all &= static_cast<unsigned>(ThresholdDraws(thr));
  }
  const bool all_open = open_all != 0;
  ResolveIndependentBulk(rng_, scratch_, n, all_open, out);
  AddComparisons(static_cast<int64_t>(n));
  return static_cast<int64_t>(n);
}

// The pre-bulk scalar batch path, kept bit-identical as the
// bench_hotpath "batch" baseline and the bulk-toggle test twin.
void RelativeErrorComparator::GenerateVotesScalar(
    std::span<const ComparisonPair> pairs, size_t n,
    std::span<ElementId> out) {
  bool all_open = true;
  for (size_t i = 0; i < n; ++i) {
    const auto [a, b] = pairs[i];
    const ElementId correct = TrueWinner(*instance_, a, b);
    const double rel = instance_->RelativeDifference(a, b);
    const double p_error =
        std::min(options_.max_error,
                 options_.base_error * std::exp(-options_.decay * rel));
    scratch_.prob[i] = p_error;
    scratch_.on_true[i] = Other(correct, a, b);
    scratch_.on_false[i] = correct;
    all_open = all_open && Open(p_error);
  }
  ResolveIndependentScalar(rng_, scratch_, n, all_open, out);
}

std::unique_ptr<Comparator> RelativeErrorComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<RelativeErrorComparator>(instance_, options_, seed);
}

Status RelativeErrorComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  return Status::OK();
}

Status RelativeErrorComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  return reader->status();
}

DistanceDecayComparator::DistanceDecayComparator(const Instance* instance,
                                                 const Options& options,
                                                 uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(options.delta >= 0.0);
  CROWDMAX_CHECK(options.below_threshold_correct_prob >= 0.0 &&
                 options.below_threshold_correct_prob <= 1.0);
  CROWDMAX_CHECK(options.epsilon_at_threshold >= 0.0 &&
                 options.epsilon_at_threshold < 0.5);
  CROWDMAX_CHECK(options.decay >= 0.0);
}

ElementId DistanceDecayComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double d = instance_->Distance(a, b);
  if (d <= options_.delta) {
    return rng_.NextBernoulli(options_.below_threshold_correct_prob)
               ? correct
               : Other(correct, a, b);
  }
  const double p_error = options_.epsilon_at_threshold *
                         std::exp(-options_.decay * (d - options_.delta));
  if (rng_.NextBernoulli(p_error)) return Other(correct, a, b);
  return correct;
}

int64_t DistanceDecayComparator::GenerateVotes(
    std::span<const ComparisonPair> pairs, std::span<ElementId> out) {
  CROWDMAX_CHECK(out.size() >= pairs.size());
  const size_t n = ValidPrefix(*instance_, pairs);
  scratch_.Resize(n);
  if (!bulk_draws()) {
    GenerateVotesScalar(pairs, n, out);
    AddComparisons(static_cast<int64_t>(n));
    return static_cast<int64_t>(n);
  }
  const double delta = options_.delta;
  const double decay = options_.decay;
  const double epsilon_at = options_.epsilon_at_threshold;
  const uint64_t coin_thr =
      ClampedThreshold(options_.below_threshold_correct_prob);
  const ComparisonPair* p = pairs.data();
  uint64_t* __restrict threshold = scratch_.threshold.data();
  ElementId* __restrict on_true = scratch_.on_true.data();
  ElementId* __restrict on_false = scratch_.on_false.data();
  unsigned open_all = 1;
  for (size_t i = 0; i < n; ++i) {
    const ElementId a = p[i].first;
    const ElementId b = p[i].second;
    const double va = instance_->value(a);
    const double vb = instance_->value(b);
    const bool a_wins = (va > vb) | ((va == vb) & (a < b));
    // Inline Instance::Distance — the identical FP operation, so the
    // regime split cannot diverge from the per-call path.
    const double d = std::fabs(va - vb);
    const bool above = d > delta;
    // sel folds correct/other into one pair of selects: above rows put
    // the loser on the draw's true side, below rows the winner.
    const bool sel = a_wins != above;
    uint64_t thr = coin_thr;
    if (above) {
      thr = ClampedThreshold(epsilon_at * std::exp(-decay * (d - delta)));
    }
    threshold[i] = thr;
    on_true[i] = sel ? a : b;
    on_false[i] = sel ? b : a;
    open_all &= static_cast<unsigned>(ThresholdDraws(thr));
  }
  const bool all_open = open_all != 0;
  ResolveIndependentBulk(rng_, scratch_, n, all_open, out);
  AddComparisons(static_cast<int64_t>(n));
  return static_cast<int64_t>(n);
}

// The pre-bulk scalar batch path, kept bit-identical as the
// bench_hotpath "batch" baseline and the bulk-toggle test twin.
void DistanceDecayComparator::GenerateVotesScalar(
    std::span<const ComparisonPair> pairs, size_t n,
    std::span<ElementId> out) {
  bool all_open = true;
  for (size_t i = 0; i < n; ++i) {
    const auto [a, b] = pairs[i];
    const ElementId correct = TrueWinner(*instance_, a, b);
    const double d = instance_->Distance(a, b);
    if (d <= options_.delta) {
      scratch_.prob[i] = options_.below_threshold_correct_prob;
      scratch_.on_true[i] = correct;
      scratch_.on_false[i] = Other(correct, a, b);
    } else {
      scratch_.prob[i] = options_.epsilon_at_threshold *
                         std::exp(-options_.decay * (d - options_.delta));
      scratch_.on_true[i] = Other(correct, a, b);
      scratch_.on_false[i] = correct;
    }
    all_open = all_open && Open(scratch_.prob[i]);
  }
  ResolveIndependentScalar(rng_, scratch_, n, all_open, out);
}

std::unique_ptr<Comparator> DistanceDecayComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<DistanceDecayComparator>(instance_, options_, seed);
}

Status DistanceDecayComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  return Status::OK();
}

Status DistanceDecayComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  return reader->status();
}

PersistentBiasComparator::PersistentBiasComparator(const Instance* instance,
                                                   const Options& options,
                                                   uint64_t seed)
    : instance_(instance), options_(options), rng_(seed) {
  CROWDMAX_CHECK(instance != nullptr);
  double prev = 0.0;
  for (const Bucket& bucket : options.buckets) {
    CROWDMAX_CHECK(bucket.max_relative_difference >= prev);
    CROWDMAX_CHECK(bucket.preferred_correct_prob >= 0.0 &&
                   bucket.preferred_correct_prob <= 1.0);
    prev = bucket.max_relative_difference;
  }
  CROWDMAX_CHECK(options.individual_noise >= 0.0 &&
                 options.individual_noise <= 1.0);
  CROWDMAX_CHECK(options.above_threshold_error >= 0.0 &&
                 options.above_threshold_error < 0.5);
  bucket_thresholds_.reserve(options.buckets.size());
  for (const Bucket& bucket : options.buckets) {
    bucket_thresholds_.push_back(
        ClampedThreshold(bucket.preferred_correct_prob));
  }
  noise_threshold_ = ClampedThreshold(options.individual_noise);
  error_threshold_ = ClampedThreshold(options.above_threshold_error);
}

ElementId PersistentBiasComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const ElementId correct = TrueWinner(*instance_, a, b);
  const double rel = instance_->RelativeDifference(a, b);

  const Bucket* bucket = nullptr;
  for (const Bucket& candidate : options_.buckets) {
    if (rel <= candidate.max_relative_difference) {
      bucket = &candidate;
      break;
    }
  }

  if (bucket == nullptr) {
    // Easy pair: independent per-query error.
    if (rng_.NextBernoulli(options_.above_threshold_error)) {
      return Other(correct, a, b);
    }
    return correct;
  }

  // Hard pair: resolve (or recall) the crowd's persistent preference, then
  // apply individual per-query noise around it.
  const uint64_t key = PackPairKey(a, b);
  ElementId* slot = preferred_.Find(key);
  if (slot == nullptr) {
    const bool preference_correct =
        rng_.NextBernoulli(bucket->preferred_correct_prob);
    const ElementId preferred =
        preference_correct ? correct : Other(correct, a, b);
    slot = preferred_.Insert(key, preferred);
  }
  const ElementId preferred = *slot;
  if (rng_.NextBernoulli(options_.individual_noise)) {
    return Other(preferred, a, b);
  }
  return preferred;
}

int64_t PersistentBiasComparator::GenerateVotes(
    std::span<const ComparisonPair> pairs, std::span<ElementId> out) {
  CROWDMAX_CHECK(out.size() >= pairs.size());
  const size_t n = ValidPrefix(*instance_, pairs);
  scratch_.Resize(n);
  if (!bulk_draws()) {
    GenerateVotesScalar(pairs, n, out);
    AddComparisons(static_cast<int64_t>(n));
    return static_cast<int64_t>(n);
  }
  // Pass 1 (no RNG): bucket each row on inline value loads, touch the
  // preferred-winner table exactly once (Reserve pins the arena, so the
  // Insert's slot pointer stays valid for the whole batch), and count
  // the exact draws the per-call path would make (preference draw on
  // first touch, then a noise draw, each skipped at a closed
  // probability). The fabs/max/divide below are the identical FP
  // operations of TrueWinner + Instance::RelativeDifference, so bucket
  // classification cannot diverge from the per-call path.
  const Bucket* buckets = options_.buckets.data();
  const size_t num_buckets = options_.buckets.size();
  const bool noise_draws = ThresholdDraws(noise_threshold_);
  const bool error_draws = ThresholdDraws(error_threshold_);
  scratch_.slots.resize(n);
  preferred_.Reserve(static_cast<int64_t>(n));
  const ComparisonPair* p = pairs.data();
  uint64_t* __restrict threshold = scratch_.threshold.data();
  ElementId* __restrict on_true = scratch_.on_true.data();
  ElementId* __restrict on_false = scratch_.on_false.data();
  uint8_t* __restrict sticky = scratch_.sticky.data();
  ElementId** __restrict slots = scratch_.slots.data();
  bool any_hard = false;
  size_t draws = 0;
  for (size_t i = 0; i < n; ++i) {
    const ElementId a = p[i].first;
    const ElementId b = p[i].second;
    const double va = instance_->value(a);
    const double vb = instance_->value(b);
    const bool a_wins = (va > vb) | ((va == vb) & (a < b));
    const ElementId correct = a_wins ? a : b;
    const ElementId other = a_wins ? b : a;
    const double denom = std::max(std::fabs(va), std::fabs(vb));
    const double rel = denom == 0.0 ? 0.0 : std::fabs(va - vb) / denom;
    size_t bucket = num_buckets;
    for (size_t k = 0; k < num_buckets; ++k) {
      if (rel <= buckets[k].max_relative_difference) {
        bucket = k;
        break;
      }
    }
    if (bucket == num_buckets) {
      // Easy pair: one error draw, errs toward the non-correct element.
      threshold[i] = error_threshold_;
      on_true[i] = other;
      on_false[i] = correct;
      sticky[i] = 0;
      draws += error_draws ? 1 : 0;
    } else {
      const uint64_t thr = bucket_thresholds_[bucket];
      threshold[i] = thr;
      on_true[i] = correct;
      on_false[i] = other;
      bool fresh = false;
      // Placeholder value; pass 2 draws the real preference via the slot.
      slots[i] = preferred_.Insert(PackPairKey(a, b), correct, &fresh);
      sticky[i] = fresh ? 1 : 2;
      draws += (fresh && ThresholdDraws(thr) ? 1 : 0) + (noise_draws ? 1 : 0);
      any_hard = true;
    }
  }
  if (!any_hard) {
    // Every row was easy, so openness is the one class flag.
    ResolveIndependentBulk(rng_, scratch_, n, error_draws, out);
  } else {
    // Pass 2: bulk-generate the exact draw count, then resolve rows in
    // order — preference draw (first touch only), then noise draw. Hard
    // rows resolve through the pass-1 slot pointers: no re-probe.
    scratch_.raw.resize(draws);
    rng_.FillRaw({scratch_.raw.data(), draws});
    const uint64_t* __restrict raw = scratch_.raw.data();
    size_t cursor = 0;
    for (size_t i = 0; i < n; ++i) {
      if (sticky[i] == 0) {
        out[i] = ConsumeDraw(raw, threshold[i], &cursor) ? on_true[i]
                                                         : on_false[i];
        continue;
      }
      const ElementId correct = on_true[i];
      const ElementId other = on_false[i];
      ElementId preferred;
      if (sticky[i] == 1) {
        preferred = ConsumeDraw(raw, threshold[i], &cursor) ? correct : other;
        *slots[i] = preferred;
      } else {
        preferred = *slots[i];
      }
      out[i] = ConsumeDraw(raw, noise_threshold_, &cursor)
                   ? (preferred == correct ? other : correct)
                   : preferred;
    }
    CROWDMAX_DCHECK(cursor == draws);
  }
  AddComparisons(static_cast<int64_t>(n));
  return static_cast<int64_t>(n);
}

// The pre-bulk scalar batch path, kept bit-identical as the
// bench_hotpath "batch" baseline and the bulk-toggle test twin.
void PersistentBiasComparator::GenerateVotesScalar(
    std::span<const ComparisonPair> pairs, size_t n,
    std::span<ElementId> out) {
  // Pass 1 mirrors the bulk path's sticky-row restructure (the fix for
  // the batch-slower-than-per-call regression): touch the table once per
  // hard row with a Reserve-pinned single-probe Insert, so the
  // sequential walk below draws through cached slots instead of
  // re-probing per row. Draw order and table contents are unchanged.
  scratch_.slots.resize(n);
  preferred_.Reserve(static_cast<int64_t>(n));
  bool any_hard = false;
  for (size_t i = 0; i < n; ++i) {
    const auto [a, b] = pairs[i];
    const ElementId correct = TrueWinner(*instance_, a, b);
    const double rel = instance_->RelativeDifference(a, b);
    const Bucket* bucket = nullptr;
    for (const Bucket& candidate : options_.buckets) {
      if (rel <= candidate.max_relative_difference) {
        bucket = &candidate;
        break;
      }
    }
    scratch_.on_true[i] = correct;
    scratch_.on_false[i] = Other(correct, a, b);
    if (bucket == nullptr) {
      // Easy pair: one error draw, errs toward the non-correct element.
      scratch_.prob[i] = options_.above_threshold_error;
      std::swap(scratch_.on_true[i], scratch_.on_false[i]);
      scratch_.sticky[i] = 0;
    } else {
      // Hard pair: prob holds the first-touch preference draw; the noise
      // draw is applied in the sequential pass.
      scratch_.prob[i] = bucket->preferred_correct_prob;
      bool fresh = false;
      // Placeholder value; the walk draws the real preference via the slot.
      scratch_.slots[i] = preferred_.Insert(PackPairKey(a, b), correct, &fresh);
      scratch_.sticky[i] = fresh ? 1 : 2;
      any_hard = true;
    }
  }
  if (!any_hard) {
    // Every row was easy, so openness is the one class flag.
    ResolveIndependentScalar(rng_, scratch_, n,
                             Open(options_.above_threshold_error), out);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (scratch_.sticky[i] == 0) {
      out[i] = rng_.NextBernoulli(scratch_.prob[i]) ? scratch_.on_true[i]
                                                    : scratch_.on_false[i];
      continue;
    }
    const ElementId correct = scratch_.on_true[i];
    const ElementId other = scratch_.on_false[i];
    ElementId preferred;
    if (scratch_.sticky[i] == 1) {
      preferred = rng_.NextBernoulli(scratch_.prob[i]) ? correct : other;
      *scratch_.slots[i] = preferred;
    } else {
      preferred = *scratch_.slots[i];
    }
    out[i] = rng_.NextBernoulli(options_.individual_noise)
                 ? (preferred == correct ? other : correct)
                 : preferred;
  }
}

std::unique_ptr<Comparator> PersistentBiasComparator::Fork(
    uint64_t seed) const {
  return std::make_unique<PersistentBiasComparator>(instance_, options_, seed);
}

Status PersistentBiasComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kRngTag);
  writer->WriteRngState(rng_.state());
  writer->WriteTag(kStickyTag);
  SavePairTable(writer, preferred_);
  return Status::OK();
}

Status PersistentBiasComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kRngTag);
  rng_.set_state(reader->ReadRngState());
  reader->ExpectTag(kStickyTag);
  LoadPairTable(reader, &preferred_);
  return reader->status();
}

}  // namespace crowdmax
