// Estimation of u_n(n) from gold/training data (Section 4.4, Algorithm 4).
//
// The only parameter Algorithm 1 needs is u_n(n). Given a training set with
// a known maximum (gold data), Algorithm 4 compares every training element
// against the known maximum with a naive worker and counts errors; under
// Assumption 2 (below-threshold comparisons err with probability p_err),
//   u_n(n_hat) <= max(c*ln(n), 2*#errors/p_err)   w.h.p.,
// which rescales by n/n_hat to an upper bound on u_n(n) (Assumption 1).
// Overestimating u_n only raises cost, never breaks correctness.
//
// EstimatePerr estimates p_err itself from repeated gold comparisons: pairs
// on which independent workers disagree are (w.h.p.) below the threshold,
// and their empirical error rate estimates p_err.

#ifndef CROWDMAX_CORE_ESTIMATE_H_
#define CROWDMAX_CORE_ESTIMATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/instance.h"

namespace crowdmax {

/// Options for EstimateUn.
struct UnEstimateOptions {
  /// Assumed below-threshold error probability (Assumption 2). Must be in
  /// (0, 1). Estimate it with EstimatePerr when unknown.
  double p_err = 0.4;
  /// The confidence constant c of Algorithm 4; the returned bound holds
  /// with probability >= 1 - n^{-c*p_err/8}.
  double confidence_c = 2.0;
};

/// Result of Algorithm 4.
struct UnEstimate {
  /// Upper-bound estimate of u_n(target_n), rounded up, at least 1.
  int64_t u_n = 1;
  /// Errors observed when comparing training elements against the known
  /// training maximum.
  int64_t observed_errors = 0;
  /// The unrounded (n/n_hat) * max(c*ln(n), 2*errors/p_err) value.
  double raw_estimate = 0.0;
};

/// Runs Algorithm 4. `training` is the gold set (element ids valid for
/// `naive`), `training_max` its known maximum element (must be a member of
/// `training`), `target_n` the size n of the real dataset the estimate will
/// be used for. Issues |training| - 1 naive comparisons.
Result<UnEstimate> EstimateUn(const std::vector<ElementId>& training,
                              ElementId training_max, int64_t target_n,
                              Comparator* naive,
                              const UnEstimateOptions& options = {});

/// Result of the p_err estimation procedure.
struct PerrEstimate {
  /// Empirical error rate over votes on non-consensus (hard) pairs.
  double p_err = 0.0;
  /// Pairs on which the workers disagreed (classified below-threshold).
  int64_t hard_pairs = 0;
  /// Total pairs examined.
  int64_t total_pairs = 0;
  /// Votes cast on hard pairs.
  int64_t votes_on_hard_pairs = 0;
};

/// Estimates p_err from gold data: each pair in `pairs` is asked
/// `votes_per_pair` times through `naive`; pairs with full consensus are
/// treated as above-threshold and skipped, and the error rate (against the
/// gold ground truth in `gold_truth`) over the remaining votes estimates
/// p_err. Returns NotFound if every pair reached consensus (no hard pairs
/// observed). Requires votes_per_pair >= 2.
Result<PerrEstimate> EstimatePerr(
    const Instance& gold_truth,
    const std::vector<std::pair<ElementId, ElementId>>& pairs,
    int64_t votes_per_pair, Comparator* naive);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_ESTIMATE_H_
