#include "core/parallel_group.h"

#include <algorithm>
#include <utility>

namespace crowdmax {

uint64_t PairCacheKey(ElementId a, ElementId b) {
  const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
  const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<std::unique_ptr<ParallelGroupRunner>> ParallelGroupRunner::Create(
    Comparator* parent, int64_t threads) {
  CROWDMAX_CHECK(parent != nullptr);
  if (threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  // Probe forkability once, up front, so every later failure mode is a
  // clean Status instead of a surprise deep inside a round.
  if (parent->Fork(0) == nullptr) {
    return Status::InvalidArgument(
        "comparator does not support Fork(); the parallel engine requires "
        "a forkable comparator (see comparator.h thread-safety contract)");
  }
  return std::unique_ptr<ParallelGroupRunner>(
      new ParallelGroupRunner(parent, threads));
}

std::vector<GroupOutcome> ParallelGroupRunner::RunRound(
    const std::vector<std::vector<ElementId>>& groups, Rng* seeder,
    PairWinnerCache* cache) {
  CROWDMAX_CHECK(seeder != nullptr);
  const int64_t num_groups = static_cast<int64_t>(groups.size());
  std::vector<GroupOutcome> outcomes(groups.size());
  if (num_groups == 0) return outcomes;

  // Seeds are drawn before dispatch, in group order — the whole point.
  std::vector<uint64_t> seeds(groups.size());
  for (int64_t g = 0; g < num_groups; ++g) {
    seeds[static_cast<size_t>(g)] = seeder->Fork();
  }

  // During the round the cache is read-only shared state; each task writes
  // only to its own pre-sized outcomes slot.
  const PairWinnerCache* read_cache = cache;
  pool_.ParallelFor(num_groups, [&](int64_t g) {
    const std::vector<ElementId>& group = groups[static_cast<size_t>(g)];
    GroupOutcome& out = outcomes[static_cast<size_t>(g)];
    const size_t k = group.size();
    out.wins.assign(k, 0);
    out.pair_winners.reserve(k * (k > 0 ? k - 1 : 0) / 2);

    const std::unique_ptr<Comparator> fork =
        parent_->Fork(seeds[static_cast<size_t>(g)]);
    CROWDMAX_CHECK(fork != nullptr);

    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        const ElementId a = group[i];
        const ElementId b = group[j];
        ElementId winner;
        if (read_cache != nullptr) {
          auto it = read_cache->find(PairCacheKey(a, b));
          if (it != read_cache->end()) {
            winner = it->second;
          } else {
            winner = fork->Compare(a, b);
          }
        } else {
          winner = fork->Compare(a, b);
        }
        CROWDMAX_DCHECK(winner == a || winner == b);
        ++out.issued;
        ++out.wins[winner == a ? i : j];
        out.pair_winners.push_back(winner);
      }
    }
    out.paid = fork->num_comparisons();
  });

  // Round barrier: merge the counter shards into the parent and the fresh
  // pair outcomes into the cache, in group order.
  int64_t total_paid = 0;
  for (const GroupOutcome& out : outcomes) total_paid += out.paid;
  parent_->AddComparisons(total_paid);

  if (cache != nullptr) {
    for (int64_t g = 0; g < num_groups; ++g) {
      const std::vector<ElementId>& group = groups[static_cast<size_t>(g)];
      const GroupOutcome& out = outcomes[static_cast<size_t>(g)];
      size_t t = 0;
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j, ++t) {
          cache->emplace(PairCacheKey(group[i], group[j]),
                         out.pair_winners[t]);
        }
      }
    }
  }
  return outcomes;
}

}  // namespace crowdmax
