// The one unordered pair-key packer shared by every per-pair table.
//
// Historically ThresholdComparator, PersistentBiasComparator,
// MemoizingComparator and the engine's RoundPairKey each carried a private
// copy of the same packing; this header unifies them so the layout (lower
// id in the low word) is defined exactly once and every cache/table stays
// key-compatible with every other (serial memoized replays depend on it).
//
// The packing static_casts each id to uint32_t, so a negative ElementId —
// a kUnresolvedWinner sentinel or an uninitialized -1 leaking into a pair —
// would silently alias a huge valid-looking key instead of failing. The
// debug CHECK below catches that at the source; release-mode callers that
// accept untrusted pairs (VoteBatchComparator::GenerateVotes) refuse them
// via PairKeyable() before packing.

#ifndef CROWDMAX_CORE_PAIR_KEY_H_
#define CROWDMAX_CORE_PAIR_KEY_H_

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "core/instance.h"

namespace crowdmax {

/// True iff both ids can be packed without aliasing: ElementIds are dense
/// non-negative indices, so any negative id is a sentinel, not an element.
inline bool PairKeyable(ElementId a, ElementId b) { return a >= 0 && b >= 0; }

/// Canonical unordered pair key: lower id in the low 32 bits, higher id in
/// the high 32 bits. PackPairKey(a, b) == PackPairKey(b, a).
inline uint64_t PackPairKey(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(PairKeyable(a, b));
  const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
  const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_PAIR_KEY_H_
