#include "core/round_engine.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "core/batched.h"
#include "core/trace.h"

namespace crowdmax {

namespace {

// The serial-path tournament instrumentation AllPlayAll used to own: a
// size observation per spanned unit. Recorded only where the pre-engine
// serial code ran a spanned all-play-all, never per comparison.
void ObserveTournamentSize(int64_t size) {
  if (!MetricsEnabled()) return;
  static Histogram* sizes = MetricsRegistry::Default()->GetHistogram(
      "crowdmax.tournament.group_size", ExponentialBounds(12));
  sizes->Observe(size);
}

}  // namespace

uint64_t RoundPairKey(ElementId a, ElementId b) {
  const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
  const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

int64_t EngineRound::TotalPairs() const {
  int64_t total = 0;
  for (const RoundUnit& unit : units) {
    total += static_cast<int64_t>(unit.pairs.size());
  }
  return total;
}

RoundEngine::RoundEngine(Backend backend, Comparator* comparator,
                         BatchExecutor* executor, bool memoize,
                         int64_t threads, uint64_t seed)
    : backend_(backend),
      comparator_(comparator),
      executor_(executor),
      memoize_(memoize),
      seeder_(seed),
      threads_(threads) {
  if (backend_ == Backend::kParallel) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
  if (comparator_ != nullptr) paid_base_ = comparator_->num_comparisons();
  if (executor_ != nullptr) {
    paid_base_ = executor_->comparisons();
    steps_base_ = executor_->logical_steps();
  }
}

std::unique_ptr<RoundEngine> RoundEngine::CreateSerial(Comparator* comparator,
                                                       bool memoize) {
  CROWDMAX_CHECK(comparator != nullptr);
  return std::unique_ptr<RoundEngine>(new RoundEngine(
      Backend::kSerial, comparator, nullptr, memoize, 0, 0));
}

Result<std::unique_ptr<RoundEngine>> RoundEngine::CreateParallel(
    Comparator* comparator, int64_t threads, uint64_t seed, bool memoize) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  // Probe forkability once, up front, so every later failure mode is a
  // clean Status instead of a surprise deep inside a round.
  if (comparator->Fork(0) == nullptr) {
    return Status::InvalidArgument(
        "comparator does not support Fork(); the parallel engine requires "
        "a forkable comparator (see comparator.h thread-safety contract)");
  }
  return std::unique_ptr<RoundEngine>(new RoundEngine(
      Backend::kParallel, comparator, nullptr, memoize, threads, seed));
}

Result<std::unique_ptr<RoundEngine>> RoundEngine::CreateBatched(
    BatchExecutor* executor) {
  CROWDMAX_CHECK(executor != nullptr);
  return std::unique_ptr<RoundEngine>(new RoundEngine(
      Backend::kExecutor, nullptr, executor, /*memoize=*/true, 0, 0));
}

int64_t RoundEngine::paid() const {
  if (executor_ != nullptr) return executor_->comparisons() - paid_base_;
  return comparator_->num_comparisons() - paid_base_;
}

int64_t RoundEngine::logical_steps() const {
  if (executor_ == nullptr) return 0;
  return executor_->logical_steps() - steps_base_;
}

Result<RoundOutcome> RoundEngine::ExecuteRound(const EngineRound& round) {
  switch (backend_) {
    case Backend::kSerial:
      return ExecuteSerial(round);
    case Backend::kParallel:
      return ExecuteParallel(round);
    case Backend::kExecutor:
      return ExecuteBatched(round);
  }
  return Status::Internal("unreachable");
}

Result<RoundOutcome> RoundEngine::ExecuteSerial(const EngineRound& round) {
  RoundOutcome out;
  out.winners.resize(round.units.size());
  const int64_t paid_before = comparator_->num_comparisons();
  AlgoTrace* trace = CurrentTrace();

  for (size_t u = 0; u < round.units.size(); ++u) {
    const RoundUnit& unit = round.units[u];
    int64_t span_id = -1;
    if (unit.serial_span != nullptr) {
      if (trace != nullptr) {
        span_id = trace->BeginSpan(TraceSpanKind::kBatch, unit.serial_span);
      }
      if (unit.serial_span_size >= 0) {
        ObserveTournamentSize(unit.serial_span_size);
      }
    }
    std::vector<ElementId>& winners = out.winners[u];
    winners.reserve(unit.pairs.size());
    for (const ComparisonPair& pair : unit.pairs) {
      ElementId winner;
      if (memoize_) {
        const uint64_t key = RoundPairKey(pair.first, pair.second);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
          winner = it->second;
          ++cache_hits_;
        } else {
          winner = comparator_->Compare(pair.first, pair.second);
          cache_.emplace(key, winner);
        }
      } else {
        winner = comparator_->Compare(pair.first, pair.second);
      }
      CROWDMAX_DCHECK(winner == pair.first || winner == pair.second);
      winners.push_back(winner);
      ++out.issued;
    }
    if (span_id >= 0) trace->EndSpan(span_id);
  }

  out.paid_delta = comparator_->num_comparisons() - paid_before;
  issued_ += out.issued;
  return out;
}

Result<RoundOutcome> RoundEngine::ExecuteParallel(const EngineRound& round) {
  const int64_t num_units = static_cast<int64_t>(round.units.size());
  RoundOutcome out;
  out.winners.resize(round.units.size());
  if (num_units == 0) return out;

  // Seeds are drawn before dispatch, in unit order — the whole point: the
  // answers depend only on (unit contents, seed), never on the schedule.
  std::vector<uint64_t> seeds(round.units.size());
  for (int64_t u = 0; u < num_units; ++u) {
    seeds[static_cast<size_t>(u)] = seeder_.Fork();
  }

  // During the round the cache is read-only shared state; each task
  // writes only to its own pre-sized winners slot.
  std::vector<int64_t> unit_paid(round.units.size(), 0);
  pool_->ParallelFor(num_units, [&](int64_t u) {
    const RoundUnit& unit = round.units[static_cast<size_t>(u)];
    std::vector<ElementId>& winners = out.winners[static_cast<size_t>(u)];
    winners.reserve(unit.pairs.size());

    const std::unique_ptr<Comparator> fork =
        comparator_->Fork(seeds[static_cast<size_t>(u)]);
    CROWDMAX_CHECK(fork != nullptr);

    for (const ComparisonPair& pair : unit.pairs) {
      ElementId winner;
      if (memoize_) {
        auto it = cache_.find(RoundPairKey(pair.first, pair.second));
        if (it != cache_.end()) {
          winner = it->second;
        } else {
          winner = fork->Compare(pair.first, pair.second);
        }
      } else {
        winner = fork->Compare(pair.first, pair.second);
      }
      CROWDMAX_DCHECK(winner == pair.first || winner == pair.second);
      winners.push_back(winner);
    }
    unit_paid[static_cast<size_t>(u)] = fork->num_comparisons();
  });

  // Round barrier: merge the counter shards into the parent and the fresh
  // pair outcomes into the cache, in unit order.
  int64_t total_paid = 0;
  for (int64_t paid : unit_paid) total_paid += paid;
  comparator_->AddComparisons(total_paid);

  for (size_t u = 0; u < round.units.size(); ++u) {
    const RoundUnit& unit = round.units[u];
    out.issued += static_cast<int64_t>(unit.pairs.size());
    if (memoize_) {
      for (size_t p = 0; p < unit.pairs.size(); ++p) {
        cache_.emplace(RoundPairKey(unit.pairs[p].first, unit.pairs[p].second),
                       out.winners[u][p]);
      }
    }
  }

  out.paid_delta = total_paid;
  issued_ += out.issued;
  cache_hits_ += out.issued - out.paid_delta;
  return out;
}

Result<RoundOutcome> RoundEngine::ExecuteBatched(const EngineRound& round) {
  if (round.clear_round_cache) cache_.clear();

  RoundOutcome out;
  out.winners.resize(round.units.size());
  std::vector<ComparisonPair> queries;
  queries.reserve(static_cast<size_t>(round.TotalPairs()));
  for (const RoundUnit& unit : round.units) {
    queries.insert(queries.end(), unit.pairs.begin(), unit.pairs.end());
  }
  out.issued = static_cast<int64_t>(queries.size());
  issued_ += out.issued;
  const int64_t paid_before = executor_->comparisons();

  AlgoTrace* trace = CurrentTrace();
  int64_t span_id = -1;
  if (round.executor_span != nullptr && trace != nullptr) {
    span_id = trace->BeginSpan(TraceSpanKind::kBatch, round.executor_span);
  }

  // Resolve through the cache, batching only the misses (including pairs
  // left unresolved by an earlier faulty attempt). A duplicate query
  // within one round is sent once: the first occurrence reserves its slot
  // with -1, overwritten with the real winner (or parked kUnresolvedWinner)
  // below.
  std::vector<ComparisonPair> misses;
  misses.reserve(queries.size());
  for (const ComparisonPair& q : queries) {
    auto it = cache_.find(RoundPairKey(q.first, q.second));
    if (it == cache_.end() || it->second == kUnresolvedWinner) {
      misses.push_back(q);
      cache_[RoundPairKey(q.first, q.second)] = -1;
    }
  }
  if (const int64_t hits =
          static_cast<int64_t>(queries.size() - misses.size());
      hits > 0) {
    cache_hits_ += hits;
    if (trace != nullptr) trace->RecordCacheHits(hits);
  }
  Result<std::vector<BatchTaskResult>> results =
      executor_->TryExecuteBatch(misses);
  if (!results.ok()) {
    for (const ComparisonPair& m : misses) {
      cache_[RoundPairKey(m.first, m.second)] = kUnresolvedWinner;
    }
    if (span_id >= 0) trace->EndSpan(span_id);
    if (results.status().code() != StatusCode::kUnavailable) {
      // Non-transient executor failure: abort the drive.
      return results.status();
    }
    out.fault = results.status();
  } else {
    CROWDMAX_CHECK(results->size() == misses.size());
    for (size_t i = 0; i < misses.size(); ++i) {
      const BatchTaskResult& result = (*results)[i];
      const uint64_t key = RoundPairKey(misses[i].first, misses[i].second);
      if (!result.answered) {
        cache_[key] = kUnresolvedWinner;
        continue;
      }
      CROWDMAX_DCHECK(result.winner == misses[i].first ||
                      result.winner == misses[i].second);
      cache_[key] = result.winner;
    }
    if (span_id >= 0) trace->EndSpan(span_id);
  }

  // Map the per-pair outcomes back onto the round's units. Every query
  // was either cached, answered, or parked as unresolved above.
  for (size_t u = 0; u < round.units.size(); ++u) {
    const RoundUnit& unit = round.units[u];
    std::vector<ElementId>& winners = out.winners[u];
    winners.reserve(unit.pairs.size());
    for (const ComparisonPair& pair : unit.pairs) {
      auto it = cache_.find(RoundPairKey(pair.first, pair.second));
      CROWDMAX_CHECK(it != cache_.end() && it->second != -1);
      if (it->second == kUnresolvedWinner) ++out.unresolved;
      winners.push_back(it->second);
    }
  }

  out.paid_delta = executor_->comparisons() - paid_before;
  return out;
}

Result<DriveResult> RoundEngine::Drive(RoundSource* source,
                                       const DriveOptions& options) {
  CROWDMAX_CHECK(source != nullptr);
  DriveResult drive;
  const int64_t paid_start = paid();
  int64_t open_round_id = -1;
  AlgoTrace* trace = CurrentTrace();
  const auto close_round_span = [&] {
    if (open_round_id >= 0) {
      trace->EndSpan(open_round_id);
      open_round_id = -1;
    }
  };

  while (true) {
    EngineRound round;
    Result<bool> more = source->NextRound(&round);
    if (!more.ok()) {
      close_round_span();
      return more.status();
    }
    if (!*more) break;

    // Budget gate, at the round boundary: a round whose worst case would
    // exceed the cap never starts (memoization hits could make it cheaper,
    // but a guaranteed-affordable round is what the cap promises).
    if (options.max_comparisons > 0 &&
        (paid() - paid_start) + round.TotalPairs() > options.max_comparisons) {
      drive.stopped_by_budget = true;
      source->OnBudgetStop();
      break;
    }

    const int64_t open_round = backend_ == Backend::kExecutor
                                   ? round.open_round_executor
                                   : round.open_round_comparator;
    const bool close_round = backend_ == Backend::kExecutor
                                 ? round.close_round_executor
                                 : round.close_round_comparator;
    if (open_round > 0 && trace != nullptr) {
      CROWDMAX_CHECK(open_round_id < 0);
      open_round_id = trace->BeginRound(open_round);
    }

    Result<RoundOutcome> outcome = ExecuteRound(round);
    if (!outcome.ok()) {
      close_round_span();
      return outcome.status();
    }

    // Comparator-backend cell recording at the round barrier: every paid
    // comparison came back answered (faults live in the executor stack)
    // and the issued-minus-paid remainder was served by the memo cache.
    if (backend_ != Backend::kExecutor && round.record_round_cell &&
        trace != nullptr) {
      trace->RecordDispatched(outcome->paid_delta);
      trace->RecordOutcomes(outcome->paid_delta, 0, 0);
      if (outcome->issued > outcome->paid_delta) {
        trace->RecordCacheHits(outcome->issued - outcome->paid_delta);
      }
    }

    Status consumed = source->ConsumeOutcome(round, *outcome);
    if (close_round) close_round_span();
    if (!consumed.ok()) {
      close_round_span();
      return consumed;
    }
    ++drive.rounds_executed;
  }

  close_round_span();
  return drive;
}

}  // namespace crowdmax
