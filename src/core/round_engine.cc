#include "core/round_engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/metrics.h"
#include "core/async_executor.h"
#include "core/batched.h"
#include "core/checkpoint.h"
#include "core/pair_key.h"
#include "core/trace.h"

namespace crowdmax {

namespace {

constexpr uint32_t kDriveTag = CheckpointTag("DRV ");
constexpr uint32_t kEngineTag = CheckpointTag("ENG ");
constexpr uint32_t kCacheTag = CheckpointTag("CACH");
constexpr uint32_t kSourceTag = CheckpointTag("SRC ");

// The serial-path tournament instrumentation AllPlayAll used to own: a
// size observation per spanned unit. Recorded only where the pre-engine
// serial code ran a spanned all-play-all, never per comparison.
void ObserveTournamentSize(int64_t size) {
  if (!MetricsEnabled()) return;
  static Histogram* sizes = MetricsRegistry::Default()->GetHistogram(
      "crowdmax.tournament.group_size", ExponentialBounds(12));
  sizes->Observe(size);
}

// Non-pipelined executor rounds still pay the crowd round-trip: the engine
// sleeps out whatever simulated latency the executor stack accumulated for
// this round. A no-op with the latency model off (the default).
void SleepOutLatency(BatchExecutor* executor) {
  const int64_t micros = executor->TakeSimulatedLatencyMicros();
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

void ObservePipelineDepth(int64_t in_flight) {
  if (!MetricsEnabled()) return;
  static Counter* overlapped = MetricsRegistry::Default()->GetCounter(
      "crowdmax.pipeline.overlapped_rounds");
  static Gauge* depth =
      MetricsRegistry::Default()->GetGauge("crowdmax.pipeline.max_in_flight");
  if (in_flight > 1) overlapped->Increment();
  if (in_flight > depth->value()) depth->Set(in_flight);
}

void ObserveSpeculation(int64_t hits, int64_t mispredicts, int64_t wasted) {
  if (!MetricsEnabled()) return;
  static Counter* hit_counter = MetricsRegistry::Default()->GetCounter(
      "crowdmax.speculation.hits");
  static Counter* miss_counter = MetricsRegistry::Default()->GetCounter(
      "crowdmax.speculation.mispredicts");
  static Counter* wasted_counter = MetricsRegistry::Default()->GetCounter(
      "crowdmax.speculation.wasted_comparisons");
  if (hits > 0) hit_counter->Add(hits);
  if (mispredicts > 0) miss_counter->Add(mispredicts);
  if (wasted > 0) wasted_counter->Add(wasted);
}

}  // namespace

int64_t SharedPairCache::ResolvedPairs(int64_t class_id) const {
  auto it = maps_.find(class_id);
  if (it == maps_.end()) return 0;
  int64_t resolved = 0;
  it->second.ForEach([&resolved](uint64_t /*key*/, ElementId winner) {
    if (winner != kUnresolvedWinner) ++resolved;
  });
  return resolved;
}

int64_t EngineRound::TotalPairs() const {
  int64_t total = 0;
  for (const RoundUnit& unit : units) {
    total += static_cast<int64_t>(unit.pairs.size());
  }
  return total;
}

RoundEngine::RoundEngine(Backend backend, Comparator* comparator,
                         BatchExecutor* executor, bool memoize,
                         int64_t threads, uint64_t seed,
                         SharedPairCache* shared_cache, int64_t cache_class)
    : backend_(backend),
      comparator_(comparator),
      executor_(executor),
      memoize_(memoize),
      cache_(shared_cache != nullptr ? shared_cache->ForClass(cache_class)
                                     : &owned_cache_),
      seeder_(seed),
      threads_(threads) {
  if (backend_ == Backend::kParallel) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
  if (comparator_ != nullptr) paid_base_ = comparator_->num_comparisons();
  if (executor_ != nullptr) {
    paid_base_ = executor_->comparisons();
    steps_base_ = executor_->logical_steps();
  }
}

std::unique_ptr<RoundEngine> RoundEngine::CreateSerial(
    Comparator* comparator, bool memoize, SharedPairCache* shared_cache,
    int64_t cache_class) {
  CROWDMAX_CHECK(comparator != nullptr);
  return std::unique_ptr<RoundEngine>(
      new RoundEngine(Backend::kSerial, comparator, nullptr,
                      // A shared cache only works through memoization;
                      // opting into sharing implies it.
                      memoize || shared_cache != nullptr, 0, 0, shared_cache,
                      cache_class));
}

Result<std::unique_ptr<RoundEngine>> RoundEngine::CreateParallel(
    Comparator* comparator, int64_t threads, uint64_t seed, bool memoize,
    SharedPairCache* shared_cache, int64_t cache_class) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  // Probe forkability once, up front, so every later failure mode is a
  // clean Status instead of a surprise deep inside a round.
  if (comparator->Fork(0) == nullptr) {
    return Status::InvalidArgument(
        "comparator does not support Fork(); the parallel engine requires "
        "a forkable comparator (see comparator.h thread-safety contract)");
  }
  return std::unique_ptr<RoundEngine>(new RoundEngine(
      Backend::kParallel, comparator, nullptr,
      memoize || shared_cache != nullptr, threads, seed, shared_cache,
      cache_class));
}

Result<std::unique_ptr<RoundEngine>> RoundEngine::CreateBatched(
    BatchExecutor* executor, SharedPairCache* shared_cache,
    int64_t cache_class) {
  CROWDMAX_CHECK(executor != nullptr);
  return std::unique_ptr<RoundEngine>(
      new RoundEngine(Backend::kExecutor, nullptr, executor, /*memoize=*/true,
                      0, 0, shared_cache, cache_class));
}

Result<std::unique_ptr<RoundEngine>> RoundEngine::CreatePipelined(
    AsyncBatchExecutor* async, int64_t max_in_flight,
    SharedPairCache* shared_cache, int64_t cache_class) {
  CROWDMAX_CHECK(async != nullptr);
  if (max_in_flight < 1) {
    return Status::InvalidArgument("max_in_flight must be >= 1");
  }
  std::unique_ptr<RoundEngine> engine(
      new RoundEngine(Backend::kExecutor, nullptr, async->inner(),
                      /*memoize=*/true, 0, 0, shared_cache, cache_class));
  engine->async_ = async;
  engine->max_in_flight_ = max_in_flight;
  return engine;
}

Status RoundSource::SaveState(CheckpointWriter* /*writer*/) const {
  return Status::FailedPrecondition(
      "this RoundSource does not support checkpointing");
}

Status RoundSource::LoadState(CheckpointReader* /*reader*/) {
  return Status::FailedPrecondition(
      "this RoundSource does not support checkpointing");
}

Result<bool> RoundSource::SpeculateNextRound(EngineRound* /*round*/) {
  return Status::FailedPrecondition(
      "this RoundSource advertised CanSpeculateNextRound but does not "
      "implement SpeculateNextRound");
}

Result<std::string> RoundEngine::SerializeCheckpoint(
    const RoundSource* source, int64_t paid_start,
    const DriveResult& drive) const {
  CheckpointWriter writer;
  writer.WriteTag(kDriveTag);
  writer.WriteI64(paid_start);
  writer.WriteI64(drive.rounds_executed);
  writer.WriteTag(kEngineTag);
  writer.WriteI64(paid_base_);
  writer.WriteI64(steps_base_);
  writer.WriteI64(issued_);
  writer.WriteI64(cache_hits_);
  writer.WriteI64(overlapped_rounds_);
  writer.WriteI64(max_in_flight_observed_);
  // Speculation counters (DESIGN.md §15). Checkpoints happen only at
  // fully-drained boundaries, where no speculative round can be in flight
  // (confirmation turns them firm, cancellation empties the window), so
  // the counters are the only speculation state the engine owns here.
  writer.WriteI64(speculative_rounds_);
  writer.WriteI64(speculation_hits_);
  writer.WriteI64(speculation_mispredicts_);
  writer.WriteI64(speculation_wasted_);
  writer.WriteRngState(seeder_.state());
  // At a clean boundary the cache holds winners and kUnresolvedWinner
  // parkings only — never a -1 in-flight reservation.
  writer.WriteTag(kCacheTag);
  SavePairTable(&writer, *cache_);
  Status stack = comparator_ != nullptr ? comparator_->SaveState(&writer)
                                        : executor_->SaveState(&writer);
  if (!stack.ok()) return stack;
  writer.WriteTag(kSourceTag);
  Status src = source->SaveState(&writer);
  if (!src.ok()) return src;
  return writer.Take();
}

Status RoundEngine::RestoreCheckpoint(RoundSource* source,
                                      const std::string& bytes,
                                      int64_t* paid_start,
                                      DriveResult* drive) {
  Result<CheckpointReader> opened = CheckpointReader::Open(bytes);
  if (!opened.ok()) return opened.status();
  CheckpointReader reader = std::move(opened).value();
  reader.ExpectTag(kDriveTag);
  *paid_start = reader.ReadI64();
  drive->rounds_executed = reader.ReadI64();
  reader.ExpectTag(kEngineTag);
  paid_base_ = reader.ReadI64();
  steps_base_ = reader.ReadI64();
  issued_ = reader.ReadI64();
  cache_hits_ = reader.ReadI64();
  overlapped_rounds_ = reader.ReadI64();
  max_in_flight_observed_ = reader.ReadI64();
  speculative_rounds_ = reader.ReadI64();
  speculation_hits_ = reader.ReadI64();
  speculation_mispredicts_ = reader.ReadI64();
  speculation_wasted_ = reader.ReadI64();
  seeder_.set_state(reader.ReadRngState());
  reader.ExpectTag(kCacheTag);
  LoadPairTable(&reader, cache_);
  if (!reader.status().ok()) return reader.status();
  Status stack = comparator_ != nullptr ? comparator_->LoadState(&reader)
                                        : executor_->LoadState(&reader);
  if (!stack.ok()) return stack;
  reader.ExpectTag(kSourceTag);
  if (!reader.status().ok()) return reader.status();
  Status src = source->LoadState(&reader);
  if (!src.ok()) return src;
  return reader.Finish();
}

int64_t RoundEngine::paid() const {
  if (executor_ != nullptr) return executor_->comparisons() - paid_base_;
  return comparator_->num_comparisons() - paid_base_;
}

int64_t RoundEngine::logical_steps() const {
  if (executor_ == nullptr) return 0;
  return executor_->logical_steps() - steps_base_;
}

Result<RoundOutcome> RoundEngine::ExecuteRound(const EngineRound& round) {
  switch (backend_) {
    case Backend::kSerial:
      return ExecuteSerial(round);
    case Backend::kParallel:
      return ExecuteParallel(round);
    case Backend::kExecutor:
      return ExecuteBatched(round);
  }
  return Status::Internal("unreachable");
}

Result<RoundOutcome> RoundEngine::ExecuteSerial(const EngineRound& round) {
  RoundOutcome out;
  out.winners.resize(round.units.size());
  const int64_t paid_before = comparator_->num_comparisons();
  AlgoTrace* trace = CurrentTrace();
  VoteBatchComparator* batch =
      batch_generation_ ? comparator_->AsVoteBatch() : nullptr;

  // Batch-path scratch, engine-owned and reused across units *and* rounds
  // (empty when batch == nullptr): steady-state rounds allocate nothing.
  std::vector<ComparisonPair>& misses = serial_misses_;
  std::vector<size_t>& miss_at = serial_miss_at_;  // pair index per miss
  std::vector<ElementId>& answers = serial_answers_;  // GenerateVotes output
  std::vector<size_t>& deferred = serial_deferred_;  // in-unit duplicates

  for (size_t u = 0; u < round.units.size(); ++u) {
    const RoundUnit& unit = round.units[u];
    int64_t span_id = -1;
    if (unit.serial_span != nullptr) {
      if (trace != nullptr) {
        span_id = trace->BeginSpan(TraceSpanKind::kBatch, unit.serial_span);
      }
      if (unit.serial_span_size >= 0) {
        ObserveTournamentSize(unit.serial_span_size);
      }
    }
    std::vector<ElementId>& winners = out.winners[u];
    if (batch != nullptr) {
      // Batch-at-once unit execution, bit-identical to the per-call loop
      // below: misses are collected in first-occurrence order (the order
      // the per-call path would draw them), answered with one
      // GenerateVotes call, then written back. A duplicate of a pair whose
      // first occurrence is still unanswered counts as a cache hit — the
      // per-call path would find the first occurrence's fresh entry — and
      // is filled from the cache afterwards.
      winners.resize(unit.pairs.size());
      if (memoize_) {
        misses.clear();
        miss_at.clear();
        deferred.clear();
        for (size_t p = 0; p < unit.pairs.size(); ++p) {
          const ComparisonPair& pair = unit.pairs[p];
          const uint64_t key = PackPairKey(pair.first, pair.second);
          bool reserved = false;
          ElementId* slot = cache_->Insert(key, -1, &reserved);
          if (!reserved && *slot == -1) {
            // Same pair again within this unit, first occurrence still in
            // the miss list.
            ++cache_hits_;
            deferred.push_back(p);
          } else if (!reserved && *slot != kUnresolvedWinner) {
            winners[p] = *slot;
            ++cache_hits_;
          } else {
            // Fresh reservation, or an unresolved parking from an earlier
            // executor-backed phase: buy the pair this round.
            *slot = -1;
            misses.push_back(pair);
            miss_at.push_back(p);
          }
        }
        answers.resize(misses.size());
        const int64_t produced = batch->GenerateVotes(misses, answers);
        CROWDMAX_CHECK(produced == static_cast<int64_t>(misses.size()));
        for (size_t m = 0; m < misses.size(); ++m) {
          const ElementId winner = answers[m];
          CROWDMAX_DCHECK(winner == misses[m].first ||
                          winner == misses[m].second);
          cache_->Set(PackPairKey(misses[m].first, misses[m].second), winner);
          winners[miss_at[m]] = winner;
        }
        for (size_t p : deferred) {
          const ComparisonPair& pair = unit.pairs[p];
          winners[p] = *cache_->Find(PackPairKey(pair.first, pair.second));
        }
      } else {
        answers.resize(unit.pairs.size());
        const int64_t produced = batch->GenerateVotes(unit.pairs, answers);
        CROWDMAX_CHECK(produced == static_cast<int64_t>(unit.pairs.size()));
        std::copy(answers.begin(), answers.end(), winners.begin());
      }
      out.issued += static_cast<int64_t>(unit.pairs.size());
    } else {
      winners.reserve(unit.pairs.size());
      for (const ComparisonPair& pair : unit.pairs) {
        ElementId winner;
        if (memoize_) {
          // An unresolved sentinel left by an earlier executor-backed phase
          // sharing this cache is a miss: the pair is bought (and the
          // sentinel overwritten) here.
          const uint64_t key = PackPairKey(pair.first, pair.second);
          ElementId* slot = cache_->Find(key);
          if (slot != nullptr && *slot != kUnresolvedWinner) {
            winner = *slot;
            ++cache_hits_;
          } else {
            winner = comparator_->Compare(pair.first, pair.second);
            cache_->Set(key, winner);
          }
        } else {
          winner = comparator_->Compare(pair.first, pair.second);
        }
        CROWDMAX_DCHECK(winner == pair.first || winner == pair.second);
        winners.push_back(winner);
        ++out.issued;
      }
    }
    if (span_id >= 0) trace->EndSpan(span_id);
  }

  out.paid_delta = comparator_->num_comparisons() - paid_before;
  issued_ += out.issued;
  return out;
}

Result<RoundOutcome> RoundEngine::ExecuteParallel(const EngineRound& round) {
  const int64_t num_units = static_cast<int64_t>(round.units.size());
  RoundOutcome out;
  out.winners.resize(round.units.size());
  if (num_units == 0) return out;

  // Seeds are drawn before dispatch, in unit order — the whole point: the
  // answers depend only on (unit contents, seed), never on the schedule.
  std::vector<uint64_t> seeds(round.units.size());
  for (int64_t u = 0; u < num_units; ++u) {
    seeds[static_cast<size_t>(u)] = seeder_.Fork();
  }

  // Engine-owned per-unit scratch, reused across rounds: each pool task
  // touches only its own slot (indexed by unit), so the buffers stay
  // fork-local and race-free. Grown, never shrunk, so steady-state rounds
  // allocate nothing.
  if (unit_scratch_.size() < round.units.size()) {
    unit_scratch_.resize(round.units.size());
  }

  // During the round the cache is read-only shared state; each task
  // writes only to its own pre-sized winners slot.
  std::vector<int64_t> unit_paid(round.units.size(), 0);
  pool_->ParallelFor(num_units, [&](int64_t u) {
    const RoundUnit& unit = round.units[static_cast<size_t>(u)];
    std::vector<ElementId>& winners = out.winners[static_cast<size_t>(u)];

    const std::unique_ptr<Comparator> fork =
        comparator_->Fork(seeds[static_cast<size_t>(u)]);
    CROWDMAX_CHECK(fork != nullptr);
    VoteBatchComparator* batch =
        batch_generation_ ? fork->AsVoteBatch() : nullptr;

    if (batch != nullptr) {
      // Batch-at-once unit execution on the fork. The per-call parallel
      // path treats the cache as a read-only snapshot and does NOT dedupe
      // within a unit (each repeat is a fresh paid draw — Venetis votes),
      // so the miss list is simply every pair absent from the snapshot,
      // duplicates included, in pair order.
      winners.resize(unit.pairs.size());
      UnitScratch& scratch = unit_scratch_[static_cast<size_t>(u)];
      std::vector<ComparisonPair>& misses = scratch.misses;
      misses.clear();
      misses.reserve(unit.pairs.size());
      for (const ComparisonPair& pair : unit.pairs) {
        const ElementId* slot =
            memoize_
                ? std::as_const(*cache_).Find(
                      PackPairKey(pair.first, pair.second))
                : nullptr;
        if (slot == nullptr || *slot == kUnresolvedWinner) {
          misses.push_back(pair);
        }
      }
      std::vector<ElementId>& answers = scratch.answers;
      answers.assign(misses.size(), -1);
      const int64_t produced = batch->GenerateVotes(misses, answers);
      CROWDMAX_CHECK(produced == static_cast<int64_t>(misses.size()));
      size_t cursor = 0;
      for (size_t p = 0; p < unit.pairs.size(); ++p) {
        const ComparisonPair& pair = unit.pairs[p];
        const ElementId* slot =
            memoize_
                ? std::as_const(*cache_).Find(
                      PackPairKey(pair.first, pair.second))
                : nullptr;
        if (slot != nullptr && *slot != kUnresolvedWinner) {
          winners[p] = *slot;
        } else {
          winners[p] = answers[cursor++];
        }
        CROWDMAX_DCHECK(winners[p] == pair.first || winners[p] == pair.second);
      }
      CROWDMAX_CHECK(cursor == misses.size());
    } else {
      winners.reserve(unit.pairs.size());
      for (const ComparisonPair& pair : unit.pairs) {
        ElementId winner;
        if (memoize_) {
          const ElementId* slot = std::as_const(*cache_).Find(
              PackPairKey(pair.first, pair.second));
          if (slot != nullptr && *slot != kUnresolvedWinner) {
            winner = *slot;
          } else {
            winner = fork->Compare(pair.first, pair.second);
          }
        } else {
          winner = fork->Compare(pair.first, pair.second);
        }
        CROWDMAX_DCHECK(winner == pair.first || winner == pair.second);
        winners.push_back(winner);
      }
    }
    unit_paid[static_cast<size_t>(u)] = fork->num_comparisons();
  });

  // Round barrier: merge the counter shards into the parent and the fresh
  // pair outcomes into the cache, in unit order.
  int64_t total_paid = 0;
  for (int64_t paid : unit_paid) total_paid += paid;
  comparator_->AddComparisons(total_paid);

  for (size_t u = 0; u < round.units.size(); ++u) {
    const RoundUnit& unit = round.units[u];
    out.issued += static_cast<int64_t>(unit.pairs.size());
    if (memoize_) {
      for (size_t p = 0; p < unit.pairs.size(); ++p) {
        bool inserted = false;
        ElementId* slot = cache_->Insert(
            PackPairKey(unit.pairs[p].first, unit.pairs[p].second),
            out.winners[u][p], &inserted);
        // A pre-existing unresolved sentinel (shared cache, earlier faulty
        // phase) was bought this round; overwrite it with the evidence.
        if (!inserted && *slot == kUnresolvedWinner) {
          *slot = out.winners[u][p];
        }
      }
    }
  }

  out.paid_delta = total_paid;
  issued_ += out.issued;
  cache_hits_ += out.issued - out.paid_delta;
  return out;
}

Result<RoundOutcome> RoundEngine::ExecuteBatched(const EngineRound& round) {
  if (round.clear_round_cache) cache_->Clear();

  RoundOutcome out;
  out.winners.resize(round.units.size());
  std::vector<ComparisonPair>& queries = round_queries_;
  queries.clear();
  queries.reserve(static_cast<size_t>(round.TotalPairs()));
  for (const RoundUnit& unit : round.units) {
    queries.insert(queries.end(), unit.pairs.begin(), unit.pairs.end());
  }
  out.issued = static_cast<int64_t>(queries.size());
  issued_ += out.issued;
  const int64_t paid_before = executor_->comparisons();

  AlgoTrace* trace = CurrentTrace();
  int64_t span_id = -1;
  if (round.executor_span != nullptr && trace != nullptr) {
    span_id = trace->BeginSpan(TraceSpanKind::kBatch, round.executor_span);
  }

  // Resolve through the cache, batching only the misses (including pairs
  // left unresolved by an earlier faulty attempt). A duplicate query
  // within one round is sent once: the first occurrence reserves its slot
  // with -1, overwritten with the real winner (or parked kUnresolvedWinner)
  // below.
  std::vector<ComparisonPair>& misses = round_misses_;
  misses.clear();
  misses.reserve(queries.size());
  for (const ComparisonPair& q : queries) {
    const uint64_t key = PackPairKey(q.first, q.second);
    ElementId* slot = cache_->Find(key);
    if (slot == nullptr || *slot == kUnresolvedWinner) {
      misses.push_back(q);
      cache_->Set(key, -1);
    }
  }
  if (const int64_t hits =
          static_cast<int64_t>(queries.size() - misses.size());
      hits > 0) {
    cache_hits_ += hits;
    if (trace != nullptr) trace->RecordCacheHits(hits);
  }
  Result<std::vector<BatchTaskResult>> results =
      executor_->TryExecuteBatch(misses);
  // The non-pipelined drive pays the simulated crowd round trip here,
  // answered or not — a rejected submission still cost the latency.
  SleepOutLatency(executor_);
  if (!results.ok()) {
    for (const ComparisonPair& m : misses) {
      cache_->Set(PackPairKey(m.first, m.second), kUnresolvedWinner);
    }
    if (span_id >= 0) trace->EndSpan(span_id);
    if (results.status().code() != StatusCode::kUnavailable) {
      // Non-transient executor failure: abort the drive.
      return results.status();
    }
    out.fault = results.status();
  } else {
    CROWDMAX_CHECK(results->size() == misses.size());
    for (size_t i = 0; i < misses.size(); ++i) {
      const BatchTaskResult& result = (*results)[i];
      const uint64_t key = PackPairKey(misses[i].first, misses[i].second);
      if (!result.answered) {
        cache_->Set(key, kUnresolvedWinner);
        continue;
      }
      CROWDMAX_DCHECK(result.winner == misses[i].first ||
                      result.winner == misses[i].second);
      cache_->Set(key, result.winner);
    }
    if (span_id >= 0) trace->EndSpan(span_id);
  }

  // Map the per-pair outcomes back onto the round's units. Every query
  // was either cached, answered, or parked as unresolved above.
  for (size_t u = 0; u < round.units.size(); ++u) {
    const RoundUnit& unit = round.units[u];
    std::vector<ElementId>& winners = out.winners[u];
    winners.reserve(unit.pairs.size());
    for (const ComparisonPair& pair : unit.pairs) {
      const ElementId* slot =
          cache_->Find(PackPairKey(pair.first, pair.second));
      CROWDMAX_CHECK(slot != nullptr && *slot != -1);
      if (*slot == kUnresolvedWinner) ++out.unresolved;
      winners.push_back(*slot);
    }
  }

  out.paid_delta = executor_->comparisons() - paid_before;
  return out;
}

Result<DriveResult> RoundEngine::Drive(RoundSource* source,
                                       const DriveOptions& options) {
  CROWDMAX_CHECK(source != nullptr);
  if (async_ != nullptr) return DrivePipelined(source, options);
  DriveResult drive;
  int64_t paid_start = paid();
  int64_t open_round_id = -1;
  AlgoTrace* trace = CurrentTrace();
  const auto close_round_span = [&] {
    if (open_round_id >= 0) {
      trace->EndSpan(open_round_id);
      open_round_id = -1;
    }
  };

  // A staged restore rebuilds the whole run — engine counters, cache,
  // comparator/executor stack, source — before the first round, so the
  // drive below continues exactly where the checkpointed one stopped.
  if (checkpoint_ != nullptr && checkpoint_->PendingRestore() != nullptr) {
    Status restored = RestoreCheckpoint(
        source, *checkpoint_->PendingRestore(), &paid_start, &drive);
    if (!restored.ok()) return restored;
    checkpoint_->MarkRestored();
  }

  while (true) {
    EngineRound round;
    Result<bool> more = source->NextRound(&round);
    if (!more.ok()) {
      close_round_span();
      return more.status();
    }
    if (!*more) break;

    // Budget gate, at the round boundary: a round whose worst case would
    // exceed the cap never starts (memoization hits could make it cheaper,
    // but a guaranteed-affordable round is what the cap promises).
    if (options.max_comparisons > 0 &&
        (paid() - paid_start) + round.TotalPairs() > options.max_comparisons) {
      drive.stopped_by_budget = true;
      source->OnBudgetStop();
      break;
    }

    const int64_t open_round = backend_ == Backend::kExecutor
                                   ? round.open_round_executor
                                   : round.open_round_comparator;
    const bool close_round = backend_ == Backend::kExecutor
                                 ? round.close_round_executor
                                 : round.close_round_comparator;
    if (open_round > 0 && trace != nullptr) {
      CROWDMAX_CHECK(open_round_id < 0);
      open_round_id = trace->BeginRound(open_round);
    }

    Result<RoundOutcome> outcome = ExecuteRound(round);
    if (!outcome.ok()) {
      close_round_span();
      return outcome.status();
    }

    // Comparator-backend cell recording at the round barrier: every paid
    // comparison came back answered (faults live in the executor stack)
    // and the issued-minus-paid remainder was served by the memo cache.
    if (backend_ != Backend::kExecutor && round.record_round_cell &&
        trace != nullptr) {
      trace->RecordDispatched(outcome->paid_delta);
      trace->RecordOutcomes(outcome->paid_delta, 0, 0);
      if (outcome->issued > outcome->paid_delta) {
        trace->RecordCacheHits(outcome->issued - outcome->paid_delta);
      }
    }

    Status consumed = source->ConsumeOutcome(round, *outcome);
    if (close_round) close_round_span();
    if (!consumed.ok()) {
      close_round_span();
      return consumed;
    }
    ++drive.rounds_executed;
    // Clean round boundary: no open trace span, no outstanding work. The
    // controller may snapshot here (cadence) or kill the run (chaos plan);
    // a kAborted from the plan propagates out like any drive error.
    if (checkpoint_ != nullptr && open_round_id < 0) {
      Status boundary = checkpoint_->OnRoundBoundary(
          [&] { return SerializeCheckpoint(source, paid_start, drive); });
      if (!boundary.ok()) return boundary;
    }
  }

  close_round_span();
  return drive;
}

// One pipelined round between submission and completion. `out` already
// carries the submission-time halves (issued, paid_delta, cache hits
// recorded); completion fills winners/unresolved/fault. A speculative
// round sits in the window with only `round`, `handle` (an unconfirmed
// speculative handle) and `source_round_index` filled in — its
// deterministic halves run at confirmation, when SubmitPipelined is
// invoked on it a second time.
struct RoundEngine::PendingRound {
  EngineRound round;
  int64_t handle = -1;
  std::vector<ComparisonPair> misses;
  RoundOutcome out;
  bool close_round = false;
  bool speculative = false;
  /// Emission ordinal of this round within the drive (rounds consumed +
  /// position in the in-flight window at emission), for diagnostics.
  int64_t source_round_index = 0;
};

Status RoundEngine::SubmitPipelined(PendingRound* pending) {
  const EngineRound& r = pending->round;
  if (r.clear_round_cache) cache_->Clear();  // Drive drained first.

  RoundOutcome& out = pending->out;
  out.winners.resize(r.units.size());
  std::vector<ComparisonPair>& queries = round_queries_;
  queries.clear();
  queries.reserve(static_cast<size_t>(r.TotalPairs()));
  for (const RoundUnit& unit : r.units) {
    queries.insert(queries.end(), unit.pairs.begin(), unit.pairs.end());
  }
  out.issued = static_cast<int64_t>(queries.size());
  issued_ += out.issued;
  const int64_t paid_before = executor_->comparisons();

  AlgoTrace* trace = CurrentTrace();
  int64_t span_id = -1;
  if (r.executor_span != nullptr && trace != nullptr) {
    span_id = trace->BeginSpan(TraceSpanKind::kBatch, r.executor_span);
  }

  // Cache resolution, exactly as ExecuteBatched — except that a -1
  // reservation now marks a pair owned by a round still in flight. Seeing
  // one that this round did not reserve itself means the source emitted a
  // round overlapping an in-flight round: a CanPipelineNextRound contract
  // violation, reported instead of silently racing on the answer.
  std::unordered_set<uint64_t> reserved_here;
  std::vector<ComparisonPair>& misses = pending->misses;
  misses.reserve(queries.size());
  for (const ComparisonPair& q : queries) {
    const uint64_t key = PackPairKey(q.first, q.second);
    ElementId* slot = cache_->Find(key);
    if (slot != nullptr && *slot == -1 && reserved_here.count(key) == 0) {
      if (span_id >= 0) trace->EndSpan(span_id);
      return Status::Internal(
          "pipelined round depends on a pair still in flight (RoundPairKey " +
          std::to_string(key) + " = {" + std::to_string(q.first) + ", " +
          std::to_string(q.second) + "}, source round index " +
          std::to_string(pending->source_round_index) +
          "); the RoundSource violated the CanPipelineNextRound "
          "disjointness rule");
    }
    if (slot == nullptr || *slot == kUnresolvedWinner) {
      misses.push_back(q);
      cache_->Set(key, -1);
      reserved_here.insert(key);
    }
  }
  if (const int64_t hits =
          static_cast<int64_t>(queries.size() - misses.size());
      hits > 0) {
    cache_hits_ += hits;
    if (trace != nullptr) trace->RecordCacheHits(hits);
  }

  // Compute-at-submit: the adapter runs the inner executor synchronously
  // here (identical RNG draws, counters, transcript rows and trace cells
  // to the non-pipelined path) and banks only the latency. paid_delta is
  // therefore final at submission, which is what keeps the budget gate and
  // every counter bit-identical to the serial drive. A speculative round
  // being confirmed already holds its handle: the same deterministic half
  // runs now — at the exact point the synchronous drive would have
  // submitted it — and the adapter back-dates the deadline to the
  // speculative start, which is the whole wall-clock win.
  if (pending->handle >= 0) {
    Status confirmed = async_->ConfirmBatch(pending->handle, misses);
    if (!confirmed.ok()) {
      for (const ComparisonPair& m : misses) {
        cache_->Set(PackPairKey(m.first, m.second), kUnresolvedWinner);
      }
      if (span_id >= 0) trace->EndSpan(span_id);
      return confirmed;
    }
  } else {
    Result<int64_t> handle = async_->SubmitBatchAsync(misses);
    if (!handle.ok()) {
      for (const ComparisonPair& m : misses) {
        cache_->Set(PackPairKey(m.first, m.second), kUnresolvedWinner);
      }
      if (span_id >= 0) trace->EndSpan(span_id);
      return handle.status();
    }
    pending->handle = *handle;
  }
  out.paid_delta = executor_->comparisons() - paid_before;
  // The batch span closes at submission: the sync path emits no trace
  // operation between the executor call returning and its span end, so
  // the operation sequences match exactly.
  if (span_id >= 0) trace->EndSpan(span_id);
  return Status::OK();
}

Status RoundEngine::CompletePipelined(PendingRound* pending) {
  Result<std::vector<BatchTaskResult>> results =
      async_->Wait(pending->handle);
  RoundOutcome& out = pending->out;
  if (!results.ok()) {
    for (const ComparisonPair& m : pending->misses) {
      cache_->Set(PackPairKey(m.first, m.second), kUnresolvedWinner);
    }
    if (results.status().code() != StatusCode::kUnavailable) {
      return results.status();
    }
    out.fault = results.status();
  } else {
    CROWDMAX_CHECK(results->size() == pending->misses.size());
    for (size_t i = 0; i < pending->misses.size(); ++i) {
      const BatchTaskResult& result = (*results)[i];
      const uint64_t key = PackPairKey(pending->misses[i].first,
                                       pending->misses[i].second);
      if (!result.answered) {
        cache_->Set(key, kUnresolvedWinner);
        continue;
      }
      CROWDMAX_DCHECK(result.winner == pending->misses[i].first ||
                      result.winner == pending->misses[i].second);
      cache_->Set(key, result.winner);
    }
  }

  for (size_t u = 0; u < pending->round.units.size(); ++u) {
    const RoundUnit& unit = pending->round.units[u];
    std::vector<ElementId>& winners = out.winners[u];
    winners.reserve(unit.pairs.size());
    for (const ComparisonPair& pair : unit.pairs) {
      const ElementId* slot =
          cache_->Find(PackPairKey(pair.first, pair.second));
      CROWDMAX_CHECK(slot != nullptr && *slot != -1);
      if (*slot == kUnresolvedWinner) ++out.unresolved;
      winners.push_back(*slot);
    }
  }
  return Status::OK();
}

Result<DriveResult> RoundEngine::DrivePipelined(RoundSource* source,
                                                const DriveOptions& options) {
  DriveResult drive;
  int64_t paid_start = paid();
  int64_t open_round_id = -1;
  AlgoTrace* trace = CurrentTrace();
  std::deque<std::unique_ptr<PendingRound>> in_flight;

  const auto close_round_span = [&] {
    if (open_round_id >= 0) {
      trace->EndSpan(open_round_id);
      open_round_id = -1;
    }
  };
  // Abort-path cleanup: park every in-flight round's misses so a shared
  // cache is not left holding -1 reservations, and cancel the async
  // handles — computed answers abandoned unconsumed are banked-answer
  // refunds the adapter accounts. Speculative rounds reserved nothing in
  // the cache and computed nothing, so cancellation alone unwinds them;
  // the source is told its speculation died with the drive.
  const auto abandon_in_flight = [&] {
    bool aborted_speculation = false;
    for (const auto& pending : in_flight) {
      if (pending->handle >= 0) {
        // Failure here is unreachable on the adapter (the handle is live);
        // on this abort path the refund count is dropped regardless.
        async_->CancelBatch(pending->handle);
      }
      if (pending->speculative) {
        aborted_speculation = true;
        continue;
      }
      for (const ComparisonPair& m : pending->misses) {
        cache_->Set(PackPairKey(m.first, m.second), kUnresolvedWinner);
      }
    }
    in_flight.clear();
    if (aborted_speculation) source->OnSpeculationAborted();
  };
  // Waits out the oldest in-flight round and delivers its outcome —
  // strictly in submission order, so the source sees the same callback
  // sequence as the serial drive. Never called on a speculative round:
  // the reconcile branch below turns the window firm (or cancels it)
  // before anything in it can retire.
  const auto complete_oldest = [&]() -> Status {
    PendingRound* pending = in_flight.front().get();
    CROWDMAX_CHECK(!pending->speculative);
    Status done = CompletePipelined(pending);
    if (!done.ok()) {
      in_flight.pop_front();
      return done;
    }
    Status consumed = source->ConsumeOutcome(pending->round, pending->out);
    const bool close_round = pending->close_round;
    in_flight.pop_front();
    if (close_round) close_round_span();
    if (!consumed.ok()) return consumed;
    ++drive.rounds_executed;
    // Checkpoints only at fully-drained boundaries: nothing in flight and
    // no open trace span, so the serialized state has no half-submitted
    // rounds or -1 cache reservations in it.
    if (checkpoint_ != nullptr && in_flight.empty() && open_round_id < 0) {
      Status boundary = checkpoint_->OnRoundBoundary(
          [&] { return SerializeCheckpoint(source, paid_start, drive); });
      if (!boundary.ok()) return boundary;
    }
    return Status::OK();
  };

  if (checkpoint_ != nullptr && checkpoint_->PendingRestore() != nullptr) {
    Status restored = RestoreCheckpoint(
        source, *checkpoint_->PendingRestore(), &paid_start, &drive);
    if (!restored.ok()) return restored;
    checkpoint_->MarkRestored();
  }

  // Speculation is legal only on budget-free drives: the budget gate is
  // an emission-time predicate of the synchronous schedule, and a
  // speculative round has no emission point yet — rather than approximate
  // the gate, budget-gated drives degrade to firm pipelining
  // (DESIGN.md §15).
  const bool allow_speculation = options.max_comparisons == 0;

  while (true) {
    // The in-flight window is always a firm prefix followed by a
    // speculative suffix. The front turning speculative means every firm
    // outcome has been consumed: the prediction can be judged now.
    if (!in_flight.empty() && in_flight.front()->speculative) {
      const SpeculationVerdict verdict = source->ReconcileSpeculation();
      if (verdict == SpeculationVerdict::kConfirmed) {
        // Turn the whole window firm, in emission order. Each round's
        // deterministic half (cache resolution, batch span, executor
        // compute, paid accounting) runs here — the exact program point
        // where the synchronous drive would have submitted it — while its
        // latency deadline stays anchored at the speculative start.
        int64_t confirmed_rounds = 0;
        Status confirm_error = Status::OK();
        for (auto& pending : in_flight) {
          CROWDMAX_CHECK(pending->speculative);
          confirm_error = SubmitPipelined(pending.get());
          if (!confirm_error.ok()) break;
          pending->speculative = false;
          ++speculation_hits_;
          ++confirmed_rounds;
        }
        if (!confirm_error.ok()) {
          abandon_in_flight();
          close_round_span();
          return confirm_error;
        }
        ObserveSpeculation(confirmed_rounds, 0, 0);
        continue;
      }
      // Misprediction: cancel the whole window before anything in it runs,
      // charge the comparisons the rounds *would* have bought (deduped
      // against the cache and each other, the way submission would have
      // deduped them) as first-class wasted spend, and let the source roll
      // its emission bookkeeping back to consumed truth.
      int64_t wasted = 0;
      int64_t cancelled_rounds = 0;
      std::unordered_set<uint64_t> would_buy;
      for (const auto& pending : in_flight) {
        CROWDMAX_CHECK(pending->speculative);
        for (const RoundUnit& unit : pending->round.units) {
          for (const ComparisonPair& pair : unit.pairs) {
            const uint64_t key = PackPairKey(pair.first, pair.second);
            const ElementId* slot = cache_->Find(key);
            if ((slot == nullptr || *slot == kUnresolvedWinner) &&
                would_buy.insert(key).second) {
              ++wasted;
            }
          }
        }
        async_->CancelBatch(pending->handle);  // unconfirmed: nothing banked
        ++speculation_mispredicts_;
        ++cancelled_rounds;
      }
      in_flight.clear();
      source->OnSpeculationAborted();
      if (wasted > 0) {
        executor_->ChargeCancelledSpeculation(wasted);
        speculation_wasted_ += wasted;
      }
      ObserveSpeculation(0, cancelled_rounds, wasted);
      continue;
    }

    // Emission decision. Firm emission needs the window tail firm (a firm
    // round behind a speculative one would reorder the consume sequence);
    // speculative emission needs a source prediction and a budget-free
    // drive. When neither is legal, retire the oldest round — the source
    // needs an outcome (or the window is full) before anything new can go
    // out.
    const bool window_full =
        static_cast<int64_t>(in_flight.size()) >= max_in_flight_;
    const bool tail_speculative =
        !in_flight.empty() && in_flight.back()->speculative;
    const bool emit_firm =
        in_flight.empty() ||
        (!window_full && !tail_speculative && source->CanPipelineNextRound());
    bool emit_speculative = !emit_firm && !window_full && allow_speculation &&
                            source->CanSpeculateNextRound();

    if (emit_speculative) {
      EngineRound round;
      Result<bool> offered = source->SpeculateNextRound(&round);
      if (!offered.ok()) {
        abandon_in_flight();
        close_round_span();
        return offered.status();
      }
      if (*offered) {
        // Speculative rounds may not open round spans or clear the cache:
        // both are effects of the synchronous schedule, which this round
        // has not joined yet.
        CROWDMAX_CHECK(round.open_round_executor == 0);
        CROWDMAX_CHECK(!round.clear_round_cache);
        auto pending = std::make_unique<PendingRound>();
        pending->speculative = true;
        pending->close_round = round.close_round_executor;
        pending->source_round_index =
            drive.rounds_executed + static_cast<int64_t>(in_flight.size());
        pending->round = std::move(round);
        Result<int64_t> handle = async_->SubmitSpeculativeBatch();
        if (!handle.ok()) {
          abandon_in_flight();
          close_round_span();
          return handle.status();
        }
        pending->handle = *handle;
        in_flight.push_back(std::move(pending));
        ++speculative_rounds_;
        ++overlapped_rounds_;  // a speculative round overlaps by definition
        const int64_t depth = static_cast<int64_t>(in_flight.size());
        if (depth > max_in_flight_observed_) max_in_flight_observed_ = depth;
        ObservePipelineDepth(depth);
        continue;
      }
      emit_speculative = false;  // declined after all: fall through to retire
    }

    // Retire the oldest round whenever the pipeline is full or the source
    // needs an outcome before it can emit again.
    if (!emit_firm) {
      Status retired = complete_oldest();
      if (!retired.ok()) {
        abandon_in_flight();
        close_round_span();
        return retired;
      }
      continue;
    }

    EngineRound round;
    Result<bool> more = source->NextRound(&round);
    if (!more.ok()) {
      abandon_in_flight();
      close_round_span();
      return more.status();
    }
    if (!*more) break;

    // Budget gate: paid() is already final for every submitted round
    // (compute-at-submit), so the gate evaluates exactly the serial
    // drive's predicate. In-flight rounds are drained before the source
    // hears about the stop, preserving its callback order.
    if (options.max_comparisons > 0 &&
        (paid() - paid_start) + round.TotalPairs() > options.max_comparisons) {
      while (!in_flight.empty()) {
        Status retired = complete_oldest();
        if (!retired.ok()) {
          abandon_in_flight();
          close_round_span();
          return retired;
        }
      }
      drive.stopped_by_budget = true;
      source->OnBudgetStop();
      break;
    }

    // A cache clear under in-flight rounds would drop their reservations:
    // drain first. (Pipelining sources only clear at logical-round
    // boundaries, where CanPipelineNextRound already forced a drain, so
    // this loop is a no-op for them.)
    if (round.clear_round_cache) {
      while (!in_flight.empty()) {
        Status retired = complete_oldest();
        if (!retired.ok()) {
          abandon_in_flight();
          close_round_span();
          return retired;
        }
      }
    }

    if (round.open_round_executor > 0 && trace != nullptr) {
      CROWDMAX_CHECK(open_round_id < 0);
      open_round_id = trace->BeginRound(round.open_round_executor);
    }
    const bool overlapped = !in_flight.empty();

    auto pending = std::make_unique<PendingRound>();
    pending->close_round = round.close_round_executor;
    pending->source_round_index =
        drive.rounds_executed + static_cast<int64_t>(in_flight.size());
    pending->round = std::move(round);
    Status submitted = SubmitPipelined(pending.get());
    if (!submitted.ok()) {
      abandon_in_flight();
      close_round_span();
      return submitted;
    }
    in_flight.push_back(std::move(pending));
    if (overlapped) ++overlapped_rounds_;
    const int64_t depth = static_cast<int64_t>(in_flight.size());
    if (depth > max_in_flight_observed_) max_in_flight_observed_ = depth;
    ObservePipelineDepth(depth);
  }

  while (!in_flight.empty()) {
    Status retired = complete_oldest();
    if (!retired.ok()) {
      abandon_in_flight();
      close_round_span();
      return retired;
    }
  }
  close_round_span();
  return drive;
}

}  // namespace crowdmax
