#include "core/maxfind.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "core/checkpoint.h"
#include "core/round_engine.h"
#include "core/tournament.h"

namespace crowdmax {

namespace {

constexpr uint32_t kTwoMaxTag = CheckpointTag("2MAX");
constexpr uint32_t kRandTag = CheckpointTag("RMAX");

Status ValidateItems(const std::vector<ElementId>& items) {
  if (items.empty()) {
    return Status::InvalidArgument("candidate set must be non-empty");
  }
  std::unordered_set<ElementId> seen;
  for (ElementId e : items) {
    if (!seen.insert(e).second) {
      return Status::InvalidArgument("duplicate element id in candidate set");
    }
  }
  return Status::OK();
}

int64_t CeilSqrt(int64_t s) {
  int64_t r = static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(s))));
  while (r * r < s) ++r;
  while (r > 1 && (r - 1) * (r - 1) >= s) --r;
  return r;
}

// Tallies one all-play-all unit: wins per element, no win to either side of
// an unresolved pair (missing evidence), returning the unresolved count.
int64_t TallyAllPlayAll(const std::vector<ElementId>& group,
                        const std::vector<ElementId>& winners,
                        std::vector<int64_t>* wins) {
  wins->assign(group.size(), 0);
  int64_t unresolved = 0;
  size_t t = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    for (size_t j = i + 1; j < group.size(); ++j, ++t) {
      const ElementId winner = winners[t];
      if (winner == kUnresolvedWinner) {
        ++unresolved;
        continue;
      }
      ++(*wins)[winner == group[i] ? i : j];
    }
  }
  return unresolved;
}

// Algorithm 3 as a round generator. One algorithm round spans two engine
// rounds — the sample tournament, a barrier to pick the pivot, then the
// elimination scan — so the trace round span opens on the sample round and
// closes on the scan round.
class TwoMaxFindSource : public RoundSource {
 public:
  TwoMaxFindSource(const std::vector<ElementId>& items, bool partial_evidence,
                   bool speculate)
      : partial_evidence_(partial_evidence),
        speculate_(speculate),
        candidates_(items) {
    const int64_t s = static_cast<int64_t>(items.size());
    k_ = CeilSqrt(s);
    // Without memoization an inconsistent answer stream can stall the
    // elimination loop; bound the number of rounds (generous: with
    // consistent answers each round removes >= (k-1)/2 elements).
    max_rounds_ = 4 * s + 16;
  }

  Result<bool> NextRound(EngineRound* round) override {
    if (phase_ == Phase::kSample &&
        static_cast<int64_t>(candidates_.size()) <= k_) {
      phase_ = Phase::kFinal;
    }
    switch (phase_) {
      case Phase::kSample: {
        if (result_.rounds >= max_rounds_) {
          return partial_evidence_
                     ? Status::Internal(
                           "batched 2-MaxFind exceeded its round budget; "
                           "executor answers are inconsistent")
                     : Status::Internal(
                           "2-MaxFind exceeded its round budget; comparator "
                           "answers are inconsistent (enable memoization)");
        }
        // Step 3: arbitrary ceil(sqrt(s)) candidates — take the first k
        // (the paper allows any choice; deterministic for reproducibility).
        sample_.assign(candidates_.begin(), candidates_.begin() + k_);
        RoundUnit unit;
        unit.serial_span = "all_play_all";
        unit.serial_span_size = k_;
        unit.pairs.reserve(static_cast<size_t>(k_ * (k_ - 1) / 2));
        for (size_t i = 0; i < sample_.size(); ++i) {
          for (size_t j = i + 1; j < sample_.size(); ++j) {
            unit.pairs.push_back({sample_[i], sample_[j]});
          }
        }
        round->units.push_back(std::move(unit));
        round->executor_span = "sample";
        round->open_round_executor = result_.rounds + 1;
        awaiting_sample_ = true;
        return true;
      }
      case Phase::kScan: {
        // Step 4: compare the pivot against all candidates. The pivot goes
        // first so AdversarialPolicy::kFirstLoses models the paper's worst
        // case.
        RoundUnit unit;
        unit.pairs.reserve(candidates_.size());
        for (ElementId y : candidates_) {
          if (y != pivot_) unit.pairs.push_back({pivot_, y});
        }
        round->units.push_back(std::move(unit));
        round->executor_span = "scan";
        round->close_round_executor = true;
        return true;
      }
      case Phase::kFinal: {
        // Step 6: final tournament among the surviving candidates.
        RoundUnit unit;
        unit.serial_span = "all_play_all";
        unit.serial_span_size = static_cast<int64_t>(candidates_.size());
        for (size_t i = 0; i < candidates_.size(); ++i) {
          for (size_t j = i + 1; j < candidates_.size(); ++j) {
            unit.pairs.push_back({candidates_[i], candidates_[j]});
          }
        }
        round->units.push_back(std::move(unit));
        round->executor_span = "final";
        return true;
      }
      case Phase::kDone:
        return false;
    }
    return Status::Internal("unreachable");
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    result_.issued_comparisons += outcome.issued;
    switch (phase_) {
      case Phase::kSample: {
        ++result_.rounds;
        awaiting_sample_ = false;
        std::vector<int64_t> wins;
        sample_unresolved_ = TallyAllPlayAll(sample_, outcome.winners[0], &wins);
        sample_fault_ = outcome.fault;
        TournamentResult tournament;
        tournament.wins = std::move(wins);
        pivot_ = sample_[IndexOfMostWins(tournament)];
        phase_ = Phase::kScan;
        return Status::OK();
      }
      case Phase::kScan: {
        // An unresolved scan comparison is missing evidence: the element
        // survives (no elimination without a counted loss) and the pair is
        // re-issued by a later round through the engine cache.
        int64_t unresolved_scan = 0;
        std::vector<ElementId> survivors;
        survivors.reserve(candidates_.size());
        const std::vector<ElementId>& winners = outcome.winners[0];
        size_t t = 0;
        for (ElementId y : candidates_) {
          if (y == pivot_) {
            survivors.push_back(y);
            continue;
          }
          const ElementId winner = winners[t++];
          if (winner == kUnresolvedWinner) {
            ++unresolved_scan;
            survivors.push_back(y);
            continue;
          }
          if (winner != pivot_) survivors.push_back(y);
        }
        const bool progress = survivors.size() < candidates_.size();
        candidates_ = std::move(survivors);

        const bool faulty = sample_unresolved_ > 0 || unresolved_scan > 0 ||
                            !sample_fault_.ok() || !outcome.fault.ok();
        if (!progress && faulty) {
          // Faults withheld the evidence this round needed; the executor's
          // own recovery already ran, so stop and report the field as it
          // stands.
          partial_ = true;
          fault_status_ =
              !outcome.fault.ok() ? outcome.fault
              : !sample_fault_.ok()
                  ? sample_fault_
                  : Status::Unavailable(
                        "2-MaxFind round made no progress: " +
                        std::to_string(sample_unresolved_ + unresolved_scan) +
                        " comparisons unresolved after executor recovery");
          survivors_ = candidates_;
          phase_ = Phase::kDone;
          return Status::OK();
        }
        phase_ = Phase::kSample;
        return Status::OK();
      }
      case Phase::kFinal: {
        std::vector<int64_t> wins;
        const int64_t unresolved =
            TallyAllPlayAll(candidates_, outcome.winners[0], &wins);
        TournamentResult tournament;
        tournament.wins = std::move(wins);
        result_.best = candidates_[IndexOfMostWins(tournament)];
        if (unresolved > 0 || !outcome.fault.ok()) {
          // The final tournament ran on incomplete evidence: `best` is the
          // provisional leader, flagged partial so callers can tell.
          partial_ = true;
          fault_status_ =
              !outcome.fault.ok()
                  ? outcome.fault
                  : Status::Unavailable(
                        "final tournament left " + std::to_string(unresolved) +
                        " comparisons unresolved; best is provisional");
          survivors_ = candidates_;
        }
        phase_ = Phase::kDone;
        return Status::OK();
      }
      case Phase::kDone:
        break;
    }
    return Status::Internal("unreachable");
  }

  // Speculation (DESIGN.md §15): while a sample tournament is in flight,
  // predict its winner and emit the elimination scan against that pivot.
  // The prediction is the lowest-indexed sample member — the sample is the
  // candidate prefix, so callers ordering candidates by prior strength
  // (phase-1 win counts) make it a strong guess, while
  // AdversarialPolicy::kFirstLoses (sample_[0] is always the first
  // argument, so it always loses) drives the hit rate to zero — the
  // misprediction-accounting worst case.
  bool CanSpeculateNextRound() const override {
    return speculate_ && awaiting_sample_ && !spec_outstanding_;
  }

  Result<bool> SpeculateNextRound(EngineRound* round) override {
    CROWDMAX_CHECK(CanSpeculateNextRound());
    predicted_pivot_ = sample_.front();
    RoundUnit unit;
    unit.pairs.reserve(candidates_.size());
    for (ElementId y : candidates_) {
      if (y != predicted_pivot_) unit.pairs.push_back({predicted_pivot_, y});
    }
    round->units.push_back(std::move(unit));
    round->executor_span = "scan";
    round->close_round_executor = true;
    spec_outstanding_ = true;
    return true;
  }

  SpeculationVerdict ReconcileSpeculation() override {
    CROWDMAX_CHECK(spec_outstanding_);
    if (predicted_pivot_ == pivot_) {
      spec_outstanding_ = false;
      predicted_pivot_ = -1;
      return SpeculationVerdict::kConfirmed;
    }
    return SpeculationVerdict::kMispredicted;
  }

  void OnSpeculationAborted() override {
    // The phase machine never advanced on speculation, so dropping the
    // prediction is the whole rollback; NextRound re-emits the scan with
    // the true pivot.
    spec_outstanding_ = false;
    predicted_pivot_ = -1;
  }

  MaxFindEngineRun Finish(int64_t paid_delta) {
    MaxFindEngineRun run;
    result_.paid_comparisons = paid_delta;
    run.maxfind = std::move(result_);
    run.partial = partial_;
    run.fault_status = fault_status_;
    run.survivors = std::move(survivors_);
    return run;
  }

  Status SaveState(CheckpointWriter* writer) const override {
    writer->WriteTag(kTwoMaxTag);
    writer->WriteIdVector(candidates_);
    writer->WriteI64(k_);
    writer->WriteI64(max_rounds_);
    writer->WriteI64(static_cast<int64_t>(phase_));
    writer->WriteIdVector(sample_);
    writer->WriteI64(pivot_);
    writer->WriteI64(sample_unresolved_);
    writer->WriteStatus(sample_fault_);
    writer->WriteI64(result_.best);
    writer->WriteI64(result_.paid_comparisons);
    writer->WriteI64(result_.issued_comparisons);
    writer->WriteI64(result_.rounds);
    writer->WriteBool(partial_);
    writer->WriteStatus(fault_status_);
    writer->WriteIdVector(survivors_);
    // Speculation bookkeeping. Checkpoints are cut at quiescent
    // boundaries (no round in flight), so these are always the rest
    // values; they are serialized anyway so the state invariant is "the
    // whole source", not "the fields that happen to matter".
    writer->WriteBool(awaiting_sample_);
    writer->WriteBool(spec_outstanding_);
    writer->WriteI64(predicted_pivot_);
    return Status::OK();
  }

  Status LoadState(CheckpointReader* reader) override {
    reader->ExpectTag(kTwoMaxTag);
    reader->ReadIdVector(&candidates_);
    k_ = reader->ReadI64();
    max_rounds_ = reader->ReadI64();
    phase_ = static_cast<Phase>(reader->ReadI64());
    reader->ReadIdVector(&sample_);
    pivot_ = static_cast<ElementId>(reader->ReadI64());
    sample_unresolved_ = reader->ReadI64();
    sample_fault_ = reader->ReadStatus();
    result_.best = static_cast<ElementId>(reader->ReadI64());
    result_.paid_comparisons = reader->ReadI64();
    result_.issued_comparisons = reader->ReadI64();
    result_.rounds = reader->ReadI64();
    partial_ = reader->ReadBool();
    fault_status_ = reader->ReadStatus();
    reader->ReadIdVector(&survivors_);
    awaiting_sample_ = reader->ReadBool();
    spec_outstanding_ = reader->ReadBool();
    predicted_pivot_ = static_cast<ElementId>(reader->ReadI64());
    return reader->status();
  }

 private:
  enum class Phase { kSample, kScan, kFinal, kDone };

  const bool partial_evidence_;
  const bool speculate_;
  std::vector<ElementId> candidates_;
  int64_t k_ = 0;
  int64_t max_rounds_ = 0;
  Phase phase_ = Phase::kSample;
  std::vector<ElementId> sample_;
  ElementId pivot_ = -1;
  int64_t sample_unresolved_ = 0;
  Status sample_fault_ = Status::OK();
  MaxFindResult result_;
  bool partial_ = false;
  Status fault_status_ = Status::OK();
  std::vector<ElementId> survivors_;
  // True between a sample round's emission and its consumption — the only
  // window in which the follow-up scan is predictable.
  bool awaiting_sample_ = false;
  bool spec_outstanding_ = false;
  ElementId predicted_pivot_ = -1;
};

// Algorithm 5 as a round generator. Each elimination round draws the
// witness sample and shuffles the survivors (both from the source's own
// RNG — the engine never consumes algorithm randomness), then plays one
// all-play-all per group; a final round decides among the witness set plus
// the remaining survivors.
class RandomizedMaxFindSource : public RoundSource {
 public:
  RandomizedMaxFindSource(const std::vector<ElementId>& items,
                          const RandomizedMaxFindOptions& options,
                          bool partial_evidence)
      : partial_evidence_(partial_evidence),
        pipeline_groups_(options.pipeline_groups),
        rng_(options.seed),
        survivors_(items) {
    const int64_t s = static_cast<int64_t>(items.size());
    threshold_ = std::pow(static_cast<double>(s), options.sample_exponent);
    sample_size_ = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(threshold_)));
    group_size_ = options.group_size_override > 0 ? options.group_size_override
                                                  : 80 * (options.c + 2);
  }

  Result<bool> NextRound(EngineRound* round) override {
    if (done_) return false;
    if (pipeline_groups_ && next_emit_group_ < groups_.size()) {
      // Mid logical round: the witness sample, shuffle and partition were
      // all drawn at the first group's emission, so the remaining groups
      // are fully determined — each one becomes its own engine round.
      EmitGroup(groups_[next_emit_group_], round);
      ++next_emit_group_;
      return true;
    }
    // Logical-round boundary: grouped emission must have been fully
    // consumed (the barrier resets the cursors and clears the partition).
    CROWDMAX_CHECK(!pipeline_groups_ ||
                   (groups_.empty() && next_emit_group_ == 0));
    if (final_pending_ ||
        static_cast<double>(survivors_.size()) < threshold_ ||
        survivors_.size() <= 1) {
      // Lines 9-10: final tournament over W plus the remaining survivors.
      for (ElementId e : survivors_) witness_set_.insert(e);
      finalists_.assign(witness_set_.begin(), witness_set_.end());
      std::sort(finalists_.begin(), finalists_.end());  // Determinism.
      RoundUnit unit;
      unit.serial_span = "all_play_all";
      unit.serial_span_size = static_cast<int64_t>(finalists_.size());
      for (size_t i = 0; i < finalists_.size(); ++i) {
        for (size_t j = i + 1; j < finalists_.size(); ++j) {
          unit.pairs.push_back({finalists_[i], finalists_[j]});
        }
      }
      round->units.push_back(std::move(unit));
      round->executor_span = "final";
      in_final_ = true;
      return true;
    }

    // Line 3: sample |S|^0.3 random survivors into the witness set W.
    const size_t n = survivors_.size();
    const size_t draw = std::min<size_t>(static_cast<size_t>(sample_size_), n);
    for (size_t idx : rng_.SampleWithoutReplacement(n, draw)) {
      witness_set_.insert(survivors_[idx]);
    }

    // Line 4: random partition into groups of 80*(c+2). Only the last
    // chunk can be a singleton; it has no minimal element to eliminate and
    // advances untouched.
    rng_.Shuffle(&survivors_);
    groups_.clear();
    passthrough_.clear();
    for (size_t start = 0; start < survivors_.size();
         start += static_cast<size_t>(group_size_)) {
      const size_t end = std::min(survivors_.size(),
                                  start + static_cast<size_t>(group_size_));
      if (end - start < 2) {
        passthrough_.assign(survivors_.begin() + start, survivors_.begin() + end);
      } else {
        groups_.emplace_back(survivors_.begin() + start,
                             survivors_.begin() + end);
      }
    }
    if (pipeline_groups_) {
      // Survivors >= 2 here, so the partition always yields at least one
      // group of >= 2 elements.
      CROWDMAX_CHECK(!groups_.empty());
      round_next_.clear();
      round_next_.reserve(survivors_.size());
      round_unresolved_ = 0;
      round_fault_ = Status::OK();
      next_consume_group_ = 0;
      EmitGroup(groups_[0], round);
      next_emit_group_ = 1;
      return true;
    }
    round->units.reserve(groups_.size());
    for (const std::vector<ElementId>& group : groups_) {
      EmitGroup(group, round);
    }
    return true;
  }

  // A logical round's groups are pairwise disjoint, so once the first is
  // in flight the rest may follow without waiting (firm pipelining).
  // Starting the *next* logical round needs this one's survivor set, so
  // the cursor stops at the partition edge.
  bool CanPipelineNextRound() const override {
    return pipeline_groups_ && !done_ && !in_final_ &&
           next_emit_group_ > 0 && next_emit_group_ < groups_.size();
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    result_.issued_comparisons += outcome.issued;
    if (in_final_) {
      std::vector<int64_t> wins;
      const int64_t unresolved =
          TallyAllPlayAll(finalists_, outcome.winners[0], &wins);
      TournamentResult tournament;
      tournament.wins = std::move(wins);
      result_.best = finalists_[IndexOfMostWins(tournament)];
      if (unresolved > 0 || !outcome.fault.ok()) {
        partial_ = true;
        if (fault_status_.ok()) {
          fault_status_ =
              !outcome.fault.ok()
                  ? outcome.fault
                  : Status::Unavailable(
                        "final tournament left " + std::to_string(unresolved) +
                        " comparisons unresolved; best is provisional");
        }
        run_survivors_ = finalists_;
      }
      done_ = true;
      return Status::OK();
    }

    if (pipeline_groups_) {
      // One group per engine round: accumulate this group's verdict and
      // apply the logical-round barrier when the last group lands.
      const std::vector<ElementId>& group = groups_[next_consume_group_];
      std::vector<int64_t> wins;
      const int64_t unresolved =
          TallyAllPlayAll(group, outcome.winners[0], &wins);
      round_unresolved_ += unresolved;
      if (round_fault_.ok() && !outcome.fault.ok()) {
        round_fault_ = outcome.fault;
      }
      if (unresolved > 0) {
        round_next_.insert(round_next_.end(), group.begin(), group.end());
      } else {
        TournamentResult tournament;
        tournament.wins = std::move(wins);
        const size_t minimal = IndexOfFewestWins(tournament);
        for (size_t i = 0; i < group.size(); ++i) {
          if (i != minimal) round_next_.push_back(group[i]);
        }
      }
      ++next_consume_group_;
      if (next_consume_group_ < groups_.size()) return Status::OK();

      // Logical-round barrier (lines 5-6 take effect together).
      ++result_.rounds;
      round_next_.insert(round_next_.end(), passthrough_.begin(),
                         passthrough_.end());
      if (round_next_.size() >= survivors_.size()) {
        CROWDMAX_CHECK(partial_evidence_);
        CROWDMAX_CHECK(round_unresolved_ > 0 || !round_fault_.ok());
        partial_ = true;
        fault_status_ =
            !round_fault_.ok()
                ? round_fault_
                : Status::Unavailable(
                      "randomized elimination round made no progress: " +
                      std::to_string(round_unresolved_) +
                      " comparisons unresolved after executor recovery");
        final_pending_ = true;
      }
      survivors_ = std::move(round_next_);
      round_next_.clear();
      groups_.clear();
      passthrough_.clear();
      next_emit_group_ = 0;
      next_consume_group_ = 0;
      round_unresolved_ = 0;
      round_fault_ = Status::OK();
      return Status::OK();
    }

    // Lines 5-6: in each group, eliminate the element with the fewest
    // wins — unless evidence is missing for the group, in which case it
    // eliminates nobody (no eviction without evidence).
    ++result_.rounds;
    int64_t unresolved_pairs = 0;
    std::vector<ElementId> next;
    next.reserve(survivors_.size());
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      const std::vector<ElementId>& group = groups_[gi];
      std::vector<int64_t> wins;
      const int64_t unresolved =
          TallyAllPlayAll(group, outcome.winners[gi], &wins);
      unresolved_pairs += unresolved;
      if (unresolved > 0) {
        next.insert(next.end(), group.begin(), group.end());
        continue;
      }
      TournamentResult tournament;
      tournament.wins = std::move(wins);
      const size_t minimal = IndexOfFewestWins(tournament);
      for (size_t i = 0; i < group.size(); ++i) {
        if (i != minimal) next.push_back(group[i]);
      }
    }
    next.insert(next.end(), passthrough_.begin(), passthrough_.end());

    if (next.size() >= survivors_.size()) {
      // With full evidence every group of >= 2 eliminates exactly one
      // element, so a stalled round means faults withheld evidence: skip
      // straight to the final tournament (the witness set is intact, so
      // the guarantee degrades gracefully rather than looping forever).
      CROWDMAX_CHECK(partial_evidence_);
      CROWDMAX_CHECK(unresolved_pairs > 0 || !outcome.fault.ok());
      partial_ = true;
      fault_status_ =
          !outcome.fault.ok()
              ? outcome.fault
              : Status::Unavailable(
                    "randomized elimination round made no progress: " +
                    std::to_string(unresolved_pairs) +
                    " comparisons unresolved after executor recovery");
      final_pending_ = true;
    }
    survivors_ = std::move(next);
    return Status::OK();
  }

  MaxFindEngineRun Finish(int64_t paid_delta) {
    MaxFindEngineRun run;
    result_.paid_comparisons = paid_delta;
    run.maxfind = std::move(result_);
    run.partial = partial_;
    run.fault_status = fault_status_;
    run.survivors = std::move(run_survivors_);
    return run;
  }

  // The RNG stream position is part of the state: a resumed run must draw
  // the same witness samples and shuffles the uninterrupted run would have.
  Status SaveState(CheckpointWriter* writer) const override {
    writer->WriteTag(kRandTag);
    writer->WriteRngState(rng_.state());
    writer->WriteIdVector(survivors_);
    writer->WriteSortedSet(witness_set_);
    writer->WriteU64(static_cast<uint64_t>(groups_.size()));
    for (const std::vector<ElementId>& group : groups_) {
      writer->WriteIdVector(group);
    }
    writer->WriteIdVector(passthrough_);
    writer->WriteIdVector(finalists_);
    writer->WriteBool(in_final_);
    writer->WriteBool(final_pending_);
    writer->WriteBool(done_);
    writer->WriteI64(result_.best);
    writer->WriteI64(result_.paid_comparisons);
    writer->WriteI64(result_.issued_comparisons);
    writer->WriteI64(result_.rounds);
    writer->WriteBool(partial_);
    writer->WriteStatus(fault_status_);
    writer->WriteIdVector(run_survivors_);
    // Grouped-emission cursors and the partially-built survivor set:
    // with pipeline_groups the engine checkpoints between *group* rounds,
    // i.e. mid logical round, so these carry real state.
    writer->WriteI64(static_cast<int64_t>(next_emit_group_));
    writer->WriteI64(static_cast<int64_t>(next_consume_group_));
    writer->WriteIdVector(round_next_);
    writer->WriteI64(round_unresolved_);
    writer->WriteStatus(round_fault_);
    return Status::OK();
  }

  Status LoadState(CheckpointReader* reader) override {
    reader->ExpectTag(kRandTag);
    rng_.set_state(reader->ReadRngState());
    reader->ReadIdVector(&survivors_);
    reader->ReadSortedSet(&witness_set_);
    const uint64_t n_groups = reader->ReadU64();
    groups_.clear();
    for (uint64_t i = 0; i < n_groups && reader->status().ok(); ++i) {
      std::vector<ElementId> group;
      reader->ReadIdVector(&group);
      groups_.push_back(std::move(group));
    }
    reader->ReadIdVector(&passthrough_);
    reader->ReadIdVector(&finalists_);
    in_final_ = reader->ReadBool();
    final_pending_ = reader->ReadBool();
    done_ = reader->ReadBool();
    result_.best = static_cast<ElementId>(reader->ReadI64());
    result_.paid_comparisons = reader->ReadI64();
    result_.issued_comparisons = reader->ReadI64();
    result_.rounds = reader->ReadI64();
    partial_ = reader->ReadBool();
    fault_status_ = reader->ReadStatus();
    reader->ReadIdVector(&run_survivors_);
    next_emit_group_ = static_cast<size_t>(reader->ReadI64());
    next_consume_group_ = static_cast<size_t>(reader->ReadI64());
    reader->ReadIdVector(&round_next_);
    round_unresolved_ = reader->ReadI64();
    round_fault_ = reader->ReadStatus();
    return reader->status();
  }

 private:
  static void EmitGroup(const std::vector<ElementId>& group,
                        EngineRound* round) {
    RoundUnit unit;
    unit.serial_span = "all_play_all";
    unit.serial_span_size = static_cast<int64_t>(group.size());
    unit.pairs.reserve(group.size() * (group.size() - 1) / 2);
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        unit.pairs.push_back({group[i], group[j]});
      }
    }
    round->units.push_back(std::move(unit));
  }

  const bool partial_evidence_;
  const bool pipeline_groups_;
  Rng rng_;
  std::vector<ElementId> survivors_;
  double threshold_ = 0.0;
  int64_t sample_size_ = 0;
  int64_t group_size_ = 0;
  std::unordered_set<ElementId> witness_set_;
  std::vector<std::vector<ElementId>> groups_;
  std::vector<ElementId> passthrough_;
  std::vector<ElementId> finalists_;
  bool in_final_ = false;
  bool final_pending_ = false;
  bool done_ = false;
  MaxFindResult result_;
  bool partial_ = false;
  Status fault_status_ = Status::OK();
  std::vector<ElementId> run_survivors_;
  // Grouped emission (pipeline_groups): emit/consume cursors over the
  // current partition, plus the survivor set under construction and the
  // evidence tallies the barrier needs.
  size_t next_emit_group_ = 0;
  size_t next_consume_group_ = 0;
  std::vector<ElementId> round_next_;
  int64_t round_unresolved_ = 0;
  Status round_fault_ = Status::OK();
};

Status ValidateRandomizedOptions(const RandomizedMaxFindOptions& options) {
  if (options.c < 0) return Status::InvalidArgument("c must be >= 0");
  if (options.sample_exponent <= 0.0 || options.sample_exponent >= 1.0) {
    return Status::InvalidArgument("sample_exponent must be in (0, 1)");
  }
  if (options.group_size_override < 0) {
    return Status::InvalidArgument("group_size_override must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<MaxFindResult> AllPlayAllMax(const std::vector<ElementId>& items,
                                    Comparator* comparator) {
  CROWDMAX_CHECK(comparator != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;

  const int64_t before = comparator->num_comparisons();
  const TournamentResult tournament = AllPlayAll(items, comparator);

  MaxFindResult result;
  result.best = items[IndexOfMostWins(tournament)];
  result.issued_comparisons = tournament.comparisons;
  result.paid_comparisons = comparator->num_comparisons() - before;
  result.rounds = 0;
  return result;
}

Result<MaxFindEngineRun> RunTwoMaxFindOnEngine(
    const std::vector<ElementId>& items, RoundEngine* engine,
    const TwoMaxFindEngineOptions& options) {
  CROWDMAX_CHECK(engine != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;

  TwoMaxFindSource source(items, engine->SupportsPartialEvidence(),
                          options.speculate);
  const int64_t paid_before = engine->paid();
  const int64_t wasted_before = engine->speculation_wasted();
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  // Mispredicted speculative spend is reported on the engine's
  // speculation_wasted counter, never in paid_comparisons — the result is
  // numerically identical to the sync drive's.
  return source.Finish((engine->paid() - paid_before) -
                       (engine->speculation_wasted() - wasted_before));
}

Result<MaxFindResult> TwoMaxFind(const std::vector<ElementId>& items,
                                 Comparator* comparator,
                                 const TwoMaxFindOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(comparator, options.memoize,
                                options.shared_cache, options.cache_class);
  Result<MaxFindEngineRun> run = RunTwoMaxFindOnEngine(items, engine.get());
  if (!run.ok()) return run.status();
  // Comparator backends never leave a round without evidence.
  CROWDMAX_CHECK(!run->partial);
  return std::move(run->maxfind);
}

int64_t TwoMaxFindComparisonUpperBound(int64_t s) {
  return static_cast<int64_t>(
      std::ceil(2.0 * std::pow(static_cast<double>(s), 1.5)));
}

Result<MaxFindEngineRun> RunRandomizedMaxFindOnEngine(
    const std::vector<ElementId>& items, RoundEngine* engine,
    const RandomizedMaxFindOptions& options) {
  CROWDMAX_CHECK(engine != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;
  if (Status opt_status = ValidateRandomizedOptions(options);
      !opt_status.ok()) {
    return opt_status;
  }

  RandomizedMaxFindSource source(items, options,
                                 engine->SupportsPartialEvidence());
  const int64_t paid_before = engine->paid();
  const int64_t wasted_before = engine->speculation_wasted();
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  return source.Finish((engine->paid() - paid_before) -
                       (engine->speculation_wasted() - wasted_before));
}

Result<MaxFindResult> RandomizedMaxFind(
    const std::vector<ElementId>& items, Comparator* comparator,
    const RandomizedMaxFindOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(comparator, /*memoize=*/false);
  Result<MaxFindEngineRun> run =
      RunRandomizedMaxFindOnEngine(items, engine.get(), options);
  if (!run.ok()) return run.status();
  CROWDMAX_CHECK(!run->partial);
  return std::move(run->maxfind);
}

}  // namespace crowdmax
