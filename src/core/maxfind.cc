#include "core/maxfind.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "core/tournament.h"

namespace crowdmax {

namespace {

Status ValidateItems(const std::vector<ElementId>& items) {
  if (items.empty()) {
    return Status::InvalidArgument("candidate set must be non-empty");
  }
  std::unordered_set<ElementId> seen;
  for (ElementId e : items) {
    if (!seen.insert(e).second) {
      return Status::InvalidArgument("duplicate element id in candidate set");
    }
  }
  return Status::OK();
}

int64_t CeilSqrt(int64_t s) {
  int64_t r = static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(s))));
  while (r * r < s) ++r;
  while (r > 1 && (r - 1) * (r - 1) >= s) --r;
  return r;
}

}  // namespace

Result<MaxFindResult> AllPlayAllMax(const std::vector<ElementId>& items,
                                    Comparator* comparator) {
  CROWDMAX_CHECK(comparator != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;

  const int64_t before = comparator->num_comparisons();
  const TournamentResult tournament = AllPlayAll(items, comparator);

  MaxFindResult result;
  result.best = items[IndexOfMostWins(tournament)];
  result.issued_comparisons = tournament.comparisons;
  result.paid_comparisons = comparator->num_comparisons() - before;
  result.rounds = 0;
  return result;
}

Result<MaxFindResult> TwoMaxFind(const std::vector<ElementId>& items,
                                 Comparator* comparator,
                                 const TwoMaxFindOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;

  MemoizingComparator memo(comparator);
  Comparator* cmp =
      options.memoize ? static_cast<Comparator*>(&memo) : comparator;
  const int64_t paid_before = cmp->num_comparisons();

  const int64_t s = static_cast<int64_t>(items.size());
  const int64_t k = CeilSqrt(s);

  MaxFindResult result;
  std::vector<ElementId> candidates = items;

  // Without memoization an inconsistent comparator can stall the
  // elimination loop; bound the number of rounds (generous: with
  // consistent answers each round removes >= (k-1)/2 elements).
  const int64_t max_rounds = 4 * s + 16;

  while (static_cast<int64_t>(candidates.size()) > k) {
    if (result.rounds >= max_rounds) {
      return Status::Internal(
          "2-MaxFind exceeded its round budget; comparator answers are "
          "inconsistent (enable memoization)");
    }
    ++result.rounds;

    // Step 3: arbitrary ceil(sqrt(s)) candidates — take the first k (the
    // paper allows any choice; deterministic for reproducibility).
    std::vector<ElementId> sample(candidates.begin(), candidates.begin() + k);
    const TournamentResult tournament = AllPlayAll(sample, cmp);
    result.issued_comparisons += tournament.comparisons;
    const ElementId x = sample[IndexOfMostWins(tournament)];

    // Step 4: compare x against all candidates; drop those that lose. The
    // pivot goes first so AdversarialPolicy::kFirstLoses models the paper's
    // worst case.
    std::vector<ElementId> survivors;
    survivors.reserve(candidates.size());
    for (ElementId y : candidates) {
      if (y == x) {
        survivors.push_back(y);
        continue;
      }
      const ElementId winner = cmp->Compare(x, y);
      CROWDMAX_DCHECK(winner == x || winner == y);
      ++result.issued_comparisons;
      if (winner != x) survivors.push_back(y);
    }
    candidates = std::move(survivors);
  }

  // Step 6: final tournament among the at most ceil(sqrt(s)) survivors.
  const TournamentResult final_round = AllPlayAll(candidates, cmp);
  result.issued_comparisons += final_round.comparisons;
  result.best = candidates[IndexOfMostWins(final_round)];
  result.paid_comparisons = cmp->num_comparisons() - paid_before;
  return result;
}

int64_t TwoMaxFindComparisonUpperBound(int64_t s) {
  return static_cast<int64_t>(
      std::ceil(2.0 * std::pow(static_cast<double>(s), 1.5)));
}

Result<MaxFindResult> RandomizedMaxFind(
    const std::vector<ElementId>& items, Comparator* comparator,
    const RandomizedMaxFindOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;
  if (options.c < 0) return Status::InvalidArgument("c must be >= 0");
  if (options.sample_exponent <= 0.0 || options.sample_exponent >= 1.0) {
    return Status::InvalidArgument("sample_exponent must be in (0, 1)");
  }
  if (options.group_size_override < 0) {
    return Status::InvalidArgument("group_size_override must be >= 0");
  }

  Rng rng(options.seed);
  const int64_t paid_before = comparator->num_comparisons();
  const int64_t s = static_cast<int64_t>(items.size());
  const double threshold =
      std::pow(static_cast<double>(s), options.sample_exponent);
  const int64_t sample_size =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(threshold)));
  const int64_t group_size = options.group_size_override > 0
                                 ? options.group_size_override
                                 : 80 * (options.c + 2);

  MaxFindResult result;
  std::vector<ElementId> survivors = items;
  std::unordered_set<ElementId> witness_set;

  while (static_cast<double>(survivors.size()) >= threshold &&
         survivors.size() > 1) {
    ++result.rounds;

    // Line 3: sample |S|^0.3 random survivors into the witness set W.
    const size_t n = survivors.size();
    const size_t draw = std::min<size_t>(static_cast<size_t>(sample_size), n);
    for (size_t idx : rng.SampleWithoutReplacement(n, draw)) {
      witness_set.insert(survivors[idx]);
    }

    // Line 4: random partition into groups of 80*(c+2).
    rng.Shuffle(&survivors);

    // Lines 5-6: in each group, eliminate the element with the fewest wins.
    std::vector<ElementId> next;
    next.reserve(survivors.size());
    for (size_t start = 0; start < survivors.size();
         start += static_cast<size_t>(group_size)) {
      const size_t end = std::min(survivors.size(),
                                  start + static_cast<size_t>(group_size));
      std::vector<ElementId> group(survivors.begin() + start,
                                   survivors.begin() + end);
      if (group.size() < 2) {
        // A singleton group has no minimal element to eliminate.
        next.insert(next.end(), group.begin(), group.end());
        continue;
      }
      const TournamentResult tournament = AllPlayAll(group, comparator);
      result.issued_comparisons += tournament.comparisons;
      const size_t minimal = IndexOfFewestWins(tournament);
      for (size_t i = 0; i < group.size(); ++i) {
        if (i != minimal) next.push_back(group[i]);
      }
    }
    survivors = std::move(next);
  }

  // Lines 9-10: final tournament over W plus the remaining survivors.
  for (ElementId e : survivors) witness_set.insert(e);
  std::vector<ElementId> finalists(witness_set.begin(), witness_set.end());
  std::sort(finalists.begin(), finalists.end());  // Determinism.
  const TournamentResult final_round = AllPlayAll(finalists, comparator);
  result.issued_comparisons += final_round.comparisons;
  result.best = finalists[IndexOfMostWins(final_round)];
  result.paid_comparisons = comparator->num_comparisons() - paid_before;
  return result;
}

}  // namespace crowdmax
