#include "core/maxfind.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "core/checkpoint.h"
#include "core/round_engine.h"
#include "core/tournament.h"

namespace crowdmax {

namespace {

constexpr uint32_t kTwoMaxTag = CheckpointTag("2MAX");
constexpr uint32_t kRandTag = CheckpointTag("RMAX");

Status ValidateItems(const std::vector<ElementId>& items) {
  if (items.empty()) {
    return Status::InvalidArgument("candidate set must be non-empty");
  }
  std::unordered_set<ElementId> seen;
  for (ElementId e : items) {
    if (!seen.insert(e).second) {
      return Status::InvalidArgument("duplicate element id in candidate set");
    }
  }
  return Status::OK();
}

int64_t CeilSqrt(int64_t s) {
  int64_t r = static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(s))));
  while (r * r < s) ++r;
  while (r > 1 && (r - 1) * (r - 1) >= s) --r;
  return r;
}

// Tallies one all-play-all unit: wins per element, no win to either side of
// an unresolved pair (missing evidence), returning the unresolved count.
int64_t TallyAllPlayAll(const std::vector<ElementId>& group,
                        const std::vector<ElementId>& winners,
                        std::vector<int64_t>* wins) {
  wins->assign(group.size(), 0);
  int64_t unresolved = 0;
  size_t t = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    for (size_t j = i + 1; j < group.size(); ++j, ++t) {
      const ElementId winner = winners[t];
      if (winner == kUnresolvedWinner) {
        ++unresolved;
        continue;
      }
      ++(*wins)[winner == group[i] ? i : j];
    }
  }
  return unresolved;
}

// Algorithm 3 as a round generator. One algorithm round spans two engine
// rounds — the sample tournament, a barrier to pick the pivot, then the
// elimination scan — so the trace round span opens on the sample round and
// closes on the scan round.
class TwoMaxFindSource : public RoundSource {
 public:
  TwoMaxFindSource(const std::vector<ElementId>& items, bool partial_evidence)
      : partial_evidence_(partial_evidence), candidates_(items) {
    const int64_t s = static_cast<int64_t>(items.size());
    k_ = CeilSqrt(s);
    // Without memoization an inconsistent answer stream can stall the
    // elimination loop; bound the number of rounds (generous: with
    // consistent answers each round removes >= (k-1)/2 elements).
    max_rounds_ = 4 * s + 16;
  }

  Result<bool> NextRound(EngineRound* round) override {
    if (phase_ == Phase::kSample &&
        static_cast<int64_t>(candidates_.size()) <= k_) {
      phase_ = Phase::kFinal;
    }
    switch (phase_) {
      case Phase::kSample: {
        if (result_.rounds >= max_rounds_) {
          return partial_evidence_
                     ? Status::Internal(
                           "batched 2-MaxFind exceeded its round budget; "
                           "executor answers are inconsistent")
                     : Status::Internal(
                           "2-MaxFind exceeded its round budget; comparator "
                           "answers are inconsistent (enable memoization)");
        }
        // Step 3: arbitrary ceil(sqrt(s)) candidates — take the first k
        // (the paper allows any choice; deterministic for reproducibility).
        sample_.assign(candidates_.begin(), candidates_.begin() + k_);
        RoundUnit unit;
        unit.serial_span = "all_play_all";
        unit.serial_span_size = k_;
        unit.pairs.reserve(static_cast<size_t>(k_ * (k_ - 1) / 2));
        for (size_t i = 0; i < sample_.size(); ++i) {
          for (size_t j = i + 1; j < sample_.size(); ++j) {
            unit.pairs.push_back({sample_[i], sample_[j]});
          }
        }
        round->units.push_back(std::move(unit));
        round->executor_span = "sample";
        round->open_round_executor = result_.rounds + 1;
        return true;
      }
      case Phase::kScan: {
        // Step 4: compare the pivot against all candidates. The pivot goes
        // first so AdversarialPolicy::kFirstLoses models the paper's worst
        // case.
        RoundUnit unit;
        unit.pairs.reserve(candidates_.size());
        for (ElementId y : candidates_) {
          if (y != pivot_) unit.pairs.push_back({pivot_, y});
        }
        round->units.push_back(std::move(unit));
        round->executor_span = "scan";
        round->close_round_executor = true;
        return true;
      }
      case Phase::kFinal: {
        // Step 6: final tournament among the surviving candidates.
        RoundUnit unit;
        unit.serial_span = "all_play_all";
        unit.serial_span_size = static_cast<int64_t>(candidates_.size());
        for (size_t i = 0; i < candidates_.size(); ++i) {
          for (size_t j = i + 1; j < candidates_.size(); ++j) {
            unit.pairs.push_back({candidates_[i], candidates_[j]});
          }
        }
        round->units.push_back(std::move(unit));
        round->executor_span = "final";
        return true;
      }
      case Phase::kDone:
        return false;
    }
    return Status::Internal("unreachable");
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    result_.issued_comparisons += outcome.issued;
    switch (phase_) {
      case Phase::kSample: {
        ++result_.rounds;
        std::vector<int64_t> wins;
        sample_unresolved_ = TallyAllPlayAll(sample_, outcome.winners[0], &wins);
        sample_fault_ = outcome.fault;
        TournamentResult tournament;
        tournament.wins = std::move(wins);
        pivot_ = sample_[IndexOfMostWins(tournament)];
        phase_ = Phase::kScan;
        return Status::OK();
      }
      case Phase::kScan: {
        // An unresolved scan comparison is missing evidence: the element
        // survives (no elimination without a counted loss) and the pair is
        // re-issued by a later round through the engine cache.
        int64_t unresolved_scan = 0;
        std::vector<ElementId> survivors;
        survivors.reserve(candidates_.size());
        const std::vector<ElementId>& winners = outcome.winners[0];
        size_t t = 0;
        for (ElementId y : candidates_) {
          if (y == pivot_) {
            survivors.push_back(y);
            continue;
          }
          const ElementId winner = winners[t++];
          if (winner == kUnresolvedWinner) {
            ++unresolved_scan;
            survivors.push_back(y);
            continue;
          }
          if (winner != pivot_) survivors.push_back(y);
        }
        const bool progress = survivors.size() < candidates_.size();
        candidates_ = std::move(survivors);

        const bool faulty = sample_unresolved_ > 0 || unresolved_scan > 0 ||
                            !sample_fault_.ok() || !outcome.fault.ok();
        if (!progress && faulty) {
          // Faults withheld the evidence this round needed; the executor's
          // own recovery already ran, so stop and report the field as it
          // stands.
          partial_ = true;
          fault_status_ =
              !outcome.fault.ok() ? outcome.fault
              : !sample_fault_.ok()
                  ? sample_fault_
                  : Status::Unavailable(
                        "2-MaxFind round made no progress: " +
                        std::to_string(sample_unresolved_ + unresolved_scan) +
                        " comparisons unresolved after executor recovery");
          survivors_ = candidates_;
          phase_ = Phase::kDone;
          return Status::OK();
        }
        phase_ = Phase::kSample;
        return Status::OK();
      }
      case Phase::kFinal: {
        std::vector<int64_t> wins;
        const int64_t unresolved =
            TallyAllPlayAll(candidates_, outcome.winners[0], &wins);
        TournamentResult tournament;
        tournament.wins = std::move(wins);
        result_.best = candidates_[IndexOfMostWins(tournament)];
        if (unresolved > 0 || !outcome.fault.ok()) {
          // The final tournament ran on incomplete evidence: `best` is the
          // provisional leader, flagged partial so callers can tell.
          partial_ = true;
          fault_status_ =
              !outcome.fault.ok()
                  ? outcome.fault
                  : Status::Unavailable(
                        "final tournament left " + std::to_string(unresolved) +
                        " comparisons unresolved; best is provisional");
          survivors_ = candidates_;
        }
        phase_ = Phase::kDone;
        return Status::OK();
      }
      case Phase::kDone:
        break;
    }
    return Status::Internal("unreachable");
  }

  MaxFindEngineRun Finish(int64_t paid_delta) {
    MaxFindEngineRun run;
    result_.paid_comparisons = paid_delta;
    run.maxfind = std::move(result_);
    run.partial = partial_;
    run.fault_status = fault_status_;
    run.survivors = std::move(survivors_);
    return run;
  }

  Status SaveState(CheckpointWriter* writer) const override {
    writer->WriteTag(kTwoMaxTag);
    writer->WriteIdVector(candidates_);
    writer->WriteI64(k_);
    writer->WriteI64(max_rounds_);
    writer->WriteI64(static_cast<int64_t>(phase_));
    writer->WriteIdVector(sample_);
    writer->WriteI64(pivot_);
    writer->WriteI64(sample_unresolved_);
    writer->WriteStatus(sample_fault_);
    writer->WriteI64(result_.best);
    writer->WriteI64(result_.paid_comparisons);
    writer->WriteI64(result_.issued_comparisons);
    writer->WriteI64(result_.rounds);
    writer->WriteBool(partial_);
    writer->WriteStatus(fault_status_);
    writer->WriteIdVector(survivors_);
    return Status::OK();
  }

  Status LoadState(CheckpointReader* reader) override {
    reader->ExpectTag(kTwoMaxTag);
    reader->ReadIdVector(&candidates_);
    k_ = reader->ReadI64();
    max_rounds_ = reader->ReadI64();
    phase_ = static_cast<Phase>(reader->ReadI64());
    reader->ReadIdVector(&sample_);
    pivot_ = static_cast<ElementId>(reader->ReadI64());
    sample_unresolved_ = reader->ReadI64();
    sample_fault_ = reader->ReadStatus();
    result_.best = static_cast<ElementId>(reader->ReadI64());
    result_.paid_comparisons = reader->ReadI64();
    result_.issued_comparisons = reader->ReadI64();
    result_.rounds = reader->ReadI64();
    partial_ = reader->ReadBool();
    fault_status_ = reader->ReadStatus();
    reader->ReadIdVector(&survivors_);
    return reader->status();
  }

 private:
  enum class Phase { kSample, kScan, kFinal, kDone };

  const bool partial_evidence_;
  std::vector<ElementId> candidates_;
  int64_t k_ = 0;
  int64_t max_rounds_ = 0;
  Phase phase_ = Phase::kSample;
  std::vector<ElementId> sample_;
  ElementId pivot_ = -1;
  int64_t sample_unresolved_ = 0;
  Status sample_fault_ = Status::OK();
  MaxFindResult result_;
  bool partial_ = false;
  Status fault_status_ = Status::OK();
  std::vector<ElementId> survivors_;
};

// Algorithm 5 as a round generator. Each elimination round draws the
// witness sample and shuffles the survivors (both from the source's own
// RNG — the engine never consumes algorithm randomness), then plays one
// all-play-all per group; a final round decides among the witness set plus
// the remaining survivors.
class RandomizedMaxFindSource : public RoundSource {
 public:
  RandomizedMaxFindSource(const std::vector<ElementId>& items,
                          const RandomizedMaxFindOptions& options,
                          bool partial_evidence)
      : partial_evidence_(partial_evidence),
        rng_(options.seed),
        survivors_(items) {
    const int64_t s = static_cast<int64_t>(items.size());
    threshold_ = std::pow(static_cast<double>(s), options.sample_exponent);
    sample_size_ = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(threshold_)));
    group_size_ = options.group_size_override > 0 ? options.group_size_override
                                                  : 80 * (options.c + 2);
  }

  Result<bool> NextRound(EngineRound* round) override {
    if (done_) return false;
    if (final_pending_ ||
        static_cast<double>(survivors_.size()) < threshold_ ||
        survivors_.size() <= 1) {
      // Lines 9-10: final tournament over W plus the remaining survivors.
      for (ElementId e : survivors_) witness_set_.insert(e);
      finalists_.assign(witness_set_.begin(), witness_set_.end());
      std::sort(finalists_.begin(), finalists_.end());  // Determinism.
      RoundUnit unit;
      unit.serial_span = "all_play_all";
      unit.serial_span_size = static_cast<int64_t>(finalists_.size());
      for (size_t i = 0; i < finalists_.size(); ++i) {
        for (size_t j = i + 1; j < finalists_.size(); ++j) {
          unit.pairs.push_back({finalists_[i], finalists_[j]});
        }
      }
      round->units.push_back(std::move(unit));
      round->executor_span = "final";
      in_final_ = true;
      return true;
    }

    // Line 3: sample |S|^0.3 random survivors into the witness set W.
    const size_t n = survivors_.size();
    const size_t draw = std::min<size_t>(static_cast<size_t>(sample_size_), n);
    for (size_t idx : rng_.SampleWithoutReplacement(n, draw)) {
      witness_set_.insert(survivors_[idx]);
    }

    // Line 4: random partition into groups of 80*(c+2). Only the last
    // chunk can be a singleton; it has no minimal element to eliminate and
    // advances untouched.
    rng_.Shuffle(&survivors_);
    groups_.clear();
    passthrough_.clear();
    for (size_t start = 0; start < survivors_.size();
         start += static_cast<size_t>(group_size_)) {
      const size_t end = std::min(survivors_.size(),
                                  start + static_cast<size_t>(group_size_));
      if (end - start < 2) {
        passthrough_.assign(survivors_.begin() + start, survivors_.begin() + end);
      } else {
        groups_.emplace_back(survivors_.begin() + start,
                             survivors_.begin() + end);
      }
    }
    round->units.reserve(groups_.size());
    for (const std::vector<ElementId>& group : groups_) {
      RoundUnit unit;
      unit.serial_span = "all_play_all";
      unit.serial_span_size = static_cast<int64_t>(group.size());
      unit.pairs.reserve(group.size() * (group.size() - 1) / 2);
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j) {
          unit.pairs.push_back({group[i], group[j]});
        }
      }
      round->units.push_back(std::move(unit));
    }
    return true;
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    result_.issued_comparisons += outcome.issued;
    if (in_final_) {
      std::vector<int64_t> wins;
      const int64_t unresolved =
          TallyAllPlayAll(finalists_, outcome.winners[0], &wins);
      TournamentResult tournament;
      tournament.wins = std::move(wins);
      result_.best = finalists_[IndexOfMostWins(tournament)];
      if (unresolved > 0 || !outcome.fault.ok()) {
        partial_ = true;
        if (fault_status_.ok()) {
          fault_status_ =
              !outcome.fault.ok()
                  ? outcome.fault
                  : Status::Unavailable(
                        "final tournament left " + std::to_string(unresolved) +
                        " comparisons unresolved; best is provisional");
        }
        run_survivors_ = finalists_;
      }
      done_ = true;
      return Status::OK();
    }

    // Lines 5-6: in each group, eliminate the element with the fewest
    // wins — unless evidence is missing for the group, in which case it
    // eliminates nobody (no eviction without evidence).
    ++result_.rounds;
    int64_t unresolved_pairs = 0;
    std::vector<ElementId> next;
    next.reserve(survivors_.size());
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      const std::vector<ElementId>& group = groups_[gi];
      std::vector<int64_t> wins;
      const int64_t unresolved =
          TallyAllPlayAll(group, outcome.winners[gi], &wins);
      unresolved_pairs += unresolved;
      if (unresolved > 0) {
        next.insert(next.end(), group.begin(), group.end());
        continue;
      }
      TournamentResult tournament;
      tournament.wins = std::move(wins);
      const size_t minimal = IndexOfFewestWins(tournament);
      for (size_t i = 0; i < group.size(); ++i) {
        if (i != minimal) next.push_back(group[i]);
      }
    }
    next.insert(next.end(), passthrough_.begin(), passthrough_.end());

    if (next.size() >= survivors_.size()) {
      // With full evidence every group of >= 2 eliminates exactly one
      // element, so a stalled round means faults withheld evidence: skip
      // straight to the final tournament (the witness set is intact, so
      // the guarantee degrades gracefully rather than looping forever).
      CROWDMAX_CHECK(partial_evidence_);
      CROWDMAX_CHECK(unresolved_pairs > 0 || !outcome.fault.ok());
      partial_ = true;
      fault_status_ =
          !outcome.fault.ok()
              ? outcome.fault
              : Status::Unavailable(
                    "randomized elimination round made no progress: " +
                    std::to_string(unresolved_pairs) +
                    " comparisons unresolved after executor recovery");
      final_pending_ = true;
    }
    survivors_ = std::move(next);
    return Status::OK();
  }

  MaxFindEngineRun Finish(int64_t paid_delta) {
    MaxFindEngineRun run;
    result_.paid_comparisons = paid_delta;
    run.maxfind = std::move(result_);
    run.partial = partial_;
    run.fault_status = fault_status_;
    run.survivors = std::move(run_survivors_);
    return run;
  }

  // The RNG stream position is part of the state: a resumed run must draw
  // the same witness samples and shuffles the uninterrupted run would have.
  Status SaveState(CheckpointWriter* writer) const override {
    writer->WriteTag(kRandTag);
    writer->WriteRngState(rng_.state());
    writer->WriteIdVector(survivors_);
    writer->WriteSortedSet(witness_set_);
    writer->WriteU64(static_cast<uint64_t>(groups_.size()));
    for (const std::vector<ElementId>& group : groups_) {
      writer->WriteIdVector(group);
    }
    writer->WriteIdVector(passthrough_);
    writer->WriteIdVector(finalists_);
    writer->WriteBool(in_final_);
    writer->WriteBool(final_pending_);
    writer->WriteBool(done_);
    writer->WriteI64(result_.best);
    writer->WriteI64(result_.paid_comparisons);
    writer->WriteI64(result_.issued_comparisons);
    writer->WriteI64(result_.rounds);
    writer->WriteBool(partial_);
    writer->WriteStatus(fault_status_);
    writer->WriteIdVector(run_survivors_);
    return Status::OK();
  }

  Status LoadState(CheckpointReader* reader) override {
    reader->ExpectTag(kRandTag);
    rng_.set_state(reader->ReadRngState());
    reader->ReadIdVector(&survivors_);
    reader->ReadSortedSet(&witness_set_);
    const uint64_t n_groups = reader->ReadU64();
    groups_.clear();
    for (uint64_t i = 0; i < n_groups && reader->status().ok(); ++i) {
      std::vector<ElementId> group;
      reader->ReadIdVector(&group);
      groups_.push_back(std::move(group));
    }
    reader->ReadIdVector(&passthrough_);
    reader->ReadIdVector(&finalists_);
    in_final_ = reader->ReadBool();
    final_pending_ = reader->ReadBool();
    done_ = reader->ReadBool();
    result_.best = static_cast<ElementId>(reader->ReadI64());
    result_.paid_comparisons = reader->ReadI64();
    result_.issued_comparisons = reader->ReadI64();
    result_.rounds = reader->ReadI64();
    partial_ = reader->ReadBool();
    fault_status_ = reader->ReadStatus();
    reader->ReadIdVector(&run_survivors_);
    return reader->status();
  }

 private:
  const bool partial_evidence_;
  Rng rng_;
  std::vector<ElementId> survivors_;
  double threshold_ = 0.0;
  int64_t sample_size_ = 0;
  int64_t group_size_ = 0;
  std::unordered_set<ElementId> witness_set_;
  std::vector<std::vector<ElementId>> groups_;
  std::vector<ElementId> passthrough_;
  std::vector<ElementId> finalists_;
  bool in_final_ = false;
  bool final_pending_ = false;
  bool done_ = false;
  MaxFindResult result_;
  bool partial_ = false;
  Status fault_status_ = Status::OK();
  std::vector<ElementId> run_survivors_;
};

Status ValidateRandomizedOptions(const RandomizedMaxFindOptions& options) {
  if (options.c < 0) return Status::InvalidArgument("c must be >= 0");
  if (options.sample_exponent <= 0.0 || options.sample_exponent >= 1.0) {
    return Status::InvalidArgument("sample_exponent must be in (0, 1)");
  }
  if (options.group_size_override < 0) {
    return Status::InvalidArgument("group_size_override must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<MaxFindResult> AllPlayAllMax(const std::vector<ElementId>& items,
                                    Comparator* comparator) {
  CROWDMAX_CHECK(comparator != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;

  const int64_t before = comparator->num_comparisons();
  const TournamentResult tournament = AllPlayAll(items, comparator);

  MaxFindResult result;
  result.best = items[IndexOfMostWins(tournament)];
  result.issued_comparisons = tournament.comparisons;
  result.paid_comparisons = comparator->num_comparisons() - before;
  result.rounds = 0;
  return result;
}

Result<MaxFindEngineRun> RunTwoMaxFindOnEngine(
    const std::vector<ElementId>& items, RoundEngine* engine) {
  CROWDMAX_CHECK(engine != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;

  TwoMaxFindSource source(items, engine->SupportsPartialEvidence());
  const int64_t paid_before = engine->paid();
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  return source.Finish(engine->paid() - paid_before);
}

Result<MaxFindResult> TwoMaxFind(const std::vector<ElementId>& items,
                                 Comparator* comparator,
                                 const TwoMaxFindOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(comparator, options.memoize,
                                options.shared_cache, options.cache_class);
  Result<MaxFindEngineRun> run = RunTwoMaxFindOnEngine(items, engine.get());
  if (!run.ok()) return run.status();
  // Comparator backends never leave a round without evidence.
  CROWDMAX_CHECK(!run->partial);
  return std::move(run->maxfind);
}

int64_t TwoMaxFindComparisonUpperBound(int64_t s) {
  return static_cast<int64_t>(
      std::ceil(2.0 * std::pow(static_cast<double>(s), 1.5)));
}

Result<MaxFindEngineRun> RunRandomizedMaxFindOnEngine(
    const std::vector<ElementId>& items, RoundEngine* engine,
    const RandomizedMaxFindOptions& options) {
  CROWDMAX_CHECK(engine != nullptr);
  Status status = ValidateItems(items);
  if (!status.ok()) return status;
  if (Status opt_status = ValidateRandomizedOptions(options);
      !opt_status.ok()) {
    return opt_status;
  }

  RandomizedMaxFindSource source(items, options,
                                 engine->SupportsPartialEvidence());
  const int64_t paid_before = engine->paid();
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  return source.Finish(engine->paid() - paid_before);
}

Result<MaxFindResult> RandomizedMaxFind(
    const std::vector<ElementId>& items, Comparator* comparator,
    const RandomizedMaxFindOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(comparator, /*memoize=*/false);
  Result<MaxFindEngineRun> run =
      RunRandomizedMaxFindOnEngine(items, engine.get(), options);
  if (!run.ok()) return run.status();
  CROWDMAX_CHECK(!run->partial);
  return std::move(run->maxfind);
}

}  // namespace crowdmax
