// Logical-step (batched) execution of the paper's algorithms.
//
// Section 3: "the algorithms we consider are organized in logical time
// steps. In the s-th logical step, a batch B_s of pairwise comparisons is
// sent to the crowdsourcing platform, which, after some time, returns the
// corresponding answers" — and, following Venetis et al., the number of
// logical steps is the natural time-complexity measure of a crowdsourcing
// algorithm (monetary cost is the comparison count; latency is the step
// count).
//
// The sequential algorithms in filter_phase.h / maxfind.h issue one
// comparison at a time through a Comparator; the Batched* variants here
// issue every independent comparison of a round as one batch through a
// BatchExecutor, so their logical-step counts reflect the true round
// structure: Algorithm 2 runs in O(log n) steps, 2-MaxFind in O(sqrt(s))
// steps. Results are identical to the sequential versions whenever worker
// answers are consistent per pair (memoization/persistent ties).

#ifndef CROWDMAX_CORE_BATCHED_H_
#define CROWDMAX_CORE_BATCHED_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/comparator.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/instance.h"
#include "core/maxfind.h"
#include "core/tournament.h"

namespace crowdmax {

/// A pairwise comparison request; `a` and `b` must be distinct elements.
using ComparisonPair = std::pair<ElementId, ElementId>;

/// Executes batches of independent comparisons, one logical step per
/// non-empty batch. Implementations: ComparatorBatchExecutor (simulation)
/// and PlatformBatchExecutor (the crowd-platform adapter in
/// platform/platform.h).
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;

  /// Executes `tasks` in one logical step and returns the winners, aligned
  /// with the input. An empty batch costs nothing and no step.
  std::vector<ElementId> ExecuteBatch(const std::vector<ComparisonPair>& tasks);

  /// Logical steps consumed so far.
  int64_t logical_steps() const { return logical_steps_; }

  /// Comparisons executed so far (cache-free; callers batch only misses).
  int64_t comparisons() const { return comparisons_; }

  void ResetCounters() {
    logical_steps_ = 0;
    comparisons_ = 0;
  }

 protected:
  BatchExecutor() = default;

 private:
  virtual std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) = 0;

  int64_t logical_steps_ = 0;
  int64_t comparisons_ = 0;
};

/// Adapts any Comparator to the batch interface: answers are produced
/// sequentially but accounted as one logical step per batch (a pool of
/// workers large enough to absorb the batch in parallel). Does not own the
/// comparator.
class ComparatorBatchExecutor : public BatchExecutor {
 public:
  explicit ComparatorBatchExecutor(Comparator* comparator);

 private:
  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  Comparator* comparator_;
};

/// Batch executor that answers each batch concurrently on a work-stealing
/// pool. The batch is split into contiguous chunks of `chunk_size` tasks;
/// each chunk is answered by an independent Comparator::Fork child whose
/// seed is drawn in chunk order *before* dispatch, and winners land in
/// disjoint slots of the pre-sized output — so answers and counts are
/// bit-identical for every thread count (but differ, in RNG draw order,
/// from ComparatorBatchExecutor over the same comparator). Paid counts are
/// merged into the base comparator at the end of each batch. Does not own
/// the comparator.
class ParallelBatchExecutor : public BatchExecutor {
 public:
  /// Requires a forkable `comparator` (InvalidArgument otherwise),
  /// threads >= 1 and chunk_size >= 1. `seed` starts the chunk-seed chain.
  static Result<std::unique_ptr<ParallelBatchExecutor>> Create(
      Comparator* comparator, int64_t threads, uint64_t seed,
      int64_t chunk_size = 256);

 private:
  ParallelBatchExecutor(Comparator* comparator, int64_t threads,
                        uint64_t seed, int64_t chunk_size);

  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  Comparator* comparator_;
  ThreadPool pool_;
  Rng seeder_;
  int64_t chunk_size_;
};

/// One all-play-all tournament as a single batch (one logical step).
TournamentResult BatchedAllPlayAll(const std::vector<ElementId>& elements,
                                   BatchExecutor* executor);

/// FilterResult plus the logical steps the run consumed.
struct BatchedFilterResult {
  FilterResult filter;
  int64_t logical_steps = 0;
};

/// Algorithm 2 with each round's group tournaments issued as one batch:
/// O(log n) logical steps. Supports the same options as FilterCandidates;
/// `memoize` keeps a pair cache across rounds so repeated pairs are not
/// re-sent to the crowd.
Result<BatchedFilterResult> BatchedFilterCandidates(
    const std::vector<ElementId>& items, const FilterOptions& options,
    BatchExecutor* executor);

/// MaxFindResult plus the logical steps the run consumed.
struct BatchedMaxFindResult {
  MaxFindResult maxfind;
  int64_t logical_steps = 0;
};

/// 2-MaxFind with two batches per round (sample tournament, then the
/// pivot's elimination scan) and one final batch: O(sqrt(s)) logical
/// steps. Always memoizes (the paper's assumption), so repeated pairs are
/// answered from cache without a step.
Result<BatchedMaxFindResult> BatchedTwoMaxFind(
    const std::vector<ElementId>& items, BatchExecutor* executor);

/// Two-phase result plus per-class logical steps.
struct BatchedExpertMaxResult {
  ExpertMaxResult result;
  int64_t naive_steps = 0;
  int64_t expert_steps = 0;
};

/// Algorithm 1 in batched form: BatchedFilterCandidates with the naive
/// executor, then BatchedTwoMaxFind with the expert executor.
Result<BatchedExpertMaxResult> BatchedFindMaxWithExperts(
    const std::vector<ElementId>& items, BatchExecutor* naive,
    BatchExecutor* expert, const ExpertMaxOptions& options);

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_BATCHED_H_
