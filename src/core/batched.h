// Logical-step (batched) execution of the paper's algorithms.
//
// Section 3: "the algorithms we consider are organized in logical time
// steps. In the s-th logical step, a batch B_s of pairwise comparisons is
// sent to the crowdsourcing platform, which, after some time, returns the
// corresponding answers" — and, following Venetis et al., the number of
// logical steps is the natural time-complexity measure of a crowdsourcing
// algorithm (monetary cost is the comparison count; latency is the step
// count).
//
// The sequential algorithms in filter_phase.h / maxfind.h issue one
// comparison at a time through a Comparator; the Batched* variants here
// drive the very same RoundSources (core/round_engine.h) on an
// executor-backed engine, so every independent comparison of a round goes
// to a BatchExecutor as one batch and the logical-step counts reflect the
// true round structure: Algorithm 2 runs in O(log n) steps, 2-MaxFind in
// O(sqrt(s)) steps. Results are identical to the sequential versions
// whenever worker answers are consistent per pair (memoization/persistent
// ties). This file owns the executor stack (the crowd-side abstraction)
// and the thin Batched* adapters; the round loop itself lives in
// RoundEngine and nowhere else.

#ifndef CROWDMAX_CORE_BATCHED_H_
#define CROWDMAX_CORE_BATCHED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/comparator.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/instance.h"
#include "core/maxfind.h"
#include "core/multilevel.h"
#include "core/round_engine.h"
#include "core/topk.h"
#include "core/tournament.h"

namespace crowdmax {

class CheckpointReader;
class CheckpointWriter;

// ComparisonPair (a pairwise comparison request; `a` and `b` must be
// distinct elements) now lives in core/comparator.h, the layer the engine,
// the executor stack and the batch vote interface all share.

/// Per-task outcome of a fallible batch execution (TryExecuteBatch).
struct BatchTaskResult {
  /// The reported winner: authoritative when `answered`, a provisional
  /// majority of whatever votes arrived when not (or -1 if none did).
  ElementId winner = -1;
  /// True when the executor fully answered the task (full quorum). False
  /// marks a task lost to a fault (no quorum, dropped, abandoned).
  bool answered = false;
  /// Votes backing `winner`, when the executor knows (platform adapters);
  /// -1 when the concept does not apply (simulation executors).
  int64_t counted_votes = -1;
};

/// Fault/recovery accounting of a resilient execution (core/resilient.h):
/// what was retried, what was lost, what was degraded and what the
/// recovery cost in extra logical steps. Threaded through the Batched*
/// results and printed by the benches so EXPERIMENTS can chart cost and
/// latency inflation versus fault rate.
struct FaultReport {
  /// Caller-visible batches executed.
  int64_t batches = 0;
  /// Inner submissions, including retries (>= batches).
  int64_t attempts = 0;
  /// Task re-issues caused by unanswered or no-quorum outcomes.
  int64_t retried_tasks = 0;
  /// Task outcomes observed without a counted answer (before retry).
  int64_t votes_lost = 0;
  /// No-quorum outcomes accepted under the relaxed-quorum policy.
  int64_t relaxed_accepts = 0;
  /// Tasks resolved by the fallback tie-break after the retry budget ran
  /// out.
  int64_t degraded_tasks = 0;
  /// Whole-batch transient errors (Unavailable) absorbed by retrying.
  int64_t transient_errors = 0;
  /// Extra logical steps the recovery cost: inner steps beyond the one
  /// step per caller-visible batch, plus exponential-backoff waits.
  int64_t steps_added = 0;
  /// Backoff waits alone, in logical steps (included in steps_added).
  int64_t backoff_steps = 0;
  /// True when a batch exhausted its retry budget with unresolved tasks
  /// and no fallback policy was available; `last_error` holds the typed
  /// Status that was propagated.
  bool exhausted = false;
  Status last_error;

  /// One-line human-readable summary for benches and logs.
  std::string ToString() const;
};

/// Executes batches of independent comparisons, one logical step per
/// non-empty batch. Implementations: ComparatorBatchExecutor (simulation),
/// ParallelBatchExecutor, PlatformBatchExecutor (the crowd-platform adapter
/// in platform/platform.h) and the fault-handling decorators in
/// core/resilient.h.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;

  /// Executes `tasks` in one logical step and returns the winners, aligned
  /// with the input. An empty batch costs nothing and no step. This path
  /// assumes an executor that cannot fail (the paper's model); executors
  /// with fault modes abort (CHECK) here and must be driven through
  /// TryExecuteBatch or wrapped in ResilientBatchExecutor.
  std::vector<ElementId> ExecuteBatch(const std::vector<ComparisonPair>& tasks);

  /// Fallible variant: executes `tasks` in one logical step and reports a
  /// per-task BatchTaskResult, aligned with the input. Returns a non-OK
  /// Status (typically Unavailable) when the whole submission failed — in
  /// that case no logical step is accounted. Individual tasks may come
  /// back unanswered; the batched algorithms treat those conservatively
  /// (no elimination without evidence) and re-issue them later.
  Result<std::vector<BatchTaskResult>> TryExecuteBatch(
      const std::vector<ComparisonPair>& tasks);

  /// Logical steps consumed so far.
  int64_t logical_steps() const { return logical_steps_; }

  /// Comparisons executed so far (cache-free; callers batch only misses).
  int64_t comparisons() const { return comparisons_; }

  /// Comparisons bought for speculative rounds that were cancelled before
  /// executing (DESIGN.md §15). The pipelined engine charges the tasks a
  /// mispredicted round would have sent — crowd workers were reserved for
  /// them — so comparisons() reflects the true bill; this counter keeps the
  /// wasted share first-class instead of folding it silently into the paid
  /// tally: comparisons() - cancelled_comparisons() equals the synchronous
  /// drive's spend.
  int64_t cancelled_comparisons() const { return cancelled_comparisons_; }

  /// Charges `count` comparisons of cancelled speculative work (engine
  /// use). The spend lands in both comparisons() and
  /// cancelled_comparisons(); trace cells are untouched — cancelled tasks
  /// were never dispatched, and MetricsAuditor::ExpectDispatchedWithCancelled
  /// reconciles the difference.
  void ChargeCancelledSpeculation(int64_t count) {
    comparisons_ += count;
    cancelled_comparisons_ += count;
  }

  /// Zeroes the step/comparison counters. Virtual so that decorators and
  /// adapters can reset (or snapshot) their own accounting alongside —
  /// e.g. PlatformBatchExecutor snapshots the shared platform's vote and
  /// step counters to keep mixed-phase accounting honest.
  virtual void ResetCounters() {
    logical_steps_ = 0;
    comparisons_ = 0;
    cancelled_comparisons_ = 0;
  }

  /// The fault/recovery report of this executor, or nullptr for executors
  /// without one. Overridden by ResilientBatchExecutor; lets the batched
  /// algorithms thread the report into their results without RTTI.
  virtual const FaultReport* fault_report() const { return nullptr; }

  /// Checkpoints the executor's replay state: the step/comparison counters
  /// plus everything the concrete class owns (comparator RNG streams,
  /// chunk-seed chains, retry reports). Decorators chain into their inner
  /// executor, so one call on the top of a stack walks the whole stack.
  /// Executors that do not opt in via DoSaveState/DoLoadState return
  /// kFailedPrecondition — notably PlatformBatchExecutor, whose replay
  /// state lives in the shared CrowdPlatform; platform-mode queries recover
  /// by deterministic re-execution instead (query/supervisor.h).
  Status SaveState(CheckpointWriter* writer) const;
  Status LoadState(CheckpointReader* reader);

  /// Drains the simulated crowd round-trip latency (microseconds) this
  /// executor has accumulated since the last drain. Executors without a
  /// latency model return 0 (the default). PlatformBatchExecutor banks the
  /// platform's per-batch latency draws here; decorators forward to their
  /// inner executor. The caller decides what to do with the time: the
  /// engine's non-pipelined drive sleeps it out inline, the pipelined
  /// drive (core/async_executor.h) overlaps it with later submissions.
  virtual int64_t TakeSimulatedLatencyMicros() { return 0; }

 protected:
  BatchExecutor() = default;

  /// Adjusts the comparison counter beyond what the public wrappers charge
  /// (tasks.size() per successful call). Decorators whose true crowd spend
  /// differs from the caller-visible task count use this to keep
  /// comparisons() equal to what was actually bought — e.g.
  /// ResilientBatchExecutor charges every retry re-issue, and un-charges
  /// the wrapper's nominal batch when all attempts failed and a fallback
  /// resolved the tasks for free. `delta` may be negative.
  void ChargeExtraComparisons(int64_t delta) { comparisons_ += delta; }

 private:
  virtual std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) = 0;

  /// Fallible override point. The default adapts DoExecuteBatch: every
  /// task comes back answered and the call never fails.
  virtual Result<std::vector<BatchTaskResult>> DoTryExecuteBatch(
      const std::vector<ComparisonPair>& tasks);

  /// Whether the public wrappers record this executor's dispatched tasks
  /// and their outcomes as trace cells (core/trace.h). True for executors
  /// that buy crowd work themselves (the default); decorators that
  /// delegate to an inner executor return false so each dispatched
  /// comparison lands in exactly one cell — the innermost executor's.
  virtual bool RecordsTraceCells() const { return true; }

  /// Checkpoint override points for the class-specific state beyond the
  /// counters (which SaveState/LoadState handle). The defaults refuse, so
  /// an executor cannot silently resume with replay state it never saved.
  virtual Status DoSaveState(CheckpointWriter* writer) const;
  virtual Status DoLoadState(CheckpointReader* reader);

  int64_t logical_steps_ = 0;
  int64_t comparisons_ = 0;
  int64_t cancelled_comparisons_ = 0;
};

/// Adapts any Comparator to the batch interface: answers are produced
/// sequentially but accounted as one logical step per batch (a pool of
/// workers large enough to absorb the batch in parallel). Does not own the
/// comparator.
class ComparatorBatchExecutor : public BatchExecutor {
 public:
  explicit ComparatorBatchExecutor(Comparator* comparator);

 private:
  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  // Checkpoint support: the comparator carries all the replay state.
  Status DoSaveState(CheckpointWriter* writer) const override;
  Status DoLoadState(CheckpointReader* reader) override;

  Comparator* comparator_;
};

/// Batch executor that answers each batch concurrently on a work-stealing
/// pool. The batch is split into contiguous chunks of `chunk_size` tasks;
/// each chunk is answered by an independent Comparator::Fork child whose
/// seed is drawn in chunk order *before* dispatch, and winners land in
/// disjoint slots of the pre-sized output — so answers and counts are
/// bit-identical for every thread count (but differ, in RNG draw order,
/// from ComparatorBatchExecutor over the same comparator). Paid counts are
/// merged into the base comparator at the end of each batch. Does not own
/// the comparator.
class ParallelBatchExecutor : public BatchExecutor {
 public:
  /// Requires a forkable `comparator` (InvalidArgument otherwise),
  /// threads >= 1 and chunk_size >= 1. `seed` starts the chunk-seed chain.
  static Result<std::unique_ptr<ParallelBatchExecutor>> Create(
      Comparator* comparator, int64_t threads, uint64_t seed,
      int64_t chunk_size = 256);

 private:
  ParallelBatchExecutor(Comparator* comparator, int64_t threads,
                        uint64_t seed, int64_t chunk_size);

  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  // Checkpoint support: the chunk-seed chain plus the base comparator's
  // state. Fork children are per-batch and hold no cross-batch state, so
  // the seeder position is all the parallel path needs to replay.
  Status DoSaveState(CheckpointWriter* writer) const override;
  Status DoLoadState(CheckpointReader* reader) override;

  Comparator* comparator_;
  ThreadPool pool_;
  Rng seeder_;
  int64_t chunk_size_;
};

// BatchedAllPlayAll was deprecated (it bypassed the engine's cache and
// fault accounting) and has been removed; drive RunTournamentOnEngine on
// RoundEngine::CreateBatched instead. See DESIGN.md §10's deprecation
// table.

/// FilterResult plus the logical steps the run consumed.
struct BatchedFilterResult {
  FilterResult filter;
  int64_t logical_steps = 0;
  /// True when the executor's fault budget was exhausted mid-run: the
  /// round loop stopped early and `filter.candidates` holds the survivors
  /// so far (a superset of what a clean run would keep — the maximum still
  /// survives). `fault_status` carries the typed error that stopped it.
  bool partial = false;
  Status fault_status;
};

/// Algorithm 2 with each round's group tournaments issued as one batch:
/// O(log n) logical steps. Supports the same options as FilterCandidates;
/// `memoize` keeps a pair cache across rounds so repeated pairs are not
/// re-sent to the crowd, and `shared_cache`/`cache_class` share that cache
/// across calls of the same worker class.
Result<BatchedFilterResult> BatchedFilterCandidates(
    const std::vector<ElementId>& items, const FilterOptions& options,
    BatchExecutor* executor);

/// Options of the pipelined (latency-hiding) adapters.
struct BatchedPipelineOptions {
  /// Rounds allowed to ride the simulated crowd latency concurrently
  /// (RoundEngine::CreatePipelined). 1 degenerates to the batched path's
  /// schedule with async submission.
  int64_t max_in_flight = 4;
  /// Cross-call pair-evidence sharing for the pipelined engine; overrides
  /// FilterOptions::shared_cache/cache_class when set. Not owned.
  SharedPairCache* shared_cache = nullptr;
  int64_t cache_class = 0;
};

/// Algorithm 2 driven on a pipelined engine: rounds are submitted through
/// `async` and overlap their crowd round trips wherever the source's
/// legality conditions hold. Set FilterOptions::pipeline_groups to emit one
/// engine round per disjoint group — with it off every round is a
/// dependency barrier and the pipeline never gets deeper than 1. Results,
/// counters and traces are bit-identical to BatchedFilterCandidates over
/// the same executor stack with the same options; only wall-clock differs.
Result<BatchedFilterResult> PipelinedFilterCandidates(
    const std::vector<ElementId>& items, const FilterOptions& options,
    AsyncBatchExecutor* async, const BatchedPipelineOptions& pipeline = {});

/// MaxFindResult plus the logical steps the run consumed.
struct BatchedMaxFindResult {
  MaxFindResult maxfind;
  int64_t logical_steps = 0;
  /// True when the executor's fault budget was exhausted mid-run;
  /// `survivors` then holds the candidates still alive (the best guess is
  /// `maxfind.best` if the final tournament ran, else -1) and
  /// `fault_status` the typed error.
  bool partial = false;
  Status fault_status;
  std::vector<ElementId> survivors;
};

/// 2-MaxFind with two batches per round (sample tournament, then the
/// pivot's elimination scan) and one final batch: O(sqrt(s)) logical
/// steps. Always memoizes (the paper's assumption), so repeated pairs are
/// answered from cache without a step; pass a `shared_cache` to extend the
/// memo across calls of the same worker class (1 = expert by convention).
Result<BatchedMaxFindResult> BatchedTwoMaxFind(
    const std::vector<ElementId>& items, BatchExecutor* executor,
    SharedPairCache* shared_cache = nullptr, int64_t cache_class = 1);

/// 2-MaxFind on a pipelined engine. With `engine_options.speculate` set the
/// source issues each round's elimination scan while its sample tournament
/// is still in flight, predicated on the predicted pivot (DESIGN.md §15);
/// results, traces and paid counters are bit-identical to BatchedTwoMaxFind
/// over the same executor stack — only wall clock and the engine's
/// speculation counters differ. Speculation is ignored on budget-gated
/// drives (none here) and costs nothing when the prediction always misses
/// beyond the tracked `speculation_wasted` charge.
Result<BatchedMaxFindResult> PipelinedTwoMaxFind(
    const std::vector<ElementId>& items, AsyncBatchExecutor* async,
    const BatchedPipelineOptions& pipeline = {},
    const TwoMaxFindEngineOptions& engine_options = {},
    SharedPairCache* shared_cache = nullptr, int64_t cache_class = 1);

/// Two-phase result plus per-class logical steps and fault accounting.
struct BatchedExpertMaxResult {
  ExpertMaxResult result;
  int64_t naive_steps = 0;
  int64_t expert_steps = 0;
  /// True when either phase stopped early on an exhausted fault budget;
  /// `result.candidates` still holds the phase-1 survivors collected so
  /// far, `result.best` is -1 if phase 2 could not finish, and
  /// `fault_status` carries the typed error.
  bool partial = false;
  Status fault_status;
  /// Per-phase fault/recovery reports, copied from the executors when they
  /// are resilient (BatchExecutor::fault_report() != nullptr); the
  /// has_* flags say whether a report was collected.
  bool has_naive_faults = false;
  bool has_expert_faults = false;
  FaultReport naive_faults;
  FaultReport expert_faults;
};

/// Algorithm 1 in batched form: BatchedFilterCandidates with the naive
/// executor, then BatchedTwoMaxFind with the expert executor. When the
/// executors are resilient (core/resilient.h), their FaultReports are
/// summarized into the result; when a fault budget is exhausted the run
/// returns a partial result (survivors so far + fault status) instead of
/// aborting.
Result<BatchedExpertMaxResult> BatchedFindMaxWithExperts(
    const std::vector<ElementId>& items, BatchExecutor* naive,
    BatchExecutor* expert, const ExpertMaxOptions& options);

/// Top-k result plus per-class logical steps and fault accounting.
struct BatchedTopKResult {
  TopKResult result;
  int64_t naive_steps = 0;
  int64_t expert_steps = 0;
  /// True when a phase ran on incomplete evidence: the filter stopped
  /// early on an exhausted fault budget (candidates hold the survivors so
  /// far — a superset, the true top-k still inside) or the expert
  /// tournament left pairs unresolved (the returned order is the
  /// provisional win count). `fault_status` carries the typed error.
  bool partial = false;
  Status fault_status;
  bool has_naive_faults = false;
  bool has_expert_faults = false;
  FaultReport naive_faults;
  FaultReport expert_faults;
};

/// The top-k extension (core/topk.h) in batched form: the u' = u_n + k - 1
/// filter on the naive executor (O(log n) steps), then one expert
/// all-play-all batch over the candidates. Same options contract as
/// FindTopKWithExperts.
Result<BatchedTopKResult> BatchedFindTopKWithExperts(
    const std::vector<ElementId>& items, BatchExecutor* naive,
    BatchExecutor* expert, const TopKOptions& options);

/// Top-k on pipelined engines: the filter phase overlaps its disjoint
/// groups (set FilterOptions::pipeline_groups in options.filter) and the
/// expert all-play-all overlaps its chunks when
/// TopKOptions::expert_chunk_pairs > 0. Results are bit-identical to
/// BatchedFindTopKWithExperts over the same executor stacks with the same
/// options; only wall clock differs.
Result<BatchedTopKResult> PipelinedFindTopKWithExperts(
    const std::vector<ElementId>& items, AsyncBatchExecutor* naive,
    AsyncBatchExecutor* expert, const TopKOptions& options,
    const BatchedPipelineOptions& pipeline = {});

/// One worker class of the batched cascade: multilevel.h semantics with a
/// BatchExecutor (and its fault stack) in place of the raw Comparator.
struct BatchedWorkerClassSpec {
  /// Executor backed by this class's workers (not owned).
  BatchExecutor* executor = nullptr;
  /// u_k for this class's filter level (ignored for the last class).
  int64_t u = 1;
  /// Price per comparison, for cost reporting.
  double cost_per_comparison = 1.0;
};

/// Multilevel result plus per-class logical steps and fault accounting.
struct BatchedMultilevelResult {
  MultilevelResult result;
  /// Logical steps per class, aligned with the input specs.
  std::vector<int64_t> steps_per_class;
  /// True when any level stopped early on an exhausted fault budget; the
  /// cascade still hands the survivor superset down, so `result.best` is
  /// filled whenever the final phase produced a provisional leader.
  bool partial = false;
  Status fault_status;
};

/// The worker-class cascade (core/multilevel.h) in batched form: every
/// non-final class runs the filter on its executor, the final class runs
/// the configured phase-2 solver. Step counts per class come from the
/// executors' logical-step deltas.
Result<BatchedMultilevelResult> BatchedFindMaxMultilevel(
    const std::vector<ElementId>& items,
    const std::vector<BatchedWorkerClassSpec>& classes,
    const MultilevelOptions& options);

/// One worker class of the pipelined cascade: BatchedWorkerClassSpec with
/// an async executor in place of the synchronous one.
struct PipelinedWorkerClassSpec {
  /// Async executor backed by this class's workers (not owned).
  AsyncBatchExecutor* async = nullptr;
  /// u_k for this class's filter level (ignored for the last class).
  int64_t u = 1;
  /// Price per comparison, for cost reporting.
  double cost_per_comparison = 1.0;
};

/// The worker-class cascade on pipelined engines: filter levels overlap
/// their disjoint groups (set FilterOptions::pipeline_groups in
/// options.filter_template), and the final phase overlaps per
/// MultilevelOptions::final_chunk_pairs / final_speculate (DESIGN.md §15).
/// Results are bit-identical to BatchedFindMaxMultilevel over the same
/// executor stacks with the same options; only wall clock and the engines'
/// speculation counters differ.
Result<BatchedMultilevelResult> PipelinedFindMaxMultilevel(
    const std::vector<ElementId>& items,
    const std::vector<PipelinedWorkerClassSpec>& classes,
    const MultilevelOptions& options,
    const BatchedPipelineOptions& pipeline = {});

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_BATCHED_H_
