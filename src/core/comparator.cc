#include "core/comparator.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "core/pair_key.h"

namespace crowdmax {

namespace {
constexpr uint32_t kComparatorTag = CheckpointTag("CMP ");
constexpr uint32_t kMemoTag = CheckpointTag("MEMO");
}  // namespace

Status Comparator::SaveState(CheckpointWriter* /*writer*/) const {
  return Status::FailedPrecondition(
      "this comparator does not support checkpointing; a resumed run would "
      "replay with a reset RNG stream");
}

Status Comparator::LoadState(CheckpointReader* /*reader*/) {
  return Status::FailedPrecondition(
      "this comparator does not support checkpointing");
}

Status Comparator::SaveCounterState(CheckpointWriter* writer) const {
  writer->WriteTag(kComparatorTag);
  writer->WriteI64(num_comparisons_);
  return Status::OK();
}

Status Comparator::LoadCounterState(CheckpointReader* reader) {
  reader->ExpectTag(kComparatorTag);
  num_comparisons_ = reader->ReadI64();
  return reader->status();
}

OracleComparator::OracleComparator(const Instance* instance)
    : instance_(instance) {
  CROWDMAX_CHECK(instance != nullptr);
}

ElementId OracleComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  if (instance_->value(a) > instance_->value(b)) return a;
  if (instance_->value(b) > instance_->value(a)) return b;
  return std::min(a, b);
}

std::unique_ptr<Comparator> OracleComparator::Fork(uint64_t /*seed*/) const {
  return std::make_unique<OracleComparator>(instance_);
}

Status OracleComparator::SaveState(CheckpointWriter* writer) const {
  return SaveCounterState(writer);
}

Status OracleComparator::LoadState(CheckpointReader* reader) {
  return LoadCounterState(reader);
}

MemoizingComparator::MemoizingComparator(Comparator* inner) : inner_(inner) {
  CROWDMAX_CHECK(inner != nullptr);
}

ElementId MemoizingComparator::Compare(ElementId a, ElementId b) {
  const uint64_t key = PackPairKey(a, b);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  CountComparison();
  const ElementId winner = inner_->Compare(a, b);
  cache_.emplace(key, winner);
  return winner;
}

ElementId MemoizingComparator::DoCompare(ElementId a, ElementId b) {
  // Unreachable: Compare() is fully overridden.
  return inner_->Compare(a, b);
}

std::unique_ptr<Comparator> MemoizingComparator::Fork(
    uint64_t /*seed*/) const {
  CROWDMAX_CHECK(false &&
                 "MemoizingComparator is not thread-safe and cannot enter "
                 "the parallel path; parallel filtering memoizes via its "
                 "round-barrier cache instead");
  return nullptr;
}

Status MemoizingComparator::SaveState(CheckpointWriter* writer) const {
  Status counter = SaveCounterState(writer);
  if (!counter.ok()) return counter;
  writer->WriteTag(kMemoTag);
  writer->WriteSortedMap(cache_);
  writer->WriteI64(cache_hits_);
  return inner_->SaveState(writer);
}

Status MemoizingComparator::LoadState(CheckpointReader* reader) {
  Status counter = LoadCounterState(reader);
  if (!counter.ok()) return counter;
  reader->ExpectTag(kMemoTag);
  reader->ReadSortedMap(&cache_);
  cache_hits_ = reader->ReadI64();
  if (!reader->status().ok()) return reader->status();
  return inner_->LoadState(reader);
}

AdversarialComparator::AdversarialComparator(const Instance* instance,
                                             double delta,
                                             AdversarialPolicy policy)
    : instance_(instance), delta_(delta), policy_(policy) {
  CROWDMAX_CHECK(instance != nullptr);
  CROWDMAX_CHECK(delta >= 0.0);
}

ElementId AdversarialComparator::DoCompare(ElementId a, ElementId b) {
  CROWDMAX_DCHECK(instance_->Contains(a) && instance_->Contains(b));
  const double va = instance_->value(a);
  const double vb = instance_->value(b);
  if (instance_->Distance(a, b) > delta_) {
    return va > vb ? a : b;
  }
  switch (policy_) {
    case AdversarialPolicy::kFirstLoses:
      return b;
    case AdversarialPolicy::kLowerValueWins:
      if (va == vb) return std::max(a, b);
      return va < vb ? a : b;
    case AdversarialPolicy::kHigherValueWins:
      if (va == vb) return std::min(a, b);
      return va > vb ? a : b;
  }
  return a;
}

std::unique_ptr<Comparator> AdversarialComparator::Fork(
    uint64_t /*seed*/) const {
  return std::make_unique<AdversarialComparator>(instance_, delta_, policy_);
}

Status AdversarialComparator::SaveState(CheckpointWriter* writer) const {
  return SaveCounterState(writer);
}

Status AdversarialComparator::LoadState(CheckpointReader* reader) {
  return LoadCounterState(reader);
}

}  // namespace crowdmax
