#include "core/estimate.h"

#include <algorithm>
#include <cmath>

namespace crowdmax {

Result<UnEstimate> EstimateUn(const std::vector<ElementId>& training,
                              ElementId training_max, int64_t target_n,
                              Comparator* naive,
                              const UnEstimateOptions& options) {
  CROWDMAX_CHECK(naive != nullptr);
  if (training.empty()) {
    return Status::InvalidArgument("training set must be non-empty");
  }
  if (target_n < 1) {
    return Status::InvalidArgument("target_n must be >= 1");
  }
  if (options.p_err <= 0.0 || options.p_err >= 1.0) {
    return Status::InvalidArgument("p_err must be in (0, 1)");
  }
  if (options.confidence_c <= 0.0) {
    return Status::InvalidArgument("confidence_c must be positive");
  }
  if (std::find(training.begin(), training.end(), training_max) ==
      training.end()) {
    return Status::InvalidArgument(
        "training_max must be a member of the training set");
  }

  // Lines 2-7 of Algorithm 4: compare each training element against the
  // known maximum; a worker that reports the element above the maximum has
  // erred.
  int64_t errors = 0;
  for (ElementId x : training) {
    if (x == training_max) continue;
    const ElementId winner = naive->Compare(x, training_max);
    CROWDMAX_DCHECK(winner == x || winner == training_max);
    if (winner == x) ++errors;
  }

  // Line 8: (n / n_hat) * max(c*ln(n), 2*#errors / p_err).
  const double n = static_cast<double>(target_n);
  const double n_hat = static_cast<double>(training.size());
  const double bound =
      std::max(options.confidence_c * std::log(n),
               2.0 * static_cast<double>(errors) / options.p_err);
  const double raw = (n / n_hat) * bound;

  UnEstimate estimate;
  estimate.observed_errors = errors;
  estimate.raw_estimate = raw;
  estimate.u_n = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(raw)));
  // u_n(n) can never exceed n.
  estimate.u_n = std::min(estimate.u_n, target_n);
  return estimate;
}

Result<PerrEstimate> EstimatePerr(
    const Instance& gold_truth,
    const std::vector<std::pair<ElementId, ElementId>>& pairs,
    int64_t votes_per_pair, Comparator* naive) {
  CROWDMAX_CHECK(naive != nullptr);
  if (pairs.empty()) {
    return Status::InvalidArgument("pairs must be non-empty");
  }
  if (votes_per_pair < 2) {
    return Status::InvalidArgument("votes_per_pair must be >= 2");
  }

  PerrEstimate estimate;
  estimate.total_pairs = static_cast<int64_t>(pairs.size());
  int64_t hard_errors = 0;

  for (const auto& [a, b] : pairs) {
    if (!gold_truth.Contains(a) || !gold_truth.Contains(b)) {
      return Status::InvalidArgument("pair references unknown element");
    }
    const ElementId correct =
        gold_truth.value(a) >= gold_truth.value(b) ? a : b;
    std::vector<ElementId> votes;
    votes.reserve(static_cast<size_t>(votes_per_pair));
    for (int64_t v = 0; v < votes_per_pair; ++v) {
      votes.push_back(naive->Compare(a, b));
    }
    const bool consensus =
        std::all_of(votes.begin(), votes.end(),
                    [&](ElementId w) { return w == votes.front(); });
    if (consensus) continue;  // Treated as above-threshold.
    ++estimate.hard_pairs;
    estimate.votes_on_hard_pairs += votes_per_pair;
    for (ElementId w : votes) {
      if (w != correct) ++hard_errors;
    }
  }

  if (estimate.hard_pairs == 0) {
    return Status::NotFound(
        "all pairs reached consensus; no below-threshold pairs observed");
  }
  estimate.p_err = static_cast<double>(hard_errors) /
                   static_cast<double>(estimate.votes_on_hard_pairs);
  return estimate;
}

}  // namespace crowdmax
