// The paper's monetary cost model (Section 3.4):
//   C(n) = x_e * c_e + x_n * c_n
// where x_n / x_e are the naive / expert comparison counts and c_n / c_e
// the per-comparison prices, with c_e >> c_n in the regimes of interest.

#ifndef CROWDMAX_CORE_COST_H_
#define CROWDMAX_CORE_COST_H_

#include <cstdint>

namespace crowdmax {

/// Per-comparison prices for the two worker classes.
struct CostModel {
  double naive_cost = 1.0;
  double expert_cost = 10.0;

  bool Valid() const { return naive_cost >= 0.0 && expert_cost >= 0.0; }

  /// Total monetary cost of an execution that paid for the given
  /// comparison counts.
  double Cost(int64_t naive_comparisons, int64_t expert_comparisons) const {
    return static_cast<double>(naive_comparisons) * naive_cost +
           static_cast<double>(expert_comparisons) * expert_cost;
  }

  /// The expert/naive price ratio c_e / c_n; +inf when naive work is free
  /// but expert work is not. The degenerate all-free model (both prices 0,
  /// which Valid() admits) is defined as 1 — no expert premium — rather
  /// than the 0/0 NaN a literal division would produce.
  double Ratio() const;
};

/// Comparison counts of one algorithm execution, by worker class.
struct ComparisonStats {
  int64_t naive = 0;
  int64_t expert = 0;

  ComparisonStats& operator+=(const ComparisonStats& other) {
    naive += other.naive;
    expert += other.expert;
    return *this;
  }
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_COST_H_
