#include "core/expert_max.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "core/round_engine.h"
#include "core/tournament.h"
#include "core/trace.h"

namespace crowdmax {

Result<ExpertMaxResult> FindMaxWithExperts(const std::vector<ElementId>& items,
                                           Comparator* naive,
                                           Comparator* expert,
                                           const ExpertMaxOptions& options) {
  CROWDMAX_CHECK(naive != nullptr);
  CROWDMAX_CHECK(expert != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  TraceSpanScope run_span(TraceSpanKind::kRun, "expert_max");

  FilterOptions filter_options = options.filter;
  TwoMaxFindOptions two_maxfind_options = options.two_maxfind;
  if (options.shared_cache != nullptr) {
    filter_options.shared_cache = options.shared_cache;
    filter_options.cache_class = options.naive_cache_class;
    two_maxfind_options.shared_cache = options.shared_cache;
    two_maxfind_options.cache_class = options.expert_cache_class;
  }

  // Phase 1: filter with naive workers (FilterCandidates opens the
  // "filter" phase span and records its per-round cells).
  Result<FilterResult> filtered =
      FilterCandidates(items, filter_options, naive);
  if (!filtered.ok()) return filtered.status();

  ExpertMaxResult result;
  result.candidates = std::move(filtered->candidates);
  result.paid.naive = filtered->paid_comparisons;
  result.issued.naive = filtered->issued_comparisons;
  result.filter_rounds = filtered->rounds;
  result.filter_hit_empty_round = filtered->hit_empty_round;
  result.filter_stopped_by_budget = filtered->stopped_by_budget;

  if (result.candidates.empty()) {
    return Status::Internal("phase 1 returned an empty candidate set");
  }

  // Phase 2: max-find over the candidates with expert workers. The serial
  // max-find algorithms have no executor underneath to attribute their
  // comparisons, so the whole phase is one trace cell (round -1), recorded
  // from the result's counters: in the comparator model every paid
  // comparison comes back answered, and the issued-minus-paid remainder
  // was served by the memoization cache.
  TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
  Result<MaxFindResult> phase2 = Status::Internal("unreachable");
  switch (options.phase2) {
    case Phase2Algorithm::kTwoMaxFind:
      phase2 = TwoMaxFind(result.candidates, expert, two_maxfind_options);
      break;
    case Phase2Algorithm::kRandomized:
      phase2 = RandomizedMaxFind(result.candidates, expert, options.randomized);
      break;
    case Phase2Algorithm::kAllPlayAll:
      if (options.shared_cache != nullptr) {
        // Memoized tournament on a shared-cache engine: candidate pairs an
        // earlier expert-class engine already resolved are answered for
        // free, and every pair bought here seeds later runs.
        const std::unique_ptr<RoundEngine> engine = RoundEngine::CreateSerial(
            expert, /*memoize=*/true, options.shared_cache,
            options.expert_cache_class);
        Result<TournamentEngineRun> run =
            RunTournamentOnEngine(result.candidates, engine.get());
        if (!run.ok()) {
          phase2 = run.status();
          break;
        }
        MaxFindResult tallied;
        tallied.best = result.candidates[IndexOfMostWins(run->tournament)];
        tallied.issued_comparisons = run->tournament.comparisons;
        tallied.paid_comparisons = engine->paid();
        phase2 = tallied;
      } else {
        phase2 = AllPlayAllMax(result.candidates, expert);
      }
      break;
  }
  if (!phase2.ok()) return phase2.status();
  if (AlgoTrace* trace = CurrentTrace(); trace != nullptr) {
    trace->RecordDispatched(phase2->paid_comparisons);
    trace->RecordOutcomes(phase2->paid_comparisons, 0, 0);
    if (phase2->issued_comparisons > phase2->paid_comparisons) {
      trace->RecordCacheHits(phase2->issued_comparisons -
                             phase2->paid_comparisons);
    }
  }

  result.best = phase2->best;
  result.paid.expert = phase2->paid_comparisons;
  result.issued.expert = phase2->issued_comparisons;
  result.phase2_rounds = phase2->rounds;
  return result;
}

Result<BudgetedMaxResult> BudgetedFindMaxWithExperts(
    const std::vector<ElementId>& items, Comparator* naive,
    Comparator* expert, const BudgetedMaxOptions& options) {
  if (!options.prices.Valid()) {
    return Status::InvalidArgument("invalid cost model");
  }
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  const int64_t u_n = options.base.filter.u_n;
  if (u_n < 1) return Status::InvalidArgument("u_n must be >= 1");

  // Reserve the worst-case expert phase, then cap naive work with the
  // remainder. The first filtering round needs about n*(g-1)/2
  // comparisons; demand at least that much naive headroom so the run can
  // make progress.
  const double expert_reserve =
      static_cast<double>(TwoMaxFindComparisonUpperBound(2 * u_n - 1)) *
      options.prices.expert_cost;
  const double naive_funds = options.budget - expert_reserve;
  const int64_t n = static_cast<int64_t>(items.size());
  const int64_t g = options.base.filter.group_size_multiplier * u_n;
  const int64_t first_round_cost =
      n >= 2 * u_n ? (n / g) * (g * (g - 1) / 2) +
                         ((n % g > u_n) ? (n % g) * (n % g - 1) / 2 : 0)
                   : 0;
  const int64_t naive_cap =
      options.prices.naive_cost > 0.0
          ? static_cast<int64_t>(std::floor(naive_funds /
                                            options.prices.naive_cost))
          : (naive_funds >= 0.0 ? FilterComparisonUpperBound(n, u_n)
                                : int64_t{-1});
  if (naive_cap < first_round_cost || naive_funds < 0.0) {
    return Status::InvalidArgument(
        "budget cannot cover the expert reserve plus the first filtering "
        "round");
  }

  ExpertMaxOptions run_options = options.base;
  run_options.filter.max_comparisons = naive_cap;
  Result<ExpertMaxResult> run =
      FindMaxWithExperts(items, naive, expert, run_options);
  if (!run.ok()) return run.status();

  BudgetedMaxResult out;
  out.result = std::move(run).value();
  out.naive_comparison_cap = naive_cap;
  out.filter_stopped_by_budget = out.result.filter_stopped_by_budget;
  out.actual_cost = out.result.CostUnder(options.prices);
  out.within_budget = out.actual_cost <= options.budget + 1e-9;
  return out;
}

}  // namespace crowdmax
