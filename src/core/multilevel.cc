#include "core/multilevel.h"

#include <memory>
#include <utility>

#include "core/maxfind.h"
#include "core/round_engine.h"
#include "core/tournament.h"

namespace crowdmax {

Result<MultilevelResult> FindMaxMultilevel(
    const std::vector<ElementId>& items,
    const std::vector<WorkerClassSpec>& classes,
    const MultilevelOptions& options) {
  if (classes.empty()) {
    return Status::InvalidArgument("at least one worker class is required");
  }
  for (const WorkerClassSpec& spec : classes) {
    if (spec.comparator == nullptr) {
      return Status::InvalidArgument("worker class has null comparator");
    }
    if (spec.cost_per_comparison < 0.0) {
      return Status::InvalidArgument("cost_per_comparison must be >= 0");
    }
  }
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }

  MultilevelResult result;
  result.paid_per_class.assign(classes.size(), 0);

  std::vector<ElementId> current = items;

  // Filtering levels: every class except the last.
  for (size_t level = 0; level + 1 < classes.size(); ++level) {
    const WorkerClassSpec& spec = classes[level];
    if (spec.u < 1) {
      return Status::InvalidArgument("worker class u must be >= 1");
    }
    FilterOptions filter = options.filter_template;
    filter.u_n = spec.u;
    if (options.shared_cache != nullptr) {
      filter.shared_cache = options.shared_cache;
      filter.cache_class = static_cast<int64_t>(level);
    }
    Result<FilterResult> filtered =
        FilterCandidates(current, filter, spec.comparator);
    if (!filtered.ok()) return filtered.status();
    result.paid_per_class[level] = filtered->paid_comparisons;
    result.candidates_per_level.push_back(
        static_cast<int64_t>(filtered->candidates.size()));
    current = std::move(filtered->candidates);
    if (current.empty()) {
      return Status::Internal("filter level returned an empty candidate set");
    }
  }

  // Final level: phase-2 max-finding with the most expert class.
  const size_t last = classes.size() - 1;
  TwoMaxFindOptions two_maxfind = options.two_maxfind;
  if (options.shared_cache != nullptr) {
    two_maxfind.shared_cache = options.shared_cache;
    two_maxfind.cache_class = static_cast<int64_t>(last);
  }
  Result<MaxFindResult> final_result = Status::Internal("unreachable");
  switch (options.final_phase) {
    case Phase2Algorithm::kTwoMaxFind:
      final_result =
          TwoMaxFind(current, classes[last].comparator, two_maxfind);
      break;
    case Phase2Algorithm::kRandomized:
      final_result = RandomizedMaxFind(current, classes[last].comparator,
                                       options.randomized);
      break;
    case Phase2Algorithm::kAllPlayAll:
      if (options.shared_cache != nullptr) {
        const std::unique_ptr<RoundEngine> engine = RoundEngine::CreateSerial(
            classes[last].comparator, /*memoize=*/true, options.shared_cache,
            static_cast<int64_t>(last));
        Result<TournamentEngineRun> run =
            RunTournamentOnEngine(current, engine.get());
        if (!run.ok()) return run.status();
        MaxFindResult tallied;
        tallied.best = current[IndexOfMostWins(run->tournament)];
        tallied.issued_comparisons = run->tournament.comparisons;
        tallied.paid_comparisons = engine->paid();
        final_result = tallied;
      } else {
        final_result = AllPlayAllMax(current, classes[last].comparator);
      }
      break;
  }
  if (!final_result.ok()) return final_result.status();

  result.best = final_result->best;
  result.paid_per_class[last] = final_result->paid_comparisons;
  for (size_t i = 0; i < classes.size(); ++i) {
    result.total_cost += static_cast<double>(result.paid_per_class[i]) *
                         classes[i].cost_per_comparison;
  }
  return result;
}

}  // namespace crowdmax
