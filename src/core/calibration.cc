#include "core/calibration.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"

namespace crowdmax {

Result<CalibrationReport> CalibrateWorkers(
    const Instance& gold, Comparator* worker,
    const CalibrationOptions& options) {
  CROWDMAX_CHECK(worker != nullptr);
  if (gold.size() < 2) {
    return Status::InvalidArgument("gold instance needs >= 2 elements");
  }
  if (options.votes_per_pair < 3 || options.votes_per_pair % 2 == 0) {
    return Status::InvalidArgument("votes_per_pair must be odd and >= 3");
  }
  if (options.num_buckets < 2) {
    return Status::InvalidArgument("num_buckets must be >= 2");
  }
  if (options.pairs_per_bucket < 1) {
    return Status::InvalidArgument("pairs_per_bucket must be >= 1");
  }
  if (options.convergence_accuracy <= 0.5 ||
      options.convergence_accuracy > 1.0) {
    return Status::InvalidArgument(
        "convergence_accuracy must be in (0.5, 1]");
  }

  // Enumerate pairs in random order and find the distance range.
  std::vector<std::pair<ElementId, ElementId>> all_pairs;
  double max_distance = 0.0;
  for (ElementId a = 0; a < gold.size(); ++a) {
    for (ElementId b = a + 1; b < gold.size(); ++b) {
      all_pairs.push_back({a, b});
      max_distance = std::max(max_distance, gold.Distance(a, b));
    }
  }
  if (max_distance <= 0.0) {
    return Status::FailedPrecondition("all gold values are identical");
  }
  Rng rng(options.seed);
  rng.Shuffle(&all_pairs);

  CalibrationReport report;
  const double bucket_width =
      max_distance / static_cast<double>(options.num_buckets);
  report.buckets.resize(static_cast<size_t>(options.num_buckets));
  for (int64_t i = 0; i < options.num_buckets; ++i) {
    report.buckets[static_cast<size_t>(i)].min_distance =
        bucket_width * static_cast<double>(i);
    report.buckets[static_cast<size_t>(i)].max_distance =
        bucket_width * static_cast<double>(i + 1);
  }

  // Sample pairs per bucket and collect the vote statistics.
  std::vector<int64_t> pair_counts(report.buckets.size(), 0);
  std::vector<int64_t> vote_correct(report.buckets.size(), 0);
  std::vector<int64_t> vote_total(report.buckets.size(), 0);
  std::vector<int64_t> majority_correct(report.buckets.size(), 0);

  for (const auto& [a, b] : all_pairs) {
    const double distance = gold.Distance(a, b);
    size_t bucket = static_cast<size_t>(
        std::min<int64_t>(options.num_buckets - 1,
                          static_cast<int64_t>(distance / bucket_width)));
    if (pair_counts[bucket] >= options.pairs_per_bucket) continue;
    ++pair_counts[bucket];

    const ElementId correct = gold.value(a) >= gold.value(b) ? a : b;
    int64_t wins_correct = 0;
    for (int64_t v = 0; v < options.votes_per_pair; ++v) {
      const ElementId answer = worker->Compare(a, b);
      ++vote_total[bucket];
      if (answer == correct) {
        ++vote_correct[bucket];
        ++wins_correct;
      }
    }
    if (2 * wins_correct > options.votes_per_pair) {
      ++majority_correct[bucket];
    }
  }

  for (size_t i = 0; i < report.buckets.size(); ++i) {
    CalibrationBucket& bucket = report.buckets[i];
    bucket.pairs = pair_counts[i];
    if (vote_total[i] > 0) {
      bucket.single_vote_accuracy = static_cast<double>(vote_correct[i]) /
                                    static_cast<double>(vote_total[i]);
    }
    if (pair_counts[i] > 0) {
      bucket.majority_accuracy = static_cast<double>(majority_correct[i]) /
                                 static_cast<double>(pair_counts[i]);
    }
  }

  // Threshold detection: the last populated non-converging bucket, provided
  // some later populated bucket does converge (otherwise the workers are
  // uniformly bad, which is not the threshold signature).
  int64_t last_below = -1;
  int64_t last_converged = -1;
  for (size_t i = 0; i < report.buckets.size(); ++i) {
    if (report.buckets[i].pairs == 0) continue;
    if (report.buckets[i].majority_accuracy < options.convergence_accuracy) {
      last_below = static_cast<int64_t>(i);
    } else {
      last_converged = static_cast<int64_t>(i);
    }
  }
  if (last_below >= 0 && last_converged > last_below) {
    report.threshold_detected = true;
    report.estimated_delta =
        report.buckets[static_cast<size_t>(last_below)].max_distance;
  }
  return report;
}

}  // namespace crowdmax
