#include "core/filter_phase.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/parallel_group.h"
#include "core/trace.h"

namespace crowdmax {

namespace {

// Round-barrier trace recording, shared by the serial and parallel paths.
// The comparator hot loop is never touched: cells are recorded once per
// round, on the coordinating thread, from the round's counter deltas. Paid
// comparisons all come back answered in the comparator model (faults live
// in the executor stack); the issued-minus-paid remainder was served by
// the memoization cache.
void RecordFilterRound(int64_t paid_delta, int64_t issued_delta) {
  AlgoTrace* trace = CurrentTrace();
  if (trace == nullptr) return;
  trace->RecordDispatched(paid_delta);
  trace->RecordOutcomes(paid_delta, 0, 0);
  if (issued_delta > paid_delta) {
    trace->RecordCacheHits(issued_delta - paid_delta);
  }
}

Status ValidateFilterInput(const std::vector<ElementId>& items,
                           const FilterOptions& options) {
  if (options.u_n < 1) {
    return Status::InvalidArgument("u_n must be >= 1");
  }
  if (options.group_size_multiplier < 2) {
    return Status::InvalidArgument("group_size_multiplier must be >= 2");
  }
  if (options.max_comparisons < 0) {
    return Status::InvalidArgument("max_comparisons must be >= 0");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  std::unordered_set<ElementId> seen;
  for (ElementId e : items) {
    if (!seen.insert(e).second) {
      return Status::InvalidArgument("duplicate element id in input");
    }
  }
  return Status::OK();
}

// The worst-case comparison cost of one round over `n_cur` survivors in
// groups of `g` (short tail groups of at most u_n play nothing).
int64_t RoundCost(int64_t n_cur, int64_t g, int64_t u_n) {
  int64_t round_cost = 0;
  for (int64_t start = 0; start < n_cur; start += g) {
    const int64_t m = std::min(g, n_cur - start);
    if (m > u_n) round_cost += m * (m - 1) / 2;
  }
  return round_cost;
}

// The parallel twin of FilterCandidates below: identical round structure
// and selection rule, but each round's group tournaments run concurrently
// through ParallelGroupRunner, with per-group forked RNG streams and
// counter/cache merging at the round barrier. See FilterOptions::threads
// for the determinism contract.
Result<FilterResult> ParallelFilterCandidates(
    const std::vector<ElementId>& items, const FilterOptions& options,
    Comparator* naive) {
  Result<std::unique_ptr<ParallelGroupRunner>> runner =
      ParallelGroupRunner::Create(naive, options.threads);
  if (!runner.ok()) return runner.status();

  const int64_t paid_before = naive->num_comparisons();
  const int64_t u_n = options.u_n;
  const int64_t g = options.group_size_multiplier * u_n;
  Rng seeder(options.parallel_seed);

  FilterResult result;
  std::vector<ElementId> current = items;
  PairWinnerCache cache;
  std::unordered_map<ElementId, std::unordered_set<ElementId>> losses;

  while (static_cast<int64_t>(current.size()) >= 2 * u_n) {
    const int64_t n_cur = static_cast<int64_t>(current.size());
    if (options.max_comparisons > 0) {
      const int64_t paid_so_far = naive->num_comparisons() - paid_before;
      if (paid_so_far + RoundCost(n_cur, g, u_n) > options.max_comparisons) {
        result.stopped_by_budget = true;
        break;
      }
    }

    result.round_sizes.push_back(n_cur);
    ++result.rounds;
    TraceSpanScope round_span(result.rounds);
    const int64_t paid_before_round = naive->num_comparisons();
    const int64_t issued_before_round = result.issued_comparisons;

    // Partition survivors into this round's groups. Only the final group
    // can be short; with at most u_n elements it advances untouched (a
    // tournament could not eliminate anyone anyway).
    std::vector<std::vector<ElementId>> groups;
    std::vector<ElementId> tail;
    for (int64_t start = 0; start < n_cur; start += g) {
      const int64_t m = std::min(g, n_cur - start);
      auto first = current.begin() + start;
      if (m <= u_n) {
        tail.assign(first, first + m);
      } else {
        groups.emplace_back(first, first + m);
      }
    }

    const std::vector<GroupOutcome> outcomes = (*runner)->RunRound(
        groups, &seeder, options.memoize ? &cache : nullptr);

    // Barrier work, single-threaded and in group order: tallies, loss
    // counters, survivor selection.
    std::vector<ElementId> next;
    next.reserve(current.size() / 2 + 1);
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      const std::vector<ElementId>& group = groups[gi];
      const GroupOutcome& out = outcomes[gi];
      result.issued_comparisons += out.issued;
      if (options.global_loss_counter) {
        size_t t = 0;
        for (size_t i = 0; i < group.size(); ++i) {
          for (size_t j = i + 1; j < group.size(); ++j, ++t) {
            const ElementId winner = out.pair_winners[t];
            const ElementId loser = winner == group[i] ? group[j] : group[i];
            losses[loser].insert(winner);
          }
        }
      }
      const int64_t keep_threshold =
          static_cast<int64_t>(group.size()) - u_n;
      for (size_t i = 0; i < group.size(); ++i) {
        if (out.wins[i] >= keep_threshold) next.push_back(group[i]);
      }
    }
    next.insert(next.end(), tail.begin(), tail.end());
    RecordFilterRound(naive->num_comparisons() - paid_before_round,
                      result.issued_comparisons - issued_before_round);

    if (options.global_loss_counter) {
      auto cannot_be_max = [&](ElementId e) {
        auto it = losses.find(e);
        return it != losses.end() &&
               static_cast<int64_t>(it->second.size()) > u_n;
      };
      const size_t before = next.size();
      next.erase(std::remove_if(next.begin(), next.end(), cannot_be_max),
                 next.end());
      result.evicted_by_loss_counter +=
          static_cast<int64_t>(before - next.size());
    }

    if (next.empty()) {
      result.hit_empty_round = true;
      break;
    }
    CROWDMAX_CHECK(next.size() < current.size());
    current = std::move(next);
  }

  result.candidates = std::move(current);
  result.paid_comparisons = naive->num_comparisons() - paid_before;
  return result;
}

}  // namespace

Result<FilterResult> FilterCandidates(const std::vector<ElementId>& items,
                                      const FilterOptions& options,
                                      Comparator* naive) {
  CROWDMAX_CHECK(naive != nullptr);
  Status status = ValidateFilterInput(items, options);
  if (!status.ok()) return status;

  // One phase span covers both execution paths, so serial and parallel
  // runs produce identically-shaped traces.
  TraceSpanScope phase_span("filter", TraceWorkerClass::kNaive);

  if (options.threads >= 1) {
    return ParallelFilterCandidates(items, options, naive);
  }

  // Optionally interpose the pair cache (Appendix A, optimization 1).
  MemoizingComparator memo(naive);
  Comparator* cmp = options.memoize ? static_cast<Comparator*>(&memo) : naive;
  const int64_t paid_before =
      options.memoize ? memo.num_comparisons() : naive->num_comparisons();

  const int64_t u_n = options.u_n;
  const int64_t g = options.group_size_multiplier * u_n;

  FilterResult result;
  std::vector<ElementId> current = items;

  // losses[e] = distinct opponents e has lost to, across all rounds
  // (Appendix A, optimization 2). Sets stay small: an element is evicted
  // once its set exceeds u_n.
  std::unordered_map<ElementId, std::unordered_set<ElementId>> losses;

  while (static_cast<int64_t>(current.size()) >= 2 * u_n) {
    // Budget check (worst case: memoization hits could make the round
    // cheaper, but a guaranteed-affordable round is what the cap promises).
    if (options.max_comparisons > 0) {
      const int64_t n_cur = static_cast<int64_t>(current.size());
      const int64_t paid_so_far =
          (options.memoize ? memo.num_comparisons()
                           : naive->num_comparisons()) -
          paid_before;
      if (paid_so_far + RoundCost(n_cur, g, u_n) > options.max_comparisons) {
        result.stopped_by_budget = true;
        break;
      }
    }

    result.round_sizes.push_back(static_cast<int64_t>(current.size()));
    ++result.rounds;
    TraceSpanScope round_span(result.rounds);
    const int64_t paid_before_round =
        options.memoize ? memo.num_comparisons() : naive->num_comparisons();
    const int64_t issued_before_round = result.issued_comparisons;

    std::vector<ElementId> next;
    next.reserve(current.size() / 2 + 1);

    const int64_t n_cur = static_cast<int64_t>(current.size());
    for (int64_t start = 0; start < n_cur; start += g) {
      const int64_t m = std::min(g, n_cur - start);
      // Last (short) group with at most u_n elements advances untouched:
      // a tournament could not eliminate anyone anyway (everyone keeps at
      // least |G| - u_n <= 0 wins).
      if (m <= u_n) {
        for (int64_t i = 0; i < m; ++i) next.push_back(current[start + i]);
        continue;
      }

      // All-play-all inside the group, tracking per-pair outcomes so the
      // cross-round loss counters can be fed.
      std::vector<int64_t> wins(m, 0);
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = i + 1; j < m; ++j) {
          const ElementId a = current[start + i];
          const ElementId b = current[start + j];
          const ElementId winner = cmp->Compare(a, b);
          CROWDMAX_DCHECK(winner == a || winner == b);
          ++result.issued_comparisons;
          ++wins[winner == a ? i : j];
          if (options.global_loss_counter) {
            const ElementId loser = winner == a ? b : a;
            losses[loser].insert(winner);
          }
        }
      }

      // Keep elements with at least |G| - u_n wins (equivalently, fewer
      // than u_n losses inside the group).
      const int64_t keep_threshold = m - u_n;
      for (int64_t i = 0; i < m; ++i) {
        if (wins[i] >= keep_threshold) next.push_back(current[start + i]);
      }
    }

    RecordFilterRound(
        (options.memoize ? memo.num_comparisons() : naive->num_comparisons()) -
            paid_before_round,
        result.issued_comparisons - issued_before_round);

    if (options.global_loss_counter) {
      // Evict elements that have lost to more than u_n distinct opponents
      // in total; by Lemma 1 they cannot be the maximum.
      auto cannot_be_max = [&](ElementId e) {
        auto it = losses.find(e);
        return it != losses.end() &&
               static_cast<int64_t>(it->second.size()) > u_n;
      };
      const size_t before = next.size();
      next.erase(std::remove_if(next.begin(), next.end(), cannot_be_max),
                 next.end());
      result.evicted_by_loss_counter +=
          static_cast<int64_t>(before - next.size());
    }

    // With an underestimated u_n a round can eliminate everyone (no group
    // member reaches |G| - u_n wins). Degrade gracefully: keep the
    // pre-round survivors instead of returning an empty set.
    if (next.empty()) {
      result.hit_empty_round = true;
      break;
    }

    // Lemma 2 guarantees strict shrinkage while |L_i| >= 2*u_n; a violation
    // would mean a broken comparator contract (winner not in {a, b}).
    CROWDMAX_CHECK(next.size() < current.size());
    current = std::move(next);
  }

  result.candidates = std::move(current);
  result.paid_comparisons =
      (options.memoize ? memo.num_comparisons() : naive->num_comparisons()) -
      paid_before;
  return result;
}

int64_t FilterComparisonUpperBound(int64_t n, int64_t u_n) {
  return 4 * n * u_n;
}

}  // namespace crowdmax
