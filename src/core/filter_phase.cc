#include "core/filter_phase.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/round_engine.h"
#include "core/trace.h"

namespace crowdmax {

namespace {

Status ValidateFilterInput(const std::vector<ElementId>& items,
                           const FilterOptions& options) {
  if (options.u_n < 1) {
    return Status::InvalidArgument("u_n must be >= 1");
  }
  if (options.group_size_multiplier < 2) {
    return Status::InvalidArgument("group_size_multiplier must be >= 2");
  }
  if (options.max_comparisons < 0) {
    return Status::InvalidArgument("max_comparisons must be >= 0");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  std::unordered_set<ElementId> seen;
  for (ElementId e : items) {
    if (!seen.insert(e).second) {
      return Status::InvalidArgument("duplicate element id in input");
    }
  }
  return Status::OK();
}

// Algorithm 2 as a round generator. The source holds only algorithm state
// (survivor set, loss counters); every per-round mechanism — group
// dispatch, memoization, the max_comparisons budget gate, trace cells —
// lives in the engine.
class FilterRoundSource : public RoundSource {
 public:
  FilterRoundSource(const std::vector<ElementId>& items,
                    const FilterOptions& options, bool partial_evidence)
      : options_(options),
        partial_evidence_(partial_evidence),
        current_(items) {}

  Result<bool> NextRound(EngineRound* round) override {
    if (done_) return false;
    const int64_t u_n = options_.u_n;
    const int64_t g = options_.group_size_multiplier * u_n;
    const int64_t n_cur = static_cast<int64_t>(current_.size());
    if (n_cur < 2 * u_n) return false;

    // Partition survivors into this round's groups. Only the final group
    // can be short; with at most u_n elements it advances untouched (a
    // tournament could not eliminate anyone anyway, since everyone keeps
    // at least |G| - u_n <= 0 wins).
    groups_.clear();
    tail_.clear();
    for (int64_t start = 0; start < n_cur; start += g) {
      const int64_t m = std::min(g, n_cur - start);
      auto first = current_.begin() + start;
      if (m <= u_n) {
        tail_.assign(first, first + m);
      } else {
        groups_.emplace_back(first, first + m);
      }
    }

    round->units.reserve(groups_.size());
    for (const std::vector<ElementId>& group : groups_) {
      RoundUnit unit;
      unit.pairs.reserve(group.size() * (group.size() - 1) / 2);
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j) {
          unit.pairs.push_back({group[i], group[j]});
        }
      }
      round->units.push_back(std::move(unit));
    }
    round->open_round_comparator = result_.rounds + 1;
    round->open_round_executor = result_.rounds + 1;
    round->close_round_comparator = true;
    round->close_round_executor = true;
    round->record_round_cell = true;
    round->clear_round_cache = !options_.memoize;
    return true;
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    result_.round_sizes.push_back(static_cast<int64_t>(current_.size()));
    ++result_.rounds;
    result_.issued_comparisons += outcome.issued;

    // Barrier work, single-threaded and in group order: tallies, loss
    // counters, survivor selection. An unresolved pair is missing
    // evidence: it eliminates neither element (both tally the win) and
    // the engine re-issues it next round.
    const int64_t u_n = options_.u_n;
    int64_t unresolved_pairs = 0;
    std::vector<ElementId> next;
    next.reserve(current_.size() / 2 + 1);
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      const std::vector<ElementId>& group = groups_[gi];
      const std::vector<ElementId>& winners = outcome.winners[gi];
      std::vector<int64_t> wins(group.size(), 0);
      size_t t = 0;
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j, ++t) {
          const ElementId winner = winners[t];
          if (winner == kUnresolvedWinner) {
            ++unresolved_pairs;
            ++wins[i];
            ++wins[j];
            continue;
          }
          ++wins[winner == group[i] ? i : j];
          if (options_.global_loss_counter) {
            losses_[winner == group[i] ? group[j] : group[i]].insert(winner);
          }
        }
      }
      // Keep elements with at least |G| - u_n wins (equivalently, fewer
      // than u_n losses inside the group).
      const int64_t keep_threshold =
          static_cast<int64_t>(group.size()) - u_n;
      for (size_t i = 0; i < group.size(); ++i) {
        if (wins[i] >= keep_threshold) next.push_back(group[i]);
      }
    }
    next.insert(next.end(), tail_.begin(), tail_.end());

    if (options_.global_loss_counter) {
      // Evict elements that have lost to more than u_n distinct opponents
      // in total; by Lemma 1 they cannot be the maximum.
      auto cannot_be_max = [&](ElementId e) {
        auto it = losses_.find(e);
        return it != losses_.end() &&
               static_cast<int64_t>(it->second.size()) > u_n;
      };
      const size_t before = next.size();
      next.erase(std::remove_if(next.begin(), next.end(), cannot_be_max),
                 next.end());
      result_.evicted_by_loss_counter +=
          static_cast<int64_t>(before - next.size());
    }

    // With an underestimated u_n a round can eliminate everyone (no group
    // member reaches |G| - u_n wins). Degrade gracefully: keep the
    // pre-round survivors instead of returning an empty set.
    if (next.empty()) {
      result_.hit_empty_round = true;
      done_ = true;
      return Status::OK();
    }

    if (next.size() >= current_.size()) {
      if (!partial_evidence_ || (unresolved_pairs == 0 && outcome.fault.ok())) {
        // Lemma 2 guarantees strict shrinkage while |L_i| >= 2*u_n with
        // full evidence; a violation means a broken answer contract.
        if (!partial_evidence_) {
          CROWDMAX_CHECK(next.size() < current_.size());
        }
        return Status::Internal(
            "batched filter made no progress with full evidence; executor "
            "answers are inconsistent");
      }
      // Faults withheld too much evidence to shrink the pool: stop and
      // report the survivors so far. The conservative tally never evicts
      // without a counted loss, so the maximum is still among them.
      partial_ = true;
      fault_status_ =
          outcome.fault.ok()
              ? Status::Unavailable(
                    "filter round made no progress: " +
                    std::to_string(unresolved_pairs) +
                    " comparisons unresolved after executor recovery")
              : outcome.fault;
      done_ = true;
      return Status::OK();
    }
    current_ = std::move(next);
    return Status::OK();
  }

  void OnBudgetStop() override { result_.stopped_by_budget = true; }

  FilterEngineRun Finish(int64_t paid_delta) {
    FilterEngineRun run;
    result_.candidates = std::move(current_);
    result_.paid_comparisons = paid_delta;
    run.filter = std::move(result_);
    run.partial = partial_;
    run.fault_status = fault_status_;
    return run;
  }

 private:
  const FilterOptions options_;
  const bool partial_evidence_;
  std::vector<ElementId> current_;
  std::vector<std::vector<ElementId>> groups_;
  std::vector<ElementId> tail_;
  // losses_[e] = distinct opponents e has lost to, across all rounds
  // (Appendix A, optimization 2). Sets stay small: an element is evicted
  // once its set exceeds u_n.
  std::unordered_map<ElementId, std::unordered_set<ElementId>> losses_;
  FilterResult result_;
  bool partial_ = false;
  Status fault_status_ = Status::OK();
  bool done_ = false;
};

}  // namespace

Result<FilterEngineRun> RunFilterOnEngine(const std::vector<ElementId>& items,
                                          const FilterOptions& options,
                                          RoundEngine* engine) {
  CROWDMAX_CHECK(engine != nullptr);
  if (Status status = ValidateFilterInput(items, options); !status.ok()) {
    return status;
  }

  // One phase span covers every backend, so serial, parallel and batched
  // runs produce identically-shaped traces.
  TraceSpanScope phase_span("filter", TraceWorkerClass::kNaive);

  FilterRoundSource source(items, options, engine->SupportsPartialEvidence());
  DriveOptions drive_options;
  drive_options.max_comparisons = options.max_comparisons;
  const int64_t paid_before = engine->paid();
  Result<DriveResult> drive = engine->Drive(&source, drive_options);
  if (!drive.ok()) return drive.status();
  return source.Finish(engine->paid() - paid_before);
}

Result<FilterResult> FilterCandidates(const std::vector<ElementId>& items,
                                      const FilterOptions& options,
                                      Comparator* naive) {
  CROWDMAX_CHECK(naive != nullptr);
  if (Status status = ValidateFilterInput(items, options); !status.ok()) {
    return status;
  }

  std::unique_ptr<RoundEngine> engine;
  if (options.threads >= 1) {
    Result<std::unique_ptr<RoundEngine>> parallel = RoundEngine::CreateParallel(
        naive, options.threads, options.parallel_seed, options.memoize);
    if (!parallel.ok()) return parallel.status();
    engine = std::move(*parallel);
  } else {
    engine = RoundEngine::CreateSerial(naive, options.memoize);
  }

  Result<FilterEngineRun> run = RunFilterOnEngine(items, options, engine.get());
  if (!run.ok()) return run.status();
  // Comparator backends never leave a round without evidence.
  CROWDMAX_CHECK(!run->partial);
  return std::move(run->filter);
}

int64_t FilterComparisonUpperBound(int64_t n, int64_t u_n) {
  return 4 * n * u_n;
}

}  // namespace crowdmax
