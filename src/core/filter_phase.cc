#include "core/filter_phase.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/checkpoint.h"
#include "core/round_engine.h"
#include "core/trace.h"

namespace crowdmax {

namespace {

constexpr uint32_t kFilterTag = CheckpointTag("FLT ");

Status ValidateFilterInput(const std::vector<ElementId>& items,
                           const FilterOptions& options) {
  if (options.u_n < 1) {
    return Status::InvalidArgument("u_n must be >= 1");
  }
  if (options.group_size_multiplier < 2) {
    return Status::InvalidArgument("group_size_multiplier must be >= 2");
  }
  if (options.max_comparisons < 0) {
    return Status::InvalidArgument("max_comparisons must be >= 0");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  std::unordered_set<ElementId> seen;
  for (ElementId e : items) {
    if (!seen.insert(e).second) {
      return Status::InvalidArgument("duplicate element id in input");
    }
  }
  return Status::OK();
}

// Algorithm 2 as a round generator. The source holds only algorithm state
// (survivor set, loss counters); every per-round mechanism — group
// dispatch, memoization, the max_comparisons budget gate, trace cells —
// lives in the engine.
class FilterRoundSource : public RoundSource {
 public:
  FilterRoundSource(const std::vector<ElementId>& items,
                    const FilterOptions& options, bool partial_evidence)
      : options_(options),
        partial_evidence_(partial_evidence),
        group_rounds_(options.pipeline_groups),
        current_(items) {}

  Result<bool> NextRound(EngineRound* round) override {
    if (done_) return false;
    if (!group_rounds_) {
      if (!Partition()) return false;
      round->units.reserve(groups_.size());
      for (const std::vector<ElementId>& group : groups_) {
        round->units.push_back(MakeGroupUnit(group));
      }
      round->open_round_comparator = result_.rounds + 1;
      round->open_round_executor = result_.rounds + 1;
      round->close_round_comparator = true;
      round->close_round_executor = true;
      round->record_round_cell = true;
      round->clear_round_cache = !options_.memoize;
      return true;
    }

    // Group-granular emission: one engine round per group. The logical
    // round's trace span opens with the first group and closes with the
    // last group's consume, so the span shape matches the combined
    // emission. A freshly-partitioned logical round never overlaps the
    // previous one (CanPipelineNextRound went false at its last group, so
    // the engine drained the pipeline before calling here again).
    if (next_emit_ >= groups_.size()) {
      if (!Partition()) return false;
    }
    round->units.push_back(MakeGroupUnit(groups_[next_emit_]));
    if (next_emit_ == 0) {
      round->open_round_comparator = result_.rounds + 1;
      round->open_round_executor = result_.rounds + 1;
      round->clear_round_cache = !options_.memoize;
    }
    if (next_emit_ + 1 == groups_.size()) {
      round->close_round_comparator = true;
      round->close_round_executor = true;
    }
    round->record_round_cell = true;
    ++next_emit_;
    return true;
  }

  bool CanPipelineNextRound() const override {
    // The remaining groups of a partitioned logical round are
    // latency-independent: their pair sets are disjoint (groups share no
    // element) and their content was fixed at partition time. The first
    // group of the *next* logical round depends on this round's survivor
    // selection, so emission stops pipelining at the round boundary.
    return group_rounds_ && !done_ && next_emit_ > 0 &&
           next_emit_ < groups_.size();
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    const bool first = group_rounds_ ? next_consume_ == 0 : true;
    if (first) {
      result_.round_sizes.push_back(static_cast<int64_t>(current_.size()));
      ++result_.rounds;
      round_next_.clear();
      round_next_.reserve(current_.size() / 2 + 1);
      round_unresolved_ = 0;
      round_fault_ = Status::OK();
    }
    result_.issued_comparisons += outcome.issued;
    if (round_fault_.ok() && !outcome.fault.ok()) round_fault_ = outcome.fault;

    // Barrier work, single-threaded and in group order: tallies, loss
    // counters, survivor selection (once every group of the logical round
    // is in). No trace operations happen here — the pipelining legality
    // rule (c) that keeps interleaved consumes trace-silent.
    if (!group_rounds_) {
      for (size_t gi = 0; gi < groups_.size(); ++gi) {
        TallyGroup(groups_[gi], outcome.winners[gi]);
      }
      return FinishLogicalRound();
    }
    TallyGroup(groups_[next_consume_], outcome.winners[0]);
    ++next_consume_;
    if (next_consume_ == groups_.size()) return FinishLogicalRound();
    return Status::OK();
  }

  void OnBudgetStop() override { result_.stopped_by_budget = true; }

  // Full algorithm state, including the mid-logical-round cursors of
  // group-granular emission — a boundary between two groups of the same
  // logical round is a legal snapshot point (emission == consumption there,
  // since the engine only checkpoints with nothing in flight).
  Status SaveState(CheckpointWriter* writer) const override {
    writer->WriteTag(kFilterTag);
    writer->WriteIdVector(current_);
    writer->WriteU64(static_cast<uint64_t>(groups_.size()));
    for (const std::vector<ElementId>& group : groups_) {
      writer->WriteIdVector(group);
    }
    writer->WriteIdVector(tail_);
    writer->WriteU64(static_cast<uint64_t>(next_emit_));
    writer->WriteU64(static_cast<uint64_t>(next_consume_));
    writer->WriteIdVector(round_next_);
    writer->WriteI64(round_unresolved_);
    writer->WriteStatus(round_fault_);
    std::vector<ElementId> loss_keys;
    loss_keys.reserve(losses_.size());
    for (const auto& entry : losses_) loss_keys.push_back(entry.first);
    std::sort(loss_keys.begin(), loss_keys.end());
    writer->WriteU64(static_cast<uint64_t>(loss_keys.size()));
    for (ElementId key : loss_keys) {
      writer->WriteI64(key);
      writer->WriteSortedSet(losses_.at(key));
    }
    writer->WriteIdVector(result_.candidates);
    writer->WriteI64(result_.paid_comparisons);
    writer->WriteI64(result_.issued_comparisons);
    writer->WriteI64(result_.rounds);
    writer->WriteIdVector(result_.round_sizes);
    writer->WriteI64(result_.evicted_by_loss_counter);
    writer->WriteBool(result_.hit_empty_round);
    writer->WriteBool(result_.stopped_by_budget);
    writer->WriteBool(partial_);
    writer->WriteStatus(fault_status_);
    writer->WriteBool(done_);
    return Status::OK();
  }

  Status LoadState(CheckpointReader* reader) override {
    reader->ExpectTag(kFilterTag);
    reader->ReadIdVector(&current_);
    const uint64_t n_groups = reader->ReadU64();
    groups_.clear();
    for (uint64_t i = 0; i < n_groups && reader->status().ok(); ++i) {
      std::vector<ElementId> group;
      reader->ReadIdVector(&group);
      groups_.push_back(std::move(group));
    }
    reader->ReadIdVector(&tail_);
    next_emit_ = static_cast<size_t>(reader->ReadU64());
    next_consume_ = static_cast<size_t>(reader->ReadU64());
    reader->ReadIdVector(&round_next_);
    round_unresolved_ = reader->ReadI64();
    round_fault_ = reader->ReadStatus();
    const uint64_t n_losses = reader->ReadU64();
    losses_.clear();
    for (uint64_t i = 0; i < n_losses && reader->status().ok(); ++i) {
      const ElementId key = reader->ReadI64();
      reader->ReadSortedSet(&losses_[key]);
    }
    reader->ReadIdVector(&result_.candidates);
    result_.paid_comparisons = reader->ReadI64();
    result_.issued_comparisons = reader->ReadI64();
    result_.rounds = reader->ReadI64();
    reader->ReadIdVector(&result_.round_sizes);
    result_.evicted_by_loss_counter = reader->ReadI64();
    result_.hit_empty_round = reader->ReadBool();
    result_.stopped_by_budget = reader->ReadBool();
    partial_ = reader->ReadBool();
    fault_status_ = reader->ReadStatus();
    done_ = reader->ReadBool();
    return reader->status();
  }

  FilterEngineRun Finish(int64_t paid_delta) {
    FilterEngineRun run;
    result_.candidates = std::move(current_);
    result_.paid_comparisons = paid_delta;
    run.filter = std::move(result_);
    run.partial = partial_;
    run.fault_status = fault_status_;
    return run;
  }

 private:
  /// Partitions the survivors into this logical round's groups (only the
  /// final group can be short; with at most u_n elements it advances
  /// untouched, since a tournament could not eliminate anyone anyway —
  /// everyone keeps at least |G| - u_n <= 0 wins). Returns false when
  /// fewer than 2*u_n survivors remain (the loop exit).
  bool Partition() {
    const int64_t u_n = options_.u_n;
    const int64_t g = options_.group_size_multiplier * u_n;
    const int64_t n_cur = static_cast<int64_t>(current_.size());
    if (n_cur < 2 * u_n) return false;
    groups_.clear();
    tail_.clear();
    for (int64_t start = 0; start < n_cur; start += g) {
      const int64_t m = std::min(g, n_cur - start);
      auto first = current_.begin() + start;
      if (m <= u_n) {
        tail_.assign(first, first + m);
      } else {
        groups_.emplace_back(first, first + m);
      }
    }
    next_emit_ = 0;
    next_consume_ = 0;
    return true;
  }

  static RoundUnit MakeGroupUnit(const std::vector<ElementId>& group) {
    RoundUnit unit;
    unit.pairs.reserve(group.size() * (group.size() - 1) / 2);
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        unit.pairs.push_back({group[i], group[j]});
      }
    }
    return unit;
  }

  /// Tallies one group's winners and appends its survivors to the round's
  /// pending set. An unresolved pair is missing evidence: it eliminates
  /// neither element (both tally the win) and the engine re-issues it
  /// next round.
  void TallyGroup(const std::vector<ElementId>& group,
                  const std::vector<ElementId>& winners) {
    const int64_t u_n = options_.u_n;
    std::vector<int64_t> wins(group.size(), 0);
    size_t t = 0;
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j, ++t) {
        const ElementId winner = winners[t];
        if (winner == kUnresolvedWinner) {
          ++round_unresolved_;
          ++wins[i];
          ++wins[j];
          continue;
        }
        ++wins[winner == group[i] ? i : j];
        if (options_.global_loss_counter) {
          losses_[winner == group[i] ? group[j] : group[i]].insert(winner);
        }
      }
    }
    // Keep elements with at least |G| - u_n wins (equivalently, fewer
    // than u_n losses inside the group).
    const int64_t keep_threshold = static_cast<int64_t>(group.size()) - u_n;
    for (size_t i = 0; i < group.size(); ++i) {
      if (wins[i] >= keep_threshold) round_next_.push_back(group[i]);
    }
  }

  /// Survivor selection at the logical-round barrier, identical for both
  /// emission granularities.
  Status FinishLogicalRound() {
    const int64_t u_n = options_.u_n;
    round_next_.insert(round_next_.end(), tail_.begin(), tail_.end());

    if (options_.global_loss_counter) {
      // Evict elements that have lost to more than u_n distinct opponents
      // in total; by Lemma 1 they cannot be the maximum.
      auto cannot_be_max = [&](ElementId e) {
        auto it = losses_.find(e);
        return it != losses_.end() &&
               static_cast<int64_t>(it->second.size()) > u_n;
      };
      const size_t before = round_next_.size();
      round_next_.erase(std::remove_if(round_next_.begin(), round_next_.end(),
                                       cannot_be_max),
                        round_next_.end());
      result_.evicted_by_loss_counter +=
          static_cast<int64_t>(before - round_next_.size());
    }

    // With an underestimated u_n a round can eliminate everyone (no group
    // member reaches |G| - u_n wins). Degrade gracefully: keep the
    // pre-round survivors instead of returning an empty set.
    if (round_next_.empty()) {
      result_.hit_empty_round = true;
      done_ = true;
      return Status::OK();
    }

    if (round_next_.size() >= current_.size()) {
      if (!partial_evidence_ ||
          (round_unresolved_ == 0 && round_fault_.ok())) {
        // Lemma 2 guarantees strict shrinkage while |L_i| >= 2*u_n with
        // full evidence; a violation means a broken answer contract.
        if (!partial_evidence_) {
          CROWDMAX_CHECK(round_next_.size() < current_.size());
        }
        return Status::Internal(
            "batched filter made no progress with full evidence; executor "
            "answers are inconsistent");
      }
      // Faults withheld too much evidence to shrink the pool: stop and
      // report the survivors so far. The conservative tally never evicts
      // without a counted loss, so the maximum is still among them.
      partial_ = true;
      fault_status_ =
          round_fault_.ok()
              ? Status::Unavailable(
                    "filter round made no progress: " +
                    std::to_string(round_unresolved_) +
                    " comparisons unresolved after executor recovery")
              : round_fault_;
      done_ = true;
      return Status::OK();
    }
    current_ = std::move(round_next_);
    round_next_.clear();
    return Status::OK();
  }

  const FilterOptions options_;
  const bool partial_evidence_;
  const bool group_rounds_;
  std::vector<ElementId> current_;
  std::vector<std::vector<ElementId>> groups_;
  std::vector<ElementId> tail_;
  // Group-granular emission cursors into groups_ (emission may run ahead
  // of consumption while groups are in flight on a pipelined engine).
  size_t next_emit_ = 0;
  size_t next_consume_ = 0;
  // Logical-round accumulators, reset at each round's first consume.
  std::vector<ElementId> round_next_;
  int64_t round_unresolved_ = 0;
  Status round_fault_ = Status::OK();
  // losses_[e] = distinct opponents e has lost to, across all rounds
  // (Appendix A, optimization 2). Sets stay small: an element is evicted
  // once its set exceeds u_n.
  std::unordered_map<ElementId, std::unordered_set<ElementId>> losses_;
  FilterResult result_;
  bool partial_ = false;
  Status fault_status_ = Status::OK();
  bool done_ = false;
};

}  // namespace

Result<FilterEngineRun> RunFilterOnEngine(const std::vector<ElementId>& items,
                                          const FilterOptions& options,
                                          RoundEngine* engine) {
  CROWDMAX_CHECK(engine != nullptr);
  if (Status status = ValidateFilterInput(items, options); !status.ok()) {
    return status;
  }

  // One phase span covers every backend, so serial, parallel and batched
  // runs produce identically-shaped traces.
  TraceSpanScope phase_span("filter", TraceWorkerClass::kNaive);

  FilterRoundSource source(items, options, engine->SupportsPartialEvidence());
  DriveOptions drive_options;
  drive_options.max_comparisons = options.max_comparisons;
  const int64_t paid_before = engine->paid();
  Result<DriveResult> drive = engine->Drive(&source, drive_options);
  if (!drive.ok()) return drive.status();
  return source.Finish(engine->paid() - paid_before);
}

Result<FilterResult> FilterCandidates(const std::vector<ElementId>& items,
                                      const FilterOptions& options,
                                      Comparator* naive) {
  CROWDMAX_CHECK(naive != nullptr);
  if (Status status = ValidateFilterInput(items, options); !status.ok()) {
    return status;
  }

  std::unique_ptr<RoundEngine> engine;
  if (options.threads >= 1) {
    Result<std::unique_ptr<RoundEngine>> parallel = RoundEngine::CreateParallel(
        naive, options.threads, options.parallel_seed, options.memoize,
        options.shared_cache, options.cache_class);
    if (!parallel.ok()) return parallel.status();
    engine = std::move(*parallel);
  } else {
    engine = RoundEngine::CreateSerial(naive, options.memoize,
                                       options.shared_cache,
                                       options.cache_class);
  }

  Result<FilterEngineRun> run = RunFilterOnEngine(items, options, engine.get());
  if (!run.ok()) return run.status();
  // Comparator backends never leave a round without evidence.
  CROWDMAX_CHECK(!run->partial);
  return std::move(run->filter);
}

int64_t FilterComparisonUpperBound(int64_t n, int64_t u_n) {
  return 4 * n * u_n;
}

}  // namespace crowdmax
