#include "core/trace.h"

#include <ostream>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace crowdmax {

namespace {

// The current trace of *this thread*. Each run's coordinating thread
// installs its own trace with ScopedTrace and performs every trace
// mutation itself (worker threads never touch the trace), so the pointer
// is thread-local: single-threaded programs behave exactly as with the
// old process-wide pointer, while a multi-tenant service (query/service.h)
// can drive one traced query per pool thread with no cross-talk.
thread_local AlgoTrace* g_current_trace = nullptr;

}  // namespace

const char* TraceWorkerClassName(TraceWorkerClass worker_class) {
  switch (worker_class) {
    case TraceWorkerClass::kNaive:
      return "naive";
    case TraceWorkerClass::kExpert:
      return "expert";
  }
  return "unknown";
}

const char* TraceSpanKindName(TraceSpanKind kind) {
  switch (kind) {
    case TraceSpanKind::kRun:
      return "run";
    case TraceSpanKind::kPhase:
      return "phase";
    case TraceSpanKind::kRound:
      return "round";
    case TraceSpanKind::kBatch:
      return "batch";
    case TraceSpanKind::kAttempt:
      return "attempt";
  }
  return "unknown";
}

bool TraceCellKey::operator<(const TraceCellKey& other) const {
  return std::tie(phase, round, worker_class) <
         std::tie(other.phase, other.round, other.worker_class);
}

bool TraceCellKey::operator==(const TraceCellKey& other) const {
  return phase == other.phase && round == other.round &&
         worker_class == other.worker_class;
}

TraceCellCounts& TraceCellCounts::operator+=(const TraceCellCounts& other) {
  dispatched += other.dispatched;
  answered += other.answered;
  no_quorum += other.no_quorum;
  dropped += other.dropped;
  cache_hits += other.cache_hits;
  degraded += other.degraded;
  retries += other.retries;
  return *this;
}

int64_t AlgoTrace::BeginSpan(TraceSpanKind kind, std::string label) {
  TraceSpan span;
  span.id = static_cast<int64_t>(spans_.size());
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.kind = kind;
  span.label = std::move(label);
  span.begin_seq = next_seq_++;
  spans_.push_back(std::move(span));
  open_stack_.push_back(spans_.back().id);
  current_cell_ = nullptr;
  return spans_.back().id;
}

int64_t AlgoTrace::BeginPhase(std::string label,
                              TraceWorkerClass worker_class) {
  const int64_t id = BeginSpan(TraceSpanKind::kPhase, std::move(label));
  spans_[static_cast<size_t>(id)].worker_class = worker_class;
  return id;
}

int64_t AlgoTrace::BeginRound(int64_t round) {
  const int64_t id =
      BeginSpan(TraceSpanKind::kRound, std::to_string(round));
  spans_[static_cast<size_t>(id)].round = round;
  return id;
}

void AlgoTrace::EndSpan(int64_t id) {
  CROWDMAX_CHECK(!open_stack_.empty() && open_stack_.back() == id);
  spans_[static_cast<size_t>(id)].end_seq = next_seq_++;
  open_stack_.pop_back();
  current_cell_ = nullptr;
}

TraceCellCounts* AlgoTrace::CurrentCell() {
  if (current_cell_ != nullptr) return current_cell_;
  TraceCellKey key;
  // Innermost open phase sets (phase label, class); innermost open round
  // sets the round number.
  for (auto it = open_stack_.rbegin(); it != open_stack_.rend(); ++it) {
    const TraceSpan& span = spans_[static_cast<size_t>(*it)];
    if (span.kind == TraceSpanKind::kRound && key.round < 0) {
      key.round = span.round;
    }
    if (span.kind == TraceSpanKind::kPhase) {
      key.phase = span.label;
      key.worker_class = span.worker_class;
      break;
    }
  }
  current_cell_ = &cells_[key];
  return current_cell_;
}

void AlgoTrace::RecordDispatched(int64_t n) { CurrentCell()->dispatched += n; }

void AlgoTrace::RecordOutcomes(int64_t answered, int64_t no_quorum,
                               int64_t dropped) {
  TraceCellCounts* cell = CurrentCell();
  cell->answered += answered;
  cell->no_quorum += no_quorum;
  cell->dropped += dropped;
}

void AlgoTrace::RecordCacheHits(int64_t n) { CurrentCell()->cache_hits += n; }

void AlgoTrace::RecordDegraded(int64_t n) { CurrentCell()->degraded += n; }

void AlgoTrace::RecordRetries(int64_t n) { CurrentCell()->retries += n; }

TraceCellCounts AlgoTrace::TotalsFor(TraceWorkerClass worker_class) const {
  TraceCellCounts totals;
  for (const auto& [key, counts] : cells_) {
    if (key.worker_class == worker_class) totals += counts;
  }
  return totals;
}

TraceCellCounts AlgoTrace::Totals() const {
  TraceCellCounts totals;
  for (const auto& [key, counts] : cells_) totals += counts;
  return totals;
}

std::string AlgoTrace::Summary() const {
  std::ostringstream out;
  for (const TraceSpan& span : spans_) {
    out << "span " << span.id << " parent=" << span.parent << ' '
        << TraceSpanKindName(span.kind) << '(' << span.label << ')'
        << " seq=[" << span.begin_seq << ',' << span.end_seq << "]\n";
  }
  for (const auto& [key, counts] : cells_) {
    out << "cell phase=" << (key.phase.empty() ? "-" : key.phase)
        << " round=" << key.round << " class="
        << TraceWorkerClassName(key.worker_class)
        << " dispatched=" << counts.dispatched
        << " answered=" << counts.answered
        << " no_quorum=" << counts.no_quorum
        << " dropped=" << counts.dropped
        << " cache_hits=" << counts.cache_hits
        << " degraded=" << counts.degraded << " retries=" << counts.retries
        << '\n';
  }
  return out.str();
}

void AlgoTrace::WriteJson(std::ostream& out) const {
  out << "{\"spans\": [";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    out << (i ? ", " : "") << "{\"id\": " << span.id
        << ", \"parent\": " << span.parent << ", \"kind\": \""
        << TraceSpanKindName(span.kind) << "\", \"label\": \"" << span.label
        << "\", \"begin\": " << span.begin_seq
        << ", \"end\": " << span.end_seq << '}';
  }
  out << "], \"cells\": [";
  bool first = true;
  for (const auto& [key, counts] : cells_) {
    out << (first ? "" : ", ") << "{\"phase\": \"" << key.phase
        << "\", \"round\": " << key.round << ", \"class\": \""
        << TraceWorkerClassName(key.worker_class)
        << "\", \"dispatched\": " << counts.dispatched
        << ", \"answered\": " << counts.answered
        << ", \"no_quorum\": " << counts.no_quorum
        << ", \"dropped\": " << counts.dropped
        << ", \"cache_hits\": " << counts.cache_hits
        << ", \"degraded\": " << counts.degraded
        << ", \"retries\": " << counts.retries << '}';
    first = false;
  }
  out << "]}";
}

void AlgoTrace::Clear() {
  CROWDMAX_CHECK(open_stack_.empty());
  spans_.clear();
  cells_.clear();
  current_cell_ = nullptr;
  next_seq_ = 0;
}

AlgoTrace* CurrentTrace() { return g_current_trace; }

ScopedTrace::ScopedTrace(AlgoTrace* trace) : previous_(g_current_trace) {
  g_current_trace = trace;
}

ScopedTrace::~ScopedTrace() { g_current_trace = previous_; }

TraceSpanScope::TraceSpanScope(TraceSpanKind kind, std::string label)
    : trace_(CurrentTrace()) {
  if (trace_ != nullptr) id_ = trace_->BeginSpan(kind, std::move(label));
}

TraceSpanScope::TraceSpanScope(std::string phase_label,
                               TraceWorkerClass worker_class)
    : trace_(CurrentTrace()) {
  if (trace_ != nullptr) {
    id_ = trace_->BeginPhase(std::move(phase_label), worker_class);
  }
}

TraceSpanScope::TraceSpanScope(int64_t round) : trace_(CurrentTrace()) {
  if (trace_ != nullptr) id_ = trace_->BeginRound(round);
}

TraceSpanScope::~TraceSpanScope() {
  if (trace_ != nullptr && id_ >= 0) trace_->EndSpan(id_);
}

MetricsAuditor::MetricsAuditor(const AlgoTrace* trace) : trace_(trace) {
  CROWDMAX_CHECK(trace != nullptr);
}

void MetricsAuditor::Expect(std::string what, int64_t expected,
                            int64_t actual) {
  expectations_.push_back({std::move(what), expected, actual});
}

void MetricsAuditor::ExpectDispatched(TraceWorkerClass worker_class,
                                      int64_t comparisons) {
  Expect(std::string("dispatched[") + TraceWorkerClassName(worker_class) +
             "] vs tally",
         comparisons, trace_->TotalsFor(worker_class).dispatched);
}

void MetricsAuditor::ExpectDispatchedTotal(int64_t comparisons) {
  Expect("dispatched[total] vs tally", comparisons,
         trace_->Totals().dispatched);
}

void MetricsAuditor::ExpectDispatchedWithCancelled(
    TraceWorkerClass worker_class, int64_t comparisons, int64_t cancelled) {
  Expect(std::string("dispatched[") + TraceWorkerClassName(worker_class) +
             "]+cancelled vs tally",
         comparisons, trace_->TotalsFor(worker_class).dispatched + cancelled);
}

void MetricsAuditor::ExpectPaidStats(const ComparisonStats& paid) {
  Expect("paid.naive vs dispatched[naive]", paid.naive,
         trace_->TotalsFor(TraceWorkerClass::kNaive).dispatched);
  Expect("paid.expert vs dispatched[expert]", paid.expert,
         trace_->TotalsFor(TraceWorkerClass::kExpert).dispatched);
}

void MetricsAuditor::ExpectTaskFaults(int64_t dropped, int64_t no_quorum) {
  const TraceCellCounts totals = trace_->Totals();
  Expect("fault tally dropped vs trace", dropped, totals.dropped);
  Expect("fault tally no_quorum vs trace", no_quorum, totals.no_quorum);
}

void MetricsAuditor::ExpectCacheHits(TraceWorkerClass worker_class,
                                     int64_t hits) {
  Expect(std::string("cache_hits[") + TraceWorkerClassName(worker_class) +
             "] vs tally",
         hits, trace_->TotalsFor(worker_class).cache_hits);
}

Status MetricsAuditor::Check() const {
  std::string mismatches;
  for (const auto& [key, counts] : trace_->cells()) {
    const int64_t outcomes =
        counts.answered + counts.no_quorum + counts.dropped;
    if (counts.dispatched != outcomes) {
      mismatches += "cell(phase=" + key.phase +
                    ", round=" + std::to_string(key.round) + ", class=" +
                    TraceWorkerClassName(key.worker_class) +
                    "): dispatched=" + std::to_string(counts.dispatched) +
                    " != answered+no_quorum+dropped=" +
                    std::to_string(outcomes) + "; ";
    }
  }
  for (const Expectation& expectation : expectations_) {
    if (expectation.expected != expectation.actual) {
      mismatches += expectation.what + ": expected " +
                    std::to_string(expectation.expected) + ", trace has " +
                    std::to_string(expectation.actual) + "; ";
    }
  }
  if (mismatches.empty()) return Status::OK();
  return Status::Internal("metrics audit failed: " + mismatches);
}

}  // namespace crowdmax
