// Span-style structured trace of the algorithm hierarchy, plus the
// accounting auditor that reconciles it against the library's tallies.
//
// The paper's cost claim C(n) = x_e*c_e + x_n*c_n (Section 3.4) is only as
// good as the comparison counts behind it, and after the parallel engine
// (sharded counters) and the fault/recovery stack (retries, quorum,
// injected losses) those counts flow through four independent tallies:
// ComparisonStats, the platform vote/step counters, PlatformFaultStats and
// the per-executor ResetCounters snapshots. AlgoTrace is the single source
// of truth they reconcile against: a deterministic record of the run
//
//   run → phase (filter/expert) → round → group/batch → retry-attempt
//
// in which every comparison instance lands in exactly one
// (phase, round, worker-class, disposition) cell.
//
// Determinism contract (mirrors the PR 1 seeding discipline): all trace
// mutation happens on the coordinating thread — algorithms open spans and
// record round deltas at round barriers, batch executors record cells in
// their public wrappers (which run on the submitting thread), and worker
// threads never touch the trace. Traces of the same seeded run therefore
// replay bit-identically across thread counts.
//
// Exactly-once cell attribution: the innermost executor that actually buys
// crowd work records the dispatched/outcome cells (BatchExecutor wrappers,
// see BatchExecutor::RecordsTraceCells); decorators record only what they
// terminate themselves (injected drops, fallback degradations); algorithms
// record cache hits and, on the serial comparator path, per-round counter
// deltas. Tracing is off unless a trace is installed with ScopedTrace, and
// instrumentation sites check one pointer — legacy runs are untouched.

#ifndef CROWDMAX_CORE_TRACE_H_
#define CROWDMAX_CORE_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cost.h"

namespace crowdmax {

/// Worker class a trace cell bills to (the paper's two-class model). Named
/// distinctly from baselines::WorkerClass to keep the core layer free of
/// baseline dependencies.
enum class TraceWorkerClass { kNaive, kExpert };

/// Stable name ("naive", "expert") for reports.
const char* TraceWorkerClassName(TraceWorkerClass worker_class);

/// Level of a span in the run hierarchy.
enum class TraceSpanKind { kRun, kPhase, kRound, kBatch, kAttempt };

/// Stable name ("run", "phase", "round", "batch", "attempt").
const char* TraceSpanKindName(TraceSpanKind kind);

/// One span of the hierarchy. Ordering is by deterministic sequence
/// numbers, not wall clock: begin_seq/end_seq are positions in the single
/// coordinating-thread event stream.
struct TraceSpan {
  int64_t id = -1;
  int64_t parent = -1;
  TraceSpanKind kind = TraceSpanKind::kRun;
  std::string label;
  /// Worker class billed while this span is the innermost phase (phase
  /// spans only).
  TraceWorkerClass worker_class = TraceWorkerClass::kNaive;
  /// Round number (round spans only; -1 otherwise).
  int64_t round = -1;
  int64_t begin_seq = -1;
  int64_t end_seq = -1;
};

/// Cell coordinates: the innermost open phase and round when the counts
/// were recorded. Comparisons recorded outside any phase/round land in
/// ("", -1, kNaive).
struct TraceCellKey {
  std::string phase;
  int64_t round = -1;
  TraceWorkerClass worker_class = TraceWorkerClass::kNaive;

  bool operator<(const TraceCellKey& other) const;
  bool operator==(const TraceCellKey& other) const;
};

/// Per-cell comparison accounting. The disposition counts partition
/// `dispatched`: dispatched = answered + no_quorum + dropped. Cache hits,
/// degraded resolutions and retry re-issues are informational — cache hits
/// never reached the crowd, degraded tasks were resolved by a fallback
/// policy without crowd work, and retries double-book instances already
/// present in `dispatched` (they count how many were re-buys).
struct TraceCellCounts {
  /// Comparison instances bought from the crowd (per attempt; a task
  /// retried twice is dispatched twice).
  int64_t dispatched = 0;
  /// Instances that came back authoritatively answered.
  int64_t answered = 0;
  /// Instances that came back with a provisional below-quorum majority.
  int64_t no_quorum = 0;
  /// Instances that came back with no counted answer at all.
  int64_t dropped = 0;
  /// Queries answered from a memo/pair cache (no crowd work).
  int64_t cache_hits = 0;
  /// Tasks resolved by a fallback tie-break (no crowd work).
  int64_t degraded = 0;
  /// Instances within `dispatched` that were retry re-issues.
  int64_t retries = 0;

  TraceCellCounts& operator+=(const TraceCellCounts& other);
};

/// The deterministic structured trace of one run. Not thread-safe: all
/// methods must be called from the coordinating thread (see the file
/// comment for why that suffices).
class AlgoTrace {
 public:
  AlgoTrace() = default;

  /// Opens a span under the innermost open span; returns its id.
  int64_t BeginSpan(TraceSpanKind kind, std::string label);
  /// Opens a phase span; cells recorded inside bill to `worker_class`.
  int64_t BeginPhase(std::string label, TraceWorkerClass worker_class);
  /// Opens a round span with the given round number.
  int64_t BeginRound(int64_t round);
  /// Closes `id`, which must be the innermost open span (strict nesting).
  void EndSpan(int64_t id);

  /// Record into the current cell (innermost phase/round context).
  void RecordDispatched(int64_t n);
  void RecordOutcomes(int64_t answered, int64_t no_quorum, int64_t dropped);
  void RecordCacheHits(int64_t n);
  void RecordDegraded(int64_t n);
  void RecordRetries(int64_t n);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::map<TraceCellKey, TraceCellCounts>& cells() const {
    return cells_;
  }

  /// Sum of all cells billed to `worker_class` / of every cell.
  TraceCellCounts TotalsFor(TraceWorkerClass worker_class) const;
  TraceCellCounts Totals() const;

  /// Deterministic multi-line rendering (spans in id order, cells in key
  /// order); two traces are equal iff their summaries are equal.
  std::string Summary() const;

  /// {"spans": [...], "cells": [...]} with deterministic ordering.
  void WriteJson(std::ostream& out) const;

  /// Drops all spans and cells (for reuse across runs).
  void Clear();

 private:
  TraceCellCounts* CurrentCell();

  std::vector<TraceSpan> spans_;
  std::vector<int64_t> open_stack_;
  std::map<TraceCellKey, TraceCellCounts> cells_;
  // Memoized current-cell context; rebuilt when the span stack changes.
  TraceCellCounts* current_cell_ = nullptr;
  int64_t next_seq_ = 0;
};

/// The installed trace of the calling thread, or nullptr when tracing is
/// off (the default). The pointer is thread-local: a run's coordinating
/// thread sees the trace it installed, and worker threads (which never
/// mutate traces by contract) see their own — normally null — slot, so
/// concurrent runs on different threads trace independently.
AlgoTrace* CurrentTrace();

/// RAII installation of a trace as the calling thread's current trace.
/// Install/uninstall from the run's coordinating thread only; nesting
/// restores the previous trace on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(AlgoTrace* trace);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  AlgoTrace* previous_;
};

/// RAII span: begins on construction, ends on destruction. No-op when no
/// trace is installed.
class TraceSpanScope {
 public:
  TraceSpanScope(TraceSpanKind kind, std::string label);
  /// Phase span overload.
  TraceSpanScope(std::string phase_label, TraceWorkerClass worker_class);
  /// Round span overload.
  explicit TraceSpanScope(int64_t round);
  ~TraceSpanScope();
  TraceSpanScope(const TraceSpanScope&) = delete;
  TraceSpanScope& operator=(const TraceSpanScope&) = delete;

 private:
  AlgoTrace* trace_;
  int64_t id_ = -1;
};

/// End-of-run reconciliation of the trace against the independent tallies.
/// Always checks the internal identity
///
///   dispatched = answered + no_quorum + dropped   (per cell)
///
/// — the single-source-of-truth accounting invariant (DESIGN.md §9):
/// answered + dropped + no-quorum = dispatched — plus every expectation
/// added before Check(). Expectations
/// compare a caller-supplied tally (executor counters, ComparisonStats,
/// platform counters, PlatformFaultStats fields) against the trace-derived
/// number; Check() returns OK when everything matches, or an Internal
/// status listing every mismatch.
class MetricsAuditor {
 public:
  explicit MetricsAuditor(const AlgoTrace* trace);

  /// Executor/comparator comparisons billed to `worker_class` must equal
  /// that class's trace-dispatched total.
  void ExpectDispatched(TraceWorkerClass worker_class, int64_t comparisons);
  /// As above, summed over classes (e.g. the platform transcript's task
  /// count, or a shared platform's vote-batch total).
  void ExpectDispatchedTotal(int64_t comparisons);
  /// Executor comparisons billed to `worker_class` where `cancelled` of
  /// them were speculative rounds cancelled before dispatch (DESIGN.md
  /// §15): cancelled work never lands in a trace cell, so the executor's
  /// counter must equal trace-dispatched plus the cancelled tally.
  void ExpectDispatchedWithCancelled(TraceWorkerClass worker_class,
                                     int64_t comparisons, int64_t cancelled);
  /// A result's paid ComparisonStats must match per-class dispatch.
  void ExpectPaidStats(const ComparisonStats& paid);
  /// Fault tallies (e.g. PlatformFaultStats::dropped_tasks /
  /// no_quorum_tasks, or injector counters) must match the trace's
  /// dropped / no-quorum outcome totals.
  void ExpectTaskFaults(int64_t dropped, int64_t no_quorum);
  /// Cache-hit totals (issued - paid) must match the trace.
  void ExpectCacheHits(TraceWorkerClass worker_class, int64_t hits);

  /// Runs all checks; OK or Internal with one line per mismatch.
  Status Check() const;

 private:
  void Expect(std::string what, int64_t expected, int64_t actual);

  struct Expectation {
    std::string what;
    int64_t expected = 0;
    int64_t actual = 0;
  };

  const AlgoTrace* trace_;
  std::vector<Expectation> expectations_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_CORE_TRACE_H_
