#include "core/tournament.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/checkpoint.h"
#include "core/round_engine.h"

namespace crowdmax {

namespace {

constexpr uint32_t kTournamentTag = CheckpointTag("TRNY");

// A tournament is the degenerate round generator: one round, one unit, all
// unordered pairs. Comparisons are attributed to a cell by the caller (the
// phase/round that ran the tournament), never here, so an all-play-all
// inside a recorded round is not double counted.
class TournamentRoundSource : public RoundSource {
 public:
  TournamentRoundSource(const std::vector<ElementId>& elements,
                        const char* span_label)
      : elements_(elements), span_label_(span_label) {}

  Result<bool> NextRound(EngineRound* round) override {
    if (done_) return false;
    done_ = true;
    const size_t k = elements_.size();
    RoundUnit unit;
    unit.serial_span = span_label_;
    unit.serial_span_size = static_cast<int64_t>(k);
    unit.pairs.reserve(k * (k > 0 ? k - 1 : 0) / 2);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        unit.pairs.push_back({elements_[i], elements_[j]});
      }
    }
    round->executor_span = span_label_;
    round->units.push_back(std::move(unit));
    return true;
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    run_.tournament.wins.assign(elements_.size(), 0);
    run_.tournament.comparisons = outcome.issued;
    const std::vector<ElementId>& winners = outcome.winners[0];
    size_t t = 0;
    for (size_t i = 0; i < elements_.size(); ++i) {
      for (size_t j = i + 1; j < elements_.size(); ++j, ++t) {
        const ElementId winner = winners[t];
        if (winner == kUnresolvedWinner) {
          ++run_.unresolved;
          continue;
        }
        ++run_.tournament.wins[winner == elements_[i] ? i : j];
      }
    }
    run_.fault = outcome.fault;
    return Status::OK();
  }

  TournamentEngineRun Finish() { return std::move(run_); }

  // Single-round source: the only interior boundary is "tournament already
  // consumed", so the state is the tally plus the done flag.
  Status SaveState(CheckpointWriter* writer) const override {
    writer->WriteTag(kTournamentTag);
    writer->WriteIdVector(run_.tournament.wins);
    writer->WriteI64(run_.tournament.comparisons);
    writer->WriteI64(run_.unresolved);
    writer->WriteStatus(run_.fault);
    writer->WriteBool(done_);
    return Status::OK();
  }

  Status LoadState(CheckpointReader* reader) override {
    reader->ExpectTag(kTournamentTag);
    reader->ReadIdVector(&run_.tournament.wins);
    run_.tournament.comparisons = reader->ReadI64();
    run_.unresolved = reader->ReadI64();
    run_.fault = reader->ReadStatus();
    done_ = reader->ReadBool();
    return reader->status();
  }

 private:
  const std::vector<ElementId>& elements_;
  const char* const span_label_;
  TournamentEngineRun run_;
  bool done_ = false;
};

}  // namespace

Result<TournamentEngineRun> RunTournamentOnEngine(
    const std::vector<ElementId>& elements, RoundEngine* engine,
    const char* span_label) {
  CROWDMAX_CHECK(engine != nullptr);
  TournamentRoundSource source(elements, span_label);
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  return source.Finish();
}

TournamentResult AllPlayAll(const std::vector<ElementId>& elements,
                            Comparator* comparator) {
  CROWDMAX_CHECK(comparator != nullptr);
  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(comparator, /*memoize=*/false);
  Result<TournamentEngineRun> run = RunTournamentOnEngine(elements, engine.get());
  CROWDMAX_CHECK(run.ok());
  return std::move(run->tournament);
}

size_t IndexOfMostWins(const TournamentResult& result) {
  CROWDMAX_CHECK(!result.wins.empty());
  size_t best = 0;
  for (size_t i = 1; i < result.wins.size(); ++i) {
    if (result.wins[i] > result.wins[best]) best = i;
  }
  return best;
}

size_t IndexOfFewestWins(const TournamentResult& result) {
  CROWDMAX_CHECK(!result.wins.empty());
  size_t worst = 0;
  for (size_t i = 1; i < result.wins.size(); ++i) {
    if (result.wins[i] < result.wins[worst]) worst = i;
  }
  return worst;
}

std::vector<ElementId> OrderByWins(const std::vector<ElementId>& elements,
                                   const TournamentResult& result) {
  CROWDMAX_CHECK(result.wins.size() == elements.size());
  std::vector<size_t> order(elements.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.wins[a] > result.wins[b];
  });
  std::vector<ElementId> out;
  out.reserve(elements.size());
  for (size_t i : order) out.push_back(elements[i]);
  return out;
}

}  // namespace crowdmax
