#include "core/tournament.h"

#include <algorithm>
#include <numeric>

#include "common/metrics.h"
#include "core/trace.h"

namespace crowdmax {

TournamentResult AllPlayAll(const std::vector<ElementId>& elements,
                            Comparator* comparator) {
  CROWDMAX_CHECK(comparator != nullptr);
  // Span and size metrics only: the comparisons here are attributed to a
  // cell by the caller (the phase/round that ran the tournament), never
  // here, so an all-play-all inside a recorded round is not double
  // counted.
  TraceSpanScope batch_span(TraceSpanKind::kBatch, "all_play_all");
  if (MetricsEnabled()) {
    static Histogram* sizes = MetricsRegistry::Default()->GetHistogram(
        "crowdmax.tournament.group_size", ExponentialBounds(12));
    sizes->Observe(static_cast<int64_t>(elements.size()));
  }
  const size_t k = elements.size();
  TournamentResult result;
  result.wins.assign(k, 0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      const ElementId winner = comparator->Compare(elements[i], elements[j]);
      CROWDMAX_DCHECK(winner == elements[i] || winner == elements[j]);
      ++result.wins[winner == elements[i] ? i : j];
      ++result.comparisons;
    }
  }
  return result;
}

size_t IndexOfMostWins(const TournamentResult& result) {
  CROWDMAX_CHECK(!result.wins.empty());
  size_t best = 0;
  for (size_t i = 1; i < result.wins.size(); ++i) {
    if (result.wins[i] > result.wins[best]) best = i;
  }
  return best;
}

size_t IndexOfFewestWins(const TournamentResult& result) {
  CROWDMAX_CHECK(!result.wins.empty());
  size_t worst = 0;
  for (size_t i = 1; i < result.wins.size(); ++i) {
    if (result.wins[i] < result.wins[worst]) worst = i;
  }
  return worst;
}

std::vector<ElementId> OrderByWins(const std::vector<ElementId>& elements,
                                   const TournamentResult& result) {
  CROWDMAX_CHECK(result.wins.size() == elements.size());
  std::vector<size_t> order(elements.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.wins[a] > result.wins[b];
  });
  std::vector<ElementId> out;
  out.reserve(elements.size());
  for (size_t i : order) out.push_back(elements[i]);
  return out;
}

}  // namespace crowdmax
