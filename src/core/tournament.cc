#include "core/tournament.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/checkpoint.h"
#include "core/round_engine.h"

namespace crowdmax {

namespace {

constexpr uint32_t kTournamentTag = CheckpointTag("TRNY");

// A tournament is the degenerate round generator: one round, one unit, all
// unordered pairs. Comparisons are attributed to a cell by the caller (the
// phase/round that ran the tournament), never here, so an all-play-all
// inside a recorded round is not double counted.
class TournamentRoundSource : public RoundSource {
 public:
  TournamentRoundSource(const std::vector<ElementId>& elements,
                        const char* span_label, int64_t chunk_pairs)
      : elements_(elements),
        span_label_(span_label),
        chunk_pairs_(chunk_pairs) {
    const int64_t k = static_cast<int64_t>(elements_.size());
    total_pairs_ = k * (k > 0 ? k - 1 : 0) / 2;
    if (chunked()) run_.tournament.wins.assign(elements_.size(), 0);
  }

  Result<bool> NextRound(EngineRound* round) override {
    if (done_) return false;
    const size_t k = elements_.size();
    if (chunked()) {
      // Chunked shape: the next <= chunk_pairs_ pairs, in the same
      // lexicographic order the single round would carry them.
      RoundUnit unit;
      unit.serial_span = span_label_;
      unit.serial_span_size = static_cast<int64_t>(k);
      unit.pairs.reserve(static_cast<size_t>(
          std::min(chunk_pairs_, total_pairs_ - next_emit_pair_)));
      int64_t emitted = 0;
      while (emitted < chunk_pairs_ &&
             next_emit_pair_ + emitted < total_pairs_) {
        unit.pairs.push_back({elements_[ei_], elements_[ej_]});
        ++emitted;
        if (++ej_ >= k) {
          ++ei_;
          ej_ = ei_ + 1;
        }
      }
      next_emit_pair_ += emitted;
      if (next_emit_pair_ >= total_pairs_) done_ = true;
      round->executor_span = span_label_;
      round->units.push_back(std::move(unit));
      return true;
    }
    done_ = true;
    RoundUnit unit;
    unit.serial_span = span_label_;
    unit.serial_span_size = static_cast<int64_t>(k);
    unit.pairs.reserve(k * (k > 0 ? k - 1 : 0) / 2);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        unit.pairs.push_back({elements_[i], elements_[j]});
      }
    }
    round->executor_span = span_label_;
    round->units.push_back(std::move(unit));
    return true;
  }

  // Chunks never share a pair (each unordered pair is emitted exactly
  // once), so the whole remainder of the tournament may trail the chunk
  // in flight.
  bool CanPipelineNextRound() const override {
    return chunked() && next_emit_pair_ > 0 && next_emit_pair_ < total_pairs_;
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    if (chunked()) {
      run_.tournament.comparisons += outcome.issued;
      const size_t k = elements_.size();
      for (const ElementId winner : outcome.winners[0]) {
        if (winner == kUnresolvedWinner) {
          ++run_.unresolved;
        } else {
          ++run_.tournament.wins[winner == elements_[ci_] ? ci_ : cj_];
        }
        ++next_consume_pair_;
        if (++cj_ >= k) {
          ++ci_;
          cj_ = ci_ + 1;
        }
      }
      if (run_.fault.ok() && !outcome.fault.ok()) run_.fault = outcome.fault;
      return Status::OK();
    }
    run_.tournament.wins.assign(elements_.size(), 0);
    run_.tournament.comparisons = outcome.issued;
    const std::vector<ElementId>& winners = outcome.winners[0];
    size_t t = 0;
    for (size_t i = 0; i < elements_.size(); ++i) {
      for (size_t j = i + 1; j < elements_.size(); ++j, ++t) {
        const ElementId winner = winners[t];
        if (winner == kUnresolvedWinner) {
          ++run_.unresolved;
          continue;
        }
        ++run_.tournament.wins[winner == elements_[i] ? i : j];
      }
    }
    run_.fault = outcome.fault;
    return Status::OK();
  }

  TournamentEngineRun Finish() { return std::move(run_); }

  // Single-round source: the only interior boundary is "tournament already
  // consumed", so the state is the tally plus the done flag. The chunked
  // shape adds interior boundaries between chunks; the pair cursors make
  // those resumable.
  Status SaveState(CheckpointWriter* writer) const override {
    writer->WriteTag(kTournamentTag);
    writer->WriteIdVector(run_.tournament.wins);
    writer->WriteI64(run_.tournament.comparisons);
    writer->WriteI64(run_.unresolved);
    writer->WriteStatus(run_.fault);
    writer->WriteBool(done_);
    writer->WriteI64(static_cast<int64_t>(ei_));
    writer->WriteI64(static_cast<int64_t>(ej_));
    writer->WriteI64(static_cast<int64_t>(ci_));
    writer->WriteI64(static_cast<int64_t>(cj_));
    writer->WriteI64(next_emit_pair_);
    writer->WriteI64(next_consume_pair_);
    return Status::OK();
  }

  Status LoadState(CheckpointReader* reader) override {
    reader->ExpectTag(kTournamentTag);
    reader->ReadIdVector(&run_.tournament.wins);
    run_.tournament.comparisons = reader->ReadI64();
    run_.unresolved = reader->ReadI64();
    run_.fault = reader->ReadStatus();
    done_ = reader->ReadBool();
    ei_ = static_cast<size_t>(reader->ReadI64());
    ej_ = static_cast<size_t>(reader->ReadI64());
    ci_ = static_cast<size_t>(reader->ReadI64());
    cj_ = static_cast<size_t>(reader->ReadI64());
    next_emit_pair_ = reader->ReadI64();
    next_consume_pair_ = reader->ReadI64();
    return reader->status();
  }

 private:
  bool chunked() const { return chunk_pairs_ > 0 && total_pairs_ > 0; }

  const std::vector<ElementId>& elements_;
  const char* const span_label_;
  const int64_t chunk_pairs_;
  int64_t total_pairs_ = 0;
  TournamentEngineRun run_;
  bool done_ = false;
  // Pair cursors for the chunked shape: (ei_, ej_) is the next pair to
  // emit, (ci_, cj_) the next to tally; the flat counters gate
  // CanPipelineNextRound and termination.
  size_t ei_ = 0;
  size_t ej_ = 1;
  size_t ci_ = 0;
  size_t cj_ = 1;
  int64_t next_emit_pair_ = 0;
  int64_t next_consume_pair_ = 0;
};

}  // namespace

Result<TournamentEngineRun> RunTournamentOnEngine(
    const std::vector<ElementId>& elements, RoundEngine* engine,
    const char* span_label, const TournamentEngineOptions& options) {
  CROWDMAX_CHECK(engine != nullptr);
  if (options.chunk_pairs < 0) {
    return Status::InvalidArgument("chunk_pairs must be >= 0");
  }
  TournamentRoundSource source(elements, span_label, options.chunk_pairs);
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  return source.Finish();
}

TournamentResult AllPlayAll(const std::vector<ElementId>& elements,
                            Comparator* comparator) {
  CROWDMAX_CHECK(comparator != nullptr);
  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(comparator, /*memoize=*/false);
  Result<TournamentEngineRun> run = RunTournamentOnEngine(elements, engine.get());
  CROWDMAX_CHECK(run.ok());
  return std::move(run->tournament);
}

size_t IndexOfMostWins(const TournamentResult& result) {
  CROWDMAX_CHECK(!result.wins.empty());
  size_t best = 0;
  for (size_t i = 1; i < result.wins.size(); ++i) {
    if (result.wins[i] > result.wins[best]) best = i;
  }
  return best;
}

size_t IndexOfFewestWins(const TournamentResult& result) {
  CROWDMAX_CHECK(!result.wins.empty());
  size_t worst = 0;
  for (size_t i = 1; i < result.wins.size(); ++i) {
    if (result.wins[i] < result.wins[worst]) worst = i;
  }
  return worst;
}

std::vector<ElementId> OrderByWins(const std::vector<ElementId>& elements,
                                   const TournamentResult& result) {
  CROWDMAX_CHECK(result.wins.size() == elements.size());
  std::vector<size_t> order(elements.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.wins[a] > result.wins[b];
  });
  std::vector<ElementId> out;
  out.reserve(elements.size());
  for (size_t i : order) out.push_back(elements[i]);
  return out;
}

}  // namespace crowdmax
