// Microtask primitives of the crowdsourcing platform simulator.

#ifndef CROWDMAX_PLATFORM_TASK_H_
#define CROWDMAX_PLATFORM_TASK_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"

namespace crowdmax {

/// One pairwise comparison microtask: "which of a, b is larger?".
struct ComparisonTask {
  ElementId a = -1;
  ElementId b = -1;
};

/// One worker's answer to a task.
struct Vote {
  int32_t worker_id = -1;
  ElementId winner = -1;
  /// False if the vote was discarded by quality control (failed gold).
  bool counted = true;
};

/// Aggregated outcome of one task after all assigned votes arrived.
struct TaskOutcome {
  ComparisonTask task;
  std::vector<Vote> votes;
  /// Majority winner over counted votes (ties broken by platform coin).
  ElementId majority_winner = -1;
  /// True if every counted vote agreed.
  bool unanimous = false;
  /// Number of counted (trusted) votes.
  int64_t counted_votes = 0;
  /// The platform logical step in which this task was answered.
  int64_t logical_step = 0;
};

}  // namespace crowdmax

#endif  // CROWDMAX_PLATFORM_TASK_H_
