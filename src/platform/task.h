// Microtask primitives of the crowdsourcing platform simulator.

#ifndef CROWDMAX_PLATFORM_TASK_H_
#define CROWDMAX_PLATFORM_TASK_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"

namespace crowdmax {

/// One pairwise comparison microtask: "which of a, b is larger?".
struct ComparisonTask {
  ElementId a = -1;
  ElementId b = -1;
};

/// Why a vote did or did not count toward a task's majority.
enum class VoteDisposition {
  /// The vote arrived in time from a trusted worker and was counted.
  kCounted,
  /// Discarded by quality control (the worker failed gold).
  kDiscarded,
  /// The worker accepted the assignment but never submitted an answer
  /// (task abandonment); `winner` is -1.
  kAbandoned,
  /// The worker answered, but after the physical-step deadline (straggler);
  /// the answer is recorded for the audit trail but not counted.
  kDropped,
};

/// Short stable name ("counted", "discarded", "abandoned", "dropped") for
/// the transcript CSV.
const char* VoteDispositionName(VoteDisposition disposition);

/// Aggregation-level outcome of a task under the fault model.
enum class TaskDisposition {
  /// Enough counted votes arrived; `majority_winner` is authoritative.
  kAnswered,
  /// Some votes arrived but fewer than the platform quorum
  /// (FaultOptions::min_quorum); `majority_winner` is the provisional
  /// majority of what was collected. Resilient callers may accept it under
  /// a relaxed-quorum policy or re-issue the task.
  kNoQuorum,
  /// No vote was counted at all; `majority_winner` is -1.
  kDropped,
};

/// Short stable name ("answered", "no_quorum", "dropped") for the CSV.
const char* TaskDispositionName(TaskDisposition disposition);

/// One worker's answer to a task.
struct Vote {
  int32_t worker_id = -1;
  ElementId winner = -1;
  /// False if the vote was discarded by quality control (failed gold) or
  /// lost to a fault; `disposition` says which.
  bool counted = true;
  VoteDisposition disposition = VoteDisposition::kCounted;
};

/// Aggregated outcome of one task after all assigned votes arrived.
struct TaskOutcome {
  ComparisonTask task;
  std::vector<Vote> votes;
  /// Majority winner over counted votes (ties broken by platform coin).
  /// -1 when `disposition` is kDropped; provisional when kNoQuorum.
  ElementId majority_winner = -1;
  /// True if every counted vote agreed.
  bool unanimous = false;
  /// Number of counted (trusted) votes.
  int64_t counted_votes = 0;
  /// The platform logical step in which this task was answered.
  int64_t logical_step = 0;
  /// Fault-model outcome; always kAnswered when faults are disabled.
  TaskDisposition disposition = TaskDisposition::kAnswered;
};

}  // namespace crowdmax

#endif  // CROWDMAX_PLATFORM_TASK_H_
