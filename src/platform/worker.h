// Simulated crowd workers.
//
// Each worker wraps the crowd-level answer model (a Comparator, shared so
// that crowd-level phenomena like the persistent pair bias of the CARS
// regime are common to all workers) and adds individual behaviour: private
// slip noise and, for spammers, uniformly random answers. Spammers are what
// the platform's gold-question quality control (Section 3.1: answers from
// workers below 70% gold accuracy are ignored) exists to catch.
//
// Under the fault model (platform.h, FaultOptions) a worker may also
// abandon an assignment (no answer ever arrives) or straggle (the answer
// arrives after the physical-step deadline and is dropped); Respond()
// reports which via VoteDisposition. The fault draws are gated on their
// probabilities being positive, so a worker configured without faults
// consumes exactly the same RNG stream as before the fault layer existed.

#ifndef CROWDMAX_PLATFORM_WORKER_H_
#define CROWDMAX_PLATFORM_WORKER_H_

#include <cstdint>

#include "common/rng.h"
#include "core/comparator.h"
#include "platform/task.h"

namespace crowdmax {

/// One worker's reaction to an assignment under the fault model.
struct WorkerResponse {
  /// kCounted (answered in time), kAbandoned (no answer; `winner` is -1) or
  /// kDropped (answered past the deadline; `winner` holds the late answer).
  /// Quality-control demotion to kDiscarded happens later, in the platform.
  VoteDisposition disposition = VoteDisposition::kCounted;
  ElementId winner = -1;
};

/// The worker-private half of an assignment, split out so the platform's
/// batch submission path can draw every worker-stream decision up front
/// and defer only the shared answer model (platform/platform.cc batches
/// model queries per run of same-model workers). All of this worker's
/// private draws — abandon, spam coin or slip, straggler — happen at
/// Begin time, in the per-call order of the worker's own RNG stream, so
/// the stream position is identical to Answer()/Respond(). The slip flip
/// is drawn before the model's answer is known; it commutes (the flip is
/// applied to whatever the model returns), so the final answer matches.
struct PendingAnswer {
  /// True when the shared answer model still owes this assignment an
  /// answer; resolve with FinishAnswer. False = `answer` is final
  /// (spammer) or the assignment was abandoned.
  bool needs_model = false;
  /// Slip flip to apply to the model's answer (honest workers only).
  bool flip = false;
  /// Final answer when needs_model is false and not abandoned.
  ElementId answer = -1;
  /// kAbandoned / kDropped / kCounted, exactly as Respond() would report.
  VoteDisposition disposition = VoteDisposition::kCounted;
};

/// One simulated crowd worker.
class SimulatedWorker {
 public:
  struct Options {
    /// Probability an honest worker flips the model's answer on any query
    /// (individual inattention on top of the crowd model).
    double slip_probability = 0.0;
    /// Spammers ignore the model and answer uniformly at random.
    bool spammer = false;
    /// Probability the worker abandons an assignment: no vote arrives.
    double abandon_probability = 0.0;
    /// Probability the worker answers but misses the physical-step
    /// deadline: the vote is recorded for auditing yet never counted.
    double straggler_probability = 0.0;
  };

  /// `answer_model` is the shared crowd-level comparator; not owned, must
  /// outlive the worker.
  SimulatedWorker(int32_t id, Comparator* answer_model, const Options& options,
                  uint64_t seed);

  /// Produces this worker's answer to `task`, ignoring the fault model
  /// (legacy path; equivalent to Respond() with zero fault probabilities).
  ElementId Answer(const ComparisonTask& task);

  /// Produces this worker's response to `task` under the fault model:
  /// abandonment and straggler delay are drawn from this worker's private
  /// RNG, so the whole run is replayable from the platform seeds.
  WorkerResponse Respond(const ComparisonTask& task);

  /// Split halves of Answer()/Respond() for the platform's batched
  /// submission path: Begin* draws every worker-private decision now (same
  /// private-stream draw order as the monolithic calls) and reports
  /// whether the shared answer model is still needed; FinishAnswer applies
  /// the pre-drawn slip flip to the model's answer. Answer(task) is
  /// exactly BeginAnswer + (needs_model ? FinishAnswer(model answer) :
  /// pending.answer), and Respond(task) likewise over BeginRespond.
  PendingAnswer BeginAnswer(const ComparisonTask& task);
  PendingAnswer BeginRespond(const ComparisonTask& task);
  ElementId FinishAnswer(const PendingAnswer& pending,
                         const ComparisonTask& task,
                         ElementId model_answer) const;

  /// The shared crowd answer model this worker consults (not owned). The
  /// platform groups consecutive same-model assignments into one batched
  /// model call.
  Comparator* answer_model() const { return answer_model_; }

  int32_t id() const { return id_; }
  bool is_spammer() const { return options_.spammer; }
  int64_t tasks_answered() const { return tasks_answered_; }
  int64_t tasks_abandoned() const { return tasks_abandoned_; }
  int64_t tasks_straggled() const { return tasks_straggled_; }

 private:
  int32_t id_;
  Comparator* answer_model_;
  Options options_;
  Rng rng_;
  int64_t tasks_answered_ = 0;
  int64_t tasks_abandoned_ = 0;
  int64_t tasks_straggled_ = 0;
};

}  // namespace crowdmax

#endif  // CROWDMAX_PLATFORM_WORKER_H_
