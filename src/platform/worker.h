// Simulated crowd workers.
//
// Each worker wraps the crowd-level answer model (a Comparator, shared so
// that crowd-level phenomena like the persistent pair bias of the CARS
// regime are common to all workers) and adds individual behaviour: private
// slip noise and, for spammers, uniformly random answers. Spammers are what
// the platform's gold-question quality control (Section 3.1: answers from
// workers below 70% gold accuracy are ignored) exists to catch.

#ifndef CROWDMAX_PLATFORM_WORKER_H_
#define CROWDMAX_PLATFORM_WORKER_H_

#include <cstdint>

#include "common/rng.h"
#include "core/comparator.h"
#include "platform/task.h"

namespace crowdmax {

/// One simulated crowd worker.
class SimulatedWorker {
 public:
  struct Options {
    /// Probability an honest worker flips the model's answer on any query
    /// (individual inattention on top of the crowd model).
    double slip_probability = 0.0;
    /// Spammers ignore the model and answer uniformly at random.
    bool spammer = false;
  };

  /// `answer_model` is the shared crowd-level comparator; not owned, must
  /// outlive the worker.
  SimulatedWorker(int32_t id, Comparator* answer_model, const Options& options,
                  uint64_t seed);

  /// Produces this worker's answer to `task`.
  ElementId Answer(const ComparisonTask& task);

  int32_t id() const { return id_; }
  bool is_spammer() const { return options_.spammer; }
  int64_t tasks_answered() const { return tasks_answered_; }

 private:
  int32_t id_;
  Comparator* answer_model_;
  Options options_;
  Rng rng_;
  int64_t tasks_answered_ = 0;
};

}  // namespace crowdmax

#endif  // CROWDMAX_PLATFORM_WORKER_H_
