// Gold-question quality control (Section 3.1).
//
// CrowdFlower interleaves "gold" comparisons whose ground truth is known
// and ignores responses from workers whose accuracy on gold falls below
// 70%. GoldQualityControl keeps the per-worker gold ledger and the
// trust decision; the platform feeds it and consults it when aggregating.

#ifndef CROWDMAX_PLATFORM_GOLD_H_
#define CROWDMAX_PLATFORM_GOLD_H_

#include <cstdint>
#include <unordered_map>

#include "core/instance.h"
#include "platform/task.h"

namespace crowdmax {

/// Tracks per-worker accuracy on gold questions and flags untrusted
/// workers.
class GoldQualityControl {
 public:
  struct Options {
    /// Workers below this gold accuracy are untrusted (CrowdFlower's 70%).
    double min_accuracy = 0.7;
    /// Workers are trusted unconditionally until they have answered this
    /// many gold questions (too little evidence to judge).
    int64_t min_gold_answers = 4;
  };

  /// `gold_truth` supplies ground-truth values for gold tasks; not owned.
  GoldQualityControl(const Instance* gold_truth, const Options& options);

  /// Records worker `worker_id`'s answer to gold task `task`.
  void RecordGoldAnswer(int32_t worker_id, const ComparisonTask& task,
                        ElementId answer);

  /// True if the worker's gold accuracy so far is acceptable (or untested).
  bool IsTrusted(int32_t worker_id) const;

  /// Per-worker ledger entry.
  struct WorkerGoldStats {
    int64_t asked = 0;
    int64_t correct = 0;

    double Accuracy() const {
      return asked == 0 ? 1.0
                        : static_cast<double>(correct) /
                              static_cast<double>(asked);
    }
  };

  WorkerGoldStats stats(int32_t worker_id) const;

  /// Number of workers currently flagged untrusted.
  int64_t num_untrusted() const;

 private:
  const Instance* gold_truth_;
  Options options_;
  std::unordered_map<int32_t, WorkerGoldStats> ledger_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_PLATFORM_GOLD_H_
