#include "platform/gold.h"

namespace crowdmax {

GoldQualityControl::GoldQualityControl(const Instance* gold_truth,
                                       const Options& options)
    : gold_truth_(gold_truth), options_(options) {
  CROWDMAX_CHECK(gold_truth != nullptr);
  CROWDMAX_CHECK(options.min_accuracy >= 0.0 && options.min_accuracy <= 1.0);
  CROWDMAX_CHECK(options.min_gold_answers >= 0);
}

void GoldQualityControl::RecordGoldAnswer(int32_t worker_id,
                                          const ComparisonTask& task,
                                          ElementId answer) {
  CROWDMAX_DCHECK(gold_truth_->Contains(task.a) &&
                  gold_truth_->Contains(task.b));
  const ElementId correct =
      gold_truth_->value(task.a) >= gold_truth_->value(task.b) ? task.a
                                                               : task.b;
  WorkerGoldStats& stats = ledger_[worker_id];
  ++stats.asked;
  if (answer == correct) ++stats.correct;
}

bool GoldQualityControl::IsTrusted(int32_t worker_id) const {
  auto it = ledger_.find(worker_id);
  if (it == ledger_.end()) return true;
  const WorkerGoldStats& stats = it->second;
  if (stats.asked < options_.min_gold_answers) return true;
  return stats.Accuracy() >= options_.min_accuracy;
}

GoldQualityControl::WorkerGoldStats GoldQualityControl::stats(
    int32_t worker_id) const {
  auto it = ledger_.find(worker_id);
  return it == ledger_.end() ? WorkerGoldStats{} : it->second;
}

int64_t GoldQualityControl::num_untrusted() const {
  int64_t count = 0;
  for (const auto& [worker_id, stats] : ledger_) {
    if (!IsTrusted(worker_id)) ++count;
  }
  return count;
}

}  // namespace crowdmax
