#include "platform/worker.h"

namespace crowdmax {

SimulatedWorker::SimulatedWorker(int32_t id, Comparator* answer_model,
                                 const Options& options, uint64_t seed)
    : id_(id), answer_model_(answer_model), options_(options), rng_(seed) {
  CROWDMAX_CHECK(answer_model != nullptr);
  CROWDMAX_CHECK(options.slip_probability >= 0.0 &&
                 options.slip_probability <= 1.0);
  CROWDMAX_CHECK(options.abandon_probability >= 0.0 &&
                 options.abandon_probability < 1.0);
  CROWDMAX_CHECK(options.straggler_probability >= 0.0 &&
                 options.straggler_probability < 1.0);
}

ElementId SimulatedWorker::Answer(const ComparisonTask& task) {
  ++tasks_answered_;
  if (options_.spammer) {
    return rng_.NextBernoulli(0.5) ? task.a : task.b;
  }
  const ElementId model_answer = answer_model_->Compare(task.a, task.b);
  CROWDMAX_DCHECK(model_answer == task.a || model_answer == task.b);
  if (rng_.NextBernoulli(options_.slip_probability)) {
    return model_answer == task.a ? task.b : task.a;
  }
  return model_answer;
}

WorkerResponse SimulatedWorker::Respond(const ComparisonTask& task) {
  // Fault draws are gated on positive probabilities so a fault-free worker
  // advances its RNG exactly as the legacy Answer() path does.
  if (options_.abandon_probability > 0.0 &&
      rng_.NextBernoulli(options_.abandon_probability)) {
    ++tasks_abandoned_;
    return {VoteDisposition::kAbandoned, -1};
  }
  WorkerResponse response;
  response.winner = Answer(task);
  if (options_.straggler_probability > 0.0 &&
      rng_.NextBernoulli(options_.straggler_probability)) {
    ++tasks_straggled_;
    response.disposition = VoteDisposition::kDropped;
  }
  return response;
}

}  // namespace crowdmax
