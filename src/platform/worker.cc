#include "platform/worker.h"

namespace crowdmax {

SimulatedWorker::SimulatedWorker(int32_t id, Comparator* answer_model,
                                 const Options& options, uint64_t seed)
    : id_(id), answer_model_(answer_model), options_(options), rng_(seed) {
  CROWDMAX_CHECK(answer_model != nullptr);
  CROWDMAX_CHECK(options.slip_probability >= 0.0 &&
                 options.slip_probability <= 1.0);
}

ElementId SimulatedWorker::Answer(const ComparisonTask& task) {
  ++tasks_answered_;
  if (options_.spammer) {
    return rng_.NextBernoulli(0.5) ? task.a : task.b;
  }
  const ElementId model_answer = answer_model_->Compare(task.a, task.b);
  CROWDMAX_DCHECK(model_answer == task.a || model_answer == task.b);
  if (rng_.NextBernoulli(options_.slip_probability)) {
    return model_answer == task.a ? task.b : task.a;
  }
  return model_answer;
}

}  // namespace crowdmax
