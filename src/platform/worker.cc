#include "platform/worker.h"

namespace crowdmax {

SimulatedWorker::SimulatedWorker(int32_t id, Comparator* answer_model,
                                 const Options& options, uint64_t seed)
    : id_(id), answer_model_(answer_model), options_(options), rng_(seed) {
  CROWDMAX_CHECK(answer_model != nullptr);
  CROWDMAX_CHECK(options.slip_probability >= 0.0 &&
                 options.slip_probability <= 1.0);
  CROWDMAX_CHECK(options.abandon_probability >= 0.0 &&
                 options.abandon_probability < 1.0);
  CROWDMAX_CHECK(options.straggler_probability >= 0.0 &&
                 options.straggler_probability < 1.0);
}

PendingAnswer SimulatedWorker::BeginAnswer(const ComparisonTask& task) {
  ++tasks_answered_;
  PendingAnswer pending;
  if (options_.spammer) {
    pending.answer = rng_.NextBernoulli(0.5) ? task.a : task.b;
    return pending;
  }
  // The slip flip is drawn now, before the model's answer exists; the
  // worker's private stream sees the same single draw as the monolithic
  // path (the model draws live on the shared model's stream, not here).
  pending.needs_model = true;
  pending.flip = rng_.NextBernoulli(options_.slip_probability);
  return pending;
}

PendingAnswer SimulatedWorker::BeginRespond(const ComparisonTask& task) {
  // Fault draws are gated on positive probabilities so a fault-free worker
  // advances its RNG exactly as the legacy Answer() path does.
  if (options_.abandon_probability > 0.0 &&
      rng_.NextBernoulli(options_.abandon_probability)) {
    ++tasks_abandoned_;
    PendingAnswer pending;
    pending.disposition = VoteDisposition::kAbandoned;
    return pending;
  }
  PendingAnswer pending = BeginAnswer(task);
  if (options_.straggler_probability > 0.0 &&
      rng_.NextBernoulli(options_.straggler_probability)) {
    ++tasks_straggled_;
    pending.disposition = VoteDisposition::kDropped;
  }
  return pending;
}

ElementId SimulatedWorker::FinishAnswer(const PendingAnswer& pending,
                                        const ComparisonTask& task,
                                        ElementId model_answer) const {
  CROWDMAX_DCHECK(model_answer == task.a || model_answer == task.b);
  if (pending.flip) {
    return model_answer == task.a ? task.b : task.a;
  }
  return model_answer;
}

ElementId SimulatedWorker::Answer(const ComparisonTask& task) {
  const PendingAnswer pending = BeginAnswer(task);
  if (!pending.needs_model) return pending.answer;
  return FinishAnswer(pending, task, answer_model_->Compare(task.a, task.b));
}

WorkerResponse SimulatedWorker::Respond(const ComparisonTask& task) {
  const PendingAnswer pending = BeginRespond(task);
  WorkerResponse response;
  response.disposition = pending.disposition;
  if (pending.disposition == VoteDisposition::kAbandoned) return response;
  response.winner =
      pending.needs_model
          ? FinishAnswer(pending, task,
                         answer_model_->Compare(task.a, task.b))
          : pending.answer;
  return response;
}

}  // namespace crowdmax
