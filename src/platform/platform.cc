#include "platform/platform.h"

#include <algorithm>
#include <ostream>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/table.h"

namespace crowdmax {

CrowdPlatform::CrowdPlatform(std::vector<Comparator*> worker_models,
                             const Instance* gold_truth,
                             std::vector<ComparisonTask> gold_tasks,
                             const PlatformOptions& options)
    : options_(options),
      gold_tasks_(std::move(gold_tasks)),
      gold_control_(gold_truth, options.gold),
      worker_models_(std::move(worker_models)),
      rng_(options.seed),
      fault_rng_(options.fault.seed),
      latency_rng_(options.latency.seed) {
  // Spammer placement: deterministic count, random worker identities.
  const int64_t n = options.num_workers;
  CROWDMAX_CHECK(static_cast<int64_t>(worker_models_.size()) == n);
  num_spammers_ = static_cast<int64_t>(options.spammer_fraction *
                                       static_cast<double>(n));
  std::vector<bool> is_spammer(static_cast<size_t>(n), false);
  for (size_t idx : rng_.SampleWithoutReplacement(
           static_cast<size_t>(n), static_cast<size_t>(num_spammers_))) {
    is_spammer[idx] = true;
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    SimulatedWorker::Options worker_options;
    worker_options.slip_probability = options.honest_slip_probability;
    worker_options.spammer = is_spammer[static_cast<size_t>(i)];
    worker_options.abandon_probability = options.fault.abandon_probability;
    worker_options.straggler_probability =
        options.fault.straggler_probability;
    workers_.emplace_back(static_cast<int32_t>(i),
                          worker_models_[static_cast<size_t>(i)],
                          worker_options, rng_.Fork());
  }
  next_worker_id_ = static_cast<int32_t>(n);
}

Status CrowdPlatform::ValidateCommon(
    const Instance* gold_truth, const std::vector<ComparisonTask>& gold_tasks,
    const PlatformOptions& options) {
  if (gold_truth == nullptr) {
    return Status::InvalidArgument("gold_truth must not be null");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.spammer_fraction < 0.0 || options.spammer_fraction >= 1.0) {
    return Status::InvalidArgument("spammer_fraction must be in [0, 1)");
  }
  if (options.gold_task_probability < 0.0 ||
      options.gold_task_probability > 1.0) {
    return Status::InvalidArgument("gold_task_probability must be in [0, 1]");
  }
  if (options.worker_capacity_per_physical_step < 1) {
    return Status::InvalidArgument(
        "worker_capacity_per_physical_step must be >= 1");
  }
  const FaultOptions& fault = options.fault;
  if (fault.abandon_probability < 0.0 || fault.abandon_probability >= 1.0) {
    return Status::InvalidArgument(
        "fault.abandon_probability must be in [0, 1)");
  }
  if (fault.straggler_probability < 0.0 ||
      fault.straggler_probability >= 1.0) {
    return Status::InvalidArgument(
        "fault.straggler_probability must be in [0, 1)");
  }
  if (fault.churn_probability < 0.0 || fault.churn_probability >= 1.0) {
    return Status::InvalidArgument("fault.churn_probability must be in [0, 1)");
  }
  if (fault.unavailable_probability < 0.0 ||
      fault.unavailable_probability >= 1.0) {
    return Status::InvalidArgument(
        "fault.unavailable_probability must be in [0, 1)");
  }
  if (fault.min_quorum < 1) {
    return Status::InvalidArgument("fault.min_quorum must be >= 1");
  }
  const LatencyOptions& latency = options.latency;
  if (latency.base_micros < 0 || latency.per_task_micros < 0 ||
      latency.jitter_micros < 0) {
    return Status::InvalidArgument("latency terms must be >= 0");
  }
  for (const ComparisonTask& task : gold_tasks) {
    if (!gold_truth->Contains(task.a) || !gold_truth->Contains(task.b)) {
      return Status::InvalidArgument("gold task references unknown element");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<CrowdPlatform>> CrowdPlatform::Create(
    Comparator* crowd_model, const Instance* gold_truth,
    std::vector<ComparisonTask> gold_tasks, const PlatformOptions& options) {
  if (crowd_model == nullptr) {
    return Status::InvalidArgument("crowd_model must not be null");
  }
  if (Status status = ValidateCommon(gold_truth, gold_tasks, options);
      !status.ok()) {
    return status;
  }
  std::vector<Comparator*> models(static_cast<size_t>(options.num_workers),
                                  crowd_model);
  return std::unique_ptr<CrowdPlatform>(new CrowdPlatform(
      std::move(models), gold_truth, std::move(gold_tasks), options));
}

Result<std::unique_ptr<CrowdPlatform>> CrowdPlatform::CreateHeterogeneous(
    std::vector<Comparator*> worker_models, const Instance* gold_truth,
    std::vector<ComparisonTask> gold_tasks, const PlatformOptions& options) {
  if (Status status = ValidateCommon(gold_truth, gold_tasks, options);
      !status.ok()) {
    return status;
  }
  if (static_cast<int64_t>(worker_models.size()) != options.num_workers) {
    return Status::InvalidArgument(
        "worker_models size must equal num_workers");
  }
  for (const Comparator* model : worker_models) {
    if (model == nullptr) {
      return Status::InvalidArgument("worker model must not be null");
    }
  }
  return std::unique_ptr<CrowdPlatform>(new CrowdPlatform(
      std::move(worker_models), gold_truth, std::move(gold_tasks), options));
}

void CrowdPlatform::ApplyChurn() {
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (!fault_rng_.NextBernoulli(options_.fault.churn_probability)) continue;
    const bool was_spammer = workers_[i].is_spammer();
    SimulatedWorker::Options worker_options;
    worker_options.slip_probability = options_.honest_slip_probability;
    worker_options.spammer =
        fault_rng_.NextBernoulli(options_.spammer_fraction);
    worker_options.abandon_probability = options_.fault.abandon_probability;
    worker_options.straggler_probability =
        options_.fault.straggler_probability;
    workers_[i] = SimulatedWorker(next_worker_id_++, worker_models_[i],
                                  worker_options, fault_rng_.Fork());
    num_spammers_ +=
        (worker_options.spammer ? 1 : 0) - (was_spammer ? 1 : 0);
    ++fault_stats_.churned_workers;
  }
}

Result<std::vector<TaskOutcome>> CrowdPlatform::SubmitBatch(
    const std::vector<ComparisonTask>& batch, int64_t votes_per_task) {
  if (batch.empty()) {
    return Status::InvalidArgument("batch must be non-empty");
  }
  if (votes_per_task < 1 || votes_per_task > num_workers()) {
    return Status::InvalidArgument(
        "votes_per_task must be in [1, num_workers]");
  }

  // Latency is drawn per accepted-for-processing call, on its own stream,
  // before the transient-outage draw: a rejected submission wasted its
  // round trip too. The platform only *reports* the draw; sleeping (or
  // overlapping) it is the execution layer's job.
  last_batch_latency_micros_ = 0;
  if (options_.latency.enabled()) {
    int64_t latency =
        options_.latency.base_micros +
        options_.latency.per_task_micros * static_cast<int64_t>(batch.size());
    if (options_.latency.jitter_micros > 0) {
      latency += static_cast<int64_t>(latency_rng_.NextBounded(
          static_cast<uint64_t>(options_.latency.jitter_micros) + 1));
    }
    last_batch_latency_micros_ = latency;
    total_latency_micros_ += latency;
    if (MetricsEnabled()) {
      static Histogram* latencies = MetricsRegistry::Default()->GetHistogram(
          "crowdmax.platform.batch_latency_micros", ExponentialBounds(24));
      latencies->Observe(latency);
    }
  }

  const bool faults = options_.fault.enabled();
  if (faults && options_.fault.unavailable_probability > 0.0 &&
      fault_rng_.NextBernoulli(options_.fault.unavailable_probability)) {
    // Transient outage: nothing was assigned, no step elapsed; retryable.
    ++fault_stats_.unavailable_errors;
    if (MetricsEnabled()) {
      MetricsRegistry::Default()
          ->GetCounter("crowdmax.platform.unavailable_errors")
          ->Increment();
    }
    // The outage is per-submission (no step elapsed), so a retry is
    // expected to succeed one logical step later — the hint the resilient
    // layer and the service supervisor surface to callers.
    return Status::Unavailable(
               "crowd platform temporarily unavailable (injected transient "
               "fault); retry the submission")
        .WithRetryAfter(1);
  }
  if (faults && options_.fault.churn_probability > 0.0) ApplyChurn();

  ++logical_steps_;
  const PlatformFaultStats fault_stats_before = fault_stats_;
  const int64_t votes_before = total_votes_;
  const int64_t discarded_before = discarded_votes_;
  const int64_t gold_before = gold_votes_;
  int64_t assignments = 0;
  std::vector<TaskOutcome> outcomes;
  outcomes.reserve(batch.size());

  // Per-assignment record of the submission's first pass: every platform-
  // and worker-stream draw is made up front (in visit order, so each RNG
  // stream advances exactly as the per-call path did), and the shared
  // answer-model queries are deferred so consecutive same-model queries
  // can be answered in one batch (DESIGN.md §14). Batching never crosses a
  // task: the platform stream interleaves per-task draws (worker sampling,
  // gold coins, tie coins), so only queries *within* one task are runs.
  struct Assignment {
    size_t widx = 0;
    bool has_gold = false;
    ComparisonTask gold_task{};
    PendingAnswer gold_pending{};
    PendingAnswer real_pending{};
  };
  struct ModelQuery {
    Comparator* model = nullptr;
    ComparisonTask task{};
    size_t assignment = 0;
    bool is_gold = false;
    ElementId model_answer = -1;
  };
  std::vector<Assignment> task_assignments;
  std::vector<ModelQuery> model_queue;
  std::vector<ComparisonPair> model_pairs;
  std::vector<ElementId> model_answers;

  for (const ComparisonTask& task : batch) {
    TaskOutcome outcome;
    outcome.task = task;
    outcome.logical_step = logical_steps_;

    // Distinct workers per task, sampled uniformly from the pool.
    const std::vector<size_t> assigned = rng_.SampleWithoutReplacement(
        workers_.size(), static_cast<size_t>(votes_per_task));

    // Pass A, visit order: platform draws (gold coin, gold pick) and
    // worker-private draws (abandon, spam coin or slip, straggler) for
    // every assignment; shared-model queries are queued, not answered.
    task_assignments.clear();
    model_queue.clear();
    for (size_t widx : assigned) {
      SimulatedWorker& worker = workers_[widx];
      Assignment assignment;
      assignment.widx = widx;

      // Interleave a gold question with the configured probability; its
      // grade feeds this worker's trust score for all later aggregation.
      if (!gold_tasks_.empty() &&
          rng_.NextBernoulli(options_.gold_task_probability)) {
        assignment.has_gold = true;
        assignment.gold_task = gold_tasks_[rng_.NextBounded(gold_tasks_.size())];
        assignment.gold_pending = worker.BeginAnswer(assignment.gold_task);
        if (assignment.gold_pending.needs_model) {
          model_queue.push_back({worker.answer_model(), assignment.gold_task,
                                 task_assignments.size(), /*is_gold=*/true,
                                 -1});
        }
      }

      assignment.real_pending =
          faults ? worker.BeginRespond(task) : worker.BeginAnswer(task);
      if (assignment.real_pending.needs_model &&
          assignment.real_pending.disposition != VoteDisposition::kAbandoned) {
        model_queue.push_back({worker.answer_model(), task,
                               task_assignments.size(), /*is_gold=*/false,
                               -1});
      }
      task_assignments.push_back(assignment);
    }

    // Pass B: answer the queued model queries, batching each run of
    // consecutive same-model queries through GenerateVotes when the model
    // supports it. The queue is in visit order, so every model's stream
    // sees its draws in exactly the per-call order; heterogeneous pools
    // degrade to per-call runs at each model switch.
    size_t qi = 0;
    while (qi < model_queue.size()) {
      Comparator* model = model_queue[qi].model;
      size_t qe = qi + 1;
      while (qe < model_queue.size() && model_queue[qe].model == model) ++qe;
      if (VoteBatchComparator* model_batch = model->AsVoteBatch();
          model_batch != nullptr) {
        model_pairs.clear();
        for (size_t q = qi; q < qe; ++q) {
          model_pairs.emplace_back(model_queue[q].task.a,
                                   model_queue[q].task.b);
        }
        model_answers.resize(model_pairs.size());
        const int64_t produced =
            model_batch->GenerateVotes(model_pairs, model_answers);
        CROWDMAX_CHECK(produced == static_cast<int64_t>(model_pairs.size()));
        for (size_t q = qi; q < qe; ++q) {
          model_queue[q].model_answer = model_answers[q - qi];
        }
      } else {
        for (size_t q = qi; q < qe; ++q) {
          model_queue[q].model_answer =
              model->Compare(model_queue[q].task.a, model_queue[q].task.b);
        }
      }
      qi = qe;
    }
    auto resolve = [&](const Assignment& assignment, bool is_gold,
                       const PendingAnswer& pending,
                       const ComparisonTask& answered_task,
                       size_t* cursor) -> ElementId {
      if (!pending.needs_model) return pending.answer;
      // Model answers map back in queue (= visit) order.
      while (model_queue[*cursor].assignment !=
                 static_cast<size_t>(&assignment - task_assignments.data()) ||
             model_queue[*cursor].is_gold != is_gold) {
        ++*cursor;
      }
      return workers_[assignment.widx].FinishAnswer(
          pending, answered_task, model_queue[*cursor].model_answer);
    };

    // Pass C, visit order: grade gold answers, build the votes, account
    // dispositions — exactly the work the per-call loop did after each
    // worker answered.
    size_t cursor = 0;
    for (const Assignment& assignment : task_assignments) {
      SimulatedWorker& worker = workers_[assignment.widx];
      if (assignment.has_gold) {
        const ElementId gold_answer =
            resolve(assignment, /*is_gold=*/true, assignment.gold_pending,
                    assignment.gold_task, &cursor);
        gold_control_.RecordGoldAnswer(worker.id(), assignment.gold_task,
                                       gold_answer);
        ++gold_votes_;
        ++assignments;
      }

      Vote vote;
      vote.worker_id = worker.id();
      vote.disposition = assignment.real_pending.disposition;
      if (vote.disposition == VoteDisposition::kAbandoned) {
        // No vote ever arrived; billed nothing, but the assignment slot
        // was held until the deadline.
        ++fault_stats_.abandoned_votes;
      } else {
        vote.winner = resolve(assignment, /*is_gold=*/false,
                              assignment.real_pending, task, &cursor);
        if (vote.disposition == VoteDisposition::kDropped) {
          ++fault_stats_.straggler_votes;
        }
        ++total_votes_;
      }
      ++assignments;
      outcome.votes.push_back(vote);
    }

    // Aggregate: majority over in-time votes from currently trusted
    // workers. Fault losses (abandoned/dropped) are already final; gold
    // control demotes the rest.
    int64_t wins_a = 0;
    int64_t counted = 0;
    for (Vote& vote : outcome.votes) {
      if (vote.disposition == VoteDisposition::kAbandoned ||
          vote.disposition == VoteDisposition::kDropped) {
        vote.counted = false;
        continue;
      }
      vote.counted = gold_control_.IsTrusted(vote.worker_id);
      if (!vote.counted) {
        vote.disposition = VoteDisposition::kDiscarded;
        ++discarded_votes_;
        continue;
      }
      ++counted;
      if (vote.winner == task.a) ++wins_a;
    }
    outcome.counted_votes = counted;
    if (faults && counted == 0) {
      // Every vote was lost or distrusted: under the fault model the task
      // is reported unresolved for the recovery layer to re-issue, instead
      // of being silently resolved by a platform coin.
      outcome.disposition = TaskDisposition::kDropped;
      outcome.majority_winner = -1;
      outcome.unanimous = false;
      ++fault_stats_.dropped_tasks;
    } else if (counted == 0) {
      // Every assigned worker is distrusted; the paper's platform would
      // re-post the task — we resolve it with a platform coin flip and
      // flag it via counted_votes == 0.
      outcome.majority_winner = rng_.NextBernoulli(0.5) ? task.a : task.b;
      outcome.unanimous = false;
    } else {
      if (2 * wins_a > counted) {
        outcome.majority_winner = task.a;
        outcome.unanimous = wins_a == counted;
      } else if (2 * wins_a < counted) {
        outcome.majority_winner = task.b;
        outcome.unanimous = wins_a == 0;
      } else {
        // Tie: "an arbitrary element in case of a tie" (Section 2).
        outcome.majority_winner = rng_.NextBernoulli(0.5) ? task.a : task.b;
        outcome.unanimous = false;
      }
      if (faults && counted < options_.fault.min_quorum) {
        outcome.disposition = TaskDisposition::kNoQuorum;
        ++fault_stats_.no_quorum_tasks;
      }
    }
    outcomes.push_back(std::move(outcome));
  }

  // Physical-step accounting: the pool clears `num_workers * capacity`
  // assignments per physical step.
  const int64_t capacity =
      num_workers() * options_.worker_capacity_per_physical_step;
  physical_steps_ += (assignments + capacity - 1) / capacity;

  if (options_.record_transcript) {
    transcript_.insert(transcript_.end(), outcomes.begin(), outcomes.end());
  }

  if (MetricsEnabled()) {
    MetricsRegistry* registry = MetricsRegistry::Default();
    static Counter* steps =
        registry->GetCounter("crowdmax.platform.logical_steps");
    static Counter* tasks = registry->GetCounter("crowdmax.platform.tasks");
    static Counter* votes = registry->GetCounter("crowdmax.platform.votes");
    static Counter* discarded =
        registry->GetCounter("crowdmax.platform.discarded_votes");
    static Counter* gold =
        registry->GetCounter("crowdmax.platform.gold_votes");
    static Counter* abandoned =
        registry->GetCounter("crowdmax.platform.abandoned_votes");
    static Counter* stragglers =
        registry->GetCounter("crowdmax.platform.straggler_votes");
    static Counter* dropped =
        registry->GetCounter("crowdmax.platform.dropped_tasks");
    static Counter* no_quorum =
        registry->GetCounter("crowdmax.platform.no_quorum_tasks");
    steps->Increment();
    tasks->Add(static_cast<int64_t>(batch.size()));
    votes->Add(total_votes_ - votes_before);
    discarded->Add(discarded_votes_ - discarded_before);
    gold->Add(gold_votes_ - gold_before);
    abandoned->Add(fault_stats_.abandoned_votes -
                   fault_stats_before.abandoned_votes);
    stragglers->Add(fault_stats_.straggler_votes -
                    fault_stats_before.straggler_votes);
    dropped->Add(fault_stats_.dropped_tasks -
                 fault_stats_before.dropped_tasks);
    no_quorum->Add(fault_stats_.no_quorum_tasks -
                   fault_stats_before.no_quorum_tasks);
  }
  return outcomes;
}

Status CrowdPlatform::ExportTranscriptCsv(std::ostream& out) const {
  return ExportTranscriptCsv(out, nullptr);
}

Status CrowdPlatform::ExportTranscriptCsv(
    std::ostream& out,
    const std::function<std::string(ElementId)>& labeler) const {
  if (!options_.record_transcript) {
    return Status::FailedPrecondition(
        "transcript recording was not enabled (PlatformOptions::"
        "record_transcript)");
  }
  const bool labeled = static_cast<bool>(labeler);
  out << "logical_step,a,b,";
  if (labeled) out << "label_a,label_b,";
  out << "worker_id,vote,counted,majority_winner,"
         "unanimous,vote_disposition,task_disposition,retry_after_steps\n";
  for (const TaskOutcome& outcome : transcript_) {
    // Labels (and, defensively, the disposition names) go through RFC-4180
    // escaping: dataset-derived item names may contain commas, quotes or
    // newlines, and a raw write would shear the row apart.
    std::string labels;
    if (labeled) {
      labels = CsvEscape(labeler(outcome.task.a)) + ',' +
               CsvEscape(labeler(outcome.task.b)) + ',';
    }
    for (const Vote& vote : outcome.votes) {
      out << outcome.logical_step << ',' << outcome.task.a << ','
          << outcome.task.b << ',' << labels << vote.worker_id << ','
          << vote.winner << ',' << (vote.counted ? 1 : 0) << ','
          << outcome.majority_winner << ',' << (outcome.unanimous ? 1 : 0)
          << ',' << CsvEscape(VoteDispositionName(vote.disposition)) << ','
          << CsvEscape(TaskDispositionName(outcome.disposition)) << ','
          // Disposition-level retry hint: an answered task needs no retry;
          // a dropped or no-quorum task is expected to resolve when
          // re-issued one logical step later.
          << (outcome.disposition == TaskDisposition::kAnswered ? 0 : 1)
          << '\n';
    }
  }
  return Status::OK();
}

namespace {

Status ValidateAdapterArgs(const CrowdPlatform* platform,
                           int64_t votes_per_task) {
  if (platform == nullptr) {
    return Status::InvalidArgument("platform must not be null");
  }
  if (votes_per_task < 1 || votes_per_task > platform->num_workers()) {
    return Status::InvalidArgument(
        "votes_per_task must be in [1, num_workers]");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PlatformComparator>> PlatformComparator::Create(
    CrowdPlatform* platform, int64_t votes_per_task) {
  if (Status status = ValidateAdapterArgs(platform, votes_per_task);
      !status.ok()) {
    return status;
  }
  return std::unique_ptr<PlatformComparator>(
      new PlatformComparator(platform, votes_per_task));
}

PlatformComparator::PlatformComparator(CrowdPlatform* platform,
                                       int64_t votes_per_task)
    : platform_(platform),
      votes_per_task_(votes_per_task),
      fallback_rng_(0x9e3779b97f4a7c15ULL ^
                    static_cast<uint64_t>(votes_per_task)) {
  CROWDMAX_CHECK(platform != nullptr);
  CROWDMAX_CHECK(votes_per_task >= 1 &&
                 votes_per_task <= platform->num_workers());
}

ElementId PlatformComparator::DoCompare(ElementId a, ElementId b) {
  // The Comparator contract is total, so the adapter absorbs faults with a
  // small bounded retry loop. A no-quorum outcome still carries a
  // provisional majority and is accepted; only transient errors and fully
  // dropped tasks are retried. After the budget, a deterministic private
  // coin resolves the comparison (prefer ResilientBatchExecutor for
  // typed, reported degradation).
  constexpr int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Result<std::vector<TaskOutcome>> outcome =
        platform_->SubmitBatch({{a, b}}, votes_per_task_);
    if (!outcome.ok()) {
      // Arguments were validated at construction; a non-transient failure
      // here means the platform contract is broken.
      CROWDMAX_CHECK(outcome.status().code() == StatusCode::kUnavailable);
      continue;
    }
    const TaskOutcome& task = outcome->front();
    if (task.disposition != TaskDisposition::kDropped) {
      return task.majority_winner;
    }
  }
  return fallback_rng_.NextBernoulli(0.5) ? a : b;
}

Result<std::unique_ptr<PlatformBatchExecutor>> PlatformBatchExecutor::Create(
    CrowdPlatform* platform, int64_t votes_per_task) {
  if (Status status = ValidateAdapterArgs(platform, votes_per_task);
      !status.ok()) {
    return status;
  }
  return std::unique_ptr<PlatformBatchExecutor>(
      new PlatformBatchExecutor(platform, votes_per_task));
}

PlatformBatchExecutor::PlatformBatchExecutor(CrowdPlatform* platform,
                                             int64_t votes_per_task)
    : platform_(platform), votes_per_task_(votes_per_task) {
  CROWDMAX_CHECK(platform != nullptr);
  CROWDMAX_CHECK(votes_per_task >= 1 &&
                 votes_per_task <= platform->num_workers());
  ResetCounters();
}

void PlatformBatchExecutor::ResetCounters() {
  BatchExecutor::ResetCounters();
  votes_snapshot_ = platform_->total_votes();
  logical_steps_snapshot_ = platform_->logical_steps();
  physical_steps_snapshot_ = platform_->physical_steps();
  discarded_votes_snapshot_ = platform_->discarded_votes();
  executor_votes_ = 0;
  executor_discarded_votes_ = 0;
  pending_latency_micros_ = 0;
}

int64_t PlatformBatchExecutor::TakeSimulatedLatencyMicros() {
  const int64_t micros = pending_latency_micros_;
  pending_latency_micros_ = 0;
  return micros;
}

void PlatformBatchExecutor::AccountOwnSubmission(
    const std::vector<TaskOutcome>& outcomes) {
  // Read the latency of *this* submission immediately, before any other
  // executor sharing the platform submits and overwrites the last-batch
  // value. The same holds for the vote tallies: they come from this
  // submission's own outcomes, never from platform-wide deltas, so
  // interleaved executors attribute exactly.
  pending_latency_micros_ += platform_->last_batch_latency_micros();
  for (const TaskOutcome& outcome : outcomes) {
    for (const Vote& vote : outcome.votes) {
      if (vote.disposition == VoteDisposition::kAbandoned) continue;
      ++executor_votes_;
      if (vote.disposition == VoteDisposition::kDiscarded) {
        ++executor_discarded_votes_;
      }
    }
  }
}

int64_t PlatformBatchExecutor::platform_votes_since_reset() const {
  return platform_->total_votes() - votes_snapshot_;
}

int64_t PlatformBatchExecutor::platform_logical_steps_since_reset() const {
  return platform_->logical_steps() - logical_steps_snapshot_;
}

int64_t PlatformBatchExecutor::platform_physical_steps_since_reset() const {
  return platform_->physical_steps() - physical_steps_snapshot_;
}

int64_t PlatformBatchExecutor::platform_discarded_votes_since_reset() const {
  return platform_->discarded_votes() - discarded_votes_snapshot_;
}

std::vector<ElementId> PlatformBatchExecutor::DoExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  std::vector<ComparisonTask> batch;
  batch.reserve(tasks.size());
  for (const ComparisonPair& task : tasks) {
    batch.push_back({task.first, task.second});
  }
  Result<std::vector<TaskOutcome>> outcomes =
      platform_->SubmitBatch(batch, votes_per_task_);
  CROWDMAX_CHECK(outcomes.ok());
  AccountOwnSubmission(*outcomes);
  std::vector<ElementId> winners;
  winners.reserve(outcomes->size());
  for (const TaskOutcome& outcome : *outcomes) {
    // The infallible path has no way to report an unresolved task; with
    // faults enabled, drive this executor through TryExecuteBatch (e.g.
    // wrapped in ResilientBatchExecutor).
    CROWDMAX_CHECK(outcome.disposition != TaskDisposition::kDropped);
    winners.push_back(outcome.majority_winner);
  }
  return winners;
}

Result<std::vector<BatchTaskResult>> PlatformBatchExecutor::DoTryExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  std::vector<ComparisonTask> batch;
  batch.reserve(tasks.size());
  for (const ComparisonPair& task : tasks) {
    batch.push_back({task.first, task.second});
  }
  Result<std::vector<TaskOutcome>> outcomes =
      platform_->SubmitBatch(batch, votes_per_task_);
  if (!outcomes.ok()) {
    // A rejected submission still wasted its round trip; bank the latency
    // so the caller pays it (or overlaps it) like any other.
    pending_latency_micros_ += platform_->last_batch_latency_micros();
    return outcomes.status();
  }
  AccountOwnSubmission(*outcomes);
  std::vector<BatchTaskResult> results;
  results.reserve(outcomes->size());
  for (const TaskOutcome& outcome : *outcomes) {
    BatchTaskResult result;
    result.winner = outcome.majority_winner;
    result.answered = outcome.disposition == TaskDisposition::kAnswered;
    result.counted_votes = outcome.counted_votes;
    results.push_back(result);
  }
  return results;
}

}  // namespace crowdmax
