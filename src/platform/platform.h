// The crowdsourcing platform simulator (Sections 3 and 5).
//
// CrowdPlatform models a CrowdFlower-style service: algorithms submit
// batches of pairwise comparison microtasks (one batch per logical step);
// the platform assigns each task to distinct workers drawn from its pool,
// interleaves gold questions, discards votes from workers who fail gold
// quality control, and aggregates the rest by majority vote. Physical
// steps are accounted from the pool size and per-step worker capacity,
// following the logical/physical step distinction of Section 3
// (after Venetis et al.).
//
// PlatformComparator adapts the platform to the core Comparator interface
// so every algorithm in the library can run end-to-end against the
// simulated crowd. A "simulated expert" in the paper's Section 5.3 sense is
// simply a PlatformComparator with votes_per_task = 7 (majority of seven
// naive workers) — effective in the DOTS regime, provably not in CARS.

#ifndef CROWDMAX_PLATFORM_PLATFORM_H_
#define CROWDMAX_PLATFORM_PLATFORM_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/batched.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "platform/gold.h"
#include "platform/task.h"
#include "platform/worker.h"

namespace crowdmax {

/// Static configuration of the simulated platform.
struct PlatformOptions {
  /// Size of the worker pool.
  int64_t num_workers = 50;
  /// Fraction of the pool that spams (answers uniformly at random).
  double spammer_fraction = 0.1;
  /// Per-query slip probability of honest workers, on top of the crowd
  /// answer model.
  double honest_slip_probability = 0.02;
  /// Probability that a task assignment is accompanied by one gold
  /// question (the paper: "15% of the queries that we performed are gold
  /// queries").
  double gold_task_probability = 0.15;
  /// Quality-control thresholds.
  GoldQualityControl::Options gold;
  /// Tasks one worker can complete in one physical time step.
  int64_t worker_capacity_per_physical_step = 5;
  /// Seed for worker assignment, spammer placement and tie-breaking.
  uint64_t seed = 42;
  /// Keep a full transcript of every real (non-gold) task outcome, vote by
  /// vote, for auditing/billing; read it back via transcript() or
  /// ExportTranscriptCsv(). Off by default (memory grows with usage).
  bool record_transcript = false;
};

/// The simulated crowdsourcing service.
class CrowdPlatform {
 public:
  /// `crowd_model` is the shared answer model for honest workers and
  /// `gold_truth` the ground truth used both for gold grading; neither is
  /// owned and both must outlive the platform. `gold_tasks` is the pool of
  /// gold questions (pairs valid in `gold_truth`); it may be empty, in
  /// which case no gold is interleaved and every worker stays trusted.
  static Result<std::unique_ptr<CrowdPlatform>> Create(
      Comparator* crowd_model, const Instance* gold_truth,
      std::vector<ComparisonTask> gold_tasks, const PlatformOptions& options);

  /// Heterogeneous pool (the Appendix-A generalization where "the error
  /// probability depends on ... the worker"): worker i answers through
  /// `worker_models[i]`. Requires worker_models.size() == num_workers and
  /// no null entries; models are not owned and must outlive the platform.
  /// Spammer placement still follows options.spammer_fraction (a spammer's
  /// model is ignored).
  static Result<std::unique_ptr<CrowdPlatform>> CreateHeterogeneous(
      std::vector<Comparator*> worker_models, const Instance* gold_truth,
      std::vector<ComparisonTask> gold_tasks, const PlatformOptions& options);

  /// Executes one logical step: assigns every task in `batch` to
  /// `votes_per_task` distinct workers, grades interleaved gold, discards
  /// votes from untrusted workers, and majority-aggregates the rest.
  /// Requires 1 <= votes_per_task <= num_workers and a non-empty batch.
  Result<std::vector<TaskOutcome>> SubmitBatch(
      const std::vector<ComparisonTask>& batch, int64_t votes_per_task);

  int64_t logical_steps() const { return logical_steps_; }
  int64_t physical_steps() const { return physical_steps_; }
  /// Votes collected on real (non-gold) tasks, including discarded ones.
  int64_t total_votes() const { return total_votes_; }
  /// Real-task votes discarded because the worker failed gold control.
  int64_t discarded_votes() const { return discarded_votes_; }
  /// Gold questions answered.
  int64_t gold_votes() const { return gold_votes_; }
  int64_t num_workers() const {
    return static_cast<int64_t>(workers_.size());
  }
  int64_t num_spammers() const { return num_spammers_; }
  const GoldQualityControl& gold() const { return gold_control_; }

  /// The recorded task outcomes in submission order (empty unless
  /// options.record_transcript was set).
  const std::vector<TaskOutcome>& transcript() const { return transcript_; }

  /// Writes the transcript as CSV (one row per vote: logical step, pair,
  /// worker, vote, counted flag, task majority). Returns FailedPrecondition
  /// if recording was not enabled.
  Status ExportTranscriptCsv(std::ostream& out) const;

 private:
  CrowdPlatform(std::vector<Comparator*> worker_models,
                const Instance* gold_truth,
                std::vector<ComparisonTask> gold_tasks,
                const PlatformOptions& options);

  static Status ValidateCommon(const Instance* gold_truth,
                               const std::vector<ComparisonTask>& gold_tasks,
                               const PlatformOptions& options);

  PlatformOptions options_;
  std::vector<ComparisonTask> gold_tasks_;
  GoldQualityControl gold_control_;
  std::vector<SimulatedWorker> workers_;
  Rng rng_;
  std::vector<TaskOutcome> transcript_;
  int64_t num_spammers_ = 0;
  int64_t logical_steps_ = 0;
  int64_t physical_steps_ = 0;
  int64_t total_votes_ = 0;
  int64_t discarded_votes_ = 0;
  int64_t gold_votes_ = 0;
};

/// Adapts a CrowdPlatform to the Comparator interface: each Compare()
/// submits a one-task batch with a fixed number of votes and returns the
/// majority winner. votes_per_task = 1 models a single naive query;
/// votes_per_task = 7 is the paper's "simulated expert".
class PlatformComparator : public Comparator {
 public:
  /// `platform` is not owned. Aborts (CHECK) if votes_per_task is outside
  /// [1, platform workers].
  PlatformComparator(CrowdPlatform* platform, int64_t votes_per_task);

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;

  CrowdPlatform* platform_;
  int64_t votes_per_task_;
};

/// Adapts a CrowdPlatform to the BatchExecutor interface: each batch is
/// one SubmitBatch call, i.e. exactly one platform logical step, with the
/// configured number of votes per task. Use with the Batched* algorithms
/// of core/batched.h to measure true logical-step latency on the simulated
/// crowd.
class PlatformBatchExecutor : public BatchExecutor {
 public:
  /// `platform` is not owned. Aborts (CHECK) if votes_per_task is outside
  /// [1, platform workers].
  PlatformBatchExecutor(CrowdPlatform* platform, int64_t votes_per_task);

 private:
  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  CrowdPlatform* platform_;
  int64_t votes_per_task_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_PLATFORM_PLATFORM_H_
