// The crowdsourcing platform simulator (Sections 3 and 5).
//
// CrowdPlatform models a CrowdFlower-style service: algorithms submit
// batches of pairwise comparison microtasks (one batch per logical step);
// the platform assigns each task to distinct workers drawn from its pool,
// interleaves gold questions, discards votes from workers who fail gold
// quality control, and aggregates the rest by majority vote. Physical
// steps are accounted from the pool size and per-step worker capacity,
// following the logical/physical step distinction of Section 3
// (after Venetis et al.).
//
// The paper's guarantees assume every submitted comparison comes back
// answered; real platforms lose votes to task abandonment, stragglers and
// worker churn. FaultOptions injects exactly those failure modes,
// deterministically from one fault seed, so recovery layers
// (core/resilient.h) can be exercised and replayed bit-for-bit. With the
// default (disabled) FaultOptions the platform behaves — and draws RNG —
// exactly as the fault-free simulator always did.
//
// PlatformComparator adapts the platform to the core Comparator interface
// so every algorithm in the library can run end-to-end against the
// simulated crowd. A "simulated expert" in the paper's Section 5.3 sense is
// simply a PlatformComparator with votes_per_task = 7 (majority of seven
// naive workers) — effective in the DOTS regime, provably not in CARS.

#ifndef CROWDMAX_PLATFORM_PLATFORM_H_
#define CROWDMAX_PLATFORM_PLATFORM_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/batched.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "platform/gold.h"
#include "platform/task.h"
#include "platform/worker.h"

namespace crowdmax {

/// Deterministic, seeded fault injection for the simulated platform. All
/// fields default to "off"; with every probability zero and min_quorum 1
/// the platform is bit-identical to the fault-free simulator (no extra RNG
/// draws are consumed). Abandonment and straggler draws ride each worker's
/// private RNG stream; churn, transient unavailability and churn-replacement
/// workers draw from a dedicated stream seeded by `seed`, so a fault
/// scenario is replayable from (PlatformOptions::seed, FaultOptions::seed).
struct FaultOptions {
  /// Per-assignment probability that the worker abandons the task: no vote
  /// arrives (recorded in the transcript as kAbandoned).
  double abandon_probability = 0.0;
  /// Per-assignment probability that the worker's answer misses the
  /// physical-step deadline: the late vote is recorded (kDropped) but never
  /// counted.
  double straggler_probability = 0.0;
  /// Per-worker, per-logical-step probability that the worker leaves the
  /// pool and is replaced by a fresh one (new id, fresh RNG, spammer status
  /// re-drawn from PlatformOptions::spammer_fraction, empty gold ledger).
  double churn_probability = 0.0;
  /// Per-SubmitBatch probability of a transient platform error: the call
  /// returns Unavailable without consuming a logical step or any votes.
  double unavailable_probability = 0.0;
  /// Tasks with at least one but fewer counted votes than this are flagged
  /// kNoQuorum (their majority is provisional); tasks with zero counted
  /// votes are kDropped instead of being resolved by a platform coin.
  int64_t min_quorum = 1;
  /// Seed of the dedicated fault stream (churn + transient errors).
  uint64_t seed = 0;

  /// True when any fault mode is active.
  bool enabled() const {
    return abandon_probability > 0.0 || straggler_probability > 0.0 ||
           churn_probability > 0.0 || unavailable_probability > 0.0 ||
           min_quorum > 1;
  }
};

/// Deterministic, seeded per-batch round-trip latency simulation. The
/// platform never sleeps: with the model enabled every SubmitBatch draws a
/// latency for the round trip and *reports* it (last_batch_latency_micros,
/// drained per executor via BatchExecutor::TakeSimulatedLatencyMicros);
/// what to do with the time is the execution layer's choice — the
/// synchronous engine drive sleeps it out inline, the pipelined drive
/// (core/async_executor.h) overlaps it across rounds. Latency draws ride a
/// dedicated RNG stream seeded by `seed`, so enabling the model changes no
/// answer, vote or fault draw, and a scenario replays bit-identically.
struct LatencyOptions {
  /// Fixed round-trip floor per SubmitBatch call (posting, worker pickup).
  int64_t base_micros = 0;
  /// Additional latency per task in the batch (worker throughput).
  int64_t per_task_micros = 0;
  /// Uniform jitter in [0, jitter_micros] added per call, drawn from the
  /// latency stream.
  int64_t jitter_micros = 0;
  /// Seed of the dedicated latency stream.
  uint64_t seed = 0;

  /// True when any latency term is non-zero.
  bool enabled() const {
    return base_micros > 0 || per_task_micros > 0 || jitter_micros > 0;
  }
};

/// Running totals of injected faults and their aggregation-level effects.
struct PlatformFaultStats {
  /// Assignments that never produced a vote (worker abandonment).
  int64_t abandoned_votes = 0;
  /// Votes that arrived past the deadline and were dropped.
  int64_t straggler_votes = 0;
  /// Workers replaced by pool churn.
  int64_t churned_workers = 0;
  /// SubmitBatch calls rejected with a transient Unavailable error.
  int64_t unavailable_errors = 0;
  /// Tasks answered by fewer counted votes than FaultOptions::min_quorum.
  int64_t no_quorum_tasks = 0;
  /// Tasks for which no vote was counted at all.
  int64_t dropped_tasks = 0;

  /// Votes lost to faults (abandonment + stragglers).
  int64_t votes_lost() const { return abandoned_votes + straggler_votes; }
};

/// Static configuration of the simulated platform.
struct PlatformOptions {
  /// Size of the worker pool.
  int64_t num_workers = 50;
  /// Fraction of the pool that spams (answers uniformly at random).
  double spammer_fraction = 0.1;
  /// Per-query slip probability of honest workers, on top of the crowd
  /// answer model.
  double honest_slip_probability = 0.02;
  /// Probability that a task assignment is accompanied by one gold
  /// question (the paper: "15% of the queries that we performed are gold
  /// queries").
  double gold_task_probability = 0.15;
  /// Quality-control thresholds.
  GoldQualityControl::Options gold;
  /// Tasks one worker can complete in one physical time step.
  int64_t worker_capacity_per_physical_step = 5;
  /// Seed for worker assignment, spammer placement and tie-breaking.
  uint64_t seed = 42;
  /// Keep a full transcript of every real (non-gold) task outcome, vote by
  /// vote, for auditing/billing; read it back via transcript() or
  /// ExportTranscriptCsv(). Off by default (memory grows with usage).
  bool record_transcript = false;
  /// Fault injection; disabled by default.
  FaultOptions fault;
  /// Round-trip latency simulation; disabled by default.
  LatencyOptions latency;
};

/// The simulated crowdsourcing service.
class CrowdPlatform {
 public:
  /// `crowd_model` is the shared answer model for honest workers and
  /// `gold_truth` the ground truth used both for gold grading; neither is
  /// owned and both must outlive the platform. `gold_tasks` is the pool of
  /// gold questions (pairs valid in `gold_truth`); it may be empty, in
  /// which case no gold is interleaved and every worker stays trusted.
  static Result<std::unique_ptr<CrowdPlatform>> Create(
      Comparator* crowd_model, const Instance* gold_truth,
      std::vector<ComparisonTask> gold_tasks, const PlatformOptions& options);

  /// Heterogeneous pool (the Appendix-A generalization where "the error
  /// probability depends on ... the worker"): worker i answers through
  /// `worker_models[i]`. Requires worker_models.size() == num_workers and
  /// no null entries; models are not owned and must outlive the platform.
  /// Spammer placement still follows options.spammer_fraction (a spammer's
  /// model is ignored). A churned worker in slot i keeps answering through
  /// `worker_models[i]`.
  static Result<std::unique_ptr<CrowdPlatform>> CreateHeterogeneous(
      std::vector<Comparator*> worker_models, const Instance* gold_truth,
      std::vector<ComparisonTask> gold_tasks, const PlatformOptions& options);

  /// Executes one logical step: assigns every task in `batch` to
  /// `votes_per_task` distinct workers, grades interleaved gold, discards
  /// votes from untrusted workers, and majority-aggregates the rest.
  /// Requires 1 <= votes_per_task <= num_workers and a non-empty batch.
  ///
  /// With faults enabled the call may instead return Unavailable (a
  /// transient, retryable error that consumes no step and no votes), and
  /// individual outcomes may be kNoQuorum or kDropped; callers wanting
  /// automatic recovery should go through ResilientBatchExecutor
  /// (core/resilient.h).
  Result<std::vector<TaskOutcome>> SubmitBatch(
      const std::vector<ComparisonTask>& batch, int64_t votes_per_task);

  int64_t logical_steps() const { return logical_steps_; }
  int64_t physical_steps() const { return physical_steps_; }
  /// Votes collected on real (non-gold) tasks, including discarded and
  /// late (straggler) ones; abandoned assignments never produced a vote
  /// and are not counted here.
  int64_t total_votes() const { return total_votes_; }
  /// Real-task votes discarded because the worker failed gold control.
  int64_t discarded_votes() const { return discarded_votes_; }
  /// Gold questions answered.
  int64_t gold_votes() const { return gold_votes_; }
  int64_t num_workers() const {
    return static_cast<int64_t>(workers_.size());
  }
  int64_t num_spammers() const { return num_spammers_; }
  const GoldQualityControl& gold() const { return gold_control_; }
  /// Fault-injection totals (all zero when faults are disabled).
  const PlatformFaultStats& fault_stats() const { return fault_stats_; }

  /// The simulated round-trip latency of the most recent SubmitBatch call
  /// (zero with the model off). Drawn even for calls rejected with a
  /// transient Unavailable — the round trip was wasted, not skipped.
  int64_t last_batch_latency_micros() const {
    return last_batch_latency_micros_;
  }
  /// Total simulated latency drawn across all SubmitBatch calls. This is
  /// the *serial* (sum of round trips) wall-clock cost; a pipelined run
  /// completes in less.
  int64_t total_latency_micros() const { return total_latency_micros_; }

  /// The recorded task outcomes in submission order (empty unless
  /// options.record_transcript was set).
  const std::vector<TaskOutcome>& transcript() const { return transcript_; }

  /// Writes the transcript as CSV (one row per vote: logical step, pair,
  /// worker, vote, counted flag, task majority, vote and task
  /// dispositions). All fields are RFC-4180 escaped, so dataset-derived
  /// content cannot corrupt the row structure. Returns FailedPrecondition
  /// if recording was not enabled.
  Status ExportTranscriptCsv(std::ostream& out) const;

  /// As above, with two extra `label_a`/`label_b` columns produced by
  /// `labeler` (e.g. dataset item names). Labels are escaped, so commas,
  /// quotes and newlines in item names survive a round-trip through any
  /// RFC-4180 CSV reader. `labeler` must not be null.
  Status ExportTranscriptCsv(
      std::ostream& out,
      const std::function<std::string(ElementId)>& labeler) const;

 private:
  CrowdPlatform(std::vector<Comparator*> worker_models,
                const Instance* gold_truth,
                std::vector<ComparisonTask> gold_tasks,
                const PlatformOptions& options);

  static Status ValidateCommon(const Instance* gold_truth,
                               const std::vector<ComparisonTask>& gold_tasks,
                               const PlatformOptions& options);

  /// Applies worker churn for one logical step: each worker independently
  /// leaves with probability fault.churn_probability and is replaced by a
  /// fresh worker with a new id drawn on the fault stream.
  void ApplyChurn();

  PlatformOptions options_;
  std::vector<ComparisonTask> gold_tasks_;
  GoldQualityControl gold_control_;
  std::vector<Comparator*> worker_models_;
  std::vector<SimulatedWorker> workers_;
  Rng rng_;
  Rng fault_rng_;
  Rng latency_rng_;
  int64_t last_batch_latency_micros_ = 0;
  int64_t total_latency_micros_ = 0;
  std::vector<TaskOutcome> transcript_;
  PlatformFaultStats fault_stats_;
  int32_t next_worker_id_ = 0;
  int64_t num_spammers_ = 0;
  int64_t logical_steps_ = 0;
  int64_t physical_steps_ = 0;
  int64_t total_votes_ = 0;
  int64_t discarded_votes_ = 0;
  int64_t gold_votes_ = 0;
};

/// Adapts a CrowdPlatform to the Comparator interface: each Compare()
/// submits a one-task batch with a fixed number of votes and returns the
/// majority winner. votes_per_task = 1 models a single naive query;
/// votes_per_task = 7 is the paper's "simulated expert".
///
/// Under faults the adapter retries transient errors and unresolved tasks
/// a bounded number of times per comparison; if the budget is exhausted it
/// resolves the comparison with a deterministic private coin (the
/// Comparator contract is total). Fault-aware callers should prefer
/// ResilientBatchExecutor, which reports and types its degradation.
class PlatformComparator : public Comparator {
 public:
  /// Validating factory. Returns InvalidArgument when `platform` is null
  /// or votes_per_task is outside [1, platform workers].
  static Result<std::unique_ptr<PlatformComparator>> Create(
      CrowdPlatform* platform, int64_t votes_per_task);

  /// Deprecated: aborts (CHECK) on the errors Create() reports. Kept as a
  /// thin wrapper for existing call sites; prefer Create().
  PlatformComparator(CrowdPlatform* platform, int64_t votes_per_task);

 private:
  ElementId DoCompare(ElementId a, ElementId b) override;

  CrowdPlatform* platform_;
  int64_t votes_per_task_;
  Rng fallback_rng_;
};

/// Adapts a CrowdPlatform to the BatchExecutor interface: each batch is
/// one SubmitBatch call, i.e. exactly one platform logical step, with the
/// configured number of votes per task. Use with the Batched* algorithms
/// of core/batched.h to measure true logical-step latency on the simulated
/// crowd.
///
/// The fallible TryExecuteBatch() path surfaces the platform's fault model
/// (transient Unavailable errors, kNoQuorum / kDropped outcomes) per task;
/// the legacy ExecuteBatch() path requires a fault-free run and aborts if
/// the platform misbehaves — wrap the executor in ResilientBatchExecutor
/// when faults are enabled.
class PlatformBatchExecutor : public BatchExecutor {
 public:
  /// Validating factory. Returns InvalidArgument when `platform` is null
  /// or votes_per_task is outside [1, platform workers].
  static Result<std::unique_ptr<PlatformBatchExecutor>> Create(
      CrowdPlatform* platform, int64_t votes_per_task);

  /// Deprecated: aborts (CHECK) on the errors Create() reports. Kept as a
  /// thin wrapper for existing call sites; prefer Create().
  PlatformBatchExecutor(CrowdPlatform* platform, int64_t votes_per_task);

  /// Also snapshots the platform's vote and step counters, so the
  /// *_since_reset() accessors below report per-phase platform usage, and
  /// zeroes the executor-own tallies (executor_votes / discarded) and any
  /// undrained simulated latency. Without the snapshot, algorithms that
  /// reuse one platform across phases (naive executor + expert executor)
  /// would double-count votes and steps when attributing them per phase.
  void ResetCounters() override;

  /// Platform usage attributable to work since the last ResetCounters()
  /// (or construction). Note: when several executors share one platform,
  /// each accessor reports the *platform-wide* delta since this
  /// executor's reset, not only this executor's share — use the
  /// executor_*() tallies below for exact per-executor attribution.
  int64_t platform_votes_since_reset() const;
  int64_t platform_logical_steps_since_reset() const;
  int64_t platform_physical_steps_since_reset() const;
  int64_t platform_discarded_votes_since_reset() const;

  /// Exact per-executor tallies, accumulated from the outcomes of this
  /// executor's own submissions (votes that arrived / votes discarded by
  /// gold control), regardless of how many other executors interleave on
  /// the same platform or in which order their batches complete. Reset by
  /// ResetCounters().
  int64_t executor_votes() const { return executor_votes_; }
  int64_t executor_discarded_votes() const { return executor_discarded_votes_; }

  /// Drains the simulated latency accumulated by this executor's own
  /// submissions. Each executor banks only its own draws (taken from
  /// CrowdPlatform::last_batch_latency_micros immediately after each of
  /// its SubmitBatch calls), so two executors sharing one platform never
  /// steal each other's round trips.
  int64_t TakeSimulatedLatencyMicros() override;

 private:
  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  Result<std::vector<BatchTaskResult>> DoTryExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;

  /// Folds one of this executor's submission outcomes into the executor-own
  /// tallies and banks the submission's latency draw.
  void AccountOwnSubmission(const std::vector<TaskOutcome>& outcomes);

  CrowdPlatform* platform_;
  int64_t votes_per_task_;
  int64_t votes_snapshot_ = 0;
  int64_t logical_steps_snapshot_ = 0;
  int64_t physical_steps_snapshot_ = 0;
  int64_t discarded_votes_snapshot_ = 0;
  int64_t executor_votes_ = 0;
  int64_t executor_discarded_votes_ = 0;
  int64_t pending_latency_micros_ = 0;
};

}  // namespace crowdmax

#endif  // CROWDMAX_PLATFORM_PLATFORM_H_
