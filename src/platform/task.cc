#include "platform/task.h"

namespace crowdmax {

const char* VoteDispositionName(VoteDisposition disposition) {
  switch (disposition) {
    case VoteDisposition::kCounted:
      return "counted";
    case VoteDisposition::kDiscarded:
      return "discarded";
    case VoteDisposition::kAbandoned:
      return "abandoned";
    case VoteDisposition::kDropped:
      return "dropped";
  }
  return "unknown";
}

const char* TaskDispositionName(TaskDisposition disposition) {
  switch (disposition) {
    case TaskDisposition::kAnswered:
      return "answered";
    case TaskDisposition::kNoQuorum:
      return "no_quorum";
    case TaskDisposition::kDropped:
      return "dropped";
  }
  return "unknown";
}

}  // namespace crowdmax
