// The DOTS dataset (Section 3.1): images of randomly placed dots, compared
// by "which picture has fewer dots?".
//
// The paper used rendered images on CrowdFlower; algorithms only ever see
// comparison outcomes, so we keep the dot counts (the hidden values) and
// pair them with the probabilistic worker model calibrated to Figure 2(a):
// per-query error decays with the relative count difference and answers are
// independent, so majority voting converges to the truth — the
// wisdom-of-crowds regime.

#ifndef CROWDMAX_DATASETS_DOTS_H_
#define CROWDMAX_DATASETS_DOTS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/instance.h"
#include "core/worker_model.h"

namespace crowdmax {

/// A collection of dot images identified by their dot counts.
class DotsDataset {
 public:
  /// Images with dot counts min_dots, min_dots+step, ..., <= max_dots.
  /// Requires min_dots >= 1, step >= 1, max_dots >= min_dots.
  static Result<DotsDataset> Range(int64_t min_dots, int64_t max_dots,
                                   int64_t step);

  /// The paper's main DOTS collection: counts from 100 to 1500, step 20
  /// (71 images).
  static DotsDataset Standard();

  /// The paper's golden set: counts from 200 to 800, step 20 (31 images),
  /// used for gold comparisons.
  static DotsDataset GoldenSet();

  /// Wraps an explicit list of dot counts (e.g. loaded from CSV). Requires
  /// a non-empty list of counts >= 1.
  static Result<DotsDataset> FromCounts(std::vector<int64_t> dot_counts);

  /// Deterministically subsamples `n` images. Requires n <= size().
  Result<DotsDataset> Sample(int64_t n, uint64_t seed) const;

  const std::vector<int64_t>& dot_counts() const { return dot_counts_; }
  int64_t size() const { return static_cast<int64_t>(dot_counts_.size()); }

  /// Instance for the paper's task "select the image with the fewest
  /// dots": value = -dots, so max-finding returns the sparsest image.
  Instance ToInstance() const;

 private:
  explicit DotsDataset(std::vector<int64_t> dot_counts);

  std::vector<int64_t> dot_counts_;
};

/// Worker model calibrated to Figure 2(a): single-worker accuracy ~0.6 for
/// relative differences under 10%, rising with the difference, and
/// independent across queries so majority voting approaches accuracy 1.
RelativeErrorComparator::Options DotsWorkerModel();

}  // namespace crowdmax

#endif  // CROWDMAX_DATASETS_DOTS_H_
