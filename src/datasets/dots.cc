#include "datasets/dots.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"

namespace crowdmax {

DotsDataset::DotsDataset(std::vector<int64_t> dot_counts)
    : dot_counts_(std::move(dot_counts)) {}

Result<DotsDataset> DotsDataset::Range(int64_t min_dots, int64_t max_dots,
                                       int64_t step) {
  if (min_dots < 1) return Status::InvalidArgument("min_dots must be >= 1");
  if (step < 1) return Status::InvalidArgument("step must be >= 1");
  if (max_dots < min_dots) {
    return Status::InvalidArgument("max_dots must be >= min_dots");
  }
  std::vector<int64_t> counts;
  for (int64_t d = min_dots; d <= max_dots; d += step) counts.push_back(d);
  return DotsDataset(std::move(counts));
}

DotsDataset DotsDataset::Standard() {
  return std::move(Range(100, 1500, 20)).value();
}

DotsDataset DotsDataset::GoldenSet() {
  return std::move(Range(200, 800, 20)).value();
}

Result<DotsDataset> DotsDataset::FromCounts(std::vector<int64_t> dot_counts) {
  if (dot_counts.empty()) {
    return Status::InvalidArgument("dot_counts must be non-empty");
  }
  for (int64_t count : dot_counts) {
    if (count < 1) return Status::InvalidArgument("dot counts must be >= 1");
  }
  return DotsDataset(std::move(dot_counts));
}

Result<DotsDataset> DotsDataset::Sample(int64_t n, uint64_t seed) const {
  if (n < 1 || n > size()) {
    return Status::InvalidArgument("sample size out of range");
  }
  Rng rng(seed);
  std::vector<size_t> picks = rng.SampleWithoutReplacement(
      dot_counts_.size(), static_cast<size_t>(n));
  std::sort(picks.begin(), picks.end());
  std::vector<int64_t> counts;
  counts.reserve(picks.size());
  for (size_t i : picks) counts.push_back(dot_counts_[i]);
  return DotsDataset(std::move(counts));
}

Instance DotsDataset::ToInstance() const {
  std::vector<double> values;
  values.reserve(dot_counts_.size());
  for (int64_t d : dot_counts_) values.push_back(-static_cast<double>(d));
  return Instance(std::move(values));
}

RelativeErrorComparator::Options DotsWorkerModel() {
  RelativeErrorComparator::Options options;
  // Calibrated to Figure 2(a): ~0.40 error at 5% relative difference
  // (the midpoint of the hardest bucket), ~0.26 at 15%, ~0.16 at 25%.
  options.base_error = 0.5;
  options.decay = 4.5;
  options.max_error = 0.5;
  return options;
}

}  // namespace crowdmax
