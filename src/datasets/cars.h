// The CARS dataset (Section 3.1): new-car listings compared by "which car
// is more expensive?".
//
// The paper scraped ~5000 cars from cars.com and curated 110 with prices
// between $14k and $130k and pairwise price gaps of at least $500. We
// synthesize an equivalent catalog (prices on a $500 grid plus realistic
// make/model/body metadata) and pair it with the persistent-bias worker
// model calibrated to Figure 2(b): below ~20% relative price difference the
// crowd holds a persistent, often wrong, opinion, so majority voting
// plateaus at 0.6-0.7 — the regime where experts are indispensable.

#ifndef CROWDMAX_DATASETS_CARS_H_
#define CROWDMAX_DATASETS_CARS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/instance.h"
#include "core/worker_model.h"

namespace crowdmax {

/// One synthetic car listing.
struct Car {
  std::string make;
  std::string model;
  std::string body_style;
  int year = 2013;
  int doors = 4;
  /// Sticker price in dollars; the hidden comparison value.
  double price = 0.0;
};

/// A synthetic cars.com-style catalog.
class CarsDataset {
 public:
  /// Generates `num_cars` listings with distinct prices on a $500 grid in
  /// [min_price, max_price], so every pairwise gap is >= $500, and with no
  /// repeated (make, model, year) combination — mirroring the paper's
  /// cleaning rules. Requires the grid to have at least num_cars slots.
  static Result<CarsDataset> Generate(int64_t num_cars, uint64_t seed,
                                      double min_price = 14000.0,
                                      double max_price = 130000.0);

  /// The paper's configuration: 110 cars, $14k-$130k.
  static CarsDataset Standard(uint64_t seed);

  /// Wraps an existing list of cars (e.g. loaded from CSV). Requires a
  /// non-empty list with positive prices; the $500-gap and uniqueness
  /// constraints of Generate() are the generator's promise, not enforced
  /// here.
  static Result<CarsDataset> FromCars(std::vector<Car> cars);

  /// Deterministically subsamples `n` cars. Requires n <= size().
  Result<CarsDataset> Sample(int64_t n, uint64_t seed) const;

  const std::vector<Car>& cars() const { return cars_; }
  int64_t size() const { return static_cast<int64_t>(cars_.size()); }

  /// Instance for "select the most expensive car": value = price.
  Instance ToInstance() const;

 private:
  explicit CarsDataset(std::vector<Car> cars);

  std::vector<Car> cars_;
};

/// Worker model calibrated to Figure 2(b): majority-vote accuracy plateaus
/// at ~0.6 for relative price differences up to 10% and ~0.7 up to 20%,
/// while larger differences behave probabilistically and converge to 1.
PersistentBiasComparator::Options CarsWorkerModel();

}  // namespace crowdmax

#endif  // CROWDMAX_DATASETS_CARS_H_
