#include "datasets/instances.h"

#include <utility>
#include <vector>

#include "common/rng.h"

namespace crowdmax {

Result<Instance> UniformInstance(int64_t n, uint64_t seed, double lo,
                                 double hi) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (!(lo < hi)) return Status::InvalidArgument("need lo < hi");
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) values.push_back(rng.NextDouble(lo, hi));
  return Instance(std::move(values));
}

Result<Instance> PackedInstance(int64_t n, uint64_t seed, double center,
                                double spread) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (spread <= 0.0) return Status::InvalidArgument("spread must be > 0");
  Rng rng(seed);
  // Evenly spaced distinct values in [center, center + spread], visited in
  // a random order so element id does not encode rank.
  std::vector<double> values(static_cast<size_t>(n));
  // The shrink factor keeps center + (n-1)*step within [center, center +
  // spread] despite floating-point rounding of the additions.
  const double step =
      n > 1 ? spread * (1.0 - 1e-9) / static_cast<double>(n - 1) : 0.0;
  std::vector<size_t> slots(static_cast<size_t>(n));
  for (size_t i = 0; i < slots.size(); ++i) slots[i] = i;
  rng.Shuffle(&slots);
  for (size_t i = 0; i < slots.size(); ++i) {
    values[i] = center + static_cast<double>(slots[i]) * step;
  }
  return Instance(std::move(values));
}

Result<Lemma7Instance> MakeLemma7Instance(int64_t n, int64_t u_n,
                                          double delta_n) {
  if (n < 2) return Status::InvalidArgument("n must be >= 2");
  if (u_n < 1 || u_n > n) {
    return Status::InvalidArgument("need 1 <= u_n <= n");
  }
  if (delta_n <= 0.0) return Status::InvalidArgument("delta_n must be > 0");

  const double v_max = 10.0 * delta_n;  // Arbitrary anchor value for e*.
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  values.push_back(v_max);  // e* = element 0.

  // E2: u_n - 1 elements at distance ~0.8*delta_n, within the naive
  // threshold of e*; tiny even spacing keeps them distinct while staying
  // mutually indistinguishable.
  const int64_t e2_count = u_n - 1;
  for (int64_t i = 0; i < e2_count; ++i) {
    const double jitter =
        e2_count > 1 ? 0.01 * delta_n * static_cast<double>(i) /
                           static_cast<double>(e2_count - 1)
                     : 0.0;
    values.push_back(v_max - 0.8 * delta_n + jitter);
  }

  // E1: the remaining elements spread evenly over [1.45, 1.55]*delta_n
  // below e*.
  const int64_t e1_count = n - u_n;
  for (int64_t i = 0; i < e1_count; ++i) {
    const double offset =
        e1_count > 1 ? 0.1 * delta_n * static_cast<double>(i) /
                           static_cast<double>(e1_count - 1)
                     : 0.05 * delta_n;
    values.push_back(v_max - 1.45 * delta_n - offset);
  }

  Lemma7Instance out{Instance(std::move(values)), /*claimed_max=*/0, delta_n};
  return out;
}

}  // namespace crowdmax
