#include "datasets/cars.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "common/rng.h"

namespace crowdmax {

namespace {

constexpr std::array<const char*, 20> kMakes = {
    "BMW",      "Audi",    "Mercedes-Benz", "Porsche",    "Lexus",
    "Jaguar",   "Cadillac", "Infiniti",     "Land Rover", "Chevrolet",
    "Toyota",   "Honda",   "Ford",          "Hyundai",    "Kia",
    "Volvo",    "Subaru",  "Mazda",         "Nissan",     "Volkswagen"};

constexpr std::array<const char*, 12> kModelStems = {
    "Apex",   "Meridian", "Vantage", "Summit", "Cascade", "Horizon",
    "Sierra", "Atlas",    "Vector",  "Solara", "Tempest", "Legend"};

constexpr std::array<const char*, 7> kBodyStyles = {
    "sedan", "SUV", "coupe", "convertible", "wagon", "hatchback", "truck"};

}  // namespace

CarsDataset::CarsDataset(std::vector<Car> cars) : cars_(std::move(cars)) {}

Result<CarsDataset> CarsDataset::Generate(int64_t num_cars, uint64_t seed,
                                          double min_price,
                                          double max_price) {
  if (num_cars < 1) return Status::InvalidArgument("num_cars must be >= 1");
  if (!(min_price < max_price)) {
    return Status::InvalidArgument("need min_price < max_price");
  }
  const int64_t slots =
      static_cast<int64_t>(std::floor((max_price - min_price) / 500.0)) + 1;
  if (slots < num_cars) {
    return Status::InvalidArgument(
        "price grid too small for num_cars with $500 gaps");
  }

  Rng rng(seed);
  // Distinct $500-grid prices guarantee the paper's >= $500 pairwise gap.
  std::vector<size_t> price_slots = rng.SampleWithoutReplacement(
      static_cast<size_t>(slots), static_cast<size_t>(num_cars));

  std::vector<Car> cars;
  cars.reserve(static_cast<size_t>(num_cars));
  for (int64_t i = 0; i < num_cars; ++i) {
    Car car;
    car.price = min_price + 500.0 * static_cast<double>(price_slots[i]);
    // Unique (make, model, year): walk makes round-robin and derive a
    // model name from the per-make sequence number, so no combination
    // repeats (the paper's de-duplication rule).
    const size_t make_index = static_cast<size_t>(i) % kMakes.size();
    const int64_t series = i / static_cast<int64_t>(kMakes.size());
    car.make = kMakes[make_index];
    car.model = std::string(kModelStems[static_cast<size_t>(series) %
                                        kModelStems.size()]) +
                " " + std::to_string(100 + 10 * series);
    car.body_style = kBodyStyles[rng.NextBounded(kBodyStyles.size())];
    car.year = rng.NextBernoulli(0.7) ? 2013 : 2012;
    car.doors = car.body_style == std::string("coupe") ||
                        car.body_style == std::string("convertible")
                    ? 2
                    : 4;
    cars.push_back(std::move(car));
  }
  return CarsDataset(std::move(cars));
}

CarsDataset CarsDataset::Standard(uint64_t seed) {
  return std::move(Generate(110, seed)).value();
}

Result<CarsDataset> CarsDataset::FromCars(std::vector<Car> cars) {
  if (cars.empty()) return Status::InvalidArgument("car list must be non-empty");
  for (const Car& car : cars) {
    if (car.price <= 0.0) {
      return Status::InvalidArgument("car prices must be positive");
    }
  }
  return CarsDataset(std::move(cars));
}

Result<CarsDataset> CarsDataset::Sample(int64_t n, uint64_t seed) const {
  if (n < 1 || n > size()) {
    return Status::InvalidArgument("sample size out of range");
  }
  Rng rng(seed);
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(cars_.size(), static_cast<size_t>(n));
  std::sort(picks.begin(), picks.end());
  std::vector<Car> sampled;
  sampled.reserve(picks.size());
  for (size_t i : picks) sampled.push_back(cars_[i]);
  return CarsDataset(std::move(sampled));
}

Instance CarsDataset::ToInstance() const {
  std::vector<double> values;
  values.reserve(cars_.size());
  for (const Car& car : cars_) values.push_back(car.price);
  return Instance(std::move(values));
}

PersistentBiasComparator::Options CarsWorkerModel() {
  PersistentBiasComparator::Options options;
  // Figure 2(b): accuracy plateaus at ~0.6 for rel. difference <= 10% and
  // ~0.7 for <= 20%; above that, per-query errors are independent and
  // majority voting converges to 1.
  options.buckets = {{0.10, 0.60}, {0.20, 0.70}};
  options.individual_noise = 0.28;
  options.above_threshold_error = 0.15;
  return options;
}

}  // namespace crowdmax
