// The search-result evaluation scenario (Section 5.3).
//
// The paper took two literature queries ("asymmetric tsp best
// approximation", "steiner tree best approximation"), sampled 50 of the
// top-100 Google results for each, and asked CrowdFlower workers (naive)
// and algorithms researchers (experts) which result was best. We synthesize
// relevance-scored result lists with the same structure: one clearly best
// result (the recent state-of-the-art paper), a handful of
// nearly-as-relevant results a naive worker cannot separate from it, and a
// long tail of less relevant hits.

#ifndef CROWDMAX_DATASETS_SEARCH_H_
#define CROWDMAX_DATASETS_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/instance.h"
#include "core/worker_model.h"

namespace crowdmax {

/// One synthetic search result.
struct SearchResult {
  /// 1-based rank at which the engine served this result (<= top_k).
  int64_t serp_position = 1;
  /// Hidden relevance in (0, 1]; the best result has the maximum.
  double relevance = 0.0;
  /// Display title, e.g. "result-17 for <query>".
  std::string title;
};

/// Configuration of the generator.
struct SearchQueryOptions {
  /// Results sampled from the engine's top `top_k` positions (the paper
  /// samples 50 of the top 100, uniformly across positions).
  int64_t num_results = 50;
  int64_t top_k = 100;
  /// Relevance margin separating the best result from the runner-up block;
  /// experts can resolve it, naive workers cannot.
  double best_margin = 0.03;
  /// Number of near-best results packed within the naive threshold of the
  /// best (controls the effective u_n of the instance).
  int64_t near_best_count = 7;
};

/// A synthetic result list for one query.
class SearchQueryDataset {
 public:
  static Result<SearchQueryDataset> Generate(const std::string& query,
                                             const SearchQueryOptions& options,
                                             uint64_t seed);

  const std::string& query() const { return query_; }
  const std::vector<SearchResult>& results() const { return results_; }
  int64_t size() const { return static_cast<int64_t>(results_.size()); }

  /// Instance for "select the most relevant result": value = relevance.
  Instance ToInstance() const;

  /// A naive-threshold suggestion for this list: the distance realizing
  /// roughly the configured near-best block.
  double SuggestedNaiveDelta() const;

 private:
  SearchQueryDataset(std::string query, std::vector<SearchResult> results);

  std::string query_;
  std::vector<SearchResult> results_;
};

/// Naive CrowdFlower-style worker for relevance judgments: threshold model
/// with `delta` on the relevance scale and a small residual error.
ThresholdComparator::Options SearchNaiveWorkerModel(double delta);

/// Expert judge (an algorithms researcher): near-zero threshold, no
/// residual error.
ThresholdComparator::Options SearchExpertWorkerModel();

}  // namespace crowdmax

#endif  // CROWDMAX_DATASETS_SEARCH_H_
