// Synthetic problem-instance generators used throughout the evaluation.
//
// UniformInstance reproduces the paper's random inputs ("we selected n
// random values independently and uniformly at random from a range");
// PackedInstance and MakeLemma7Instance build the adversarial inputs used
// for worst-case and lower-bound experiments.

#ifndef CROWDMAX_DATASETS_INSTANCES_H_
#define CROWDMAX_DATASETS_INSTANCES_H_

#include <cstdint>

#include "common/status.h"
#include "core/instance.h"

namespace crowdmax {

/// n values drawn i.i.d. uniform from [lo, hi). Requires n >= 1, lo < hi.
Result<Instance> UniformInstance(int64_t n, uint64_t seed, double lo = 0.0,
                                 double hi = 1.0);

/// n distinct values packed inside [center, center + spread]: for any
/// threshold delta >= spread every pair is indistinguishable, which drives
/// threshold-model algorithms (combined with AdversarialComparator) to
/// their worst case. Requires n >= 1 and spread > 0.
Result<Instance> PackedInstance(int64_t n, uint64_t seed, double center = 0.5,
                                double spread = 1e-6);

/// The instance family from the proof of Lemma 7 (Figure 8): a claimed
/// maximum e*, a block E2 of u_n - 1 elements at distance 0.8*delta_n from
/// e* (naive-indistinguishable from it), and a block E1 with the remaining
/// n - u_n elements spread evenly over an interval of length 0.1*delta_n
/// centred at distance 1.5*delta_n (distinguishable from e*, mutually
/// indistinguishable). Any naive-only algorithm that rules e* out without
/// u_n comparisons involving it is wrong on some instance of this family.
struct Lemma7Instance {
  Instance instance;
  /// The planted maximum e* (always element 0).
  ElementId claimed_max = 0;
  /// The naive threshold the construction is calibrated for.
  double delta_n = 0.0;
};

/// Builds the Lemma 7 instance. Requires n >= 2, 1 <= u_n <= n, and
/// delta_n > 0.
Result<Lemma7Instance> MakeLemma7Instance(int64_t n, int64_t u_n,
                                          double delta_n);

}  // namespace crowdmax

#endif  // CROWDMAX_DATASETS_INSTANCES_H_
