#include "datasets/io.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace crowdmax {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

Status ExpectHeader(std::istream& in, const std::string& expected) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty input: missing header");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != expected) {
    return Status::InvalidArgument("unexpected header: \"" + line +
                                   "\" (want \"" + expected + "\")");
  }
  return Status::OK();
}

Result<double> ParseDouble(const std::string& field, int64_t line_number) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number \"" + field + "\" on line " +
                                   std::to_string(line_number));
  }
  return value;
}

Result<int64_t> ParseInt(const std::string& field, int64_t line_number) {
  char* end = nullptr;
  const long long value = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer \"" + field + "\" on line " +
                                   std::to_string(line_number));
  }
  return static_cast<int64_t>(value);
}

std::string FormatPrice(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

std::string FormatValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

Status WriteInstanceCsv(const Instance& instance, std::ostream& out) {
  out << "id,value\n";
  for (ElementId e = 0; e < instance.size(); ++e) {
    out << e << ',' << FormatValue(instance.value(e)) << '\n';
  }
  return Status::OK();
}

Result<Instance> ReadInstanceCsv(std::istream& in) {
  if (Status status = ExpectHeader(in, "id,value"); !status.ok()) {
    return status;
  }
  std::vector<double> values;
  std::string line;
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 2) {
      return Status::InvalidArgument("expected 2 columns on line " +
                                     std::to_string(line_number));
    }
    Result<int64_t> id = ParseInt(fields[0], line_number);
    if (!id.ok()) return id.status();
    if (*id != static_cast<int64_t>(values.size())) {
      return Status::InvalidArgument("ids must be dense and ordered (line " +
                                     std::to_string(line_number) + ")");
    }
    Result<double> value = ParseDouble(fields[1], line_number);
    if (!value.ok()) return value.status();
    values.push_back(*value);
  }
  if (values.empty()) {
    return Status::InvalidArgument("instance has no rows");
  }
  return Instance(std::move(values));
}

Status WriteDotsCsv(const DotsDataset& dots, std::ostream& out) {
  out << "image,dots\n";
  for (size_t i = 0; i < dots.dot_counts().size(); ++i) {
    out << i << ',' << dots.dot_counts()[i] << '\n';
  }
  return Status::OK();
}

Result<DotsDataset> ReadDotsCsv(std::istream& in) {
  if (Status status = ExpectHeader(in, "image,dots"); !status.ok()) {
    return status;
  }
  std::vector<int64_t> counts;
  std::string line;
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 2) {
      return Status::InvalidArgument("expected 2 columns on line " +
                                     std::to_string(line_number));
    }
    Result<int64_t> count = ParseInt(fields[1], line_number);
    if (!count.ok()) return count.status();
    counts.push_back(*count);
  }
  return DotsDataset::FromCounts(std::move(counts));
}

Status WriteCarsCsv(const CarsDataset& cars, std::ostream& out) {
  for (const Car& car : cars.cars()) {
    if (car.make.find(',') != std::string::npos ||
        car.model.find(',') != std::string::npos ||
        car.body_style.find(',') != std::string::npos) {
      return Status::InvalidArgument(
          "car fields must not contain commas: " + car.make + " " +
          car.model);
    }
  }
  out << "make,model,body_style,year,doors,price\n";
  for (const Car& car : cars.cars()) {
    out << car.make << ',' << car.model << ',' << car.body_style << ','
        << car.year << ',' << car.doors << ',' << FormatPrice(car.price)
        << '\n';
  }
  return Status::OK();
}

Result<CarsDataset> ReadCarsCsv(std::istream& in) {
  if (Status status =
          ExpectHeader(in, "make,model,body_style,year,doors,price");
      !status.ok()) {
    return status;
  }
  std::vector<Car> cars;
  std::string line;
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 6) {
      return Status::InvalidArgument("expected 6 columns on line " +
                                     std::to_string(line_number));
    }
    Car car;
    car.make = fields[0];
    car.model = fields[1];
    car.body_style = fields[2];
    Result<int64_t> year = ParseInt(fields[3], line_number);
    if (!year.ok()) return year.status();
    car.year = static_cast<int>(*year);
    Result<int64_t> doors = ParseInt(fields[4], line_number);
    if (!doors.ok()) return doors.status();
    car.doors = static_cast<int>(*doors);
    Result<double> price = ParseDouble(fields[5], line_number);
    if (!price.ok()) return price.status();
    car.price = *price;
    cars.push_back(std::move(car));
  }
  return CarsDataset::FromCars(std::move(cars));
}

}  // namespace crowdmax
