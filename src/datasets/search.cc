#include "datasets/search.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.h"

namespace crowdmax {

SearchQueryDataset::SearchQueryDataset(std::string query,
                                       std::vector<SearchResult> results)
    : query_(std::move(query)), results_(std::move(results)) {}

Result<SearchQueryDataset> SearchQueryDataset::Generate(
    const std::string& query, const SearchQueryOptions& options,
    uint64_t seed) {
  if (options.num_results < 2) {
    return Status::InvalidArgument("num_results must be >= 2");
  }
  if (options.top_k < options.num_results) {
    return Status::InvalidArgument("top_k must be >= num_results");
  }
  if (options.near_best_count < 0 ||
      options.near_best_count >= options.num_results) {
    return Status::InvalidArgument("near_best_count out of range");
  }
  if (options.best_margin <= 0.0 || options.best_margin >= 0.5) {
    return Status::InvalidArgument("best_margin must be in (0, 0.5)");
  }

  Rng rng(seed);
  // Sample distinct SERP positions uniformly across the top_k (the paper:
  // "50 results from Google, distributed uniformly among the top-100").
  std::vector<size_t> positions = rng.SampleWithoutReplacement(
      static_cast<size_t>(options.top_k),
      static_cast<size_t>(options.num_results));
  std::sort(positions.begin(), positions.end());

  std::vector<SearchResult> results;
  results.reserve(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    SearchResult r;
    r.serp_position = static_cast<int64_t>(positions[i]) + 1;
    r.title = "result-" + std::to_string(r.serp_position) + " for \"" +
              query + "\"";
    results.push_back(std::move(r));
  }

  // Relevance structure: index 0 of the *sampled list order after
  // shuffling* is not special — instead pick a random sampled result as
  // the true best, give a block of near-best results just under it, and
  // let the rest decay with SERP position plus noise.
  const size_t best_index = static_cast<size_t>(
      rng.NextBounded(results.size()));
  const double best_relevance = 0.97;
  const double near_best_floor = best_relevance - options.best_margin;

  // Choose the near-best block among the other results.
  std::vector<size_t> others;
  for (size_t i = 0; i < results.size(); ++i) {
    if (i != best_index) others.push_back(i);
  }
  rng.Shuffle(&others);

  for (size_t i = 0; i < results.size(); ++i) {
    if (i == best_index) {
      results[i].relevance = best_relevance;
    }
  }
  for (size_t k = 0; k < others.size(); ++k) {
    SearchResult& r = results[others[k]];
    if (static_cast<int64_t>(k) < options.near_best_count) {
      // Packed just below the best, inside the naive threshold: distinct
      // values spread over half the margin.
      const double offset =
          options.best_margin *
          (0.2 + 0.5 * static_cast<double>(k) /
                     std::max<double>(1.0, static_cast<double>(
                                               options.near_best_count)));
      r.relevance = best_relevance - offset;
    } else {
      // Tail: decays with SERP position, with noise, capped well below the
      // near-best block.
      const double pos = static_cast<double>(r.serp_position);
      const double base = 0.75 * std::exp(-pos / 45.0);
      const double noisy = base + rng.NextDouble(-0.05, 0.05);
      r.relevance = std::clamp(noisy, 0.01, near_best_floor - 0.05);
    }
  }
  return SearchQueryDataset(query, std::move(results));
}

Instance SearchQueryDataset::ToInstance() const {
  std::vector<double> values;
  values.reserve(results_.size());
  for (const SearchResult& r : results_) values.push_back(r.relevance);
  return Instance(std::move(values));
}

double SearchQueryDataset::SuggestedNaiveDelta() const {
  // Place the threshold in the middle of the widest gap in the sorted
  // distances-from-best, so the near-best block (and only it) falls inside.
  double best = 0.0;
  for (const SearchResult& r : results_) best = std::max(best, r.relevance);
  std::vector<double> distances;
  distances.reserve(results_.size());
  for (const SearchResult& r : results_) distances.push_back(best - r.relevance);
  std::sort(distances.begin(), distances.end());
  double widest_gap = 0.0;
  double delta = distances.back() / 2.0;
  for (size_t i = 1; i < distances.size(); ++i) {
    const double gap = distances[i] - distances[i - 1];
    if (gap > widest_gap) {
      widest_gap = gap;
      delta = (distances[i] + distances[i - 1]) / 2.0;
    }
  }
  return delta;
}

ThresholdComparator::Options SearchNaiveWorkerModel(double delta) {
  ThresholdComparator::Options options;
  options.model.delta = delta;
  options.model.epsilon = 0.08;  // Occasional slips on easy judgments.
  options.tie_policy = TiePolicy::kFreshCoin;
  options.below_threshold_correct_prob = 0.5;
  return options;
}

ThresholdComparator::Options SearchExpertWorkerModel() {
  ThresholdComparator::Options options;
  options.model.delta = 0.005;  // Resolves everything but exact ties.
  options.model.epsilon = 0.0;
  options.tie_policy = TiePolicy::kFreshCoin;
  return options;
}

}  // namespace crowdmax
