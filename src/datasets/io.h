// CSV import/export for instances and catalogs.
//
// Stream-based (callers own file handling), so the code stays testable and
// free of <filesystem>. Formats are stable, header-first, plain CSV; every
// reader validates the header and column counts and reports the offending
// line on failure.
//
//   instance.csv : id,value
//   dots.csv     : image,dots
//   cars.csv     : make,model,body_style,year,doors,price

#ifndef CROWDMAX_DATASETS_IO_H_
#define CROWDMAX_DATASETS_IO_H_

#include <iosfwd>

#include "common/status.h"
#include "core/instance.h"
#include "datasets/cars.h"
#include "datasets/dots.h"

namespace crowdmax {

/// Writes `instance` as "id,value" rows.
Status WriteInstanceCsv(const Instance& instance, std::ostream& out);

/// Reads an instance written by WriteInstanceCsv. Ids must be dense and in
/// order (0, 1, ...).
Result<Instance> ReadInstanceCsv(std::istream& in);

/// Writes the dots catalog as "image,dots" rows.
Status WriteDotsCsv(const DotsDataset& dots, std::ostream& out);

/// Reads a dots catalog written by WriteDotsCsv.
Result<DotsDataset> ReadDotsCsv(std::istream& in);

/// Writes the car catalog as "make,model,body_style,year,doors,price"
/// rows. Fields must not contain commas (the synthetic catalog never
/// does); returns InvalidArgument otherwise rather than emitting a
/// malformed file.
Status WriteCarsCsv(const CarsDataset& cars, std::ostream& out);

/// Reads a car catalog written by WriteCarsCsv.
Result<CarsDataset> ReadCarsCsv(std::istream& in);

}  // namespace crowdmax

#endif  // CROWDMAX_DATASETS_IO_H_
