// Single-worker-class baselines (Section 5.1).
//
// The paper compares Algorithm 1 against 2-MaxFind run with only one worker
// class: "2-MaxFind-naive" (cheap but inaccurate once u_n grows) and
// "2-MaxFind-expert" (accurate but pays expert prices for all Theta(n^{3/2})
// comparisons). These are thin, documented wrappers over the phase-2
// solvers with per-class cost reporting.

#ifndef CROWDMAX_BASELINES_SINGLE_CLASS_H_
#define CROWDMAX_BASELINES_SINGLE_CLASS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/cost.h"
#include "core/instance.h"
#include "core/maxfind.h"

namespace crowdmax {

/// Which worker class a single-class run bills its comparisons to.
enum class WorkerClass { kNaive, kExpert };

/// Outcome of a single-class baseline run.
struct SingleClassResult {
  ElementId best = -1;
  WorkerClass billed_to = WorkerClass::kNaive;
  int64_t paid_comparisons = 0;
  int64_t issued_comparisons = 0;
  int64_t rounds = 0;

  /// Monetary cost under `model`, billed to the configured class.
  double CostUnder(const CostModel& model) const {
    return billed_to == WorkerClass::kNaive
               ? model.Cost(paid_comparisons, 0)
               : model.Cost(0, paid_comparisons);
  }
};

/// 2-MaxFind-naive: Algorithm 3 run entirely with naive workers. Its
/// output can be up to 2*delta_n from the maximum — poor when u_n is large.
Result<SingleClassResult> TwoMaxFindNaiveOnly(
    const std::vector<ElementId>& items, Comparator* naive,
    const TwoMaxFindOptions& options = {});

/// 2-MaxFind-expert: Algorithm 3 run entirely with experts. Accuracy
/// matches Algorithm 1 but every comparison is billed at expert prices.
Result<SingleClassResult> TwoMaxFindExpertOnly(
    const std::vector<ElementId>& items, Comparator* expert,
    const TwoMaxFindOptions& options = {});

}  // namespace crowdmax

#endif  // CROWDMAX_BASELINES_SINGLE_CLASS_H_
