// Recursive-tournament max baseline after Marcus et al., "Human-powered
// sorts and joins" (VLDB 2011), discussed in the paper's related work:
// split the input into non-overlapping equal-size groups, determine each
// group's winner with human comparisons, and recurse on the winners until
// one element remains. The paper notes no accuracy/running-time guarantee
// is given for this scheme under imprecise comparisons.

#ifndef CROWDMAX_BASELINES_MARCUS_H_
#define CROWDMAX_BASELINES_MARCUS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/maxfind.h"

namespace crowdmax {

/// Options for the Marcus-style recursive tournament.
struct MarcusOptions {
  /// Elements per group at every level; the group winner is the element
  /// with the most wins in the group's all-play-all tournament. Must be
  /// >= 2.
  int64_t group_size = 5;

  /// Parallel round-engine backend (core/round_engine.h). 0 = serial
  /// (default, answers through the caller's comparator in program order);
  /// >= 1 plays each level's group tournaments concurrently through
  /// per-group Comparator::Fork children seeded in group order, with
  /// bit-identical results for every threads >= 1. Requires a forkable
  /// comparator.
  int64_t threads = 0;

  /// Seed of the per-group fork chain used when threads >= 1.
  uint64_t parallel_seed = 0x9E3779B97F4A7C15ULL;
};

/// Runs the recursive tournament over `items` (distinct ids, non-empty).
/// Result.rounds is the number of tournament levels played.
Result<MaxFindResult> MarcusTournamentMax(const std::vector<ElementId>& items,
                                          Comparator* comparator,
                                          const MarcusOptions& options = {});

}  // namespace crowdmax

#endif  // CROWDMAX_BASELINES_MARCUS_H_
