#include "baselines/marcus.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "core/round_engine.h"
#include "core/tournament.h"

namespace crowdmax {

namespace {

// One ladder level per round: disjoint group tournaments, per-group winner
// selection at the level barrier in group order, a singleton bye advancing
// free. Identical for any thread count by the engine's seeding discipline.
class MarcusRoundSource : public RoundSource {
 public:
  MarcusRoundSource(const std::vector<ElementId>& items,
                    const MarcusOptions& options)
      : group_size_(static_cast<size_t>(options.group_size)),
        current_(items) {}

  Result<bool> NextRound(EngineRound* round) override {
    if (current_.size() <= 1) return false;
    // Only the final group can be short; a singleton advances as a bye.
    groups_.clear();
    has_bye_ = false;
    for (size_t start = 0; start < current_.size(); start += group_size_) {
      const size_t end = std::min(current_.size(), start + group_size_);
      if (end - start == 1) {
        has_bye_ = true;
        bye_ = current_[start];
      } else {
        groups_.emplace_back(current_.begin() + start, current_.begin() + end);
      }
    }
    round->units.reserve(groups_.size());
    for (const std::vector<ElementId>& group : groups_) {
      RoundUnit unit;
      unit.serial_span = "all_play_all";
      unit.serial_span_size = static_cast<int64_t>(group.size());
      unit.pairs.reserve(group.size() * (group.size() - 1) / 2);
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j) {
          unit.pairs.push_back({group[i], group[j]});
        }
      }
      round->units.push_back(std::move(unit));
    }
    return true;
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    ++result_.rounds;
    result_.issued_comparisons += outcome.issued;
    std::vector<ElementId> winners;
    winners.reserve(groups_.size() + 1);
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      const std::vector<ElementId>& group = groups_[gi];
      const std::vector<ElementId>& pair_winners = outcome.winners[gi];
      TournamentResult tournament;
      tournament.wins.assign(group.size(), 0);
      size_t t = 0;
      for (size_t i = 0; i < group.size(); ++i) {
        for (size_t j = i + 1; j < group.size(); ++j, ++t) {
          const ElementId winner = pair_winners[t];
          if (winner == kUnresolvedWinner) continue;  // No win to either.
          ++tournament.wins[winner == group[i] ? i : j];
        }
      }
      winners.push_back(group[IndexOfMostWins(tournament)]);
    }
    if (has_bye_) winners.push_back(bye_);
    current_ = std::move(winners);
    return Status::OK();
  }

  MaxFindResult Finish(int64_t paid_delta) {
    result_.best = current_[0];
    result_.paid_comparisons = paid_delta;
    return std::move(result_);
  }

 private:
  const size_t group_size_;
  std::vector<ElementId> current_;
  std::vector<std::vector<ElementId>> groups_;
  bool has_bye_ = false;
  ElementId bye_ = -1;
  MaxFindResult result_;
};

}  // namespace

Result<MaxFindResult> MarcusTournamentMax(const std::vector<ElementId>& items,
                                          Comparator* comparator,
                                          const MarcusOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.group_size < 2) {
    return Status::InvalidArgument("group_size must be >= 2");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  {
    std::unordered_set<ElementId> seen;
    for (ElementId e : items) {
      if (!seen.insert(e).second) {
        return Status::InvalidArgument("duplicate element id in input");
      }
    }
  }

  std::unique_ptr<RoundEngine> engine;
  if (options.threads >= 1) {
    Result<std::unique_ptr<RoundEngine>> parallel = RoundEngine::CreateParallel(
        comparator, options.threads, options.parallel_seed, /*memoize=*/false);
    if (!parallel.ok()) return parallel.status();
    engine = std::move(*parallel);
  } else {
    engine = RoundEngine::CreateSerial(comparator, /*memoize=*/false);
  }

  MarcusRoundSource source(items, options);
  const int64_t paid_before = engine->paid();
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  return source.Finish(engine->paid() - paid_before);
}

}  // namespace crowdmax
