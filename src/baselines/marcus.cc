#include "baselines/marcus.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/rng.h"
#include "core/parallel_group.h"
#include "core/tournament.h"

namespace crowdmax {

namespace {

// Parallel variant: every level's group tournaments run concurrently on the
// runner; the per-group winner selection happens at the level barrier, in
// group order, so the result is identical for any thread count.
Result<MaxFindResult> ParallelMarcusTournamentMax(
    const std::vector<ElementId>& items, Comparator* comparator,
    const MarcusOptions& options) {
  Result<std::unique_ptr<ParallelGroupRunner>> runner =
      ParallelGroupRunner::Create(comparator, options.threads);
  if (!runner.ok()) return runner.status();

  const int64_t before = comparator->num_comparisons();
  Rng seeder(options.parallel_seed);
  MaxFindResult result;
  std::vector<ElementId> current = items;

  while (current.size() > 1) {
    ++result.rounds;
    // Only the final group can be short; a singleton advances as a bye.
    std::vector<std::vector<ElementId>> groups;
    bool has_bye = false;
    ElementId bye = -1;
    for (size_t start = 0; start < current.size();
         start += static_cast<size_t>(options.group_size)) {
      const size_t end = std::min(
          current.size(), start + static_cast<size_t>(options.group_size));
      if (end - start == 1) {
        has_bye = true;
        bye = current[start];
      } else {
        groups.emplace_back(current.begin() + start, current.begin() + end);
      }
    }

    const std::vector<GroupOutcome> outcomes =
        (*runner)->RunRound(groups, &seeder, nullptr);

    std::vector<ElementId> winners;
    winners.reserve(groups.size() + 1);
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      result.issued_comparisons += outcomes[gi].issued;
      TournamentResult tournament;
      tournament.wins = outcomes[gi].wins;
      winners.push_back(groups[gi][IndexOfMostWins(tournament)]);
    }
    if (has_bye) winners.push_back(bye);
    current = std::move(winners);
  }

  result.best = current[0];
  result.paid_comparisons = comparator->num_comparisons() - before;
  return result;
}

}  // namespace

Result<MaxFindResult> MarcusTournamentMax(const std::vector<ElementId>& items,
                                          Comparator* comparator,
                                          const MarcusOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.group_size < 2) {
    return Status::InvalidArgument("group_size must be >= 2");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  {
    std::unordered_set<ElementId> seen;
    for (ElementId e : items) {
      if (!seen.insert(e).second) {
        return Status::InvalidArgument("duplicate element id in input");
      }
    }
  }

  if (options.threads >= 1) {
    return ParallelMarcusTournamentMax(items, comparator, options);
  }

  const int64_t before = comparator->num_comparisons();
  MaxFindResult result;
  std::vector<ElementId> current = items;

  while (current.size() > 1) {
    ++result.rounds;
    std::vector<ElementId> winners;
    winners.reserve(current.size() / static_cast<size_t>(options.group_size) +
                    1);
    for (size_t start = 0; start < current.size();
         start += static_cast<size_t>(options.group_size)) {
      const size_t end = std::min(
          current.size(), start + static_cast<size_t>(options.group_size));
      std::vector<ElementId> group(current.begin() + start,
                                   current.begin() + end);
      if (group.size() == 1) {
        winners.push_back(group[0]);  // Bye.
        continue;
      }
      const TournamentResult tournament = AllPlayAll(group, comparator);
      result.issued_comparisons += tournament.comparisons;
      winners.push_back(group[IndexOfMostWins(tournament)]);
    }
    current = std::move(winners);
  }

  result.best = current[0];
  result.paid_comparisons = comparator->num_comparisons() - before;
  return result;
}

}  // namespace crowdmax
