#include "baselines/marcus.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/tournament.h"

namespace crowdmax {

Result<MaxFindResult> MarcusTournamentMax(const std::vector<ElementId>& items,
                                          Comparator* comparator,
                                          const MarcusOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.group_size < 2) {
    return Status::InvalidArgument("group_size must be >= 2");
  }
  {
    std::unordered_set<ElementId> seen;
    for (ElementId e : items) {
      if (!seen.insert(e).second) {
        return Status::InvalidArgument("duplicate element id in input");
      }
    }
  }

  const int64_t before = comparator->num_comparisons();
  MaxFindResult result;
  std::vector<ElementId> current = items;

  while (current.size() > 1) {
    ++result.rounds;
    std::vector<ElementId> winners;
    winners.reserve(current.size() / static_cast<size_t>(options.group_size) +
                    1);
    for (size_t start = 0; start < current.size();
         start += static_cast<size_t>(options.group_size)) {
      const size_t end = std::min(
          current.size(), start + static_cast<size_t>(options.group_size));
      std::vector<ElementId> group(current.begin() + start,
                                   current.begin() + end);
      if (group.size() == 1) {
        winners.push_back(group[0]);  // Bye.
        continue;
      }
      const TournamentResult tournament = AllPlayAll(group, comparator);
      result.issued_comparisons += tournament.comparisons;
      winners.push_back(group[IndexOfMostWins(tournament)]);
    }
    current = std::move(winners);
  }

  result.best = current[0];
  result.paid_comparisons = comparator->num_comparisons() - before;
  return result;
}

}  // namespace crowdmax
