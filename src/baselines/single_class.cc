#include "baselines/single_class.h"

namespace crowdmax {

namespace {

Result<SingleClassResult> RunSingleClass(const std::vector<ElementId>& items,
                                         Comparator* comparator,
                                         const TwoMaxFindOptions& options,
                                         WorkerClass billed_to) {
  Result<MaxFindResult> run = TwoMaxFind(items, comparator, options);
  if (!run.ok()) return run.status();
  SingleClassResult result;
  result.best = run->best;
  result.billed_to = billed_to;
  result.paid_comparisons = run->paid_comparisons;
  result.issued_comparisons = run->issued_comparisons;
  result.rounds = run->rounds;
  return result;
}

}  // namespace

Result<SingleClassResult> TwoMaxFindNaiveOnly(
    const std::vector<ElementId>& items, Comparator* naive,
    const TwoMaxFindOptions& options) {
  return RunSingleClass(items, naive, options, WorkerClass::kNaive);
}

Result<SingleClassResult> TwoMaxFindExpertOnly(
    const std::vector<ElementId>& items, Comparator* expert,
    const TwoMaxFindOptions& options) {
  return RunSingleClass(items, expert, options, WorkerClass::kExpert);
}

}  // namespace crowdmax
